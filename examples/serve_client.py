#!/usr/bin/env python3
"""Client for ``python -m repro serve``: submit a grid over the socket.

Start a server in one terminal::

    PYTHONPATH=src python -m repro serve --socket /tmp/repro.sock --jobs 2 \
        --result-cache /tmp/repro-cache --spool /tmp/repro-spool

then point this client at it::

    PYTHONPATH=src python examples/serve_client.py --socket /tmp/repro.sock

The client streams one ``run`` request per (workload, system) cell over a
single connection and prints results as the server completes them — out
of submission order when the pool's workers finish at different speeds,
which is the point.  ``--shutdown`` asks the server to exit afterwards
(used by the CI smoke job so the background server doesn't outlive the
step).

Exit status is 0 only if every cell came back ``ok: true``, so this
doubles as the end-to-end health check for the serve path.
"""

import argparse
import json
import sys

sys.path.insert(0, "src")

from repro.harness.serve import call, submit_requests  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--socket", required=True, metavar="PATH",
                        help="Unix socket the server is listening on")
    parser.add_argument("--workloads", default="db,jess",
                        help="comma-separated workload names")
    parser.add_argument("--systems", default="cg,cg-nogc",
                        help="comma-separated system names")
    parser.add_argument("--size", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the server's shared result cache")
    parser.add_argument("--shutdown", action="store_true",
                        help="ask the server to shut down afterwards")
    args = parser.parse_args(argv)

    ping = call(args.socket, {"op": "ping"})
    print(f"server pid {ping['pid']} is up")

    requests = [
        {"workload": workload, "size": args.size, "system": system}
        for workload in args.workloads.split(",")
        for system in args.systems.split(",")
    ]
    responses = submit_requests(args.socket, requests,
                                no_cache=args.no_cache)

    failures = 0
    for request, response in zip(requests, responses):
        cell = (f"{request['workload']}:{request['size']}"
                f":{request['system']}")
        if response["ok"]:
            result = response["result"]
            print(f"  {cell:24} ops={result['ops']:>9}"
                  f" pid={response['pid']}"
                  f" {'cache' if response['cached'] else 'ran'}"
                  f" wall={response['wall_seconds']:.3f}s")
        else:
            failures += 1
            print(f"  {cell:24} FAILED: "
                  + json.dumps(response["error"]))

    stats = call(args.socket, {"op": "stats"})["stats"]
    print(f"pool: {stats['completed']} done, {stats['failed']} failed, "
          f"{stats['steals']} steal(s), {stats['replaced']} replaced, "
          f"workers {[w['pid'] for w in stats['workers']]}")

    if args.shutdown:
        print("asking the server to shut down...")
        print(f"  {call(args.socket, {'op': 'shutdown'})}")

    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
