#!/usr/bin/env python3
"""Collector shootout: CG vs mark-sweep vs generational vs train.

Runs the same SPEC-shaped workload under four memory-management systems and
compares the quantities the paper argues about: marking work (CG's central
"no marking phase" claim), collection pauses, write-barrier traffic (what
generational/train pay and CG doesn't), and total simulated cost.  Also
demonstrates the section 3.6 reset pass repairing CG's conservatism.

Run:  python examples/collector_shootout.py [workload] [size]
      e.g. python examples/collector_shootout.py jack 1
"""

import sys

from repro.api import run as run_workload
from repro.workloads import REGISTRY


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "jack"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    if name not in REGISTRY:
        raise SystemExit(f"unknown workload {name!r}; pick from {sorted(REGISTRY)}")

    # Squeeze the heap to just above the live set so every system is under
    # genuine allocation pressure (otherwise nobody needs to collect).
    from repro.harness.figures import pressured_heap

    heap = pressured_heap(name, size)
    print(f"workload: {name}, size {size}, heap {heap} words\n")
    header = (f"{'system':12s} {'cycles':>7s} {'marks':>9s} {'barriers':>9s} "
              f"{'swept':>7s} {'CG-popped':>10s} {'sim ms':>9s}")
    print(header)
    print("-" * len(header))
    for system in ("cg", "jdk", "gen", "train"):
        r = run_workload(name, size, system, heap_words=heap)
        work = r.gc_work
        popped = r.cg_stats.objects_popped if r.cg_stats else 0
        print(f"{system:12s} {work.cycles + work.minor_cycles:7d} "
              f"{work.mark_visits:9d} {work.barrier_hits:9d} "
              f"{work.objects_collected:7d} {popped:10d} {r.sim_ms:9.2f}")

    print("\n--- the section 3.6 reset pass ---")
    plain = run_workload(name, size, "cg-nogc")
    reset = run_workload(name, size, "cg-reset")
    print(f"without resetting: {plain.census['popped']} collected, "
          f"{plain.census['static'] + plain.census['thread']} held to program end")
    print(f"with periodic MSA + reset: {reset.census['popped']} collected by CG, "
          f"{reset.cg_stats.collected_by_msa} by the sweep, "
          f"{reset.cg_stats.less_live} objects made less-live by resets "
          f"({reset.cg_stats.reset_passes} passes)")


if __name__ == "__main__":
    main()
