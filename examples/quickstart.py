#!/usr/bin/env python3
"""Quickstart: contaminated garbage collection in five minutes.

Demonstrates the core mechanism on a toy program:

* objects are tied to the stack frame they're allocated in;
* storing a reference merges the two objects' equilive blocks onto the
  *older* frame (contamination);
* when a frame pops, every block that depends on it is reclaimed — with no
  marking whatsoever;
* `putstatic` pins a block to frame 0 (live forever);
* contamination cannot be undone: pointing away doesn't help.

Run:  python examples/quickstart.py
"""

from repro import CGPolicy, Mutator, Runtime, RuntimeConfig


def banner(text):
    print(f"\n=== {text} ===")


def main():
    runtime = Runtime(
        RuntimeConfig(
            heap_words=1 << 16,
            cg=CGPolicy.paper_default(),
            tracing="marksweep",  # the traditional collector CG assists
        )
    )
    runtime.program.define_class("Node", fields=["next", "value"])
    m = Mutator(runtime)
    cg = runtime.collector

    banner("1. Objects die with their frame")
    with m.frame():
        with m.frame():
            for i in range(5):
                node = m.new("Node")
                m.putfield(node, "value", i)
                m.root(node)
            print("allocated 5 nodes in the inner frame")
        print("inner frame popped ->", cg.stats.objects_popped,
              "objects reclaimed (no marking!)")

        banner("2. Contamination anchors objects to older frames")
        keeper = m.new("Node")
        m.set_local(0, keeper)
        with m.frame():
            young = m.new("Node")
            m.putfield(young, "next", keeper)   # young touches keeper
            m.root(young)
            block = cg.equilive.block_of(young)
            print("young's block now depends on the OUTER frame:",
                  block.frame is m.thread.stack.frames[0])
        print("inner pop reclaimed nothing extra:",
              cg.stats.objects_popped, "total so far")
        young.check_live()  # still alive — conservative, and safe

        banner("3. Statics pin forever; pointing away doesn't unpin")
        finger = m.new("Node")
        m.putstatic("finger", finger)
        finger = m.getstatic("finger")
        with m.frame():
            victim = m.new("Node")
            m.putfield(finger, "next", victim)   # static touches victim
            m.putfield(finger, "next", None)     # ...and points away
            m.root(victim)
        print("victim survived its frame (pinned static):",
              not victim.freed)

    banner("Final accounting")
    census = cg.final_census()
    stats = cg.stats
    print(f"created:   {stats.objects_created}")
    print(f"popped:    {census['popped']} (collected by CG at frame pops)")
    print(f"static:    {census['static']} (live for the program's duration)")
    print(f"unions:    {stats.contaminations}, "
          f"union-find ops: {cg.equilive.ds.finds} finds")
    print(f"traditional GC cycles needed: {runtime.tracing.work.cycles}")
    runtime.check_heap_accounting()
    runtime.check_cg_invariants()
    print("heap accounting and equilive invariants: OK")


if __name__ == "__main__":
    main()
