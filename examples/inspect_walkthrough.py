#!/usr/bin/env python3
"""Live inspection walkthrough: watch a run from a different process.

Launches a long-running jess workload in a child process with heartbeat
snapshots armed (``heartbeat_every=1000`` executed opcodes), then attaches
to it from *this* process with the real CLI::

    python -m repro inspect <PID> --watch --count 3

and prints three successive snapshots as they land in the spool.  Nothing
is shared but the spool directory — the child never pauses, and the
watcher never touches the child's memory.

Run:  python examples/inspect_walkthrough.py
"""

import json
import os
import subprocess
import sys
import tempfile
import textwrap
import time

CHILD = textwrap.dedent("""
    import sys
    from repro import api
    # Re-run the workload forever so the parent always finds us in flight.
    while True:
        api.run("jess", 1, "cg", heartbeat_every=1000,
                heartbeat_spool=sys.argv[1])
""")


def main():
    spool = tempfile.mkdtemp(prefix="repro-inspect-demo-")
    env = dict(os.environ)
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, spool],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    print(f"child pid {child.pid} running jess:1:cg with heartbeats "
          f"every 1000 ops\nspool: {spool}\n")
    try:
        # Wait for the first run file to appear, then attach.
        deadline = time.time() + 60
        while time.time() < deadline:
            if any(name.startswith("run-") for name in os.listdir(spool)):
                break
            if child.poll() is not None:
                raise SystemExit("child died before heartbeating")
            time.sleep(0.05)

        print(f"$ python -m repro inspect {child.pid} --watch --count 3 "
              f"--spool {spool}\n")
        watch = subprocess.run(
            [sys.executable, "-m", "repro", "inspect", str(child.pid),
             "--watch", "--count", "3", "--json", "--spool", spool,
             "--interval", "0.05", "--timeout", "30"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        if watch.returncode != 0:
            raise SystemExit(f"inspect --watch failed: {watch.stderr}")
        snapshots = [json.loads(line)
                     for line in watch.stdout.strip().splitlines()]
        for snap in snapshots:
            labels = snap.get("labels") or {}
            cell = (f"{labels.get('workload')}:{labels.get('size')}"
                    f":{labels.get('system')}")
            heap = snap.get("heap") or {}
            print(f"snapshot seq={snap['seq']:>4} phase={snap['phase']:5} "
                  f"ops={snap['ops']:>8} cell={cell} "
                  f"heap={100 * heap.get('occupancy', 0):.1f}%")
        seqs = [(s["pid"], s["seq"]) for s in snapshots]
        assert len(snapshots) == 3, snapshots
        # Three distinct snapshots.  Seqs increase within one run file,
        # but the child loops the workload forever, so the watcher may
        # cross into the next run's file, where seq restarts — strict
        # monotonicity across all three would be a race, not a guarantee.
        assert len(set(seqs)) == 3, seqs
        assert all(s["phase"] in ("live", "final") for s in snapshots)
        print("\nthree successive snapshots from a live child: OK")
    finally:
        child.kill()
        child.wait()


if __name__ == "__main__":
    main()
