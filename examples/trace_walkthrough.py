#!/usr/bin/env python3
"""Trace walkthrough: watch CG decide an object's fate, event by event.

The quickstart shows *that* contamination anchors objects; this example
shows *when*, by running a small program with the `repro.obs` tracer
installed and then replaying the recorded event stream:

* every allocation, contamination (union), areturn promotion, static pin,
  frame pop, recycle hit/miss, reset pass, and GC cycle is an event;
* the trace is exported to JSONL and reloaded — losslessly;
* the per-object history of one contaminated victim is reconstructed from
  the trace alone;
* the trace summary's counters are checked against the collector's live
  `CGStats` — two independent witnesses that must agree exactly.

Run:  python examples/trace_walkthrough.py [out.jsonl]
"""

import os
import sys
import tempfile

from repro import CGPolicy, Mutator, Runtime, RuntimeConfig
from repro.obs import Tracer, read_trace, summarize, write_trace


def banner(text):
    print(f"\n=== {text} ===")


def run_traced_program(tracer):
    """A tiny program that exercises every event kind the tracer knows."""
    runtime = Runtime(
        RuntimeConfig(
            heap_words=420,  # tight: forces recycle searches and real GC
            cg=CGPolicy(recycling=True, resetting=True),
            tracing="marksweep",
            gc_period_ops=400,  # periodic MSA -> reset passes (section 3.6)
            tracer=tracer,
        )
    )
    runtime.program.define_class("Node", fields=["next", "value"])
    m = Mutator(runtime)

    with m.frame():  # depth 0: the program's main frame
        keeper = m.new("Node")
        m.set_local(0, keeper)

        # Contamination: victim stored into keeper's field -> their blocks
        # merge onto the OLDER frame; the inner pop frees nothing.
        with m.frame():
            victim = m.new("Node")
            m.putfield(keeper, "next", victim)
            m.root(victim)
        victim_id = victim.id

        # areturn: the returned object must outlive the callee's frame.
        with m.frame():
            m.areturn(m.new("Node"))

        # putstatic: pinned to frame 0, live for the program's duration.
        m.putstatic("config", m.new("Node"))

        # Churn: short-lived pairs die with their frames; in a 420-word
        # heap the recycle list (section 3.7) and the tracing collector
        # both get exercised.
        for i in range(120):
            with m.frame():
                a = m.new("Node")
                b = m.new("Node")
                m.putfield(a, "next", b)
                m.root(a)
                m.root(b)
        # A big array no parked Node can satisfy: the recycle first-fit
        # scan misses, parked storage is flushed, and allocation falls
        # through to the tracing collector (section 3.7's order).
        with m.frame():
            m.root(m.new_array(96))
        m.putfield(keeper, "next", None)  # pointing away does NOT unpin
    return runtime, victim_id


def replay_object_history(events, handle_id):
    """Reconstruct one object's lifetime from the trace alone."""
    history = []
    for event in events:
        data = event.data
        if event.kind == "new" and data.get("handle") == handle_id:
            history.append(
                f"  [{event.seq:>5}] born: {data['cls']} "
                f"({data['size']} words) on frame depth {data['depth']}"
            )
        elif event.kind == "union" and handle_id in (data.get("a"), data.get("b")):
            where = "frame 0 (static)" if data["static"] else (
                f"depth {data['target_depth']}"
            )
            history.append(
                f"  [{event.seq:>5}] contaminated: blocks of "
                f"#{data['a']} and #{data['b']} merged onto {where}"
            )
        elif event.kind == "promote" and data.get("handle") == handle_id:
            history.append(
                f"  [{event.seq:>5}] areturn: promoted from depth "
                f"{data['from_depth']} to {data['to_depth']}"
            )
        elif event.kind == "pin" and data.get("handle") == handle_id:
            history.append(
                f"  [{event.seq:>5}] pinned static (cause: {data['cause']})"
            )
    return history


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else None
    tracer = Tracer(capacity=1 << 16)

    banner("1. Run a small program with tracing enabled")
    runtime, victim_id = run_traced_program(tracer)
    stats = runtime.collector.stats
    print(f"traced {tracer.emitted} events "
          f"({'complete' if tracer.complete else 'ring overflowed'})")

    banner("2. Export to JSONL and reload")
    if out_path is None:
        fd, path = tempfile.mkstemp(suffix=".jsonl", prefix="cg-trace-")
        os.close(fd)
    else:
        path = out_path
    written = write_trace(path, tracer)
    meta, events = read_trace(path)
    print(f"wrote {written} events -> {path}; reloaded {len(events)} "
          f"(dropped per meta: {meta['dropped']})")

    banner(f"3. Replay object #{victim_id}'s contamination history")
    for line in replay_object_history(events, victim_id):
        print(line)
    print("  (the merge onto the outer frame is why the inner pop freed "
          "nothing — contamination cannot be undone)")

    banner("4. Event vocabulary captured")
    summary = summarize(events, complete=meta["dropped"] == 0)
    print(summary.render())

    banner("5. Cross-check: trace vs live counters")
    checks = [
        ("objects created", summary.objects_created, stats.objects_created),
        ("objects popped", summary.objects_popped, stats.objects_popped),
        ("contaminations", summary.contaminations, stats.contaminations),
        ("frame pops", summary.frame_pops, stats.frame_pops),
        ("blocks collected", summary.blocks_collected, stats.blocks_collected),
        ("reset passes", summary.reset_passes, stats.reset_passes),
        ("recycle hits", summary.recycle_hits, stats.objects_recycled),
        ("recycle misses", summary.recycle_misses, stats.recycle_misses),
        ("gc cycles", summary.gc_cycles, runtime.tracing.work.cycles),
    ]
    ok = True
    for name, from_trace, live in checks:
        match = from_trace == live
        ok = ok and match
        print(f"  {name:<18} trace={from_trace:<6} live={live:<6} "
              f"{'OK' if match else 'MISMATCH'}")
    if not ok:
        raise SystemExit("trace and live counters disagree")
    print("trace and live counters agree exactly")
    if out_path is None:
        os.unlink(path)


if __name__ == "__main__":
    main()
