#!/usr/bin/env python3
"""A long-running server — the workload class the paper says CG suits best.

Chapter 4.2: "These results lead us to believe that our approach would be
useful in longer-running benchmarks and applications.  Servers and web
based servlets are examples of such programs that might benefit."

The servlet container itself now lives in the repo as the first-class
``server`` workload (``repro.workloads.server``): bytecode request
handlers, a static session cache with a configurable escape rate,
connection churn, and seeded arrival schedules.  This example is just a
thin driver: serve the same request stream under each system with
profiling armed and compare tail latency — the SLO framing of the
paper's claim that per-request garbage dies at frame-pop, so CG never
stops the world mid-request.

Run:  python examples/webserver.py [--requests N] [--pattern bursty]
      [--systems cg,jdk]
"""

import argparse

from repro.api import run


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=400,
                        help="requests to serve per system (default 400)")
    parser.add_argument("--pattern", default="bursty",
                        choices=("steady", "bursty", "diurnal"),
                        help="arrival schedule shape (default bursty)")
    parser.add_argument("--systems", default="cg,jdk",
                        help="comma-separated systems (default cg,jdk)")
    args = parser.parse_args()

    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    print(f"Serving {args.requests} {args.pattern} requests "
          f"under {', '.join(systems)}...\n")

    results = []
    for system in systems:
        result = run("server", system=system, requests=args.requests,
                     params={"pattern": args.pattern}, profile=True)
        results.append(result)
        lat = result.latency or {}
        req_ms = lat.get("request_ms") or {}
        pause_ms = lat.get("pause_ms") or {}
        gc_cycles = result.gc_work.cycles
        popped = (result.cg_stats.objects_popped
                  if result.cg_stats is not None else 0)
        print(f"{system:12s} p50 {req_ms.get('p50_ms', 0.0):7.3f}ms"
              f"  p99 {req_ms.get('p99_ms', 0.0):7.3f}ms"
              f"  p999 {req_ms.get('p999_ms', 0.0):7.3f}ms"
              f"  max {req_ms.get('max_ms', 0.0):7.3f}ms"
              f"  | pause p99 {pause_ms.get('p99_ms', 0.0):6.3f}ms"
              f" ({lat.get('pause_share_pct', 0.0):4.1f}%)"
              f"  gc cycles {gc_cycles:3d}"
              f"  CG-popped {popped:5d}")

    if len(results) >= 2 and results[0].system == "cg":
        cg, other = results[0], results[1]
        saved = other.gc_work.cycles - cg.gc_work.cycles
        if saved > 0:
            print(f"\nCG eliminated {saved} of {other.gc_work.cycles} "
                  "collection pauses — per-request garbage never survives "
                  "the handler frame, so the heap simply doesn't fill "
                  "mid-request.")


if __name__ == "__main__":
    main()
