#!/usr/bin/env python3
"""A long-running server — the workload class the paper says CG suits best.

Chapter 4.2: "These results lead us to believe that our approach would be
useful in longer-running benchmarks and applications.  Servers and web
based servlets are examples of such programs that might benefit."

This example models a servlet container: a session cache and route table
live for the process (static); each request is handled in its own frame,
allocating a request object, parsed headers, and a response buffer that all
die when the handler returns.  A few requests write to the session cache
(escape to static).  We run the same request stream under the CG system and
the plain traditional collector and compare how often the tracer had to run
and how much marking it did.

Run:  python examples/webserver.py [requests]
"""

import sys

from repro import CGPolicy, Mutator, Runtime, RuntimeConfig


def define_classes(program):
    program.define_class("srv/Request", fields=["path", "headers", "body"])
    program.define_class("srv/Header", fields=["name", "value", "next"])
    program.define_class("srv/Response", fields=["status", "payload"])
    program.define_class("srv/Session", fields=["user", "data"])
    program.define_class("srv/Route", fields=["pattern", "handler"])


def handle_request(m, request_id):
    """One request: everything here dies at the handler's return, except
    the occasional session object that escapes to the cache."""
    request = m.new("srv/Request")
    m.set_local(0, request)
    # Parse three headers into a chain hanging off the request.
    prev = None
    for h in range(3):
        header = m.new("srv/Header")
        m.putfield(header, "name", h)
        if prev is None:
            m.putfield(request, "headers", header)
        else:
            m.putfield(prev, "next", header)
        prev = m.getfield(request, "headers") if prev is None else m.getfield(prev, "next")
    # Route lookup: reads the static table (no contamination of the
    # request thanks to the section 3.4 optimization).
    routes = m.getstatic("srv.routes")
    route = m.aaload(routes, request_id % 8)
    m.putfield(request, "path", request_id)
    m.tick(40)  # handler business logic
    response = m.new("srv/Response")
    m.putfield(response, "status", 200)
    m.root(response)
    # Every 50th request logs a session into the cache: genuine escape.
    if request_id % 50 == 0:
        session = m.new("srv/Session")
        m.putfield(session, "user", request_id)
        cache = m.getstatic("srv.sessions")
        m.aastore(cache, (request_id // 50) % 64, session)


def boot(m):
    routes = m.new_array(8)
    m.putstatic("srv.routes", routes)
    routes = m.getstatic("srv.routes")
    for i in range(8):
        route = m.new("srv/Route")
        m.putfield(route, "pattern", i)
        m.aastore(routes, i, route)
    sessions = m.new_array(64)
    m.putstatic("srv.sessions", sessions)


def serve(system_name, policy, requests):
    rt = Runtime(
        RuntimeConfig(heap_words=4096, cg=policy, tracing="marksweep")
    )
    define_classes(rt.program)
    m = Mutator(rt)
    with m.frame(name="srv.main"):
        boot(m)
        for r in range(requests):
            with m.frame(name="srv.handleRequest"):
                handle_request(m, r)
    work = rt.tracing.work
    print(f"{system_name:22s} tracer cycles: {work.cycles:4d}   "
          f"mark visits: {work.mark_visits:7d}   "
          f"objects swept: {work.objects_collected:6d}", end="")
    if rt.collector is not None:
        print(f"   CG-collected: {rt.collector.stats.objects_popped}")
    else:
        print()
    rt.check_heap_accounting()
    return rt


def main():
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    print(f"Serving {requests} requests on a 4096-word heap...\n")
    cg_rt = serve("contaminated GC + MSA", CGPolicy.paper_default(), requests)
    jdk_rt = serve("traditional MSA only", CGPolicy.disabled(), requests)
    saved = jdk_rt.tracing.work.cycles - cg_rt.tracing.work.cycles
    print(f"\nCG eliminated {saved} of {jdk_rt.tracing.work.cycles} "
          "collection pauses — per-request garbage never survives the "
          "handler frame, so the heap simply doesn't fill.")


if __name__ == "__main__":
    main()
