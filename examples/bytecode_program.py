#!/usr/bin/env python3
"""Running a real bytecode program on the VM substrate.

The reproduction includes a small JVM-like stack machine and a textual
assembler, because the paper's system is an *interpreter modification*: the
CG events fire from `new`/`putfield`/`putstatic`/`areturn` instructions.
This example assembles a program that builds linked lists, interns strings,
and recurses — then prints what the CG collector observed.

Run:  python examples/bytecode_program.py
"""

from repro import CGPolicy, Runtime, RuntimeConfig, assemble

SOURCE = """
; A linked-list library plus a driver.

class List
    field head
    field length
    static longest          ; the longest list ever built is cached here

class Node
    field next
    field value

method List.push(2) locals=3
    ; args: list, value.  Pushes a node carrying value.
    new Node
    store 2
    load 2
    load 1
    putfield value
    load 2
    load 0
    getfield head
    putfield next
    load 0
    load 2
    putfield head
    load 0
    getfield length
    const 1
    add
    store 1
    load 0
    load 1
    putfield length
    return

method List.build(1) locals=2
    ; arg: n.  Builds a list of n nodes and returns it.
    new List
    store 1
    load 1
    const 0
    putfield length
loop:
    load 0
    ifzero done
    load 1
    load 0
    invokestatic List.push
    iinc 0 -1
    goto loop
done:
    load 1
    retval

method List.sum(1) locals=3
    ; Recursive sum over the list's values, node by node.
    load 0
    getfield head
    invokestatic List.sumFrom
    retval

method List.sumFrom(1)
    load 0
    ifnull empty
    load 0
    getfield value
    load 0
    getfield next
    invokestatic List.sumFrom
    add
    retval
empty:
    const 0
    retval

class Main
method Main.main(0) locals=4
    ; Build a throwaway list, sum it, drop it.
    const 10
    invokestatic List.build
    store 0
    load 0
    invokestatic List.sum
    store 1
    ; Build a keeper and publish it via the static cache.
    const 5
    invokestatic List.build
    store 2
    load 2
    putstatic List.longest
    ; Interned strings are forever (section 3.2).
    ldc_str "server-name"
    intern
    pop
    ldc_str "server-name"
    intern
    store 3
    load 1
    retval
"""


def main():
    program = assemble(SOURCE)
    rt = Runtime(
        RuntimeConfig(cg=CGPolicy.paper_default(), tracing="marksweep"),
        program=program,
    )
    result = rt.run("Main.main")
    print(f"Main.main returned: {result}  (sum of 1..10 values stored as 10)")

    stats = rt.collector.stats
    census = rt.collector.final_census()
    print(f"\ninstructions executed: {rt.interpreter.instructions_executed}")
    print(f"objects created:  {stats.objects_created}")
    print(f"  collected by CG when main returned: {census['popped']}")
    print(f"  pinned static (putstatic list + interned string): "
          f"{census['static']}")
    print(f"contaminations (putfield unions): {stats.contaminations}")
    print(f"store events instrumented: {stats.store_events}")
    print(f"traditional collector cycles: {rt.tracing.work.cycles}")

    # The throwaway list (11 objects: List + 10 Nodes) and the duplicate
    # string die with main; the published list (6) and canonical string live.
    assert census["popped"] == 12, census
    assert census["static"] == 7, census
    print("\ncensus matches the hand count: OK")


if __name__ == "__main__":
    main()
