#!/usr/bin/env python3
"""The worked example of the paper, step by step (Figures 2.1 and 2.2).

Five objects A-E live in a six-frame stack; E is static.  The program of
Figure 2.2 executes five stores; after each one we print every object's
dependent frame, reproducing the narrative of chapter 2 — including the
final punchline: contamination cannot be undone.

Run:  python examples/paper_walkthrough.py
"""

from repro import CGPolicy, Mutator, Runtime, RuntimeConfig


def dependent_frame_name(cg, handle, frames):
    block = cg.equilive.block_of(handle)
    if block.is_static:
        return "frame 0 (static)"
    for i, frame in enumerate(frames):
        if block.frame is frame:
            return f"frame {i}"
    return "?"


def show(cg, objects, frames, step):
    cells = ", ".join(
        f"{name}->{dependent_frame_name(cg, h, frames)}"
        for name, h in objects.items()
    )
    print(f"  after {step}: {cells}")


def main():
    rt = Runtime(RuntimeConfig(cg=CGPolicy.paper_default(), tracing="none"))
    rt.program.define_class("Obj", fields=["f"])
    m = Mutator(rt)
    cg = rt.collector

    # Push frames 1..5 (frame 0 is the paper's static pseudo-frame; we
    # label our real frames 1..5 to match the figure's 0..5 numbering
    # loosely — the *relative* ages are what matters).
    frames = [rt.push_frame(m.thread) for _ in range(6)]

    e = m.new("Obj")
    m.putstatic("E", e)
    e = m.getstatic("E")

    def anchored(depth):
        h = m.new("Obj")
        cg.equilive.move_to_frame(cg.equilive.block_of(h), frames[depth])
        return h

    a, b, c, d = anchored(3), anchored(2), anchored(1), anchored(4)
    objects = {"A": a, "B": b, "C": c, "D": d, "E": e}

    print("Figure 2.1 initial placement (Earliest Frame column):")
    show(cg, objects, frames, "setup")

    print("\nFigure 2.2 program:")
    m.putfield(b, "f", a)
    show(cg, objects, frames, "1: B.f = A   (A joins B on frame 2)")

    m.putfield(c, "f", b)
    show(cg, objects, frames, "2: C.f = B   (A,B,C on frame 1)")

    m.putfield(d, "f", c)
    show(cg, objects, frames,
         "3: D.f = C   (symmetry drags D to frame 1 too)")

    m.putfield(e, "f", d)
    show(cg, objects, frames, "4: E.f = D   (everything static)")

    m.putfield(e, "f", None)
    show(cg, objects, frames,
         "5: E.f = null (contamination cannot be undone)")

    print("\nPopping all frames...")
    while m.thread.stack.frames:
        rt.pop_frame(m.thread)
    print(f"objects collected by CG: {cg.stats.objects_popped} "
          "(none — the whole graph went static, exactly as the paper warns)")
    print("\nThe section 3.6 reset pass exists to repair precisely this: "
          "run examples/collector_shootout.py to see it in action.")


if __name__ == "__main__":
    main()
