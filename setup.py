"""Legacy shim so `pip install -e .` works without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables the
setuptools develop-install path on environments lacking bdist_wheel.
"""

from setuptools import setup

setup()
