"""Integration: nontrivial bytecode programs exercising VM + CG together."""

import pytest

from repro import CGPolicy, Runtime, RuntimeConfig, assemble


def run(source, entry="Main.main", heap_words=1 << 16, tracing="marksweep",
        cg=None, args=None):
    rt = Runtime(
        RuntimeConfig(
            heap_words=heap_words,
            cg=cg or CGPolicy(paranoid=True),
            tracing=tracing,
        ),
        program=assemble(source),
    )
    result = rt.run(entry, args or [])
    rt.check_heap_accounting()
    if rt.collector:
        rt.check_cg_invariants()
    return result, rt


BINARY_TREE = """
class Tree
    field left
    field right
    field key

method Tree.insert(2) locals=3
    ; args: node, key -> returns the (possibly new) subtree root
    load 0
    ifnull fresh
    load 1
    load 0
    getfield key
    if_icmpeq dup
    load 1
    load 0
    getfield key
    if_icmplt goleft
    load 0
    load 0
    getfield right
    load 1
    invokestatic Tree.insert
    putfield right
    load 0
    retval
goleft:
    load 0
    load 0
    getfield left
    load 1
    invokestatic Tree.insert
    putfield left
    load 0
    retval
dup:
    load 0
    retval
fresh:
    new Tree
    store 2
    load 2
    load 1
    putfield key
    load 2
    retval

method Tree.count(1)
    load 0
    ifnull zero
    load 0
    getfield left
    invokestatic Tree.count
    load 0
    getfield right
    invokestatic Tree.count
    add
    const 1
    add
    retval
zero:
    const 0
    retval

class Main
method Main.main(0) locals=3
    aconst_null
    store 0
    const 0
    store 1
build:
    load 1
    const 20
    if_icmpge done
    load 0
    load 1
    const 7
    mul
    const 13
    mod
    invokestatic Tree.insert
    store 0
    iinc 1 1
    goto build
done:
    load 0
    invokestatic Tree.count
    retval
"""


class TestBinaryTree:
    def test_builds_and_counts(self):
        result, rt = run(BINARY_TREE)
        # keys are i*7 mod 13: 13 distinct values over 20 inserts.
        assert result == 13
        assert rt.collector.stats.objects_created == 13

    def test_tree_dies_with_main(self):
        _, rt = run(BINARY_TREE)
        assert rt.collector.stats.objects_popped == 13

    def test_tree_nodes_form_one_block(self):
        """Insertions chain nodes into each other: one equilive block."""
        _, rt = run(BINARY_TREE)
        hist = rt.collector.stats.block_size_hist
        assert hist[13] == 1


ESCAPING_FACTORY = """
class Item
    field id
class Registry
    static items
    static count

method Registry.publish(1) locals=2
    ; store arg0 into the static registry array
    getstatic Registry.items
    getstatic Registry.count
    load 0
    aastore
    getstatic Registry.count
    const 1
    add
    putstatic Registry.count
    return

method Registry.makeItem(1) locals=2
    new Item
    store 1
    load 1
    load 0
    putfield id
    load 1
    retval

class Main
method Main.main(0) locals=2
    const 8
    newarray
    putstatic Registry.items
    const 0
    putstatic Registry.count
    const 0
    store 0
loop:
    load 0
    const 16
    if_icmpge done
    load 0
    invokestatic Registry.makeItem
    store 1
    ; publish every fourth item; drop the rest
    load 0
    const 4
    mod
    ifnzero skip
    load 1
    invokestatic Registry.publish
skip:
    iinc 0 1
    goto loop
done:
    getstatic Registry.count
    retval
"""


class TestEscapeAnalysisShape:
    def test_published_items_static_others_collected(self):
        result, rt = run(ESCAPING_FACTORY)
        assert result == 4
        census = rt.collector.final_census()
        # 16 items + 1 array: 4 published (+ array) static, 12 collected.
        assert census["popped"] == 12
        assert census["static"] == 5

    def test_items_die_at_main_not_factory(self):
        """makeItem areturns the item: it must survive the factory frame
        and die with main (distance 1 from birth)."""
        _, rt = run(ESCAPING_FACTORY)
        assert rt.collector.stats.age_hist[1] == 12


GC_PRESSURE = """
class Blob
    field a
    field b
    field c

class Main
method Main.main(0) locals=2
    const 0
    store 0
loop:
    load 0
    const 200
    if_icmpge done
    new Blob
    store 1
    iinc 0 1
    goto loop
done:
    load 0
    retval
"""


class TestGCPressure:
    def test_msa_keeps_tiny_heap_alive(self):
        # 200 blobs x 5 words inside one frame: only MSA can reclaim them
        # (they die mid-frame as local 1 is overwritten).
        result, rt = run(GC_PRESSURE, heap_words=128)
        assert result == 200
        assert rt.tracing.work.cycles >= 1

    def test_oom_without_any_collector(self):
        from repro import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            run(GC_PRESSURE, heap_words=128, tracing="none",
                cg=CGPolicy.disabled())

    def test_cg_alone_insufficient_here(self):
        """The frame never pops during the loop, so CG cannot help — the
        conservatism story in one test."""
        from repro import OutOfMemoryError

        with pytest.raises(OutOfMemoryError):
            run(GC_PRESSURE, heap_words=128, tracing="none")


MUTUAL_RECURSION = """
class Main
method Main.even(1)
    load 0
    ifzero yes
    load 0
    const 1
    sub
    invokestatic Main.odd
    retval
yes:
    const 1
    retval
method Main.odd(1)
    load 0
    ifzero no
    load 0
    const 1
    sub
    invokestatic Main.even
    retval
no:
    const 0
    retval
method Main.main(1)
    load 0
    invokestatic Main.even
    retval
"""


class TestDeepStacks:
    @pytest.mark.parametrize("n,expected", [(0, 1), (7, 0), (40, 1)])
    def test_mutual_recursion(self, n, expected):
        result, _ = run(MUTUAL_RECURSION, args=[n])
        assert result == expected

    def test_frame_ids_unique_across_deep_run(self):
        _, rt = run(MUTUAL_RECURSION, args=[50])
        # 51 recursion frames + main = 52 issued ids.
        assert rt.frame_ids.issued == 52
