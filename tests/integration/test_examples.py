"""The examples must run clean — they are the library's front door."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=120):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "objects reclaimed (no marking!)" in out
    assert "heap accounting and equilive invariants: OK" in out


def test_paper_walkthrough():
    out = run_example("paper_walkthrough.py")
    assert "contamination cannot be undone" in out
    assert "A->frame 0 (static)" in out


def test_webserver():
    out = run_example("webserver.py", "--requests", "400",
                      "--pattern", "bursty")
    assert "CG eliminated" in out
    assert "CG-popped" in out
    assert "p999" in out  # the SLO columns


def test_bytecode_program():
    out = run_example("bytecode_program.py")
    assert "census matches the hand count: OK" in out


def test_inspect_walkthrough():
    out = run_example("inspect_walkthrough.py", timeout=180)
    assert "three successive snapshots from a live child: OK" in out
    assert out.count("cell=jess:1:cg") == 3


def test_trace_walkthrough(tmp_path):
    out = run_example("trace_walkthrough.py", str(tmp_path / "trace.jsonl"))
    assert "trace and live counters agree exactly" in out
    assert "contaminated: blocks of" in out
    assert "MISMATCH" not in out


@pytest.mark.parametrize("workload", ["jack", "compress"])
def test_collector_shootout(workload):
    out = run_example("collector_shootout.py", workload, "1")
    assert "reset pass" in out
    for system in ("cg", "jdk", "gen", "train"):
        assert system in out


def test_shootout_rejects_unknown_workload():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "collector_shootout.py"), "nope"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode != 0
    assert "unknown workload" in proc.stderr + proc.stdout
