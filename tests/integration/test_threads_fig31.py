"""Figure 3.1: two threads sharing an object — in real bytecode.

Thread 1 allocates A and hands it to a spawned thread 2; when thread 2
touches A, the CG collector pins A's block to frame 0 (section 3.3), so A is
never collected by CG even after both stacks unwind.
"""

import pytest

from repro import CGPolicy, Runtime, RuntimeConfig, assemble
from repro.core.stats import CAUSE_SHARED

SOURCE = """
class Box
    field v

class Worker
    field item
method Worker.run(1) locals=2
    ; touch the shared object from this (second) thread
    load 0
    getfield item
    store 1
    load 1
    const 7
    putfield v
    return

class Main
method Main.main(0) locals=3
    new Box
    store 0
    new Worker
    store 1
    load 1
    load 0
    putfield item
    load 1
    spawn run 1
    const 0
    retval
"""


def run_fig31(quantum=10):
    program = assemble(SOURCE)
    rt = Runtime(
        RuntimeConfig(cg=CGPolicy(paranoid=True), quantum=quantum),
        program=program,
    )
    rt.run("Main.main")
    return rt


def test_shared_object_pinned():
    rt = run_fig31()
    st = rt.collector.stats
    # The worker touched both the Worker object (its receiver) and the Box.
    assert st.objects_pinned[CAUSE_SHARED] == 2
    census = rt.collector.final_census()
    assert census["thread"] == 2
    assert census["popped"] == 0


def test_sharing_detected_at_any_quantum():
    for quantum in (1, 3, 100):
        rt = run_fig31(quantum=quantum)
        assert rt.collector.stats.objects_pinned[CAUSE_SHARED] == 2


def test_unshared_sibling_still_collected():
    source = SOURCE + """
class Main2
method Main2.main(0) locals=1
    new Box
    store 0
    const 0
    invokestatic Main.main
    pop
    retval
"""
    program = assemble(source)
    rt = Runtime(RuntimeConfig(cg=CGPolicy(paranoid=True)), program=program)
    rt.run("Main2.main")
    # Main2's private Box is collected; the shared pair is not.
    assert rt.collector.stats.objects_popped == 1
    assert rt.collector.final_census()["thread"] == 2


def test_threads_complete_round_robin():
    """Scheduler interleaves to completion; all stacks empty at the end."""
    rt = run_fig31(quantum=2)
    assert all(not t.stack.frames for t in rt.threads())
    assert rt.scheduler.next_thread() is None
