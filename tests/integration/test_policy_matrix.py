"""Every CG policy combination must stay sound and conserve the census.

A compact mixed workload (allocation, contamination, statics, returns,
threads, arrays, intern) runs under the cross product of policy knobs with
paranoid probing on, against both a roomy and a tight heap.
"""

import itertools

import pytest

from repro import CGPolicy, Mutator, Runtime, RuntimeConfig
from tests.conftest import assert_clean, define_test_classes


def mixed_workload(rt):
    m = Mutator(rt)
    with m.frame():
        registry = m.new_array(8)
        m.putstatic("registry", registry)
        registry = m.getstatic("registry")
        keeper = m.new("Node")
        m.set_local(0, keeper)
        other = m.spawn()
        with other.frame():
            for i in range(40):
                with m.frame():
                    a = m.new("Pair")
                    b = m.new("Node")
                    m.putfield(a, "first", b)
                    m.root(a)
                    if i % 8 == 0:
                        m.aastore(registry, (i // 8) % 8, a)
                    if i % 10 == 0:
                        shared = m.new("Box")
                        m.set_local(1, shared)
                        other.touch(shared)
                    with m.frame():
                        tmp = m.new("Node")
                        m.areturn(tmp)
                    m.root(tmp)
            # intern() consumes the temp root and pins the canonical string.
            m.intern(m.new_string("k"))
    return rt


KNOBS = list(itertools.product([True, False], repeat=3))  # opt, recycle, reset


@pytest.mark.parametrize("static_opt,recycling,resetting", KNOBS)
@pytest.mark.parametrize("heap_words", [1 << 16, 1500])
def test_policy_matrix(static_opt, recycling, resetting, heap_words):
    policy = CGPolicy(
        static_opt=static_opt,
        recycling=recycling,
        resetting=resetting,
        paranoid=True,
    )
    rt = Runtime(
        RuntimeConfig(
            heap_words=heap_words,
            cg=policy,
            tracing="marksweep",
            gc_period_ops=200 if resetting else None,
        )
    )
    define_test_classes(rt.program)
    mixed_workload(rt)
    assert_clean(rt)
    stats = rt.collector.stats
    census = rt.collector.final_census()
    live = rt.heap.live_count()
    # Conservation: every created object is popped, swept, or still live.
    assert (
        stats.objects_created
        == stats.objects_popped + stats.collected_by_msa + live
        + len(rt.collector.recycle) * 0  # parked objects already counted as popped
    )


@pytest.mark.parametrize("recycle_by_type", [False, True])
def test_typed_matrix_tight_heap(recycle_by_type):
    policy = CGPolicy(
        recycling=True, recycle_by_type=recycle_by_type, paranoid=True
    )
    rt = Runtime(
        RuntimeConfig(heap_words=1200, cg=policy, tracing="marksweep")
    )
    define_test_classes(rt.program)
    mixed_workload(rt)
    assert_clean(rt)
    assert rt.collector.stats.objects_popped > 0


def test_disabled_cg_still_conserves():
    rt = Runtime(
        RuntimeConfig(heap_words=1500, cg=CGPolicy.disabled(),
                      tracing="marksweep")
    )
    define_test_classes(rt.program)
    mixed_workload(rt)
    rt.check_heap_accounting()
    swept = rt.tracing.work.objects_collected
    assert rt.heap.objects_created == swept + rt.heap.live_count()
