"""The worked example of thesis chapter 2 (Figures 2.1 and 2.2), executable.

Five objects A-E; frames numbered 0 (oldest) to 5 (youngest); E is static.
The program of Fig. 2.2 runs in frame 5:

    1:  B.f = A   ->  A joins B's block, dependent on frame 2
    2:  C.f = B   ->  A, B, C dependent on frame 1
    3:  D.f = C   ->  D (frame 4) is *younger*: no dependence change for
                      A/B/C, but the blocks merge (symmetric contamination),
                      conservatively making D dependent on frame 1 too
    4:  E.f = D   ->  everything becomes static (frame 0)
    5:  E.f = null -> contamination cannot be undone; all stay static

We realise the initial placement of Fig. 2.1 exactly: each object X is
dynamically anchored so its dependent frame matches the figure's "Earliest
Frame" table (A->3, B->2, C->1, D->4, E->0/static).
"""

import pytest

from repro import CGPolicy, Mutator, Runtime, RuntimeConfig
from tests.conftest import assert_clean


@pytest.fixture
def setup():
    rt = Runtime(
        RuntimeConfig(cg=CGPolicy(paranoid=True), tracing="marksweep")
    )
    rt.program.define_class("Obj", fields=["f"])
    m = Mutator(rt)
    return rt, m


def enter_frames(m, n):
    """Push n nested frames (depths 0..n-1) without the context manager."""
    frames = []
    for _ in range(n):
        frames.append(m.runtime.push_frame(m.thread))
    return frames


def test_figure_2_1_initial_dependence(setup):
    rt, m = setup
    frames = enter_frames(m, 6)  # depths 0..5
    cg = rt.collector

    # E: static.  Allocate it anywhere, then putstatic.
    e = m.new("Obj")
    m.putstatic("E", e)
    # A is referenced by frames 3 and 5; earliest is 3.  Anchor by
    # allocating in frame 3's activation: objects born in a frame depend on
    # it until something changes that.  We emulate "referenced by frame 5"
    # by passing the reference down (no CG action needed: deeper frames pop
    # first).
    def anchored(depth):
        # Allocate while the target frame is the current (youngest) one is
        # not possible here since all frames are already pushed; instead we
        # allocate and then retarget via the manager, which is exactly what
        # allocation-in-that-frame would have produced.
        h = m.new("Obj")
        block = cg.equilive.block_of(h)
        cg.equilive.move_to_frame(block, frames[depth])
        return h

    a, b, c, d = anchored(3), anchored(2), anchored(1), anchored(4)

    table = {
        "A": (a, 3),
        "B": (b, 2),
        "C": (c, 1),
        "D": (d, 4),
    }
    for name, (h, depth) in table.items():
        assert cg.equilive.block_of(h).frame is frames[depth], name
    assert cg.equilive.block_of(e).is_static
    assert_clean(rt)


def test_figure_2_2_contamination_steps(setup):
    rt, m = setup
    frames = enter_frames(m, 6)
    cg = rt.collector

    e = m.new("Obj")
    m.putstatic("E", e)
    e = m.getstatic("E")

    def anchored(depth):
        h = m.new("Obj")
        cg.equilive.move_to_frame(cg.equilive.block_of(h), frames[depth])
        return h

    a, b, c, d = anchored(3), anchored(2), anchored(1), anchored(4)

    # Step 1: B.f = A.  A's dependence changes from frame 3 to frame 2.
    m.putfield(b, "f", a)
    assert cg.equilive.block_of(a).frame is frames[2]
    assert cg.equilive.block_of(a) is cg.equilive.block_of(b)

    # Step 2: C.f = B.  A and B now depend on frame 1.
    m.putfield(c, "f", b)
    for h in (a, b, c):
        assert cg.equilive.block_of(h).frame is frames[1]

    # Step 3: D.f = C.  D is younger (frame 4): A/B/C unchanged, but the
    # merge conservatively drags D to frame 1 as well.
    m.putfield(d, "f", c)
    for h in (a, b, c, d):
        assert cg.equilive.block_of(h).frame is frames[1]

    # Step 4: E.f = D.  Everything becomes static.
    m.putfield(e, "f", d)
    for h in (a, b, c, d):
        assert cg.equilive.block_of(h).is_static

    # Step 5: E.f = null.  Contamination cannot be undone.
    m.putfield(e, "f", None)
    for h in (a, b, c, d):
        assert cg.equilive.block_of(h).is_static
    assert_clean(rt)


def test_contamination_never_moves_younger(setup):
    """Invariant 2: a block's dependent frame only moves to older frames."""
    rt, m = setup
    frames = enter_frames(m, 6)
    cg = rt.collector
    old = m.new("Obj")
    cg.equilive.move_to_frame(cg.equilive.block_of(old), frames[1])
    young = m.new("Obj")
    cg.equilive.move_to_frame(cg.equilive.block_of(young), frames[4])
    # Referencing a younger object must not demote the older block.
    m.putfield(old, "f", young)
    assert cg.equilive.block_of(old).frame is frames[1]
    assert cg.equilive.block_of(young).frame is frames[1]


def test_static_finger_of_liveness(setup):
    """The pathological pattern of chapter 2: a static variable that touches
    every heap object pins everything to frame 0."""
    rt, m = setup
    with m.frame():
        finger = m.new("Obj")
        m.putstatic("finger", finger)
        finger = m.getstatic("finger")
        victims = []
        with m.frame():
            for _ in range(10):
                v = m.new("Obj")
                m.putfield(finger, "f", v)    # touch
                m.putfield(finger, "f", None)  # point away
                victims.append(v)
                m.root(v)
        # Inner frame popped: nothing collectable, all contaminated static.
        assert rt.collector.stats.objects_popped == 0
        for v in victims:
            assert rt.collector.equilive.block_of(v).is_static
    assert_clean(rt)


def test_pop_collects_dependent_blocks(setup):
    """When frame M pops, every block dependent on M is reclaimed."""
    rt, m = setup
    cg = rt.collector
    with m.frame():
        keeper = m.new("Obj")
        m.set_local(0, keeper)
        with m.frame():
            doomed = [m.new("Obj") for _ in range(5)]
            for h in doomed:
                m.root(h)
        assert cg.stats.objects_popped == 5
        assert all(h.freed for h in doomed)
        keeper.check_live()
    assert cg.stats.objects_popped == 6
    assert_clean(rt)
