"""The open-ended server workload: determinism, tiers, schedules, params.

The server workload is the repo's stand-in for the paper's ch. 4.2 claim
(CG suits long-running servers).  What these tests pin:

* the run is deterministic — repeat runs and all five dispatch tiers
  produce bit-identical CG counters;
* arrival schedules are seeded and pattern-shaped (integer arithmetic
  only, so the schedule replays anywhere);
* the escape-rate knob moves exactly the static-census needle it claims
  to, and parameter validation catches typos with suggestions;
* the legacy ``size=`` shim and the new ``requests=`` termination are
  bit-identical, and ``max_ops`` actually caps the run.
"""

import random

import pytest

from repro import CGPolicy, Runtime, RuntimeConfig
from repro.api import run
from repro.workloads import get_workload
from repro.workloads.server import (
    BASE_GAP,
    SIZE_REQUESTS,
    arrival_gaps,
)

DISPATCH_TIERS = ("chain", "table", "closure", "compiled")


def counters_of(result):
    """The determinism-bearing slice of a RunResult (no wall clock)."""
    return {
        "ops": result.ops,
        "census": result.census,
        "objects_created": result.objects_created,
        "alloc_search_steps": result.alloc_search_steps,
        "gc_cycles": result.gc_work.cycles,
        "objects_popped": (result.cg_stats.objects_popped
                           if result.cg_stats else 0),
    }


def tier_run(dispatch, requests=120):
    wl = get_workload("server", params={"requests": requests})
    rt = Runtime(RuntimeConfig(
        heap_words=wl.heap_words(0),
        cg=CGPolicy.paper_default(),
        tracing="marksweep",
        dispatch=dispatch,
    ))
    wl.execute(rt, 0)
    rt.check_heap_accounting()
    rt.check_cg_invariants()
    return {
        "ops": rt.ops,
        "census": rt.collector.final_census(),
        "created": rt.collector.stats.objects_created,
        "popped": rt.collector.stats.objects_popped,
        "gc_cycles": rt.tracing.work.cycles,
    }


class TestDeterminism:
    def test_repeat_runs_bit_identical(self):
        a = run("server", system="cg", requests=150)
        b = run("server", system="cg", requests=150)
        assert counters_of(a) == counters_of(b)

    def test_profiled_run_counters_identical_to_unprofiled(self):
        # request_begin/request_end brackets only read the wall clock;
        # they must never perturb a single counter.
        plain = run("server", system="cg", requests=150)
        profiled = run("server", system="cg", requests=150, profile=True)
        assert counters_of(plain) == counters_of(profiled)
        assert profiled.latency["requests"] == 150

    def test_all_four_dispatch_tiers_bit_identical(self):
        runs = {tier: tier_run(tier) for tier in DISPATCH_TIERS}
        baseline = runs["chain"]
        for tier in DISPATCH_TIERS[1:]:
            assert runs[tier] == baseline, tier

    def test_seed_changes_the_run(self):
        a = run("server", system="cg", requests=150, seed=2000)
        b = run("server", system="cg", requests=150, seed=2001)
        assert a.ops != b.ops


class TestArrivalSchedules:
    def schedule(self, pattern, seed=7, n=200):
        gaps = arrival_gaps(pattern, random.Random(seed))
        return [next(gaps) for _ in range(n)]

    @pytest.mark.parametrize("pattern", ["steady", "bursty", "diurnal"])
    def test_same_seed_same_schedule(self, pattern):
        assert self.schedule(pattern) == self.schedule(pattern)

    @pytest.mark.parametrize("pattern", ["steady", "bursty", "diurnal"])
    def test_different_seed_different_schedule(self, pattern):
        assert self.schedule(pattern, seed=7) != self.schedule(
            pattern, seed=8)

    def test_patterns_are_distinct_shapes(self):
        steady = self.schedule("steady")
        bursty = self.schedule("bursty")
        diurnal = self.schedule("diurnal")
        # Steady never strays far from the base gap.
        assert all(BASE_GAP <= g < BASE_GAP + 7 for g in steady)
        # Bursty mixes near-zero gaps with long idle stretches.
        assert any(g < 3 for g in bursty)
        assert any(g >= 4 * BASE_GAP for g in bursty)
        # Diurnal swings smoothly between low and high tide.
        assert min(diurnal) < BASE_GAP
        assert max(diurnal) > BASE_GAP
        # All-integer schedules (reproducible without libm).
        for gaps in (steady, bursty, diurnal):
            assert all(isinstance(g, int) for g in gaps)

    def test_pattern_changes_the_run(self):
        a = run("server", system="cg", requests=150,
                params={"pattern": "steady"})
        b = run("server", system="cg", requests=150,
                params={"pattern": "bursty"})
        assert a.ops != b.ops


class TestEscapeRate:
    def static_census(self, escape_every, requests=200):
        result = run("server", system="cg", requests=requests,
                     params={"escape_every": escape_every})
        return result.census["static"]

    def test_zero_escape_rate_pins_only_boot_objects(self):
        # With no sessions escaping, the static census is exactly the
        # boot-time graph: 8 routes + the two static arrays.
        baseline = self.static_census(escape_every=0)
        assert baseline == self.static_census(escape_every=0)
        escaping = self.static_census(escape_every=10)
        assert escaping > baseline
        # requests=200, escape_every=10 -> exactly 20 extra sessions.
        assert escaping == baseline + 20

    def test_escape_rate_monotone(self):
        every_50 = self.static_census(escape_every=50)
        every_10 = self.static_census(escape_every=10)
        assert every_10 > every_50

    def test_bad_param_value_rejected(self):
        with pytest.raises(ValueError, match="escape_every"):
            run("server", system="cg", requests=10,
                params={"escape_every": -1})

    def test_bad_pattern_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'bursty'"):
            run("server", system="cg", requests=10,
                params={"pattern": "burstee"})

    def test_unknown_param_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'escape_every'"):
            run("server", system="cg", requests=10,
                params={"escape_evry": 5})


class TestTermination:
    def test_size_shim_bit_identical_to_requests(self):
        # The historical SPEC knob must keep working, bit-identically.
        legacy = run("server", 1, "cg")
        explicit = run("server", system="cg",
                       requests=SIZE_REQUESTS[1])
        assert counters_of(legacy) == counters_of(explicit)
        # The size label is the one place they differ by design.
        assert legacy.size == 1
        assert explicit.size == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError, match="size"):
            run("server", 7, "cg")

    def test_max_ops_caps_the_run(self):
        capped = run("server", system="cg", requests=100000, max_ops=3000)
        unlimited = run("server", system="cg", requests=600)
        assert capped.ops < unlimited.ops
        # The cap is checked between requests, so the overshoot is at
        # most one connection's worth of work.
        assert capped.ops < 3000 + 2000
