"""Tests for the SPEC-shaped workloads: shapes, determinism, soundness.

The quantitative expectations here are the paper's reported values with a
tolerance band — they pin the *shape* of each benchmark (who is static-heavy,
who is collectable, where the opt gap is) so refactoring can't silently
drift the reproduction.
"""

import pytest

from repro import CGPolicy, Runtime, RuntimeConfig
from repro.workloads import REGISTRY, SIZES, all_workloads, get_workload, scaled
from repro.workloads.base import Workload


def census_run(name, size=1, policy=None):
    rt = Runtime(
        RuntimeConfig(
            heap_words=1 << 22,
            cg=policy or CGPolicy.paper_default(),
            tracing="none",
        )
    )
    get_workload(name).execute(rt, size)
    rt.check_heap_accounting()
    rt.check_cg_invariants()
    census = rt.collector.final_census()
    total = rt.collector.stats.objects_created
    return rt, census, total


class TestRegistry:
    def test_all_eight_benchmarks_registered(self):
        # The paper's eight, plus the interpreter-driven dispatch
        # benchmarks (bc-*; not part of the paper's figure grid), plus
        # the open-ended server workload (ch. 4.2's SLO claim).
        assert set(REGISTRY) == {
            "compress", "jess", "raytrace", "db",
            "javac", "mpegaudio", "mtrt", "jack",
            "bc-arith", "bc-list", "bc-calls", "bc-loop",
            "server",
        }

    def test_all_workloads_paper_order(self):
        names = [w.name for w in all_workloads()]
        assert names == [
            "compress", "jess", "raytrace", "db",
            "javac", "mpegaudio", "mtrt", "jack",
        ]

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nope")

    def test_invalid_size_rejected(self):
        rt = Runtime(RuntimeConfig(heap_words=1 << 20))
        with pytest.raises(ValueError, match="size"):
            get_workload("compress").execute(rt, 7)

    def test_scaled_helper(self):
        assert scaled(100, 1) == 100
        assert scaled(100, 10, growth=1.0) == 1000
        assert scaled(100, 100, growth=0.5) == 1000
        assert scaled(100, 10, growth=0.0) == 100


# Paper small-run shape targets: (collectable%, static%, thread%), +-10 pts.
PAPER_SMALL_SHAPES = {
    "compress": (11, 89, 0),
    "jess": (61, 39, 0),
    "raytrace": (98, 2, 0),
    "db": (36, 64, 0),
    "javac": (24, 21, 55),
    "mpegaudio": (7, 93, 0),
    "mtrt": (98, 2, 0),
    "jack": (89, 11, 0),
}


@pytest.mark.parametrize("name", sorted(PAPER_SMALL_SHAPES))
def test_small_run_shape_matches_paper(name):
    _, census, total = census_run(name)
    want_popped, want_static, want_thread = PAPER_SMALL_SHAPES[name]
    got_popped = 100 * census["popped"] / total
    got_static = 100 * census["static"] / total
    got_thread = 100 * census["thread"] / total
    assert abs(got_popped - want_popped) <= 10, (name, got_popped)
    assert abs(got_static - want_static) <= 10, (name, got_static)
    assert abs(got_thread - want_thread) <= 10, (name, got_thread)


@pytest.mark.parametrize("name", sorted(PAPER_SMALL_SHAPES))
def test_census_conserves_population(name):
    _, census, total = census_run(name)
    assert census["popped"] + census["static"] + census["thread"] == total


class TestOptGap:
    """Fig 4.1: the static optimization's effect per benchmark."""

    def collectable(self, name, static_opt):
        policy = CGPolicy(static_opt=static_opt)
        _, census, total = census_run(name, policy=policy)
        return 100 * census["popped"] / total

    def test_jess_has_large_gap(self):
        gap = self.collectable("jess", True) - self.collectable("jess", False)
        assert gap > 15  # paper: 61 - 35 = 26

    def test_db_gap_roughly_doubles(self):
        with_opt = self.collectable("db", True)
        without = self.collectable("db", False)
        assert with_opt > 1.5 * without  # paper: 36 vs 18

    def test_raytrace_has_no_gap(self):
        gap = self.collectable("raytrace", True) - self.collectable(
            "raytrace", False
        )
        assert abs(gap) < 2  # paper: 98 vs 98

    def test_jack_gap(self):
        gap = self.collectable("jack", True) - self.collectable("jack", False)
        assert 10 < gap < 35  # paper: 89 - 69 = 20


class TestScaling:
    def test_db_flips_collectable_at_large(self):
        _, census1, total1 = census_run("db", 1)
        _, census100, total100 = census_run("db", 100)
        assert 100 * census1["popped"] / total1 < 50
        assert 100 * census100["popped"] / total100 > 90  # paper: 99%

    def test_compress_barely_grows(self):
        _, _, total1 = census_run("compress", 1)
        _, _, total100 = census_run("compress", 100)
        assert total100 < 1.5 * total1  # paper: 5123 -> 6959

    def test_javac_thread_share_shrinks_relatively(self):
        _, census1, total1 = census_run("javac", 1)
        _, census10, total10 = census_run("javac", 10)
        assert census1["thread"] / total1 > census10["thread"] / total10

    def test_jess_collectable_grows_with_size(self):
        _, census1, total1 = census_run("jess", 1)
        _, census10, total10 = census_run("jess", 10)
        assert census10["popped"] / total10 > census1["popped"] / total1


class TestCharacterDetail:
    def test_db_has_no_exact_blocks(self):
        rt, _, _ = census_run("db")
        assert rt.collector.stats.exact_objects == 0  # chained results

    def test_jack_mostly_dies_at_distance_one(self):
        rt, _, _ = census_run("jack")
        ages = rt.collector.stats.age_buckets()
        assert ages["1"] > ages["0"]  # tokens returned one frame up

    def test_raytrace_deaths_reach_past_five_frames(self):
        rt, _, _ = census_run("raytrace")
        ages = rt.collector.stats.age_buckets()
        assert ages[">5"] > 0
        total = sum(ages.values())
        assert ages[">5"] / total > 0.15

    def test_mtrt_shares_only_a_sliver(self):
        _, census, total = census_run("mtrt")
        assert 0 < census["thread"] <= 10  # paper: ~45 of 276k

    def test_javac_interns_identifiers(self):
        rt, _, _ = census_run("javac")
        assert len(rt.intern_table) > 0
        assert rt.collector.stats.objects_pinned["intern"] > 0

    def test_mpegaudio_pins_native_state(self):
        rt, _, _ = census_run("mpegaudio")
        assert rt.collector.stats.objects_pinned["native"] == 3

    def test_jess_blocks_are_mostly_small(self):
        rt, _, _ = census_run("jess")
        buckets = rt.collector.stats.block_size_buckets()
        small = buckets["1"] + buckets["2"] + buckets["3"]
        assert small > 0.9 * sum(buckets.values())


class TestDeterminism:
    @pytest.mark.parametrize("name", ["jess", "raytrace", "javac"])
    def test_same_seed_same_census(self, name):
        _, census_a, total_a = census_run(name)
        _, census_b, total_b = census_run(name)
        assert census_a == census_b
        assert total_a == total_b


class TestSoundnessUnderPressure:
    """Every workload must survive its own (tight) timing heap with the
    paranoid reachability probe enabled — no unsound collection."""

    @pytest.mark.parametrize("name", sorted(PAPER_SMALL_SHAPES))
    def test_paranoid_run(self, name):
        wl = get_workload(name)
        rt = Runtime(
            RuntimeConfig(
                heap_words=wl.heap_words(1),
                cg=CGPolicy(paranoid=True),
                tracing="marksweep",
            )
        )
        wl.execute(rt, 1)
        rt.check_cg_invariants()
