"""repro.api: the single run entrypoint, shims, validation, cache keys."""

import pytest

import repro
from repro import api
from repro.api import RunRequest, RunResult, WorkloadSpec, config_for, run
from repro.faults import FaultPlan
from repro.harness import figures as figures_mod
from repro.jvm.runtime import RuntimeConfig


class TestSingleEntrypoint:
    def test_run_is_exported_at_package_root(self):
        assert repro.run is run
        assert repro.RunRequest is RunRequest
        assert repro.RunResult is RunResult

    def test_run_request_equals_keyword_run(self):
        via_kwargs = run("db", 1, "cg")
        via_request = api.execute(RunRequest("db", 1, "cg"))
        assert via_request.ops == via_kwargs.ops
        assert via_request.cg_stats == via_kwargs.cg_stats
        assert via_request.heap_words == via_kwargs.heap_words

    def test_explicit_config_path(self):
        config = config_for("cg", 1 << 20)
        result = run("db", 1, "cg", config=config)
        baseline = run("db", 1, "cg", heap_words=1 << 20)
        assert result.ops == baseline.ops
        assert result.alloc_search_steps == baseline.alloc_search_steps

    def test_faults_threaded_through_run(self):
        plan = FaultPlan.parse("heap.alloc:oom:after=1000000000")
        armed = run("db", 1, "cg", faults=plan)
        clean = run("db", 1, "cg")
        # An armed-but-never-firing plan is invisible in the results.
        assert armed.ops == clean.ops
        assert armed.alloc_search_steps == clean.alloc_search_steps
        assert armed.cg_stats == clean.cg_stats


class TestRequestSerialization:
    def test_round_trip_preserves_every_wire_field(self):
        plan = FaultPlan.parse("heap.alloc:oom:after=1000000000")
        original = RunRequest("jess", 2, "cg-nogc", heap_words=1 << 18,
                              gc_period_ops=700, seed=17, profile=True,
                              count_opcodes=True, faults=plan)
        restored = api.request_from_dict(api.request_to_dict(original))
        for field in api._REQUEST_FIELDS:
            assert getattr(restored, field) == getattr(original, field)
        assert restored.faults.fingerprint() == plan.fingerprint()

    def test_wire_form_is_json_clean(self):
        import json

        data = api.request_to_dict(RunRequest("db", 1, "cg"))
        assert json.loads(json.dumps(data)) == data

    def test_live_tracer_and_prebuilt_config_are_rejected(self):
        from repro.obs.events import Tracer

        with pytest.raises(ValueError, match="tracer"):
            api.request_to_dict(RunRequest("db", 1, "cg", tracer=Tracer()))
        with pytest.raises(ValueError, match="config"):
            api.request_to_dict(RunRequest(
                "db", 1, "cg", config=RuntimeConfig()))

    def test_workload_objects_are_rejected(self):
        from repro.workloads import get_workload

        with pytest.raises(ValueError, match="named workloads"):
            api.request_to_dict(RunRequest(get_workload("db"), 1, "cg"))


class TestWorkloadSpec:
    def test_spec_round_trips_through_wire_form(self):
        original = RunRequest(
            WorkloadSpec("server", {"pattern": "bursty"}),
            system="cg", requests=25, profile=True,
        )
        data = api.request_to_dict(original)
        assert data["workload"] == {"name": "server",
                                    "params": {"pattern": "bursty"}}
        restored = api.request_from_dict(data)
        assert isinstance(restored.workload, WorkloadSpec)
        assert restored.workload == original.workload
        assert restored.requests == 25

    def test_spec_and_equivalent_params_run_identically(self):
        via_spec = api.execute(RunRequest(
            WorkloadSpec("server", {"pattern": "bursty"}),
            system="cg", requests=50))
        via_params = api.execute(RunRequest(
            "server", system="cg", requests=50,
            params={"pattern": "bursty"}))
        assert via_spec.ops == via_params.ops
        assert via_spec.cg_stats == via_params.cg_stats
        assert via_spec.params == via_params.params

    def test_request_params_override_spec_params(self):
        request = RunRequest(WorkloadSpec("server", {"spin": 10}),
                             requests=5, params={"spin": 20})
        assert request.resolve_workload().params["spin"] == 20

    def test_result_carries_resolved_params(self):
        result = api.execute(RunRequest("server", system="cg", requests=25))
        assert result.params["requests"] == 25
        assert result.params["pattern"] == "steady"  # schema default
        restored = api.result_from_dict(api.result_to_dict(result))
        assert restored.params == result.params
        assert restored.latency == result.latency


class TestTerminationPolicy:
    def test_requests_on_batch_workload_rejected(self):
        with pytest.raises(ValueError, match="batch workload"):
            RunRequest("db", system="cg", requests=100).resolve_workload()

    def test_max_ops_on_batch_workload_rejected(self):
        with pytest.raises(ValueError, match="batch workload"):
            RunRequest("db", system="cg", max_ops=100).resolve_workload()

    def test_size_and_requests_together_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            RunRequest("server", size=1, requests=100).resolve_workload()

    def test_params_on_live_workload_instance_rejected(self):
        from repro.workloads import get_workload

        with pytest.raises(ValueError, match="live Workload instance"):
            RunRequest(get_workload("db"), requests=5).resolve_workload()

    def test_batch_size_still_defaults_to_one(self):
        assert run("db").size == 1

    def test_open_ended_size_label_is_zero(self):
        assert run("server", system="cg", requests=25).size == 0


class TestCacheVersioning:
    def test_cache_version_bumped_for_tiered_default(self):
        from repro.harness.pool import CACHE_VERSION

        assert figures_mod._CACHE_VERSION == 4
        assert CACHE_VERSION == 4

    def test_cell_key_carries_params_axis(self):
        bare = figures_mod.cell_key("server", 0, "cg")
        with_params = figures_mod.cell_key(
            "server", 0, "cg", params={"pattern": "bursty"})
        assert bare != with_params
        # Param order must not split the cache.
        assert with_params == figures_mod.cell_key(
            "server", 0, "cg", params={"pattern": "bursty"})

    def test_request_for_round_trips_params(self):
        key = figures_mod.cell_key("server", 0, "cg",
                                   params={"requests": 25})
        request = figures_mod._request_for(key)
        assert request["params"] == {"requests": 25}


class TestRunMany:
    def test_pooled_batch_matches_in_process_runs(self):
        from repro.harness.pool import shutdown_shared_pool

        requests = [RunRequest(name, 1, "cg-nogc")
                    for name in ("db", "jess")]
        try:
            pooled = api.run_many(requests, jobs=2)
        finally:
            shutdown_shared_pool()
        direct = [api.execute(r) for r in requests]
        assert [r.ops for r in pooled] == [r.ops for r in direct]
        assert [r.cg_stats for r in pooled] == [r.cg_stats for r in direct]

    def test_single_request_runs_in_process(self):
        (result,) = api.run_many([RunRequest("db", 1, "cg-nogc")], jobs=1)
        assert result.ops == run("db", 1, "cg-nogc").ops


class TestRunnerShimGone:
    def test_runner_module_is_deleted(self):
        # PR 7 removed the PR-4 deprecation shim; repro.api is the only
        # entrypoint now.
        with pytest.raises(ModuleNotFoundError):
            import repro.harness.runner  # noqa: F401

    def test_old_names_live_on_the_facade(self):
        from repro.api import (  # noqa: F401
            BIG_HEAP_WORDS,
            SYSTEMS,
            RunResult,
            config_for,
            result_from_dict,
            result_to_dict,
        )

        assert "cg" in SYSTEMS


class TestConfigValidation:
    def test_unknown_system_suggests_close_match(self):
        with pytest.raises(ValueError, match="unknown system") as excinfo:
            config_for("cg-nogcc", 1 << 20)
        assert "did you mean 'cg-nogc'" in str(excinfo.value)

    def test_unknown_allocator_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'next-fit'"):
            RuntimeConfig(allocator="nxt-fit")

    def test_unknown_dispatch_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'chain'"):
            RuntimeConfig(dispatch="chian")

    def test_unknown_tracing_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'marksweep'"):
            RuntimeConfig(tracing="marksweeps")

    def test_hopeless_typo_gets_no_suggestion(self):
        with pytest.raises(ValueError) as excinfo:
            RuntimeConfig(allocator="zzzzzz")
        assert "did you mean" not in str(excinfo.value)

    def test_dispatch_mutated_after_construction_caught(self):
        # __post_init__ ran with a valid value; the (lazily built)
        # interpreter re-checks so the typo cannot fall through to some
        # arbitrary tier silently.
        from repro import Runtime

        config = RuntimeConfig()
        config.dispatch = "closures"
        rt = Runtime(config)
        with pytest.raises(ValueError, match="did you mean 'closure'"):
            rt.interpreter

    def test_repro_dispatch_env_junk_rejected(self, monkeypatch):
        # The env knob feeds the config default, so junk is caught by the
        # same validation with the same suggestion.
        monkeypatch.setenv("REPRO_DISPATCH", "compield")
        with pytest.raises(ValueError, match="did you mean 'compiled'"):
            RuntimeConfig()

    def test_repro_dispatch_env_tiered_typo_rejected(self, monkeypatch):
        # The newest tier is in the registry the env knob validates
        # against, so its typos get the same did-you-mean treatment.
        monkeypatch.setenv("REPRO_DISPATCH", "teired")
        with pytest.raises(ValueError, match="did you mean 'tiered'"):
            RuntimeConfig()

    def test_promotion_knobs_validated(self):
        with pytest.raises(ValueError, match="promote_after"):
            RuntimeConfig(promote_after=0)
        with pytest.raises(ValueError, match="promote_backedge_weight"):
            RuntimeConfig(promote_backedge_weight=-1)


class TestConfigFingerprint:
    def test_fingerprint_covers_allocator_dispatch_faults(self):
        base = RuntimeConfig()
        assert base.fingerprint() != RuntimeConfig(
            allocator="segregated").fingerprint()
        # Explicit tiers, not the default: REPRO_DISPATCH may redefine it.
        assert RuntimeConfig(dispatch="table").fingerprint() != RuntimeConfig(
            dispatch="chain").fingerprint()
        plan = FaultPlan.parse("heap.alloc:oom:after=7")
        assert base.fingerprint() != RuntimeConfig(
            faults=plan).fingerprint()

    def test_fingerprint_covers_promotion_knobs(self):
        # Promotion timing never changes counters, but the knobs are
        # config (run identity), not observation — they always enter the
        # fingerprint, whatever the dispatch tier.
        base = RuntimeConfig()
        assert base.fingerprint() != RuntimeConfig(
            promote_after=7).fingerprint()
        assert base.fingerprint() != RuntimeConfig(
            promote_backedge_weight=3).fingerprint()

    def test_fingerprint_excludes_observers_and_heap(self):
        base = RuntimeConfig()
        assert base.fingerprint() == RuntimeConfig(
            heap_words=1 << 10).fingerprint()
        assert base.fingerprint() == RuntimeConfig(profile=True).fingerprint()


class TestCacheKeyedByFingerprint:
    def setup_method(self):
        figures_mod.clear_cache()
        figures_mod.set_fault_plan(None)

    def teardown_method(self):
        figures_mod.clear_cache()
        figures_mod.set_fault_plan(None)
        figures_mod.set_result_cache(None)

    def test_armed_plan_never_serves_stale_clean_result(
            self, tmp_path, monkeypatch):
        figures_mod.set_result_cache(str(tmp_path))
        calls = []
        real = figures_mod.api_run

        def counting(*args, **kwargs):
            calls.append(kwargs.get("faults"))
            return real(*args, **kwargs)

        monkeypatch.setattr(figures_mod, "api_run", counting)

        figures_mod.cached_run("db", 1, "cg")
        assert len(calls) == 1
        figures_mod.clear_cache()
        figures_mod.cached_run("db", 1, "cg")
        assert len(calls) == 1  # disk hit: same fingerprint

        plan = FaultPlan.parse("heap.alloc:oom:after=1000000000")
        figures_mod.set_fault_plan(plan)
        figures_mod.cached_run("db", 1, "cg")
        assert len(calls) == 2  # the armed plan forces a fresh run
        assert calls[1] is plan
        assert len(list(tmp_path.iterdir())) == 2  # two distinct entries
