"""RunResult serialization, the persistent result cache, and prefetch."""

from collections import Counter

from repro.harness import figures as figures_mod
from repro.harness.figures import cached_run, clear_cache, prefetch
from repro.api import (
    result_from_dict,
    result_to_dict,
    run as run_workload,
)


def roundtrip(result):
    import json

    # Through real JSON, so dict keys degrade to strings as they do on disk.
    return result_from_dict(json.loads(json.dumps(result_to_dict(result))))


class TestResultSerialization:
    def test_roundtrip_preserves_everything(self):
        original = run_workload("db", 1, "cg")
        restored = roundtrip(original)
        assert restored.cg_stats == original.cg_stats
        assert restored.census == original.census
        assert restored.gc_work == original.gc_work
        assert restored.cost == original.cost
        assert restored.ops == original.ops
        assert restored.alloc_search_steps == original.alloc_search_steps
        assert restored.peak_live_words == original.peak_live_words
        assert restored.metrics == original.metrics

    def test_counter_keys_restored_as_ints(self):
        original = run_workload("db", 1, "cg")
        restored = roundtrip(original)
        for name in ("block_size_hist", "age_hist"):
            counter = getattr(restored.cg_stats, name)
            assert isinstance(counter, Counter)
            assert all(isinstance(k, int) for k in counter)

    def test_derived_metrics_survive(self):
        original = run_workload("jess", 1, "cg-nogc")
        restored = roundtrip(original)
        assert restored.collectable_pct == original.collectable_pct
        assert restored.exact_pct == original.exact_pct
        assert restored.sim_ms == original.sim_ms

    def test_nogc_run_has_null_cg_stats(self):
        original = run_workload("db", 1, "jdk-nogc")
        restored = roundtrip(original)
        assert restored.cg_stats is None
        assert restored.census == original.census


class TestDiskCache:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()
        figures_mod.set_result_cache(None)

    def test_cache_hit_skips_recompute(self, tmp_path, monkeypatch):
        figures_mod.set_result_cache(str(tmp_path))
        first = cached_run("db", 1, "cg")
        clear_cache()

        def boom(*args, **kwargs):
            raise AssertionError("disk-cached cell was recomputed")

        monkeypatch.setattr(figures_mod, "api_run", boom)
        second = cached_run("db", 1, "cg")
        assert second.cg_stats == first.cg_stats
        assert second.ops == first.ops

    def test_corrupt_entry_recomputes(self, tmp_path):
        figures_mod.set_result_cache(str(tmp_path))
        cached_run("db", 1, "cg")
        for entry in tmp_path.iterdir():
            entry.write_text("{not json")
        clear_cache()
        result = cached_run("db", 1, "cg")
        assert result.workload == "db"

    def test_disabled_cache_writes_nothing(self, tmp_path):
        figures_mod.set_result_cache(None)
        cached_run("db", 1, "cg")
        assert list(tmp_path.iterdir()) == []


class TestPrefetch:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_prefetch_matches_sequential_results(self):
        baseline = {}
        for name in figures_mod.BENCH_ORDER:
            baseline[name] = cached_run(name, 1, "cg-nogc")
        clear_cache()
        prefetch(["4.2"], jobs=2)
        for name in figures_mod.BENCH_ORDER:
            key = figures_mod.cell_key(name, 1, "cg-nogc")
            assert key in figures_mod._CACHE
            assert figures_mod._CACHE[key].cg_stats == baseline[name].cg_stats

    def test_prefetch_handles_pressured_figures(self):
        prefetch(["4.13"], jobs=2)
        table = figures_mod.ALL_FIGURES["4.13"]()
        assert len(table.rows) == len(figures_mod.BENCH_ORDER)

    def test_prefetch_ignores_unknown_ids(self):
        assert prefetch(["totally-bogus"], jobs=2) == 0
