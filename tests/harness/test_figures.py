"""Tests for the figure generators: layout and headline claims (size 1)."""

import pytest

from repro.harness import figures
from repro.harness.tables import Table, pct, render_all


def get_pct(cell: str) -> float:
    return float(cell.rstrip("%"))


@pytest.fixture(scope="module", autouse=True)
def warm_cache():
    """Share runs across the module's tests (figures cache internally)."""
    yield
    figures.clear_cache()


class TestTableRendering:
    def test_render_alignment_and_title(self):
        t = Table("My Title", ["a", "bb"])
        t.add_row(1, "x")
        out = t.render()
        assert out.splitlines()[0] == "My Title"
        assert "a" in out and "bb" in out and "x" in out

    def test_row_arity_checked(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_and_row_access(self):
        t = Table("T", ["name", "v"])
        t.add_row("x", 1)
        t.add_row("y", 2)
        assert t.column("v") == ["1", "2"]
        assert t.row_for("y") == ["y", "2"]
        with pytest.raises(KeyError):
            t.row_for("z")

    def test_pct_format(self):
        assert pct(61.4) == "61%"

    def test_render_all_joins(self):
        a = Table("A", ["x"])
        b = Table("B", ["y"])
        assert "A" in render_all([a, b]) and "B" in render_all([a, b])


class TestFig41:
    def test_shape_and_claims(self):
        t = figures.fig4_1(1)
        assert len(t.rows) == 8
        # Headline claims of the paper, as ordering relations:
        raytrace = t.row_for("raytrace")
        assert get_pct(raytrace[5]) > 90          # ~98% collectable
        jess = t.row_for("jess")
        assert get_pct(jess[5]) - get_pct(jess[4]) > 15  # big opt gap
        compress = t.row_for("compress")
        assert get_pct(compress[5]) < 20          # compute-bound

    def test_opt_never_collects_less(self):
        t = figures.fig4_1(1)
        for row in t.rows:
            assert get_pct(row[5]) >= get_pct(row[4])


class TestFig42:
    def test_population_sums_to_100(self):
        t = figures.fig4_2_3_4(1)
        for row in t.rows:
            total = sum(get_pct(c) for c in row[1:])
            assert 98 <= total <= 102  # rounding

    def test_javac_is_the_thread_outlier(self):
        t = figures.fig4_2_3_4(1)
        shares = {row[0]: get_pct(row[3]) for row in t.rows}
        assert shares["javac"] == max(shares.values())
        assert shares["javac"] > 40


class TestFig45:
    def test_small_blocks_dominate(self):
        t = figures.fig4_5(1)
        for row in t.rows:
            total_blocks = sum(int(c) for c in row[2:9])
            if total_blocks == 0:
                continue
            small = int(row[2]) + int(row[3]) + int(row[4])
            assert small >= 0.7 * total_blocks

    def test_db_exact_is_zero(self):
        t = figures.fig4_5(1)
        assert get_pct(t.row_for("db")[9]) == 0


class TestFig46:
    def test_raytrace_long_distance_deaths(self):
        t = figures.fig4_6(1)
        row = t.row_for("raytrace")
        assert int(row[7]) > 0  # the >5 column

    def test_jack_peaks_at_distance_one(self):
        t = figures.fig4_6(1)
        row = t.row_for("jack")
        assert int(row[2]) > int(row[1])


class TestTimingFigures:
    def test_fig4_7_small_run_direction(self):
        t = figures.fig4_7(1)
        speedups = {row[0]: float(row[3]) for row in t.rows}
        # Small runs: CG within ~35% of base either way; javac the best.
        for name, s in speedups.items():
            assert 0.6 <= s <= 1.4, (name, s)
        assert speedups["javac"] == max(speedups.values())
        assert speedups["javac"] > 1.0

    def test_fig4_10_large_runs_win(self):
        t = figures.fig4_10(sizes=(1, 100))
        s1 = {row[0]: float(row[1]) for row in t.rows}
        s100 = {row[0]: float(row[2]) for row in t.rows}
        for name in ("jess", "jack", "raytrace", "javac"):
            assert s100[name] > 1.25, (name, s100[name])
            assert s100[name] > s1[name] * 1.1  # the crossover
        for name in ("compress", "mpegaudio"):
            assert 0.9 <= s100[name] <= 1.1

    def test_overhead_isolation_close_to_base(self):
        """Section 4.5: CG-only overhead 'within 10%-20% of the base'."""
        t = figures.fig4_7(1)
        for row in t.rows:
            assert 0.6 <= float(row[4]) <= 1.0


class TestResetAndRecycleFigures:
    def test_fig4_11_reports_reset_activity(self):
        t = figures.fig4_11(1)
        assert len(t.rows) == 8
        cycles = [int(row[3]) for row in t.rows]
        assert all(c >= 1 for c in cycles)
        msa = {row[0]: int(row[1]) for row in t.rows}
        assert msa["raytrace"] >= 0

    def test_fig4_12_speedups_near_one(self):
        t = figures.fig4_12(1)
        for row in t.rows:
            assert 0.9 <= float(row[3]) <= 1.15  # paper: within ~4%

    def test_fig4_13_recycle_counts(self):
        t = figures.fig4_13(1)
        shares = {row[0]: float(row[2]) for row in t.rows}
        assert shares["jack"] > shares["compress"]


class TestAppendixTables:
    def test_A1_thread_attribution(self):
        t = figures.figA_1(1)
        shares = {row[0]: get_pct(row[2]) for row in t.rows}
        assert shares["javac"] > 50   # paper: 72%
        assert shares["compress"] == 0

    def test_A2_breakdown_counts(self):
        t = figures.figA_2_3_4(1)
        for row in t.rows:
            assert all(int(c) >= 0 for c in row[1:])

    def test_registry_covers_every_figure(self):
        expected = {
            "4.1", "4.2", "4.3", "4.4", "4.5", "4.6", "4.7", "4.8", "4.9",
            "4.10", "4.11", "4.12", "4.13",
            "A.1", "A.2", "A.3", "A.4", "A.5", "A.6", "A.7",
        }
        assert set(figures.ALL_FIGURES) == expected


class TestCLI:
    def test_cli_prints_figure(self, capsys):
        from repro.harness.cli import main

        assert main(["4.1"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4.1" in out

    def test_cli_list(self, capsys):
        from repro.harness.cli import main

        assert main(["--list"]) == 0
        assert "4.10" in capsys.readouterr().out

    def test_cli_rejects_unknown(self, capsys):
        from repro.harness.cli import main

        assert main(["9.9"]) == 2

    def test_cli_no_args_shows_help(self, capsys):
        from repro.harness.cli import main

        assert main([]) == 2


class TestOpcodeCountingCacheKey:
    """The counting flag keys the cache: a counting run is never served a
    histogram-less cached cell (and vice versa), in both the sequential
    and the worker-process paths."""

    def teardown_method(self):
        figures.set_opcode_counting(False)
        figures.clear_cache()

    def test_flag_changes_cell_key(self):
        figures.set_opcode_counting(False)
        plain = figures.cell_key("bc-list", 1, "cg")
        figures.set_opcode_counting(True)
        counting = figures.cell_key("bc-list", 1, "cg")
        assert plain != counting
        assert plain[:6] == counting[:6]

    def test_sequential_run_carries_histogram(self):
        figures.set_opcode_counting(True)
        result = figures.cached_run("bc-list", 1, "cg")
        hist = result.metrics["histograms"]["vm.op"]
        assert sum(hist.values()) == result.metrics["counters"]["vm.ops"]

    def test_worker_honors_key_flag(self):
        from repro.harness.pool import execute_request

        figures.set_opcode_counting(True)
        key = figures.cell_key("bc-list", 1, "cg")
        request = figures._request_for(key)
        assert request["count_opcodes"] is True
        flat, cached, _wall = execute_request(request)
        assert not cached
        hist = flat["metrics"]["histograms"]["vm.op"]
        assert sum(hist.values()) == flat["metrics"]["counters"]["vm.ops"]
