"""Harness heartbeat wiring: ambient settings, quarantine spool, CLI flags.

The figure harness threads heartbeat settings *around* the cell cache —
they are observational, never part of a cell key — and spools quarantine
records next to the run files so ``repro inspect --fleet`` sees both.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.faults import FaultReport
from repro.harness import cli, figures


@pytest.fixture(autouse=True)
def reset_heartbeat():
    yield
    figures.set_heartbeat(None)
    figures.clear_cache()


class TestAmbientSettings:
    def test_cached_run_spools_with_labels(self, tmp_path):
        figures.set_heartbeat(25, str(tmp_path))
        figures.cached_run("compress", 1, "cg")
        files = [f for f in os.listdir(tmp_path) if f.startswith("run-")]
        assert files
        with open(tmp_path / files[0]) as fh:
            last = json.loads(fh.readlines()[-1])
        assert last["labels"] == {"workload": "compress", "size": 1,
                                  "system": "cg"}
        assert last["phase"] == "final"

    def test_heartbeat_is_not_part_of_the_cell_key(self, tmp_path):
        base = figures.cached_run("compress", 1, "cg")
        figures.set_heartbeat(25, str(tmp_path))
        again = figures.cached_run("compress", 1, "cg")
        # Same object: the cache hit means no re-run (and no spool file).
        assert again is base
        assert not list(tmp_path.iterdir())

    def test_disarmed_runs_do_not_spool(self, tmp_path):
        figures.set_heartbeat(None, str(tmp_path))
        figures.cached_run("compress", 1, "cg")
        assert not list(tmp_path.iterdir())


class TestQuarantineSpool:
    def report(self):
        return FaultReport(site="harness.worker", kind="crash",
                           message="boom", context={"attempts": 3})

    def test_record_written_when_armed(self, tmp_path):
        figures.set_heartbeat(100, str(tmp_path))
        figures._spool_quarantine(("jess", 1, "cg", None, None, None),
                                  self.report())
        files = list(tmp_path.glob("quarantine-*.json"))
        assert len(files) == 1
        record = json.loads(files[0].read_text())
        assert record["cell"] == "jess:1:cg"
        assert (record["site"], record["kind"]) == ("harness.worker", "crash")

    def test_noop_when_disarmed(self, tmp_path):
        figures.set_heartbeat(None, str(tmp_path))
        figures._spool_quarantine(("jess", 1, "cg", None, None, None),
                                  self.report())
        assert not list(tmp_path.iterdir())


class TestCliFlags:
    def test_heartbeat_flags_arm_the_module(self, tmp_path, capsys):
        spool = tmp_path / "spool"
        assert cli.main(["4.1", "--heartbeat-every", "50",
                         "--spool", str(spool)]) == 0
        capsys.readouterr()
        assert any(spool.glob("run-*.jsonl"))
        figures.clear_cache()

    def test_bad_heartbeat_every_rejected(self, capsys):
        assert cli.main(["4.1", "--heartbeat-every", "0"]) == 2
        assert "heartbeat-every" in capsys.readouterr().err

    def test_plain_invocation_disarms(self, tmp_path, capsys):
        figures.set_heartbeat(50, str(tmp_path))
        assert cli.main(["--list"]) == 0
        assert figures._HEARTBEAT_EVERY is None
