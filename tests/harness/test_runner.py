"""Tests for the run harness: systems, results, and cost model."""

import pytest

from repro.core.policy import CGPolicy
from repro.harness.costmodel import cost_of
from repro.api import (
    BIG_HEAP_WORDS,
    SYSTEMS,
    config_for,
    run as run_workload,
)
from repro.jvm.runtime import Runtime, RuntimeConfig
from repro.jvm.mutator import Mutator


class TestConfigFor:
    def test_every_named_system_builds(self):
        for system in SYSTEMS:
            config = config_for(system, 1 << 16)
            assert config.heap_words > 0

    def test_unknown_system_rejected(self):
        with pytest.raises(ValueError, match="unknown system"):
            config_for("zgc", 1 << 16)

    def test_cg_system_has_opt(self):
        assert config_for("cg", 1 << 16).cg.static_opt

    def test_noopt_system(self):
        config = config_for("cg-noopt", 1 << 16)
        assert config.cg.enabled and not config.cg.static_opt

    def test_jdk_system_disables_cg(self):
        assert not config_for("jdk", 1 << 16).cg.enabled

    def test_nogc_systems_use_big_heap(self):
        for system in ("cg-nogc", "jdk-nogc", "cg-noopt-nogc"):
            config = config_for(system, 1 << 10)
            assert config.heap_words == BIG_HEAP_WORDS
            assert config.tracing == "none"

    def test_reset_system_has_period(self):
        config = config_for("cg-reset", 1 << 16)
        assert config.cg.resetting
        assert config.gc_period_ops is not None

    def test_recycle_system(self):
        assert config_for("cg-recycle", 1 << 16).cg.recycling

    def test_related_work_systems(self):
        assert config_for("gen", 1 << 16).tracing == "generational"
        assert config_for("train", 1 << 16).tracing == "train"


class TestRunWorkload:
    def test_result_fields_populated(self):
        r = run_workload("compress", 1, "cg")
        assert r.workload == "compress"
        assert r.size == 1
        assert r.objects_created > 0
        assert r.ops > 0
        assert r.sim_ms > 0
        assert r.wall_seconds > 0
        assert 0 <= r.collectable_pct <= 100
        assert r.census["popped"] + r.census["static"] + r.census["thread"] \
            + r.census["collected_by_msa"] >= r.objects_created

    def test_jdk_run_has_no_cg_stats(self):
        r = run_workload("compress", 1, "jdk")
        assert r.cg_stats is None
        assert r.cost.cg_maintenance == 0.0

    def test_heap_override(self):
        r = run_workload("compress", 1, "cg", heap_words=1 << 20)
        assert r.heap_words == 1 << 20

    def test_workload_instance_accepted(self):
        from repro.workloads import get_workload

        r = run_workload(get_workload("db"), 1, "cg")
        assert r.workload == "db"

    def test_deterministic_sim_cost(self):
        a = run_workload("jess", 1, "cg")
        b = run_workload("jess", 1, "cg")
        assert a.sim_ms == b.sim_ms
        assert a.census == b.census


class TestCostModel:
    def test_components_nonnegative_and_additive(self):
        r = run_workload("jack", 1, "cg")
        c = r.cost
        for part in (c.mutator, c.allocator, c.tracing_gc, c.cg_maintenance):
            assert part >= 0
        assert c.total_units == pytest.approx(
            c.mutator + c.allocator + c.tracing_gc + c.cg_maintenance
        )

    def test_cg_charged_only_when_enabled(self):
        cg = run_workload("jack", 1, "cg")
        jdk = run_workload("jack", 1, "jdk")
        assert cg.cost.cg_maintenance > 0
        assert jdk.cost.cg_maintenance == 0

    def test_mutator_cost_matches_ops(self):
        r = run_workload("compress", 1, "cg")
        assert r.cost.mutator == pytest.approx(r.ops)

    def test_squeezed_handle_costs_less(self):
        """Section 3.5: the 8-word handle halves per-allocation CG cost."""
        from repro.harness.costmodel import cost_of

        def run(words):
            rt = Runtime(
                RuntimeConfig(
                    heap_words=1 << 16,
                    cg=CGPolicy(handle_words=words),
                    tracing="none",
                )
            )
            rt.program.define_class("N", fields=["x"])
            m = Mutator(rt)
            with m.frame():
                for _ in range(100):
                    m.root(m.new("N"))
            return cost_of(rt).cg_maintenance

        assert run(8) < run(16)


class TestSystemBehaviours:
    def test_jdk_collects_more_cycles_than_cg_at_scale(self):
        """The headline claim: CG decreases traditional-GC frequency."""
        cg = run_workload("jack", 10, "cg")
        jdk = run_workload("jack", 10, "jdk")
        assert jdk.gc_work.cycles > cg.gc_work.cycles

    def test_nogc_systems_never_collect(self):
        r = run_workload("jess", 1, "cg-nogc")
        assert r.gc_work.cycles == 0

    def test_reset_system_resets(self):
        r = run_workload("jess", 1, "cg-reset")
        assert r.cg_stats.reset_passes >= 1

    def test_recycle_system_recycles_under_pressure(self):
        from repro.harness.figures import pressured_heap

        r = run_workload(
            "jack", 1, "cg-recycle", heap_words=pressured_heap("jack", 1)
        )
        assert r.cg_stats.objects_recycled > 0

    def test_generational_runs_all_workloads_small(self):
        r = run_workload("raytrace", 1, "gen")
        assert r.gc_work.minor_cycles + r.gc_work.cycles >= 0
        assert r.objects_created > 0

    def test_train_runs_small(self):
        r = run_workload("db", 1, "train")
        assert r.objects_created > 0
