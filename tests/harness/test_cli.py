"""The CLI's observability flags: --trace, trace-summary, --metrics."""

import json

import pytest

from repro.harness import cli, figures
from repro.obs import read_trace


@pytest.fixture(autouse=True)
def fresh_cache():
    figures.clear_cache()
    yield
    figures.clear_cache()


def test_list_names_figures(capsys):
    assert cli.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "4.1" in out


def test_unknown_figure_rejected(capsys):
    assert cli.main(["99.9"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_trace_flag_records_and_exports(tmp_path, capsys):
    path = str(tmp_path / "run.jsonl")
    assert cli.main(["--trace", path, "4.1"]) == 0
    captured = capsys.readouterr()
    assert "[trace]" in captured.err
    meta, events = read_trace(path)
    assert meta["emitted"] > 0
    kinds = {event.kind for event in events}
    assert "new" in kinds
    assert "frame_pop" in kinds


def test_trace_summary_recounts_from_file(tmp_path, capsys):
    path = str(tmp_path / "run.jsonl")
    cli.main(["--trace", path, "4.1"])
    capsys.readouterr()
    assert cli.main(["trace-summary", path]) == 0
    out = capsys.readouterr().out
    assert "objects popped" in out or "frame_pop" in out


def test_metrics_flag_writes_run_records(tmp_path, capsys):
    path = tmp_path / "metrics.json"
    assert cli.main(["--metrics", str(path), "4.1"]) == 0
    records = json.loads(path.read_text())
    assert records, "at least one run should have executed"
    first = records[0]
    assert {"workload", "size", "system", "metrics"} <= set(first)
    assert first["metrics"]["counters"]["vm.ops"] > 0
