"""Benchmark harness: report shape, baseline comparison, CLI exit codes."""

import json

import pytest

from repro.harness import bench


def tiny_report(**overrides):
    entry = {
        "workload": "jess", "size": 1, "system": "cg",
        "wall_seconds": 0.05, "ops": 1000, "ops_per_sec": 20000.0,
        "alloc_search_steps": 42,
    }
    entry.update(overrides)
    return {"version": bench.BENCH_VERSION, "size": 1, "repeats": 1,
            "entries": [entry]}


class TestRunBench:
    def test_report_shape_and_determinism_counters(self):
        report = bench.run_bench(["db"], ["cg", "jdk"], size=1, repeats=1)
        assert {e["system"] for e in report["entries"]} == {"cg", "jdk"}
        again = bench.run_bench(["db"], ["cg", "jdk"], size=1, repeats=1)
        for a, b in zip(report["entries"], again["entries"]):
            assert a["ops"] == b["ops"]
            assert a["alloc_search_steps"] == b["alloc_search_steps"]
            assert a["wall_seconds"] > 0

    def test_write_and_load_roundtrip(self, tmp_path):
        report = tiny_report()
        path = str(tmp_path / "bench.json")
        bench.write_bench(path, report)
        assert bench.load_bench(path) == report

    def test_compile_ms_split_cold_vs_steady(self):
        # Every grid cell reports both warmup columns; for a compiling
        # system the cold number (cleared codegen cache) dominates the
        # steady-state one, which only pays binding rebuilds.
        report = bench.run_bench(["bc-loop"], ["cg-compiled", "cg-table"],
                                 size=1, repeats=1)
        by_system = {e["system"]: e for e in report["entries"]}
        compiled = by_system["cg-compiled"]
        assert compiled["compile_ms_first_iter"] > 0.0
        assert compiled["compile_ms"] >= 0.0
        assert compiled["compile_ms_first_iter"] >= compiled["compile_ms"]
        # The table tier never runs the codegen, cold or warm.
        table = by_system["cg-table"]
        assert table["compile_ms_first_iter"] >= 0.0


class TestWarmupCurve:
    def test_report_shape(self):
        report = bench.run_warmup_curve(["bc-loop"], ["cg", "cg-table"],
                                        size=1, iters=3)
        assert report["warmup_curve"] is True
        assert report["version"] == bench.BENCH_VERSION
        assert len(report["entries"]) == 2
        for entry in report["entries"]:
            assert entry["iters"] == 3
            assert len(entry["walls"]) == 3
            assert entry["first_iter_wall_seconds"] == entry["walls"][0]
            assert entry["steady_wall_seconds"] == min(entry["walls"])
            assert entry["warmup_ratio"] >= 1.0
            assert 1 <= entry["time_to_peak_iters"] <= 3

    def test_lines_render(self):
        report = bench.run_warmup_curve(["bc-loop"], ["cg"], size=1,
                                        iters=2)
        lines = bench.warmup_lines(report)
        assert any("bc-loop" in line for line in lines)
        assert any("warmup curve" in line for line in lines)


class TestCompare:
    def test_identical_reports_pass(self):
        ok, lines = bench.compare(tiny_report(), tiny_report())
        assert ok
        assert any("geomean" in line for line in lines)

    def test_counter_drift_fails(self):
        ok, lines = bench.compare(tiny_report(ops=1001), tiny_report())
        assert not ok
        assert any("determinism break" in line for line in lines)

    def test_wall_regression_beyond_tolerance_fails(self):
        ok, _ = bench.compare(tiny_report(wall_seconds=0.07), tiny_report(),
                              tolerance=0.25)
        assert not ok

    def test_wall_slowdown_within_tolerance_passes(self):
        ok, _ = bench.compare(tiny_report(wall_seconds=0.06), tiny_report(),
                              tolerance=0.25)
        assert ok

    def test_missing_cells_note_but_pass(self):
        current = tiny_report()
        baseline = tiny_report()
        baseline["entries"].append(
            dict(baseline["entries"][0], system="jdk"))
        ok, lines = bench.compare(current, baseline)
        assert ok
        assert any("not in current" in line for line in lines)


class TestMain:
    def test_out_and_check_against_self(self, tmp_path):
        out = str(tmp_path / "report.json")
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1", "--out", out]) == 0
        # Counters are deterministic, so self-check always passes unless
        # the machine got >25% (geomean) slower between the two runs.
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "3", "--check", out,
                           "--tolerance", "10.0"]) == 0

    def test_check_regression_exit_code(self, tmp_path):
        out = str(tmp_path / "report.json")
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1", "--out", out]) == 0
        baseline = bench.load_bench(out)
        baseline["entries"][0]["ops"] += 1
        with open(out, "w") as fh:
            json.dump(baseline, fh)
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1", "--check", out]) == 1

    def test_missing_baseline_exit_code(self, tmp_path):
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1",
                           "--check", str(tmp_path / "nope.json")]) == 2


def two_cell_report(wall_cg=0.05, wall_table=0.10, **meta):
    def cell(system, wall):
        return {
            "workload": "bc-arith", "size": 1, "system": system,
            "wall_seconds": wall, "ops": 1000,
            "ops_per_sec": 1000 / wall, "alloc_search_steps": 0,
        }
    report = {"version": bench.BENCH_VERSION, "size": 1, "repeats": 1,
              "entries": [cell("cg", wall_cg), cell("cg-table", wall_table)]}
    report.update(meta)
    return report


class TestTrend:
    def test_identical_generations_pass(self):
        ok, lines = bench.trend(tiny_report(), tiny_report())
        assert ok
        assert any("geomean" in line for line in lines)

    def test_counter_drift_noted_not_failed(self):
        # Between baseline generations the default config legitimately
        # changes (e.g. a new dispatch tier), so ops drift is a note.
        ok, lines = bench.trend(tiny_report(ops=1234), tiny_report())
        assert ok
        assert any("ops changed" in line for line in lines)

    def test_geomean_wall_regression_fails(self):
        ok, lines = bench.trend(tiny_report(wall_seconds=0.08), tiny_report(),
                                tolerance=0.25)
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_new_and_removed_cells_noted(self):
        current = tiny_report()
        current["entries"].append(dict(current["entries"][0],
                                       workload="bc-arith"))
        baseline = tiny_report()
        baseline["entries"].append(dict(baseline["entries"][0],
                                        system="jdk"))
        ok, lines = bench.trend(current, baseline)
        assert ok
        assert any("new cell bc-arith/cg" in line for line in lines)
        assert any("removed cell jess/jdk" in line for line in lines)


class TestDispatchSpeedup:
    def test_geomean_over_bc_workloads(self):
        geomean, lines = bench.dispatch_speedup(two_cell_report())
        assert geomean == pytest.approx(2.0)
        assert any("[dispatch-bound]" in line for line in lines)
        assert any("geomean" in line for line in lines)

    def test_mutator_workloads_excluded_from_geomean(self):
        report = two_cell_report()
        # A jess pair with a wild ratio must not move the bc-* geomean.
        for system, wall in (("cg", 0.001), ("cg-table", 1.0)):
            report["entries"].append({
                "workload": "jess", "size": 1, "system": system,
                "wall_seconds": wall, "ops": 500,
                "ops_per_sec": 500 / wall, "alloc_search_steps": 1,
            })
        geomean, lines = bench.dispatch_speedup(report)
        assert geomean == pytest.approx(2.0)
        assert any(line.startswith("jess:") for line in lines)

    def test_no_table_twin_means_no_geomean(self):
        geomean, lines = bench.dispatch_speedup(tiny_report())
        assert geomean is None
        assert lines == []


def ladder_report(ratios):
    """A report with one cg/cg-table pair per ``{workload: ratio}``."""
    entries = []
    for workload, ratio in ratios.items():
        for system, wall in (("cg", 0.1 / ratio), ("cg-table", 0.1)):
            entries.append({
                "workload": workload, "size": 1, "system": system,
                "wall_seconds": wall, "ops": 1000,
                "ops_per_sec": 1000 / wall, "alloc_search_steps": 0,
            })
    return {"version": bench.BENCH_VERSION, "size": 1, "repeats": 1,
            "entries": entries}


class TestDispatchFloor:
    def test_baseline_geomean_below_floor_fails(self):
        low = ladder_report({"bc-arith": 1.5, "bc-list": 1.2})
        ok, lines = bench.check_dispatch_floor(low, low)
        assert not ok
        assert any("baseline" in line and "FAIL" in line for line in lines)

    def test_live_subset_gated_per_workload_not_by_geomean(self):
        # The baseline's geomean clears the floor on the strength of
        # bc-arith; a live --small-style grid carrying only bc-list must
        # be judged against bc-list's own recorded ratio, not the
        # cross-workload geomean it cannot reach.
        base = ladder_report({"bc-arith": 5.0, "bc-list": 1.6})
        live = ladder_report({"bc-list": 1.5})
        ok, lines = bench.check_dispatch_floor(live, base)
        assert ok, lines
        assert any("live bc-list" in line and "ok" in line for line in lines)

    def test_live_regression_past_noise_band_fails(self):
        base = ladder_report({"bc-arith": 5.0, "bc-list": 1.6})
        live = ladder_report({"bc-list": 1.0})  # < 1.6 * 0.75
        ok, lines = bench.check_dispatch_floor(live, base)
        assert not ok
        assert any("live bc-list" in line and "FAIL" in line for line in lines)

    def test_no_ladder_cells_pass_vacuously(self):
        ok, lines = bench.check_dispatch_floor(tiny_report(), tiny_report())
        assert ok
        assert any("not applicable" in line for line in lines)


class TestMainCompare:
    def test_compare_against_older_generation(self, tmp_path, capsys):
        out = str(tmp_path / "old.json")
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1", "--out", out]) == 0
        # Same grid re-run as the "new" generation: trend passes even if
        # counters drifted, as long as the wall geomean stays in band.
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1", "--compare", out,
                           "--tolerance", "10.0"]) == 0
        assert "trend" in capsys.readouterr().out

    def test_compare_missing_baseline_exit_code(self, tmp_path):
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1",
                           "--compare", str(tmp_path / "nope.json")]) == 2
