"""Benchmark harness: report shape, baseline comparison, CLI exit codes."""

import json

from repro.harness import bench


def tiny_report(**overrides):
    entry = {
        "workload": "jess", "size": 1, "system": "cg",
        "wall_seconds": 0.05, "ops": 1000, "ops_per_sec": 20000.0,
        "alloc_search_steps": 42,
    }
    entry.update(overrides)
    return {"version": bench.BENCH_VERSION, "size": 1, "repeats": 1,
            "entries": [entry]}


class TestRunBench:
    def test_report_shape_and_determinism_counters(self):
        report = bench.run_bench(["db"], ["cg", "jdk"], size=1, repeats=1)
        assert {e["system"] for e in report["entries"]} == {"cg", "jdk"}
        again = bench.run_bench(["db"], ["cg", "jdk"], size=1, repeats=1)
        for a, b in zip(report["entries"], again["entries"]):
            assert a["ops"] == b["ops"]
            assert a["alloc_search_steps"] == b["alloc_search_steps"]
            assert a["wall_seconds"] > 0

    def test_write_and_load_roundtrip(self, tmp_path):
        report = tiny_report()
        path = str(tmp_path / "bench.json")
        bench.write_bench(path, report)
        assert bench.load_bench(path) == report


class TestCompare:
    def test_identical_reports_pass(self):
        ok, lines = bench.compare(tiny_report(), tiny_report())
        assert ok
        assert any("geomean" in line for line in lines)

    def test_counter_drift_fails(self):
        ok, lines = bench.compare(tiny_report(ops=1001), tiny_report())
        assert not ok
        assert any("determinism break" in line for line in lines)

    def test_wall_regression_beyond_tolerance_fails(self):
        ok, _ = bench.compare(tiny_report(wall_seconds=0.07), tiny_report(),
                              tolerance=0.25)
        assert not ok

    def test_wall_slowdown_within_tolerance_passes(self):
        ok, _ = bench.compare(tiny_report(wall_seconds=0.06), tiny_report(),
                              tolerance=0.25)
        assert ok

    def test_missing_cells_note_but_pass(self):
        current = tiny_report()
        baseline = tiny_report()
        baseline["entries"].append(
            dict(baseline["entries"][0], system="jdk"))
        ok, lines = bench.compare(current, baseline)
        assert ok
        assert any("not in current" in line for line in lines)


class TestMain:
    def test_out_and_check_against_self(self, tmp_path):
        out = str(tmp_path / "report.json")
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1", "--out", out]) == 0
        # Counters are deterministic, so self-check always passes unless
        # the machine got >25% (geomean) slower between the two runs.
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "3", "--check", out,
                           "--tolerance", "10.0"]) == 0

    def test_check_regression_exit_code(self, tmp_path):
        out = str(tmp_path / "report.json")
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1", "--out", out]) == 0
        baseline = bench.load_bench(out)
        baseline["entries"][0]["ops"] += 1
        with open(out, "w") as fh:
            json.dump(baseline, fh)
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1", "--check", out]) == 1

    def test_missing_baseline_exit_code(self, tmp_path):
        assert bench.main(["--workloads", "db", "--systems", "cg",
                           "--repeats", "1",
                           "--check", str(tmp_path / "nope.json")]) == 2
