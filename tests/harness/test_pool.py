"""The persistent worker pool: warm workers, stealing, crash tolerance."""

import pytest

from repro.faults import FaultPlan
from repro.harness.pool import (
    PoolJob,
    ResultCache,
    WorkerPool,
    execute_request,
    request_cell_id,
)


def req(workload="db", size=1, system="cg-nogc", **extra):
    request = {"workload": workload, "size": size, "system": system}
    request.update(extra)
    return request


def strip_wall(job):
    """The comparable payload of a done job (wall clock is never compared)."""
    assert job.status == "done", job.report
    return {k: v for k, v in job.result_dict.items() if k != "wall_seconds"}


def as_stored(result_dict):
    """A result dict as the disk cache returns it (JSON degrades int keys)."""
    import json

    data = json.loads(json.dumps(result_dict))
    data.pop("wall_seconds", None)
    return data


class TestWarmWorkers:
    def test_warmup_returns_one_pid_per_worker(self):
        with WorkerPool(3) as pool:
            warm = pool.warmup(timeout=30)
            assert sorted(warm) == [0, 1, 2]
            pids = set(warm.values())
            assert len(pids) == 3
            assert pids == set(pool.worker_pids())

    def test_second_submission_reuses_a_live_warm_worker(self):
        # The whole point of the pool: no respawn between submissions.
        with WorkerPool(2) as pool:
            warm = set(pool.warmup(timeout=30).values())
            first = pool.submit(req("db")).wait(60)
            second = pool.submit(req("jess")).wait(60)
            assert first.status == "done" and second.status == "done"
            assert first.pid in warm
            assert second.pid in warm
            assert pool.stats()["replaced"] == 0


class TestScheduling:
    def test_jobs1_and_jobs4_grids_are_bit_identical(self):
        grid = [req(name) for name in ("db", "jess", "jack", "compress")]
        with WorkerPool(1) as serial:
            one = [strip_wall(j) for j in serial.run(grid)]
        with WorkerPool(4) as wide:
            four = [strip_wall(j) for j in wide.run(grid)]
        assert one == four

    def test_idle_workers_steal_from_a_skewed_shard(self):
        # Pin every job onto worker 0's local deque: worker 1 can only
        # make progress by stealing from its peer's tail.
        with WorkerPool(2) as pool:
            pool.warmup(timeout=30)
            jobs = [pool.submit(req("db", system=system), shard=0)
                    for system in ("cg", "cg-nogc", "jdk", "cg-reset",
                                   "cg-segfit", "jdk-nogc")]
            assert pool.wait(jobs, timeout=120)
            assert all(j.status == "done" for j in jobs)
            stats = pool.stats()
            assert stats["steals"] >= 1
            assert len({j.pid for j in jobs}) == 2

    def test_same_key_single_flights_in_process(self):
        with WorkerPool(2) as pool:
            key = ("db", 1, "cg-nogc", "k")
            a = pool.submit(req("db"), key=key)
            b = pool.submit(req("db"), key=key)
            assert a is b
            a.wait(60)
            assert a.status == "done"
            # Terminal jobs leave the in-flight table: a re-submit is new.
            c = pool.submit(req("db"), key=key)
            assert c is not a
            c.wait(60)
            assert c.status == "done"


class TestCrashTolerance:
    def test_poisoned_cell_quarantined_worker_replaced_queue_drains(self):
        plan = FaultPlan.parse("harness.worker:crash:cell=jess:count=inf")
        with WorkerPool(2) as pool:
            jobs = pool.submit_batch(
                [req(name) for name in ("db", "jess", "jack")],
                plan=plan, retries=1,
            )
            assert pool.wait(jobs, timeout=120)
            by_cell = {request_cell_id(j.request): j for j in jobs}
            poisoned = by_cell["jess:1:cg-nogc"]
            assert poisoned.status == "failed"
            assert poisoned.report.kind == "crash"
            assert poisoned.report.context["attempts"] == 2  # 1 try + 1 retry
            # Every other cell drained despite two worker deaths.
            assert by_cell["db:1:cg-nogc"].status == "done"
            assert by_cell["jack:1:cg-nogc"].status == "done"
            stats = pool.stats()
            assert stats["replaced"] >= 2
            assert stats["queued"] == 0
            # The pool is still serviceable after the replacements.
            assert pool.submit(req("compress")).wait(60).status == "done"

    def test_transient_crash_recovers_on_retry(self):
        plan = FaultPlan.parse("harness.worker:crash:cell=db:count=1")
        with WorkerPool(2) as pool:
            job = pool.submit(req("db"), plan=plan, retries=2).wait(120)
            assert job.status == "done"
            assert job.attempts == 1  # one charged failure, then success
            assert pool.stats()["replaced"] >= 1

    def test_hung_worker_is_killed_and_the_cell_times_out(self):
        plan = FaultPlan.parse(
            "harness.worker:hang:cell=db:seconds=30:count=inf"
        )
        with WorkerPool(1) as pool:
            job = pool.submit(req("db"), plan=plan, timeout=0.5,
                              retries=0).wait(60)
            assert job.status == "failed"
            assert job.report.kind == "hang"
            assert pool.stats()["replaced"] >= 1

    def test_shutdown_fails_stranded_jobs_instead_of_hanging_waiters(self):
        pool = WorkerPool(1)
        plan = FaultPlan.parse(
            "harness.worker:hang:cell=db:seconds=30:count=inf"
        )
        stuck = pool.submit(req("db"), plan=plan, retries=0)
        queued = pool.submit(req("jess"), plan=plan, retries=0)
        pool.shutdown()
        assert stuck.wait(5).status == "failed"
        assert queued.wait(5).status == "failed"
        assert "shut down" in queued.report.message


class TestSharedResultCache:
    def test_execute_request_single_flights_through_the_disk_cache(self, tmp_path):
        key = ("db", 1, "cg-nogc", "fingerprint", False)
        first, cached_first, wall = execute_request(
            req("db"), key=key, cache_dir=str(tmp_path)
        )
        assert not cached_first and wall > 0
        second, cached_second, wall2 = execute_request(
            req("db"), key=key, cache_dir=str(tmp_path)
        )
        assert cached_second and wall2 == 0.0
        assert as_stored(second) == as_stored(first)
        cache = ResultCache(tmp_path)
        assert as_stored(cache.load(key)) == as_stored(first)
        assert cache.path_for(key).exists()

    def test_two_pools_share_one_cache_directory(self, tmp_path):
        key = ("jess", 1, "cg-nogc", "fingerprint", False)
        with WorkerPool(1, cache_dir=str(tmp_path)) as first:
            a = first.submit(req("jess"), key=key).wait(60)
            assert a.status == "done" and not a.cached
        with WorkerPool(1, cache_dir=str(tmp_path)) as second:
            b = second.submit(req("jess"), key=key).wait(60)
            assert b.status == "done" and b.cached
            assert as_stored(b.result_dict) == as_stored(a.result_dict)


class TestJobPlumbing:
    def test_done_callback_fires_even_when_added_late(self):
        with WorkerPool(1) as pool:
            job = pool.submit(req("db")).wait(60)
            seen = []
            job.add_done_callback(seen.append)
            assert seen == [job]

    def test_pool_status_spooled_for_inspect(self, tmp_path):
        with WorkerPool(2, spool=str(tmp_path)) as pool:
            pool.submit(req("db")).wait(60)
        import json

        files = list(tmp_path.glob("pool-*.json"))
        assert len(files) == 1
        status = json.loads(files[0].read_text())
        assert status["kind"] == "pool"
        assert status["phase"] == "final"
        assert status["completed"] >= 1
        assert len(status["workers"]) == 2

    def test_pool_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
