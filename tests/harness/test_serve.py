"""The socket serve mode: RunRequest/RunResult round-trips over Unix sockets."""

import json

import pytest

from repro.api import result_from_dict, run
from repro.faults import FaultPlan
from repro.harness.pool import WorkerPool
from repro.harness.serve import ServeServer, call, request_key, submit_requests


@pytest.fixture
def server(tmp_path):
    """A live server on a fresh socket; torn down even if the test dies."""
    pool = WorkerPool(2, cache_dir=str(tmp_path / "cache"),
                      spool=str(tmp_path / "spool"))
    srv = ServeServer(str(tmp_path / "serve.sock"), pool)
    srv.serve_in_background()
    try:
        yield srv
    finally:
        srv.shutdown()


def req(workload="db", size=1, system="cg-nogc", **extra):
    request = {"workload": workload, "size": size, "system": system}
    request.update(extra)
    return request


class TestRoundTrip:
    def test_run_request_round_trips_to_a_run_result(self, server):
        responses = submit_requests(server.socket_path, [req("db")])
        (response,) = responses
        assert response["ok"], response
        served = result_from_dict(response["result"])
        direct = run("db", 1, "cg-nogc")
        assert served.ops == direct.ops
        assert served.cg_stats == direct.cg_stats
        assert served.alloc_search_steps == direct.alloc_search_steps
        assert response["pid"] in server.pool.worker_pids()

    def test_grid_streams_back_in_submission_order(self, server):
        grid = [req(name) for name in ("db", "jess", "jack")]
        responses = submit_requests(server.socket_path, grid)
        assert [r["ok"] for r in responses] == [True, True, True]
        ops = [result_from_dict(r["result"]).ops for r in responses]
        direct = [run(name, 1, "cg-nogc").ops
                  for name in ("db", "jess", "jack")]
        assert ops == direct

    def test_second_request_hits_the_shared_cache(self, server):
        first = submit_requests(server.socket_path, [req("db")])[0]
        second = submit_requests(server.socket_path, [req("db")])[0]
        assert not first["cached"]
        assert second["cached"]
        assert second["result"] == json.loads(json.dumps(first["result"]))

    def test_no_cache_opts_out(self, server):
        submit_requests(server.socket_path, [req("db")])
        again = submit_requests(server.socket_path, [req("db")],
                                no_cache=True)[0]
        assert again["ok"] and not again["cached"]


class TestControlOps:
    def test_ping(self, server):
        response = call(server.socket_path, {"op": "ping"})
        assert response["ok"] and response["op"] == "ping"

    def test_stats_reports_the_pool(self, server):
        submit_requests(server.socket_path, [req("db")])
        response = call(server.socket_path, {"op": "stats"})
        assert response["ok"]
        stats = response["stats"]
        assert stats["jobs"] == 2
        assert stats["completed"] >= 1
        assert len(stats["workers"]) == 2

    def test_bad_request_gets_a_structured_error_not_a_hangup(self, server):
        response = call(server.socket_path,
                        {"op": "run", "id": "x", "request": {}})
        assert response["ok"] is False
        assert response["error"]["kind"] == "bad-request"
        # The server is still healthy afterwards.
        assert call(server.socket_path, {"op": "ping"})["ok"]

    def test_shutdown_op_acks_then_tears_down(self, tmp_path):
        pool = WorkerPool(1)
        srv = ServeServer(str(tmp_path / "s.sock"), pool)
        srv.serve_in_background()
        response = call(srv.socket_path, {"op": "shutdown"})
        assert response["ok"] and response["op"] == "shutdown"
        srv.pool._dispatcher.join(timeout=10)
        assert srv._stop.is_set()


class TestCrashMidStream:
    def test_transient_crash_mid_stream_still_completes_the_grid(self, tmp_path):
        # Attempt 0 of the jess cell os._exits the worker; the pool
        # replaces it and the retry succeeds, so every response is ok.
        pool = WorkerPool(2, retries=2)
        srv = ServeServer(
            str(tmp_path / "serve.sock"), pool,
            fault_plan=FaultPlan.parse(
                "harness.worker:crash:cell=jess:count=1"),
        )
        srv.serve_in_background()
        try:
            grid = [req(name) for name in ("db", "jess", "jack")]
            responses = submit_requests(srv.socket_path, grid, timeout=180)
            assert [r["ok"] for r in responses] == [True, True, True]
            assert pool.stats()["replaced"] >= 1
        finally:
            srv.shutdown()

    def test_poisoned_cell_fails_structured_while_others_complete(self, tmp_path):
        pool = WorkerPool(2, retries=1)
        srv = ServeServer(
            str(tmp_path / "serve.sock"), pool,
            fault_plan=FaultPlan.parse(
                "harness.worker:crash:cell=jess:count=inf"),
        )
        srv.serve_in_background()
        try:
            grid = [req(name) for name in ("db", "jess", "jack")]
            responses = submit_requests(srv.socket_path, grid, timeout=180)
            assert responses[0]["ok"] and responses[2]["ok"]
            poisoned = responses[1]
            assert poisoned["ok"] is False
            assert poisoned["error"]["kind"] == "crash"
            assert poisoned["error"]["context"]["attempts"] == 2
        finally:
            srv.shutdown()


class TestKeying:
    def test_request_key_matches_the_figure_cache_key(self):
        from repro.harness.figures import cell_key

        request = req("db")
        assert request_key(request) == cell_key("db", 1, "cg-nogc",
                                                None, None)

    def test_faulted_requests_key_separately(self):
        clean = request_key(req("db"))
        armed = request_key(req(
            "db", faults=FaultPlan.parse("heap.alloc:oom:after=10").to_dict()
        ))
        assert clean != armed
