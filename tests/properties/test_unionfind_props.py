"""Property tests: union-find vs a naive set-partition model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.unionfind import DisjointSets


@st.composite
def union_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            max_size=80,
        )
    )
    return n, ops


class NaivePartition:
    """Reference model: explicit frozensets."""

    def __init__(self, n):
        self.sets = [{i} for i in range(n)]

    def union(self, a, b):
        sa = next(s for s in self.sets if a in s)
        sb = next(s for s in self.sets if b in s)
        if sa is not sb:
            self.sets.remove(sb)
            sa |= sb

    def same(self, a, b):
        return any(a in s and b in s for s in self.sets)


@given(union_sequences())
@settings(max_examples=200)
def test_matches_naive_model(seq):
    n, ops = seq
    ds = DisjointSets()
    for _ in range(n):
        ds.make_set()
    model = NaivePartition(n)
    for a, b in ops:
        ds.union(a, b)
        model.union(a, b)
    for a in range(n):
        for b in range(a, n):
            assert ds.same_set(a, b) == model.same(a, b)


@given(union_sequences())
@settings(max_examples=100)
def test_every_element_in_exactly_one_set(seq):
    n, ops = seq
    ds = DisjointSets()
    for _ in range(n):
        ds.make_set()
    for a, b in ops:
        ds.union(a, b)
    roots = {ds.find(x) for x in range(n)}
    assert roots <= set(range(n))
    # Find is idempotent and stable.
    for x in range(n):
        r = ds.find(x)
        assert ds.find(r) == r
        assert ds.find(x) == r


@given(union_sequences())
@settings(max_examples=100)
def test_rank_bounded_by_log(seq):
    import math

    n, ops = seq
    ds = DisjointSets()
    for _ in range(n):
        ds.make_set()
    for a, b in ops:
        ds.union(a, b)
    bound = max(1, math.ceil(math.log2(n + 1)))
    for x in range(n):
        assert ds.rank_of(x) <= bound


@given(union_sequences())
@settings(max_examples=100)
def test_union_is_commutative_in_effect(seq):
    n, ops = seq
    forward = DisjointSets()
    swapped = DisjointSets()
    for _ in range(n):
        forward.make_set()
        swapped.make_set()
    for a, b in ops:
        forward.union(a, b)
        swapped.union(b, a)
    for a in range(n):
        for b in range(n):
            assert forward.same_set(a, b) == swapped.same_set(a, b)
