"""Stateful property test: random mutator programs vs the CG collector.

This is the executable form of the paper's safety claim ("It correctly
identifies dead objects"): a hypothesis state machine drives a random but
*legitimate* mutator — objects are only touched while reachable from live
roots — against a CG-enabled runtime with a tiny heap, paranoid reachability
probing, mark-sweep backup, and periodic GC.  Any unsoundness surfaces as
``UseAfterCollect`` (the mutator touched something CG freed) or as the
paranoid probe firing (CG tried to free something reachable); conservatism
bugs surface as the equilive/heap invariant checks failing.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import CGPolicy, Mutator, OutOfMemoryError, Runtime, RuntimeConfig
from tests.conftest import define_test_classes


def reachable_from_roots(rt):
    """All live handles reachable from the runtime's roots."""
    seen = {}
    stack = list(rt.iter_roots())
    while stack:
        h = stack.pop()
        if h.id in seen or h.freed:
            continue
        seen[h.id] = h
        stack.extend(h.references())
    return list(seen.values())


class CGMachine(RuleBasedStateMachine):
    policy = CGPolicy(paranoid=True)

    @initialize()
    def setup(self):
        self.rt = Runtime(
            RuntimeConfig(
                heap_words=2048,
                cg=self.policy,
                tracing="marksweep",
                gc_period_ops=97,
            )
        )
        define_test_classes(self.rt.program)
        self.m = Mutator(self.rt)
        self.rt.push_frame(self.m.thread)
        self.static_keys = 0

    def teardown(self):
        if hasattr(self, "rt"):
            while self.m.thread.stack.frames:
                self.rt.pop_frame(self.m.thread)
            recycled = (
                self.rt.collector.recycle.parked_words
                if self.rt.collector
                else 0
            )
            self.rt.heap.check_accounting(recycled)

    # --- helpers ---------------------------------------------------------

    def pick(self, data):
        candidates = reachable_from_roots(self.rt)
        if not candidates:
            return None
        return candidates[data.draw(st.integers(0, len(candidates) - 1))]

    # --- rules -----------------------------------------------------------

    @rule()
    def push_frame(self):
        if self.m.depth < 12:
            self.rt.push_frame(self.m.thread)

    @rule()
    def pop_frame(self):
        if self.m.depth > 1:
            self.rt.pop_frame(self.m.thread)

    @rule(data=st.data())
    def alloc(self, data):
        cls = data.draw(st.sampled_from(["Node", "Pair", "Box"]))
        try:
            h = self.m.new(cls)
        except OutOfMemoryError:
            return
        if data.draw(st.booleans()):
            self.m.root(h)
        else:
            self.m.drop(h)

    @rule(data=st.data())
    def alloc_array(self, data):
        try:
            h = self.m.new_array(data.draw(st.integers(0, 6)))
        except OutOfMemoryError:
            return
        self.m.root(h)

    @rule(data=st.data())
    def putfield(self, data):
        a = self.pick(data)
        b = self.pick(data)
        if a is None or a.is_array or not a.fields:
            return
        field = data.draw(st.sampled_from(sorted(a.fields)))
        self.m.putfield(a, field, b)

    @rule(data=st.data())
    def clear_field(self, data):
        a = self.pick(data)
        if a is None or a.is_array or not a.fields:
            return
        field = data.draw(st.sampled_from(sorted(a.fields)))
        self.m.putfield(a, field, None)

    @rule(data=st.data())
    def array_store(self, data):
        a = self.pick(data)
        b = self.pick(data)
        if a is None or not a.is_array or a.length == 0:
            return
        self.m.aastore(a, data.draw(st.integers(0, a.length - 1)), b)

    @rule(data=st.data())
    def putstatic(self, data):
        h = self.pick(data)
        if h is None:
            return
        self.m.putstatic(f"s{self.static_keys % 4}", h)
        self.static_keys += 1

    @rule(data=st.data())
    def touch_reachable(self, data):
        """The soundness oracle: reachable objects must never be dead."""
        h = self.pick(data)
        if h is not None:
            self.m.touch(h)

    @rule(data=st.data())
    def read_field(self, data):
        h = self.pick(data)
        if h is None or h.is_array or not h.fields:
            return
        field = data.draw(st.sampled_from(sorted(h.fields)))
        self.m.getfield(h, field)

    @rule()
    def force_gc(self):
        self.rt.tracing.collect()

    # --- invariants --------------------------------------------------------

    @invariant()
    def heap_accounting_holds(self):
        if hasattr(self, "rt"):
            recycled = (
                self.rt.collector.recycle.parked_words
                if self.rt.collector
                else 0
            )
            self.rt.heap.check_accounting(recycled)

    @invariant()
    def equilive_invariants_hold(self):
        if hasattr(self, "rt"):
            self.rt.check_cg_invariants()

    @invariant()
    def reachable_objects_alive(self):
        if hasattr(self, "rt"):
            for h in reachable_from_roots(self.rt):
                assert not h.freed


class CGMachineNoOpt(CGMachine):
    policy = CGPolicy(static_opt=False, paranoid=True)


class CGMachineRecycling(CGMachine):
    policy = CGPolicy(recycling=True, paranoid=True)


class CGMachineResetting(CGMachine):
    policy = CGPolicy(resetting=True, paranoid=True)


CGMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=60, deadline=None
)
CGMachineNoOpt.TestCase.settings = settings(
    max_examples=12, stateful_step_count=50, deadline=None
)
CGMachineRecycling.TestCase.settings = settings(
    max_examples=12, stateful_step_count=50, deadline=None
)
CGMachineResetting.TestCase.settings = settings(
    max_examples=12, stateful_step_count=50, deadline=None
)

TestCGMachine = CGMachine.TestCase
TestCGMachineNoOpt = CGMachineNoOpt.TestCase
TestCGMachineRecycling = CGMachineRecycling.TestCase
TestCGMachineResetting = CGMachineResetting.TestCase
