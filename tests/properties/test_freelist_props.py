"""Property tests for the free-list allocator (invariant 5 of DESIGN.md)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jvm.heap import FreeList

CAPACITY = 512


def check_freelist_invariants(fl: FreeList, allocated: dict) -> None:
    blocks = fl.blocks()
    # Address-ordered.
    addrs = [a for a, _ in blocks]
    assert addrs == sorted(addrs)
    # Non-overlapping, in-range, and never adjacent (always coalesced).
    prev_end = None
    for addr, size in blocks:
        assert size > 0
        assert 0 <= addr and addr + size <= fl.capacity
        if prev_end is not None:
            assert addr > prev_end, "adjacent free blocks must coalesce"
        prev_end = addr + size
    # Free blocks never overlap allocations.
    for addr, size in blocks:
        for a_addr, a_size in allocated.values():
            assert addr + size <= a_addr or a_addr + a_size <= addr
    # Conservation.
    assert fl.free_words + sum(s for _, s in allocated.values()) == fl.capacity


@st.composite
def alloc_free_scripts(draw):
    return draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("alloc"), st.integers(1, 64)),
                st.tuples(st.just("free"), st.integers(0, 200)),
            ),
            max_size=120,
        )
    )


@given(alloc_free_scripts())
@settings(max_examples=200)
def test_invariants_under_random_traffic(script):
    fl = FreeList(CAPACITY)
    allocated = {}
    next_key = 0
    for op, arg in script:
        if op == "alloc":
            addr = fl.allocate(arg)
            if addr is not None:
                allocated[next_key] = (addr, arg)
                next_key += 1
        else:
            if allocated:
                key = sorted(allocated)[arg % len(allocated)]
                addr, size = allocated.pop(key)
                fl.free(addr, size)
        check_freelist_invariants(fl, allocated)


@given(alloc_free_scripts())
@settings(max_examples=100)
def test_free_everything_restores_single_block(script):
    fl = FreeList(CAPACITY)
    allocated = {}
    next_key = 0
    for op, arg in script:
        if op == "alloc":
            addr = fl.allocate(arg)
            if addr is not None:
                allocated[next_key] = (addr, arg)
                next_key += 1
        elif allocated:
            key = sorted(allocated)[arg % len(allocated)]
            addr, size = allocated.pop(key)
            fl.free(addr, size)
    for addr, size in allocated.values():
        fl.free(addr, size)
    assert fl.blocks() == [(0, CAPACITY)]


@given(st.lists(st.integers(1, 32), min_size=1, max_size=40))
@settings(max_examples=100)
def test_allocations_never_overlap(sizes):
    fl = FreeList(CAPACITY)
    spans = []
    for size in sizes:
        addr = fl.allocate(size)
        if addr is None:
            continue
        for a, s in spans:
            assert addr + size <= a or a + s <= addr
        spans.append((addr, size))
