"""Unit tests for the statistics module (bucketing and fractions)."""

from repro import Mutator
from repro.core.stats import CGStats

from tests.conftest import make_runtime


class TestFractions:
    def test_zero_objects_is_zero_not_nan(self):
        stats = CGStats()
        assert stats.collectable_fraction() == 0.0
        assert stats.exact_fraction() == 0.0

    def test_collectable_fraction(self):
        stats = CGStats()
        stats.objects_created = 10
        stats.objects_popped = 4
        assert stats.collectable_fraction() == 0.4

    def test_exact_fraction(self):
        stats = CGStats()
        stats.objects_created = 8
        stats.exact_objects = 2
        assert stats.exact_fraction() == 0.25


class TestAgeBuckets:
    def test_empty_buckets_are_zero(self):
        buckets = CGStats().age_buckets()
        assert set(buckets) == {"0", "1", "2", "3", "4", "5", ">5"}
        assert all(v == 0 for v in buckets.values())

    def test_boundary_at_five(self):
        stats = CGStats()
        stats.age_hist[5] = 3
        stats.age_hist[6] = 7
        stats.age_hist[40] = 1
        buckets = stats.age_buckets()
        assert buckets["5"] == 3
        assert buckets[">5"] == 8

    def test_totals_conserved(self):
        stats = CGStats()
        for d in range(12):
            stats.age_hist[d] = d + 1
        buckets = stats.age_buckets()
        assert sum(buckets.values()) == sum(stats.age_hist.values())

    def test_distance_five_is_not_overflow(self):
        stats = CGStats()
        stats.age_hist[5] = 9
        buckets = stats.age_buckets()
        assert buckets["5"] == 9
        assert buckets[">5"] == 0

    def test_distance_six_is_overflow_only(self):
        stats = CGStats()
        stats.age_hist[6] = 4
        buckets = stats.age_buckets()
        assert buckets["5"] == 0
        assert buckets[">5"] == 4

    def test_distance_zero_counts_same_frame_deaths(self):
        stats = CGStats()
        stats.age_hist[0] = 11
        assert stats.age_buckets()["0"] == 11

    def test_real_run_age_buckets_match_popped(self):
        """End to end: bucket totals equal the objects CG actually popped."""
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            keeper = m.new("Node")
            m.set_local(0, keeper)
            # Depth-6 chain: the innermost allocation is contaminated up to
            # the outermost frame, landing in the distance-5 bucket.
            def nest(depth):
                with m.frame():
                    if depth < 5:
                        nest(depth + 1)
                    else:
                        victim = m.new("Node")
                        m.putfield(keeper, "next", victim)
                        m.root(victim)
            nest(1)
        stats = rt.collector.stats
        buckets = stats.age_buckets()
        assert sum(buckets.values()) == stats.objects_popped
        assert buckets["5"] >= 1


class TestBlockSizeBuckets:
    def test_boundaries(self):
        stats = CGStats()
        for size in (1, 5, 6, 10, 11, 100):
            stats.block_size_hist[size] = 1
        buckets = stats.block_size_buckets()
        assert buckets["1"] == 1
        assert buckets["5"] == 1
        assert buckets["6-10"] == 2
        assert buckets[">10"] == 2

    def test_totals_conserved(self):
        stats = CGStats()
        for size in range(1, 30):
            stats.block_size_hist[size] = 2
        buckets = stats.block_size_buckets()
        assert sum(buckets.values()) == 58

    def test_size_five_stays_exact_six_spills(self):
        stats = CGStats()
        stats.block_size_hist[5] = 2
        stats.block_size_hist[6] = 3
        buckets = stats.block_size_buckets()
        assert buckets["5"] == 2
        assert buckets["6-10"] == 3
        assert buckets[">10"] == 0

    def test_size_ten_in_mid_bucket_eleven_overflows(self):
        stats = CGStats()
        stats.block_size_hist[10] = 5
        stats.block_size_hist[11] = 7
        buckets = stats.block_size_buckets()
        assert buckets["6-10"] == 5
        assert buckets[">10"] == 7

    def test_real_run_block_sizes_match_blocks_collected(self):
        """End to end: bucket totals equal the blocks CG collected."""
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            # One 6-member block (5 unions) and one singleton block.
            head = m.new("Node")
            m.root(head)
            for _ in range(5):
                node = m.new("Node")
                m.putfield(node, "next", head)
                m.root(node)
                head = node
            m.root(m.new("Pair"))
        stats = rt.collector.stats
        buckets = stats.block_size_buckets()
        assert sum(buckets.values()) == stats.blocks_collected
        assert buckets["1"] == 1
        assert buckets["6-10"] == 1


class TestCounters:
    def test_counter_fields_independent_across_instances(self):
        a, b = CGStats(), CGStats()
        a.static_pins["shared"] += 1
        a.age_hist[3] += 1
        assert b.static_pins["shared"] == 0
        assert b.age_hist[3] == 0
