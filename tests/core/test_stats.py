"""Unit tests for the statistics module (bucketing and fractions)."""

from repro.core.stats import CGStats


class TestFractions:
    def test_zero_objects_is_zero_not_nan(self):
        stats = CGStats()
        assert stats.collectable_fraction() == 0.0
        assert stats.exact_fraction() == 0.0

    def test_collectable_fraction(self):
        stats = CGStats()
        stats.objects_created = 10
        stats.objects_popped = 4
        assert stats.collectable_fraction() == 0.4

    def test_exact_fraction(self):
        stats = CGStats()
        stats.objects_created = 8
        stats.exact_objects = 2
        assert stats.exact_fraction() == 0.25


class TestAgeBuckets:
    def test_empty_buckets_are_zero(self):
        buckets = CGStats().age_buckets()
        assert set(buckets) == {"0", "1", "2", "3", "4", "5", ">5"}
        assert all(v == 0 for v in buckets.values())

    def test_boundary_at_five(self):
        stats = CGStats()
        stats.age_hist[5] = 3
        stats.age_hist[6] = 7
        stats.age_hist[40] = 1
        buckets = stats.age_buckets()
        assert buckets["5"] == 3
        assert buckets[">5"] == 8

    def test_totals_conserved(self):
        stats = CGStats()
        for d in range(12):
            stats.age_hist[d] = d + 1
        buckets = stats.age_buckets()
        assert sum(buckets.values()) == sum(stats.age_hist.values())


class TestBlockSizeBuckets:
    def test_boundaries(self):
        stats = CGStats()
        for size in (1, 5, 6, 10, 11, 100):
            stats.block_size_hist[size] = 1
        buckets = stats.block_size_buckets()
        assert buckets["1"] == 1
        assert buckets["5"] == 1
        assert buckets["6-10"] == 2
        assert buckets[">10"] == 2

    def test_totals_conserved(self):
        stats = CGStats()
        for size in range(1, 30):
            stats.block_size_hist[size] = 2
        buckets = stats.block_size_buckets()
        assert sum(buckets.values()) == 58


class TestCounters:
    def test_counter_fields_independent_across_instances(self):
        a, b = CGStats(), CGStats()
        a.static_pins["shared"] += 1
        a.age_hist[3] += 1
        assert b.static_pins["shared"] == 0
        assert b.age_hist[3] == 0
