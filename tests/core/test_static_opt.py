"""The section 3.4 static optimization: ``a.f = s`` with static ``s``.

Without the optimization, the store unions a's block with s's, making `a`
static for no reason (s is already maximally live; nothing can change that).
Fig. 4.1 shows the optimization raises collectability substantially (jess:
35% -> 61%).
"""

import pytest

from repro import CGPolicy, Mutator
from tests.conftest import assert_clean, make_runtime


@pytest.fixture
def rt_opt():
    return make_runtime(cg=CGPolicy(static_opt=True, paranoid=True))


@pytest.fixture
def rt_noopt():
    return make_runtime(cg=CGPolicy(static_opt=False, paranoid=True))


def reference_static_then_die(rt):
    """An object references a static table entry, then its frame pops."""
    m = Mutator(rt)
    with m.frame():
        table = m.new("Node")
        m.putstatic("table", table)
        table = m.getstatic("table")
        with m.frame():
            user = m.new("Node")
            m.putfield(user, "next", table)  # user -> static
            m.root(user)
        # inner frame popped
    return rt.collector.stats


def test_with_opt_the_user_is_collectable(rt_opt):
    stats = reference_static_then_die(rt_opt)
    assert stats.objects_popped == 1
    assert stats.static_opt_hits == 1
    assert_clean_runtime(rt_opt)


def test_without_opt_the_user_is_pinned(rt_noopt):
    stats = reference_static_then_die(rt_noopt)
    assert stats.objects_popped == 0
    assert stats.static_opt_hits == 0
    assert_clean_runtime(rt_noopt)


def test_opt_does_not_apply_when_container_is_static(rt_opt):
    """x.f = y with x static must STILL pin y (y escapes via x)."""
    m = Mutator(rt_opt)
    with m.frame():
        x = m.new("Node")
        m.putstatic("x", x)
        x = m.getstatic("x")
        with m.frame():
            y = m.new("Node")
            m.putfield(x, "next", y)
            m.root(y)
        # y must survive: reachable through static x.
        y.check_live()
    assert rt_opt.collector.stats.objects_popped == 0
    assert rt_opt.collector.equilive.block_of(y).is_static


def test_opt_keeps_soundness_with_back_pointer(rt_opt):
    """user -> static via field, then static -> user: second store pins."""
    m = Mutator(rt_opt)
    with m.frame():
        table = m.new("Node")
        m.putstatic("table", table)
        table = m.getstatic("table")
        with m.frame():
            user = m.new("Node")
            m.putfield(user, "next", table)   # skipped by the opt
            m.putfield(table, "next", user)   # static touches user: pin
            m.root(user)
        user.check_live()
    assert rt_opt.collector.stats.objects_popped == 0


def test_opt_hit_counter_accumulates(rt_opt):
    m = Mutator(rt_opt)
    with m.frame():
        s = m.new("Node")
        m.putstatic("s", s)
        s = m.getstatic("s")
        with m.frame():
            for _ in range(5):
                u = m.new("Node")
                m.putfield(u, "next", s)
                m.root(u)
    assert rt_opt.collector.stats.static_opt_hits == 5
    assert rt_opt.collector.stats.objects_popped == 5


def test_opt_collects_more_than_noopt_on_identical_program():
    results = {}
    for name, policy in (
        ("opt", CGPolicy(static_opt=True, paranoid=True)),
        ("noopt", CGPolicy(static_opt=False, paranoid=True)),
    ):
        rt = make_runtime(cg=policy)
        m = Mutator(rt)
        with m.frame():
            shared = m.new("Node")
            m.putstatic("shared", shared)
            shared = m.getstatic("shared")
            for _ in range(10):
                with m.frame():
                    tmp = m.new("Node")
                    m.putfield(tmp, "next", shared)
                    m.root(tmp)
        results[name] = rt.collector.stats.collectable_fraction()
    assert results["opt"] > results["noopt"]


def assert_clean_runtime(rt):
    assert_clean(rt)
