"""The section 3.7 recycling optimization: deferred free + first-fit reuse."""

import pytest

from repro import CGPolicy, Mutator
from tests.conftest import assert_clean, make_runtime


def recycling_runtime(**kw):
    kw.setdefault("heap_words", 256)
    return make_runtime(cg=CGPolicy(recycling=True, paranoid=True), **kw)


class TestParkAndReuse:
    def test_popped_objects_are_parked_not_freed(self):
        rt = recycling_runtime(heap_words=1 << 14)
        m = Mutator(rt)
        free_before = rt.heap.free_list.free_words
        with m.frame():
            with m.frame():
                m.root(m.new("Node"))
        # Storage parked: the free list did NOT grow.
        assert rt.heap.free_list.free_words < free_before
        assert len(rt.collector.recycle) == 1
        assert_clean(rt)

    def test_allocation_reuses_parked_storage(self):
        # 64 words = 16 Nodes: exhaustion forces the recycle path.
        rt = recycling_runtime(heap_words=64)
        m = Mutator(rt)
        addresses = set()
        with m.frame():
            for _ in range(50):
                with m.frame():
                    h = m.new("Node")
                    addresses.add(h.addr)
                    m.root(h)
        assert rt.collector.stats.objects_recycled > 0
        # Heavy address reuse: far fewer distinct addresses than objects.
        assert len(addresses) < 50
        assert_clean(rt)

    def test_first_fit_takes_first_big_enough(self):
        rt = recycling_runtime(heap_words=1 << 14)
        m = Mutator(rt)
        with m.frame():
            with m.frame():
                m.root(m.new("Node"))   # 4 words
                m.root(m.new("Big"))    # 16 words
            # Both parked now; ask for something Node-sized: first fit is
            # the Node (parked first).
            donor = rt.collector.take_recycled(4)
            assert donor is not None
            assert donor.size == 4
        assert rt.collector.stats.objects_recycled == 1

    def test_miss_counted_when_nothing_fits(self):
        rt = recycling_runtime(heap_words=1 << 14)
        m = Mutator(rt)
        with m.frame():
            with m.frame():
                m.root(m.new("Node"))
            assert rt.collector.take_recycled(1000) is None
        assert rt.collector.stats.recycle_misses == 1
        assert rt.collector.stats.recycle_search_steps >= 1

    def test_larger_donor_surplus_returned(self):
        rt = recycling_runtime(heap_words=1 << 14)
        m = Mutator(rt)
        with m.frame():
            with m.frame():
                m.root(m.new("Big"))  # 16 words parked
            free_before = rt.heap.free_list.free_words
            # Allocate a Node (4 words): heap has plenty, so the free list
            # path wins; force the recycle path directly instead.
            donor = rt.collector.take_recycled(4)
            new = rt.heap.adopt_storage(
                donor, rt.program.lookup("Node"), 0, 1, 0
            )
            assert rt.heap.free_list.free_words == free_before + (16 - 4)
            rt.collector.on_alloc(new, m.current_frame)
            m.current_frame.stack.append(new)
            m.drop(new)
        assert_clean(rt)


class TestFlush:
    def test_tracing_gc_flushes_recycle_list(self):
        rt = recycling_runtime(heap_words=1 << 14)
        m = Mutator(rt)
        with m.frame():
            with m.frame():
                m.root(m.new("Node"))
            assert len(rt.collector.recycle) == 1
            rt.tracing.collect()
            assert len(rt.collector.recycle) == 0
        assert_clean(rt)

    def test_flush_restores_heap_accounting(self):
        rt = recycling_runtime(heap_words=1 << 14)
        m = Mutator(rt)
        with m.frame():
            with m.frame():
                for _ in range(5):
                    m.root(m.new("Node"))
            parked = rt.collector.recycle.parked_words
            assert parked == 5 * 4
            rt.collector.recycle.flush()
            assert rt.collector.recycle.parked_words == 0
        rt.heap.check_accounting()


class TestRecyclingDisabled:
    def test_no_recycling_without_policy(self):
        rt = make_runtime(heap_words=256)
        m = Mutator(rt)
        with m.frame():
            for _ in range(50):
                with m.frame():
                    m.root(m.new("Node"))
        assert rt.collector.stats.objects_recycled == 0
        assert len(rt.collector.recycle) == 0

    def test_take_recycled_none_when_disabled(self):
        rt = make_runtime()
        assert rt.collector.take_recycled(4) is None


class TestRecyclingVsAllocatorSearch:
    def test_recycling_reduces_free_list_churn(self):
        """The paper's claim: recycling converts per-object frees into a
        pointer splice, cutting free-list operations."""
        def churn(policy):
            rt = make_runtime(heap_words=512, cg=policy)
            m = Mutator(rt)
            with m.frame():
                for _ in range(100):
                    with m.frame():
                        m.root(m.new("Node"))
            return rt.heap.free_list.frees

        plain = churn(CGPolicy(paranoid=True))
        recycled = churn(CGPolicy(recycling=True, paranoid=True))
        assert recycled < plain
