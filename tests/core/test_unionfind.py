"""Unit tests for the union-find forest (thesis section 3.1.1)."""

import pytest

from repro.core.unionfind import DisjointSets


class TestMakeSet:
    def test_new_elements_are_their_own_roots(self):
        ds = DisjointSets()
        ids = [ds.make_set() for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]
        for x in ids:
            assert ds.find(x) == x

    def test_len_counts_elements(self):
        ds = DisjointSets()
        assert len(ds) == 0
        ds.make_set()
        ds.make_set()
        assert len(ds) == 2

    def test_contains(self):
        ds = DisjointSets()
        ds.make_set()
        assert 0 in ds
        assert 1 not in ds
        assert -1 not in ds

    def test_ensure_extends_universe(self):
        ds = DisjointSets()
        ds.ensure(7)
        assert len(ds) == 8
        assert all(ds.find(x) == x for x in range(8))

    def test_ensure_is_idempotent(self):
        ds = DisjointSets()
        ds.ensure(3)
        ds.union(0, 3)
        ds.ensure(3)  # must not disturb existing sets
        assert ds.same_set(0, 3)


class TestUnionFind:
    def test_union_merges(self):
        ds = DisjointSets()
        a, b = ds.make_set(), ds.make_set()
        root = ds.union(a, b)
        assert root in (a, b)
        assert ds.same_set(a, b)

    def test_union_returns_existing_root_when_already_merged(self):
        ds = DisjointSets()
        a, b = ds.make_set(), ds.make_set()
        r1 = ds.union(a, b)
        r2 = ds.union(a, b)
        assert r1 == r2
        assert ds.unions == 1  # second call was a no-op

    def test_transitivity(self):
        ds = DisjointSets()
        xs = [ds.make_set() for _ in range(10)]
        for a, b in zip(xs, xs[1:]):
            ds.union(a, b)
        assert all(ds.same_set(xs[0], x) for x in xs)

    def test_disjoint_sets_stay_disjoint(self):
        ds = DisjointSets()
        xs = [ds.make_set() for _ in range(6)]
        ds.union(xs[0], xs[1])
        ds.union(xs[2], xs[3])
        assert not ds.same_set(xs[0], xs[2])
        assert not ds.same_set(xs[1], xs[4])

    def test_union_by_rank_bounds_rank_logarithmically(self):
        ds = DisjointSets()
        n = 256
        xs = [ds.make_set() for _ in range(n)]
        # Balanced pairwise merging maximises rank growth.
        layer = xs
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(ds.union(layer[i], layer[i + 1]))
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        assert ds.rank_of(xs[0]) <= 8  # log2(256)

    def test_path_compression_flattens(self):
        ds = DisjointSets()
        xs = [ds.make_set() for _ in range(50)]
        for a, b in zip(xs, xs[1:]):
            ds.union(a, b)
        root = ds.find(xs[0])
        # After a find, the element points directly at the root.
        assert ds._parent[xs[0]] == root

    def test_roots_enumeration(self):
        ds = DisjointSets()
        xs = [ds.make_set() for _ in range(4)]
        ds.union(xs[0], xs[1])
        roots = set(ds.roots())
        assert len(roots) == 3
        assert ds.find(xs[0]) in roots


class TestReset:
    def test_reset_detaches_singleton(self):
        ds = DisjointSets()
        a, b = ds.make_set(), ds.make_set()
        ds.union(a, b)
        ds.reset(a)
        ds.reset(b)
        assert not ds.same_set(a, b)
        assert ds.find(a) == a
        assert ds.find(b) == b

    def test_reset_clears_rank(self):
        ds = DisjointSets()
        xs = [ds.make_set() for _ in range(4)]
        ds.union(xs[0], xs[1])
        ds.union(xs[0], xs[2])
        root = ds.find(xs[0])
        for x in xs[:3]:
            ds.reset(x)
        assert ds.rank_of(root) == 0


class TestCounters:
    def test_find_and_union_counters(self):
        ds = DisjointSets()
        a, b = ds.make_set(), ds.make_set()
        before = ds.finds
        ds.union(a, b)
        assert ds.unions == 1
        assert ds.finds == before + 2  # union does two finds

    def test_same_set_counts_finds(self):
        ds = DisjointSets()
        a, b = ds.make_set(), ds.make_set()
        before = ds.finds
        ds.same_set(a, b)
        assert ds.finds == before + 2


class TestEnsureGrowth:
    def test_bulk_growth_matches_incremental(self):
        bulk, incremental = DisjointSets(), DisjointSets()
        bulk.ensure(999)
        for x in range(1000):
            incremental.ensure(x)
        assert len(bulk) == len(incremental) == 1000
        assert all(bulk.find(x) == incremental.find(x) for x in range(1000))

    def test_iterative_deepening_growth(self):
        # Regression: ensure() once re-walked [0, x] on every call, turning
        # iterative deepening (grow by one, repeatedly) quadratic.  The
        # slice-assignment version only ever touches the new suffix, so
        # growing element-by-element must preserve unions made along the way.
        ds = DisjointSets()
        for x in range(0, 2000, 2):
            ds.ensure(x + 1)
            ds.union(x, x + 1)
        assert ds.unions == 1000
        for x in range(0, 2000, 2):
            assert ds.same_set(x, x + 1)
        roots = {ds.find(x) for x in range(2000)}
        assert len(roots) == 1000

    def test_ensure_never_shrinks(self):
        ds = DisjointSets()
        ds.ensure(10)
        ds.ensure(3)
        assert len(ds) == 11
