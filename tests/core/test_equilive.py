"""Unit tests for equilive blocks and the frame block lists."""

import pytest

from repro.core.equilive import EquiliveManager
from repro.jvm.errors import IllegalStateError
from repro.jvm.frames import FrameIdSource, StaticFrame
from repro.jvm.heap import Heap
from repro.jvm.model import Program
from repro.jvm.threads import JThread


class Fixture:
    """A static frame, one thread with a few frames, and a heap."""

    def __init__(self, depth=3):
        self.static_frame = StaticFrame()
        self.ids = FrameIdSource()
        self.thread = JThread(0, "t", self.ids)
        self.frames = [self.thread.stack.push(None) for _ in range(depth)]
        self.heap = Heap(1 << 16)
        self.program = Program()
        self.cls = self.program.define_class("N", fields=["x"])
        self.manager = EquiliveManager(self.static_frame)

    def new_handle(self):
        return self.heap.allocate(self.cls, 0, 1, 0)

    def all_frames(self):
        return [self.static_frame] + self.frames


@pytest.fixture
def fx():
    return Fixture()


class TestCreateAndLookup:
    def test_create_singleton(self, fx):
        h = fx.new_handle()
        block = fx.manager.create(h, fx.frames[0])
        assert block.members == [h]
        assert block.frame is fx.frames[0]
        assert not block.is_static
        assert not block.ever_unioned
        assert block in fx.frames[0].cg_blocks

    def test_block_of_finds_block(self, fx):
        h = fx.new_handle()
        block = fx.manager.create(h, fx.frames[0])
        assert fx.manager.block_of(h) is block

    def test_block_of_untracked_raises(self, fx):
        h = fx.new_handle()
        with pytest.raises(IllegalStateError):
            fx.manager.block_of(h)

    def test_has_block(self, fx):
        h = fx.new_handle()
        assert not fx.manager.has_block(h)
        fx.manager.create(h, fx.frames[0])
        assert fx.manager.has_block(h)

    def test_block_count(self, fx):
        for _ in range(3):
            fx.manager.create(fx.new_handle(), fx.frames[0])
        assert fx.manager.block_count() == 3


class TestMerge:
    def test_merge_combines_members(self, fx):
        a, b = fx.new_handle(), fx.new_handle()
        ba = fx.manager.create(a, fx.frames[1])
        bb = fx.manager.create(b, fx.frames[2])
        merged = fx.manager.merge(ba, bb, fx.frames[1])
        assert set(merged.members) == {a, b}
        assert merged.ever_unioned
        assert fx.manager.block_of(a) is merged
        assert fx.manager.block_of(b) is merged

    def test_merge_moves_to_target_frame(self, fx):
        a, b = fx.new_handle(), fx.new_handle()
        ba = fx.manager.create(a, fx.frames[1])
        bb = fx.manager.create(b, fx.frames[2])
        merged = fx.manager.merge(ba, bb, fx.frames[1])
        assert merged.frame is fx.frames[1]
        assert merged in fx.frames[1].cg_blocks
        assert all(merged not in f.cg_blocks for f in fx.frames[2:])

    def test_merge_with_self_rejected(self, fx):
        a = fx.new_handle()
        ba = fx.manager.create(a, fx.frames[0])
        with pytest.raises(IllegalStateError):
            fx.manager.merge(ba, ba, fx.frames[0])

    def test_merge_keeps_registry_consistent(self, fx):
        handles = [fx.new_handle() for _ in range(6)]
        blocks = [fx.manager.create(h, fx.frames[0]) for h in handles]
        survivor = blocks[0]
        for other in blocks[1:]:
            survivor = fx.manager.merge(survivor, other, fx.frames[0])
        assert fx.manager.block_count() == 1
        fx.manager.check_invariants(fx.all_frames())

    def test_merge_preserves_static_cause(self, fx):
        a, b = fx.new_handle(), fx.new_handle()
        ba = fx.manager.create(a, fx.frames[0])
        bb = fx.manager.create(b, fx.frames[1])
        fx.manager.pin_static(ba, "putstatic")
        merged = fx.manager.merge(ba, bb, fx.static_frame)
        assert merged.static_cause == "putstatic"


class TestMoveAndPin:
    def test_move_to_frame(self, fx):
        h = fx.new_handle()
        block = fx.manager.create(h, fx.frames[2])
        fx.manager.move_to_frame(block, fx.frames[0])
        assert block.frame is fx.frames[0]
        assert block in fx.frames[0].cg_blocks
        assert block not in fx.frames[2].cg_blocks

    def test_move_to_same_frame_is_noop(self, fx):
        h = fx.new_handle()
        block = fx.manager.create(h, fx.frames[0])
        fx.manager.move_to_frame(block, fx.frames[0])
        assert block in fx.frames[0].cg_blocks

    def test_pin_static(self, fx):
        h = fx.new_handle()
        block = fx.manager.create(h, fx.frames[1])
        fx.manager.pin_static(block, "shared")
        assert block.is_static
        assert block.static_cause == "shared"
        assert block.frame is fx.static_frame
        assert block in fx.static_frame.cg_blocks

    def test_pin_does_not_overwrite_cause(self, fx):
        h = fx.new_handle()
        block = fx.manager.create(h, fx.frames[1])
        fx.manager.pin_static(block, "putstatic")
        fx.manager.pin_static(block, "shared")
        assert block.static_cause == "putstatic"


class TestDetachAndDismantle:
    def test_detach_removes_block(self, fx):
        h = fx.new_handle()
        block = fx.manager.create(h, fx.frames[0])
        fx.manager.detach(block)
        assert fx.manager.block_count() == 0
        assert block not in fx.frames[0].cg_blocks

    def test_forget_members_resets_union_find(self, fx):
        a, b = fx.new_handle(), fx.new_handle()
        ba = fx.manager.create(a, fx.frames[0])
        bb = fx.manager.create(b, fx.frames[0])
        merged = fx.manager.merge(ba, bb, fx.frames[0])
        fx.manager.detach(merged)
        fx.manager.forget_members(merged)
        # Fresh singletons can now be created for both.
        na = fx.manager.create(a, fx.frames[1])
        nb = fx.manager.create(b, fx.frames[2])
        assert na is not nb
        assert fx.manager.block_of(a) is na
        assert fx.manager.block_of(b) is nb

    def test_dismantle_all(self, fx):
        handles = [fx.new_handle() for _ in range(4)]
        for i, h in enumerate(handles):
            fx.manager.create(h, fx.frames[i % 3])
        dismantled = fx.manager.dismantle_all()
        assert len(dismantled) == 4
        assert fx.manager.block_count() == 0
        assert all(not f.cg_blocks for f in fx.all_frames())


class TestLiveMembers:
    def test_lazy_deletion_of_freed_members(self, fx):
        a, b = fx.new_handle(), fx.new_handle()
        ba = fx.manager.create(a, fx.frames[0])
        bb = fx.manager.create(b, fx.frames[0])
        merged = fx.manager.merge(ba, bb, fx.frames[0])
        fx.heap.free(a, "test")
        assert list(merged.live_members()) == [b]
        assert merged.live_size() == 1

    def test_invariant_checker_catches_stale_frame_pointer(self, fx):
        h = fx.new_handle()
        block = fx.manager.create(h, fx.frames[0])
        block.frame = fx.frames[1]  # corrupt deliberately
        with pytest.raises(IllegalStateError):
            fx.manager.check_invariants(fx.all_frames())
