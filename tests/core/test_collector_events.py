"""Unit tests for each collector event (thesis section 3.1.3)."""

import pytest

from repro import CGPolicy, Mutator, UseAfterCollect
from repro.core.stats import (
    CAUSE_INTERN,
    CAUSE_NATIVE,
    CAUSE_PUTSTATIC,
    CAUSE_ROOTLESS,
    CAUSE_SHARED,
)
from tests.conftest import assert_clean, make_runtime


class TestAlloc:
    def test_new_object_depends_on_current_frame(self, rt, m):
        with m.frame() as f:
            h = m.new("Node")
            block = rt.collector.equilive.block_of(h)
            assert block.frame is f
            assert block.members == [h]
            m.drop(h)

    def test_alloc_counts(self, rt, m):
        with m.frame():
            for _ in range(3):
                m.drop(m.new("Node"))
        assert rt.collector.stats.objects_created == 3

    def test_alloc_outside_any_frame_is_pinned(self, rt):
        # Class-loading-time allocation (section 3.2): no frame in scope.
        h = rt.allocate("Node", rt.main_thread)
        block = rt.collector.equilive.block_of(h)
        assert block.is_static


class TestStore:
    def test_store_null_is_noop(self, rt, m):
        with m.frame():
            a = m.new("Node")
            before = rt.collector.stats.contaminations
            m.putfield(a, "next", None)
            assert rt.collector.stats.contaminations == before
            m.drop(a)

    def test_store_within_same_block_is_noop(self, rt, m):
        with m.frame():
            a, b = m.new("Node"), m.new("Node")
            m.putfield(a, "next", b)
            before = rt.collector.stats.contaminations
            m.putfield(b, "next", a)  # cyclic: already equilive
            assert rt.collector.stats.contaminations == before
            m.drop(a)

    def test_store_merges_blocks_symmetrically(self, rt, m):
        with m.frame():
            a, b = m.new("Node"), m.new("Node")
            m.putfield(a, "next", b)
            eq = rt.collector.equilive
            assert eq.block_of(a) is eq.block_of(b)
            m.drop(a)

    def test_merged_block_takes_older_frame(self, rt, m):
        with m.frame() as outer:
            a = m.new("Node")
            m.set_local(0, a)
            with m.frame() as inner:
                b = m.new("Node")
                m.putfield(b, "next", a)
                block = rt.collector.equilive.block_of(b)
                assert block.frame is outer
            # Inner popped: block survives (depends on outer).
            a.check_live()
        assert rt.collector.stats.objects_popped == 2

    def test_store_into_array_contaminates(self, rt, m):
        with m.frame() as outer:
            arr = m.new_array(4)
            m.set_local(0, arr)
            with m.frame():
                x = m.new("Node")
                m.aastore(arr, 0, x)
                eq = rt.collector.equilive
                assert eq.block_of(arr) is eq.block_of(x)
            x.check_live()  # array anchored in outer frame
        assert_clean(rt)

    def test_store_counts_even_for_primitives(self, rt, m):
        with m.frame():
            a = m.new("Node")
            before = rt.collector.stats.store_events
            m.putfield(a, "payload", 7)
            assert rt.collector.stats.store_events == before + 1
            m.drop(a)


class TestPutstatic:
    def test_putstatic_pins(self, rt, m):
        with m.frame():
            a = m.new("Node")
            m.putstatic("root", a)
            block = rt.collector.equilive.block_of(a)
            assert block.is_static
            assert block.static_cause == CAUSE_PUTSTATIC
            assert a.pinned_cause == CAUSE_PUTSTATIC
        # Survives the pop.
        a.check_live()

    def test_putstatic_pins_whole_block(self, rt, m):
        with m.frame():
            a, b = m.new("Node"), m.new("Node")
            m.putfield(a, "next", b)
            m.putstatic("root", a)
            assert b.pinned_cause == CAUSE_PUTSTATIC
        b.check_live()

    def test_putstatic_null_counts_but_pins_nothing(self, rt, m):
        with m.frame():
            before = rt.collector.stats.putstatic_events
            m.putstatic("root", None)
            assert rt.collector.stats.putstatic_events == before + 1

    def test_contaminating_static_object_spreads_pin(self, rt, m):
        # x.f = y where x is static: y must live forever too.
        with m.frame():
            x = m.new("Node")
            m.putstatic("root", x)
            x = m.getstatic("root")
            y = m.new("Node")
            m.putfield(x, "next", y)
            assert rt.collector.equilive.block_of(y).is_static
        y.check_live()


class TestAreturn:
    def test_areturn_promotes_to_caller(self, rt, m):
        with m.frame() as outer:
            with m.frame():
                h = m.new("Node")
                m.areturn(h)
            assert rt.collector.equilive.block_of(h).frame is outer
            h.check_live()
            m.drop(h)
        assert h.freed

    def test_areturn_does_not_demote_older_block(self, rt, m):
        with m.frame() as a_frame:
            a = m.new("Node")
            m.set_local(0, a)
            with m.frame():
                with m.frame():
                    # Return a (anchored two frames up) to the middle frame:
                    # its dependence must stay on the oldest frame.
                    m.areturn(a)
                assert rt.collector.equilive.block_of(a).frame is a_frame
                m.consume_from_caller(a)

    def test_areturn_off_thread_bottom_pins_rootless(self, rt, m):
        with m.frame():
            h = m.new("Node")
            m.areturn(h)  # depth-0 frame: no caller
        assert h.pinned_cause == CAUSE_ROOTLESS
        h.check_live()

    def test_areturn_static_block_unchanged(self, rt, m):
        with m.frame():
            with m.frame():
                h = m.new("Node")
                m.putstatic("root", h)
                m.areturn(h)
            block = rt.collector.equilive.block_of(h)
            assert block.is_static
            m.consume_from_caller(h)


class TestThreadSharing:
    def test_second_thread_access_pins(self, rt, m):
        with m.frame():
            h = m.new("Node")
            m.set_local(0, h)
            other = m.spawn()
            with other.frame():
                other.touch(h)
            assert h.pinned_cause == CAUSE_SHARED
        h.check_live()

    def test_same_thread_access_does_not_pin(self, rt, m):
        with m.frame():
            h = m.new("Node")
            m.touch(h)
            assert h.pinned_cause is None
            m.drop(h)

    def test_cross_thread_store_pins_the_shared_value(self, rt, m):
        with m.frame():
            a = m.new("Node")
            m.set_local(0, a)
            other = m.spawn()
            with other.frame():
                b = other.new("Node")
                # b (thread 1) stores a reference to a (thread 0): the
                # access check pins a as shared; the section 3.4 optimization
                # then applies — b references a static object, so b itself
                # stays collectable in its own frame.
                other.putfield(b, "next", a)
                eq = rt.collector.equilive
                assert eq.block_of(a).is_static
                assert not eq.block_of(b).is_static
            assert b.freed  # collected when thread 1's frame popped
        assert_clean(rt)

    def test_cross_thread_store_without_opt_pins_both(self):
        rt = make_runtime(cg=CGPolicy(static_opt=False, paranoid=True))
        m = Mutator(rt)
        with m.frame():
            a = m.new("Node")
            m.set_local(0, a)
            other = m.spawn()
            with other.frame():
                b = other.new("Node")
                other.putfield(b, "next", a)
                eq = rt.collector.equilive
                assert eq.block_of(a).is_static
                assert eq.block_of(b).is_static
        assert_clean(rt)

    def test_cross_thread_block_merge_pins_shared(self, rt, m):
        """Two non-static blocks anchored in different threads merging is
        treated as sharing (section 3.3): direct cross-thread contamination
        where the container, not the value, belongs to the other thread."""
        with m.frame():
            a = m.new("Node")
            m.set_local(0, a)
            other = m.spawn()
            with other.frame():
                b = other.new("Node")
                # Thread 0 stores b into a: touches b (allocated by thread
                # 1) -> pin shared; then contamination spreads the pin.
                other.set_local(0, b)
                m.putfield(a, "next", b)
                eq = rt.collector.equilive
                assert eq.block_of(b).is_static
        assert_clean(rt)

    def test_shared_pin_counted_once(self, rt, m):
        with m.frame():
            h = m.new("Node")
            m.set_local(0, h)
            other = m.spawn()
            with other.frame():
                other.touch(h)
                other.touch(h)
                other.touch(h)
            assert rt.collector.stats.static_pins[CAUSE_SHARED] == 1


class TestInternAndNative:
    def test_intern_pins(self, rt, m):
        with m.frame():
            s = m.new_string("spec")
            canon = m.intern(s)
            assert canon is s
            assert s.pinned_cause == CAUSE_INTERN
        s.check_live()

    def test_intern_duplicate_returns_canonical(self, rt, m):
        with m.frame():
            s1 = m.intern(m.new_string("x"))
            s2 = m.intern(m.new_string("x"))
            assert s1 is s2
        # The non-canonical duplicate was collectable.
        assert rt.collector.stats.objects_popped == 1

    def test_native_escape_pins(self, rt, m):
        with m.frame():
            h = m.new("Node")
            rt.collector.on_native_escape(h)
            assert h.pinned_cause == CAUSE_NATIVE
        h.check_live()


class TestFramePop:
    def test_pop_frees_all_dependent_blocks(self, rt, m):
        with m.frame():
            handles = [m.new("Node") for _ in range(4)]
            for h in handles:
                m.root(h)
        assert all(h.freed for h in handles)
        assert rt.collector.stats.objects_popped == 4

    def test_pop_skips_msa_freed_members(self, rt, m):
        with m.frame():
            a, b = m.new("Node"), m.new("Node")
            m.putfield(a, "next", b)
            m.root(a)
            # Simulate the tracing collector reclaiming b out of band.
            m.putfield(a, "next", None)
            rt.heap.free(b, "mark-sweep")
            rt.collector.on_collected_by_msa(b)
        # The pop must free only a, skipping b (already dead).
        assert rt.collector.stats.objects_popped == 1
        assert rt.collector.stats.collected_by_msa == 1
        assert_clean(rt)

    def test_block_size_histogram(self, rt, m):
        with m.frame():
            a, b, c = (m.new("Node") for _ in range(3))
            m.putfield(a, "next", b)  # block of 2
            m.root(a)
            m.root(c)                  # singleton
        hist = rt.collector.stats.block_size_hist
        assert hist[2] == 1
        assert hist[1] == 1

    def test_exact_blocks_are_never_unioned_singletons(self, rt, m):
        with m.frame():
            a, b, c = (m.new("Node") for _ in range(3))
            m.putfield(a, "next", b)
            m.root(a)
            m.root(c)
        st = rt.collector.stats
        assert st.exact_blocks == 1
        assert st.exact_objects == 1

    def test_age_histogram_distance_zero_for_frame_local(self, rt, m):
        with m.frame():
            with m.frame():
                m.root(m.new("Node"))
        assert rt.collector.stats.age_hist[0] == 1

    def test_age_histogram_counts_promotion_distance(self, rt, m):
        with m.frame():
            with m.frame():
                with m.frame():
                    h = m.new("Node")
                    m.areturn(h)
                m.areturn(h)
            m.consume_from_caller(h)
            m.root(h)
        # Born at depth 2, collected when depth-0 frame popped: distance 2.
        assert rt.collector.stats.age_hist[2] == 1

    def test_use_after_collect_oracle(self, rt, m):
        with m.frame():
            with m.frame():
                h = m.new("Node")
                m.root(h)
            with pytest.raises(UseAfterCollect):
                m.touch(h)


class TestFinalCensus:
    def test_census_partitions_population(self):
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            popped = m.new("Node")
            m.root(popped)
            stat = m.new("Node")
            m.putstatic("s", stat)
            shared = m.new("Node")
            m.set_local(0, shared)
            other = m.spawn()
            with other.frame():
                other.touch(shared)
        census = rt.collector.final_census()
        assert census["popped"] == 1
        assert census["static"] == 1
        assert census["thread"] == 1
        total = rt.collector.stats.objects_created
        assert census["popped"] + census["static"] + census["thread"] == total


class TestSetTracer:
    """set_tracer must refresh the cached _trace fast-path flag (the
    collector snapshots ``tracer.enabled`` at construction for speed)."""

    def test_attach_after_construction_records_events(self):
        from repro.obs.events import NULL_TRACER, Tracer

        rt = make_runtime()
        collector = rt.collector
        assert collector.tracer is NULL_TRACER
        assert collector._trace is False

        tracer = Tracer()
        collector.set_tracer(tracer)
        assert collector._trace is True
        assert collector.recycle._tracer is tracer

        m = Mutator(rt)
        with m.frame():
            m.new("Node")
        assert tracer.kind_counts()["new"] >= 1
        assert tracer.kind_counts()["frame_pop"] >= 1

    def test_detach_stops_recording(self):
        from repro.obs.events import NULL_TRACER, Tracer

        rt = make_runtime()
        tracer = Tracer()
        rt.collector.set_tracer(tracer)
        rt.collector.set_tracer(None)
        assert rt.collector.tracer is NULL_TRACER
        assert rt.collector._trace is False
        assert rt.collector.recycle._trace is False

        m = Mutator(rt)
        with m.frame():
            m.new("Node")
        assert len(tracer) == 0
