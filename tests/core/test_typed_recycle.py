"""The chapter 6 future-work extension: by-type object recycling.

"The equilive singleton sets could be maintained 'by type'.  Thus, when a
frame is popped, there would be a collection of free objects of a given
type ... they could be recycled the next time objects of that type are
needed.  For languages like Java, where objects of a given type always
take the same size (except for arrays), such object recycling could have a
big payoff."
"""

import pytest

from repro import CGPolicy, Mutator
from tests.conftest import assert_clean, make_runtime


def typed_runtime(heap_words=64, **kw):
    return make_runtime(
        heap_words=heap_words,
        cg=CGPolicy(recycling=True, recycle_by_type=True, paranoid=True),
        **kw,
    )


class TestPolicy:
    def test_by_type_implies_recycling(self):
        policy = CGPolicy(recycle_by_type=True)
        assert policy.recycling

    def test_factory(self):
        policy = CGPolicy.with_typed_recycling()
        assert policy.recycling and policy.recycle_by_type


class TestTypedLookup:
    def test_same_type_allocation_is_a_bucket_hit(self):
        rt = typed_runtime()
        m = Mutator(rt)
        with m.frame():
            for _ in range(40):
                with m.frame():
                    m.root(m.new("Node"))
        st = rt.collector.stats
        assert st.objects_recycled > 0
        assert st.recycle_typed_hits > 0
        # Every recycled allocation of the (only) type was a bucket hit.
        assert st.recycle_typed_hits == st.objects_recycled
        assert_clean(rt)

    def test_typed_hits_cost_one_step_each(self):
        rt = typed_runtime()
        m = Mutator(rt)
        with m.frame():
            for _ in range(40):
                with m.frame():
                    m.root(m.new("Node"))
        st = rt.collector.stats
        # One probe per typed hit: no linear scanning happened.
        assert st.recycle_search_steps == st.recycle_typed_hits

    def test_unseen_type_falls_back_to_first_fit(self):
        rt = typed_runtime(heap_words=96)
        m = Mutator(rt)
        with m.frame():
            # Park a batch of Big objects (16 words each)...
            with m.frame():
                for _ in range(4):
                    m.root(m.new("Big"))
            # ...then fill the heap with *live* Nodes: no Node is ever
            # parked, so the (Node, 4) bucket stays empty and allocation
            # must fall back to first-fit over the parked Bigs.
            for _ in range(12):
                m.root(m.new("Node"))
        st = rt.collector.stats
        assert st.objects_recycled > 0
        assert st.recycle_typed_hits == 0
        assert_clean(rt)

    def test_flush_clears_buckets(self):
        rt = typed_runtime(heap_words=1 << 14)
        m = Mutator(rt)
        with m.frame():
            with m.frame():
                m.root(m.new("Node"))
            rt.collector.recycle.flush()
            assert rt.collector.take_recycled(
                4, cls=rt.program.lookup("Node")
            ) is None
        assert_clean(rt)


class TestTypedVsPlainEfficiency:
    def test_typed_mode_searches_less_with_mixed_sizes(self):
        """The payoff the thesis predicts: with mixed-size populations the
        linear scan degrades while the typed bucket stays O(1)."""

        def churn(policy):
            rt = make_runtime(heap_words=640, cg=policy)
            m = Mutator(rt)
            with m.frame():
                # Interleave small and big allocations so the plain recycle
                # list is full of wrong-size candidates.
                for i in range(120):
                    with m.frame():
                        m.root(m.new("Big" if i % 2 else "Node"))
            st = rt.collector.stats
            return st.recycle_search_steps / max(1, st.objects_recycled)

        plain = churn(CGPolicy(recycling=True, paranoid=True))
        typed = churn(
            CGPolicy(recycling=True, recycle_by_type=True, paranoid=True)
        )
        assert typed <= plain

    def test_typed_and_plain_recycle_equally_soundly(self):
        for policy in (
            CGPolicy(recycling=True, paranoid=True),
            CGPolicy(recycling=True, recycle_by_type=True, paranoid=True),
        ):
            rt = make_runtime(heap_words=96, cg=policy)
            m = Mutator(rt)
            with m.frame():
                keep = m.new("Node")
                m.set_local(0, keep)
                for _ in range(30):
                    with m.frame():
                        m.root(m.new("Node"))
                keep.check_live()
            assert_clean(rt)


class TestHarnessSystem:
    def test_cg_recycle_typed_system(self):
        from repro.harness.figures import pressured_heap
        from repro.api import run as run_workload

        r = run_workload(
            "jack", 1, "cg-recycle-typed",
            heap_words=pressured_heap("jack", 1),
        )
        assert r.cg_stats.objects_recycled > 0
        assert r.cg_stats.recycle_typed_hits > 0
