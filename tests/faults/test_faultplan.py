"""FaultSpec/FaultPlan semantics: schedules, parsing, fingerprints."""

import pickle

import pytest

from repro.faults import (
    FAULT_SITES,
    FaultError,
    FaultPlan,
    FaultReport,
    FaultSpec,
    TrapFault,
)


class TestFaultSpecValidation:
    def test_unknown_site_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'heap.alloc'"):
            FaultSpec("heap.aloc", "oom")

    def test_unknown_kind_suggests_close_match(self):
        with pytest.raises(ValueError, match="did you mean 'trap'"):
            FaultSpec("interp.step", "trp")

    def test_kind_must_match_site(self):
        with pytest.raises(ValueError, match="fault kind for heap.alloc"):
            FaultSpec("heap.alloc", "crash")

    def test_bad_schedule_fields(self):
        with pytest.raises(ValueError, match="after"):
            FaultSpec("heap.alloc", "oom", after=-1)
        with pytest.raises(ValueError, match="every"):
            FaultSpec("heap.alloc", "oom", every=0)
        with pytest.raises(ValueError, match="count"):
            FaultSpec("heap.alloc", "oom", count=0)

    def test_parse_full_spec(self):
        spec = FaultSpec.parse("heap.alloc:oom:after=100:every=10:count=inf")
        assert spec.site == "heap.alloc"
        assert spec.kind == "oom"
        assert spec.after == 100
        assert spec.every == 10
        assert spec.count is None

    def test_parse_worker_spec(self):
        spec = FaultSpec.parse("harness.worker:hang:cell=jess:seconds=0.5")
        assert spec.cell == "jess"
        assert spec.seconds == 0.5

    def test_parse_rejects_unknown_option(self):
        with pytest.raises(ValueError, match="did you mean 'count'"):
            FaultSpec.parse("heap.alloc:oom:coutn=3")

    def test_parse_rejects_bare_site(self):
        with pytest.raises(ValueError, match="site:kind"):
            FaultSpec.parse("heap.alloc")


class TestFiringSchedule:
    def test_after_every_count(self):
        plan = FaultPlan([FaultSpec("heap.alloc", "oom",
                                    after=2, every=3, count=2)])
        # Hits 0,1 pass; hit 2 fires; hits 3,4 pass; hit 5 fires; then done.
        fires = [plan.should_fire("heap.alloc") for _ in range(10)]
        assert fires == [False, False, True, False, False, True,
                         False, False, False, False]
        assert plan.fired("heap.alloc") == 2

    def test_unarmed_site_never_fires(self):
        plan = FaultPlan([FaultSpec("heap.alloc", "oom")])
        assert not any(plan.should_fire("interp.step") for _ in range(5))
        assert plan.hits_until_fire("interp.step") is None

    def test_rearm_replays_identically(self):
        plan = FaultPlan([FaultSpec("heap.alloc", "oom", after=1, count=1)])
        first = [plan.should_fire("heap.alloc") for _ in range(4)]
        plan.rearm()
        second = [plan.should_fire("heap.alloc") for _ in range(4)]
        assert first == second == [False, True, False, False]

    def test_hits_until_fire_and_bulk_charge(self):
        plan = FaultPlan([FaultSpec("interp.step", "trap", after=10)])
        assert plan.hits_until_fire("interp.step") == 10
        plan.charge("interp.step", 7)
        assert plan.hits_until_fire("interp.step") == 3
        plan.charge("interp.step", 3)
        assert plan.hits_until_fire("interp.step") == 0
        assert plan.consume_fire("interp.step") == 1
        assert plan.hits_until_fire("interp.step") is None  # count=1 spent

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FaultPlan([FaultSpec("heap.alloc", "oom"),
                       FaultSpec("heap.alloc", "oom", after=5)])


class TestWorkerInjection:
    def test_cell_prefix_match(self):
        plan = FaultPlan([FaultSpec("harness.worker", "crash", cell="jess")])
        assert plan.worker_injection("jess:1:cg-nogc", 0) is not None
        assert plan.worker_injection("db:1:cg-nogc", 0) is None

    def test_no_cell_matches_everything(self):
        plan = FaultPlan([FaultSpec("harness.worker", "crash")])
        assert plan.worker_injection("db:1:cg", 0) is not None

    def test_attempt_window(self):
        plan = FaultPlan([FaultSpec("harness.worker", "crash",
                                    after=1, count=2)])
        hits = [plan.worker_injection("jess:1:cg", a) is not None
                for a in range(5)]
        assert hits == [False, True, True, False, False]

    def test_stateless_across_cells(self):
        plan = FaultPlan([FaultSpec("harness.worker", "crash", count=1)])
        # Another cell's attempts never consume this cell's schedule.
        for _ in range(3):
            assert plan.worker_injection("db:1:cg", 0) is not None


class TestPlanIdentity:
    def test_round_trip_preserves_fingerprint(self):
        plan = FaultPlan.parse(
            "heap.alloc:oom:after=50;harness.worker:crash:cell=jess:count=inf"
        )
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.fingerprint() == plan.fingerprint()
        assert clone.to_dict() == plan.to_dict()

    def test_fingerprint_ignores_firing_state(self):
        plan = FaultPlan([FaultSpec("heap.alloc", "oom", after=1)])
        before = plan.fingerprint()
        plan.should_fire("heap.alloc")
        plan.should_fire("heap.alloc")
        assert plan.fingerprint() == before

    def test_different_plans_differ(self):
        a = FaultPlan([FaultSpec("heap.alloc", "oom", after=1)])
        b = FaultPlan([FaultSpec("heap.alloc", "oom", after=2)])
        assert a.fingerprint() != b.fingerprint()

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError, match="empty fault plan"):
            FaultPlan.parse(" ; ")

    def test_every_site_parses(self):
        for site in FAULT_SITES:
            from repro.faults import SITE_KINDS

            kind = SITE_KINDS[site][0]
            assert FaultPlan.parse(f"{site}:{kind}").arms(site)


class TestErrorsPickle:
    def test_fault_error_report_survives_pickling(self):
        report = FaultReport(site="interp.step", kind="trap",
                             message="boom", firing=3,
                             context={"thread": "main"})
        err = TrapFault(report)
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, TrapFault)
        assert isinstance(clone, FaultError)
        assert clone.report.to_dict() == report.to_dict()
        assert str(clone) == "boom"
