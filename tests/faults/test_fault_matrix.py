"""Every armed site ends in recovery or a structured report — never a bare
traceback.  One test class per site; heap.alloc covers each cascade tier."""

import json

import pytest

from repro import (
    CGPolicy,
    FaultPlan,
    FaultSpec,
    Mutator,
    OutOfMemoryError,
    Runtime,
    RuntimeConfig,
    assemble,
)
from repro.faults import NativeCallFault, TrapFault
from repro.jvm.model import JMethod
from repro.obs.metrics import collect_runtime_metrics
from tests.conftest import assert_clean, define_test_classes


def faulted_runtime(plan, cg=None, heap_words=1 << 14):
    config = RuntimeConfig(
        heap_words=heap_words,
        cg=cg or CGPolicy(paranoid=True),
        tracing="marksweep",
        faults=plan,
    )
    runtime = Runtime(config)
    define_test_classes(runtime.program)
    return runtime


class TestHeapAllocCascade:
    def test_tier_recycle_adopts_parked_storage(self):
        plan = FaultPlan([FaultSpec("heap.alloc", "oom", after=1)])
        rt = faulted_runtime(plan, cg=CGPolicy(recycling=True, paranoid=True))
        m = Mutator(rt)
        with m.frame():
            with m.frame():
                m.new("Node")  # parked in the recycle list at the pop
            repl = m.new("Node")  # injected failure -> recycled donor
            assert not repl.freed
        assert rt.fault_stats["injected.heap.alloc"] == 1
        assert rt.fault_stats["recovered.recycle"] == 1
        assert rt.collector.stats.objects_recycled == 1
        assert_clean(rt)

    def test_tier_emergency_flushes_recycle_list(self):
        plan = FaultPlan([FaultSpec("heap.alloc", "oom", after=1)])
        rt = faulted_runtime(plan, cg=CGPolicy(recycling=True, paranoid=True))
        m = Mutator(rt)
        with m.frame():
            with m.frame():
                m.new("Node")  # parked donor, far too small for the array
            big = m.new_array(64)  # injected failure -> emergency pass
            assert not big.freed
            # The pass flushed the parked donor back to the free list.
            assert len(rt.collector.recycle) == 0
        assert rt.fault_stats["injected.heap.alloc"] == 1
        assert rt.fault_stats["recovered.emergency"] == 1
        assert_clean(rt)

    def test_tier_backstop_runs_tracing_collector(self):
        plan = FaultPlan([FaultSpec("heap.alloc", "oom")])
        rt = faulted_runtime(plan, cg=CGPolicy(recycling=False, paranoid=True))
        m = Mutator(rt)
        cycles_before = rt.tracing.work.cycles
        with m.frame():
            node = m.new("Node")  # very first allocation is sabotaged
            assert not node.freed
        assert rt.fault_stats["injected.heap.alloc"] == 1
        assert rt.fault_stats["recovered.backstop"] == 1
        assert rt.tracing.work.cycles == cycles_before + 1
        assert_clean(rt)

    def test_unrecoverable_oom_carries_crash_dump(self):
        plan = FaultPlan([FaultSpec("heap.alloc", "oom", count=None)])
        rt = faulted_runtime(plan, cg=CGPolicy(recycling=False, paranoid=True))
        m = Mutator(rt)
        with pytest.raises(OutOfMemoryError) as excinfo:
            with m.frame():
                m.new("Node")
        dump = excinfo.value.dump
        assert isinstance(dump, dict)
        json.dumps(dump)  # serializable end to end
        assert dump["site"] == "heap.alloc"
        assert dump["heap"]["capacity_words"] == rt.heap.capacity
        assert dump["equilive"]["blocks"] >= 0
        assert dump["recycle"]["parked_objects"] == 0
        assert dump["retained"]["mark_visits"] >= 0
        assert dump["frames"][0]["thread"] == "main"
        assert dump["fault_plan"]["fired"]["heap.alloc"] >= 2
        assert dump["request"]["cls"] == "Node"
        assert rt.fault_stats["oom.dumps"] == 1

    def test_recovery_preserves_mutator_counters(self):
        def busy(runtime):
            m = Mutator(runtime)
            with m.frame():
                keeper = m.new("Node")
                for _ in range(20):
                    with m.frame():
                        a = m.new("Node")
                        m.putfield(keeper, "next", a)
            return runtime.collector.stats

        clean = busy(faulted_runtime(None,
                                     cg=CGPolicy(recycling=True,
                                                 paranoid=True)))
        plan = FaultPlan([FaultSpec("heap.alloc", "oom", after=5)])
        rt = faulted_runtime(plan, cg=CGPolicy(recycling=True, paranoid=True))
        faulted = busy(rt)
        assert rt.fault_stats["injected.heap.alloc"] == 1
        assert faulted.objects_created == clean.objects_created
        assert faulted.contaminations == clean.contaminations
        # The backstop GC may reclaim some objects the frame pops would
        # have (collected_by_msa); nothing is lost or double-counted.
        assert (faulted.objects_popped + faulted.collected_by_msa
                == clean.objects_popped + clean.collected_by_msa)
        assert_clean(rt)

    def test_fault_metrics_folded_only_when_armed(self):
        plan = FaultPlan([FaultSpec("heap.alloc", "oom")])
        rt = faulted_runtime(plan, cg=CGPolicy(recycling=False, paranoid=True))
        m = Mutator(rt)
        with m.frame():
            m.new("Node")
        counters = collect_runtime_metrics(rt).counters
        assert counters["fault.injected.heap.alloc"] == 1
        assert counters["fault.recovered.backstop"] == 1

        clean = faulted_runtime(None)
        m2 = Mutator(clean)
        with m2.frame():
            m2.new("Node")
        assert not any(name.startswith("fault.")
                       for name in collect_runtime_metrics(clean).counters)


MAIN = "class Main\nmethod Main.main(0)\n"
STRAIGHT_LINE = MAIN + "    const 1\n    pop\n" * 40 + "    const 7\n    retval\n"


def assembled_runtime(plan):
    program = assemble(STRAIGHT_LINE)
    config = RuntimeConfig(cg=CGPolicy(paranoid=True), faults=plan)
    return Runtime(config, program=program)


class TestInterpStepTrap:
    def test_trap_fires_at_exact_instruction(self):
        plan = FaultPlan([FaultSpec("interp.step", "trap", after=10)])
        rt = assembled_runtime(plan)
        with pytest.raises(TrapFault) as excinfo:
            rt.run("Main.main")
        report = excinfo.value.report
        assert report.site == "interp.step"
        assert report.kind == "trap"
        assert rt.interpreter.instructions_executed == 10
        assert report.dump is not None
        json.dumps(report.dump)
        assert rt.fault_stats["injected.interp.step"] == 1

    def test_trap_beyond_program_never_fires(self):
        plan = FaultPlan([FaultSpec("interp.step", "trap", after=10_000)])
        rt = assembled_runtime(plan)
        assert rt.run("Main.main") == 7
        assert rt.fault_stats["injected.interp.step"] == 0

    def test_armed_but_unfired_plan_matches_clean_run(self):
        clean = assembled_runtime(None)
        assert clean.run("Main.main") == 7
        plan = FaultPlan([FaultSpec("interp.step", "trap", after=10_000)])
        armed = assembled_runtime(plan)
        assert armed.run("Main.main") == 7
        assert (armed.interpreter.instructions_executed
                == clean.interpreter.instructions_executed)
        assert armed.ops == clean.ops


class TestFaultDispatchParity:
    """Faults fire at identical instruction indices across dispatch tiers.

    The closure tier fuses superinstructions; the fault wrapper slices the
    budget at the firing point, so a trap must never skid past a fused
    pair — whatever the ``after`` index, all five tiers stop at exactly
    the same instruction with the same fault_stats.  The compiled tier
    adds generated multi-instruction traces: the budget slice must refuse
    a trace it cannot finish and fall back to single-stepped closures so
    the trap still lands on the exact index.  The tiered tier adds the
    promotion boundary: the trap index must be unchanged whether it lands
    before or after a method's promotion to the compiled tier.
    """

    # Straight-line const+add blocks: plenty of fused pairs for the trap
    # index to land in the middle of.
    FUSED_LINE = (
        MAIN
        + "    const 0\n    store 0\n"
        + "    load 0\n    const 1\n    add\n    store 0\n" * 12
        + "    load 0\n    retval\n"
    )

    ALLOC_LOOP = (
        "class Node\nfield next\n"
        + MAIN
        + "    const 0\n    store 0\n"
        + "loop:\n"
        + "    load 0\n    const 30\n    if_icmpge done\n"
        + "    new Node\n    pop\n"
        + "    iinc 0 1\n    goto loop\n"
        + "done:\n    load 0\n    retval\n"
    )

    DISPATCHES = ("chain", "table", "closure", "compiled", "tiered")

    def run_faulted(self, source, plan, dispatch, heap_words=1 << 14,
                    **config_kwargs):
        program = assemble(source)
        config = RuntimeConfig(
            heap_words=heap_words,
            cg=CGPolicy(paranoid=True),
            faults=plan,
            dispatch=dispatch,
            **config_kwargs,
        )
        return Runtime(config, program=program)

    @pytest.mark.parametrize("after", [1, 4, 5, 6, 17, 40])
    def test_trap_index_identical_across_tiers(self, after):
        stops = {}
        for dispatch in self.DISPATCHES:
            plan = FaultPlan([FaultSpec("interp.step", "trap", after=after)])
            rt = self.run_faulted(self.FUSED_LINE, plan, dispatch)
            with pytest.raises(TrapFault):
                rt.run("Main.main")
            stops[dispatch] = (
                rt.interpreter.instructions_executed,
                dict(rt.fault_stats),
            )
            assert rt.interpreter.instructions_executed == after
        assert stops["table"] == stops["chain"]
        assert stops["closure"] == stops["table"]
        assert stops["compiled"] == stops["table"]
        assert stops["tiered"] == stops["table"]

    @pytest.mark.parametrize("after", [3, 25, 120, 400])
    def test_trap_index_unchanged_across_promotion(self, after):
        # A hot loop under aggressive promotion (promote_after=2): early
        # ``after`` values land while Main.main is still on the closure
        # tier, late ones after it has been promoted to generated code.
        # Either side of the boundary, the trap must land on exactly the
        # same instruction index the chain tier stops at.
        hot_loop = (
            MAIN
            + "    const 0\n    store 0\n"
            + "loop:\n"
            + "    load 0\n    const 200\n    if_icmpge done\n"
            + "    iinc 0 1\n    goto loop\n"
            + "done:\n    load 0\n    retval\n"
        )
        stops = {}
        for dispatch in ("chain", "tiered"):
            plan = FaultPlan([FaultSpec("interp.step", "trap", after=after)])
            rt = self.run_faulted(hot_loop, plan, dispatch,
                                  promote_after=2)
            with pytest.raises(TrapFault):
                rt.run("Main.main")
            stops[dispatch] = (
                rt.interpreter.instructions_executed,
                dict(rt.fault_stats),
            )
            assert rt.interpreter.instructions_executed == after
        assert stops["tiered"] == stops["chain"]
        # Sanity on the scenario itself: the late trap indices really do
        # land after promotion (the early ones before it).
        rt_clean = self.run_faulted(hot_loop, FaultPlan([]), "tiered",
                                    promote_after=2)
        assert rt_clean.run("Main.main") == 200
        assert rt_clean.interpreter.methods_promoted > 0

    def test_heap_alloc_cascade_identical_across_tiers(self):
        outcomes = {}
        for dispatch in self.DISPATCHES:
            plan = FaultPlan([FaultSpec("heap.alloc", "oom", after=5)])
            rt = self.run_faulted(self.ALLOC_LOOP, plan, dispatch,
                                  heap_words=4096)
            result = rt.run("Main.main")
            assert result == 30
            outcomes[dispatch] = (
                dict(rt.fault_stats),
                rt.interpreter.instructions_executed,
                rt.ops,
                rt.collector.stats,
            )
            assert rt.fault_stats["injected.heap.alloc"] == 1
        assert outcomes["table"] == outcomes["chain"]
        assert outcomes["closure"] == outcomes["table"]
        assert outcomes["compiled"] == outcomes["table"]
        assert outcomes["tiered"] == outcomes["table"]


class TestNativeCallEscape:
    NATIVE_SOURCE = """
    class Main
    method Main.main(0)
        const 20
        invokestatic Main.twice
        retval
    """

    def make_vm(self, plan):
        program = assemble(self.NATIVE_SOURCE)
        rt = Runtime(
            RuntimeConfig(cg=CGPolicy(paranoid=True), faults=plan),
            program=program,
        )
        cls = rt.program.lookup("Main")
        cls.add_method(
            JMethod("twice", 1, native=lambda env, args: args[0] * 2)
        )
        return rt

    def test_native_invocation_fails_structurally(self):
        plan = FaultPlan([FaultSpec("native.call", "escape")])
        rt = self.make_vm(plan)
        with pytest.raises(NativeCallFault) as excinfo:
            rt.run("Main.main")
        report = excinfo.value.report
        assert report.site == "native.call"
        assert "Main.twice" in report.message
        assert rt.fault_stats["injected.native.call"] == 1

    def test_unfired_plan_leaves_native_call_intact(self):
        plan = FaultPlan([FaultSpec("native.call", "escape", after=50)])
        rt = self.make_vm(plan)
        assert rt.run("Main.main") == 40

    def test_callback_into_java_fails_structurally(self):
        from repro.jvm.natives import NativeEnv

        plan = FaultPlan([FaultSpec("native.call", "escape", after=1)])
        rt = self.make_vm(plan)  # hit 0: the invokestatic boundary
        assert rt.run("Main.main") == 40
        env = NativeEnv(rt, rt.main_thread)
        with pytest.raises(NativeCallFault) as excinfo:
            env.call("Main.main", [])  # hit 1 fires at the callback
        assert excinfo.value.report.context["method"] == "Main.main"
