"""Parallel-harness fault tolerance: retries, timeouts, crash quarantine."""

import pytest

from repro.faults import FaultPlan, QuarantinedCellError
from repro.harness import figures as figures_mod
from repro.harness.figures import cached_run, clear_cache, prefetch


@pytest.fixture(autouse=True)
def isolated_harness():
    clear_cache()
    figures_mod.set_fault_plan(None)
    figures_mod.set_result_cache(None)
    yield
    clear_cache()
    figures_mod.set_fault_plan(None)
    figures_mod.set_result_cache(None)


def grid_keys(plan=None):
    return [figures_mod.cell_key(name, 1, "cg-nogc", plan=plan)
            for name in figures_mod.BENCH_ORDER]


class TestCrashQuarantine:
    def test_poisoned_cell_cannot_sink_the_grid(self):
        plan = FaultPlan.parse("harness.worker:crash:cell=jess:count=inf")
        figures_mod.set_fault_plan(plan)
        prefetch(["4.2"], jobs=2, retries=1)

        quarantined = figures_mod.quarantined()
        assert len(quarantined) == 1
        (key, report), = quarantined.items()
        assert key[0] == "jess"
        assert report.site == "harness.worker"
        assert report.kind == "crash"
        assert report.context["attempts"] == 2  # 1 try + 1 retry

        # Every other cell completed despite the poisoned neighbour.
        for key in grid_keys(plan):
            if key[0] != "jess":
                assert key in figures_mod._CACHE

        # Readers get a structured error, not a hang or a recompute.
        with pytest.raises(QuarantinedCellError) as excinfo:
            cached_run("jess", 1, "cg-nogc")
        assert excinfo.value.cell_id == "jess:1:cg-nogc"
        assert excinfo.value.report.kind == "crash"

        # ...and the figure that needs the cell reports the same way.
        with pytest.raises(QuarantinedCellError):
            figures_mod.ALL_FIGURES["4.2"]()

    def test_transient_crash_recovers_on_retry(self):
        # count=1: only attempt 0 is sabotaged; the retry must succeed.
        plan = FaultPlan.parse("harness.worker:crash:cell=jess:count=1")
        figures_mod.set_fault_plan(plan)
        prefetch(["4.2"], jobs=2, retries=2)
        assert figures_mod.quarantined() == {}
        for key in grid_keys(plan):
            assert key in figures_mod._CACHE

    def test_sequential_path_quarantines_too(self):
        plan = FaultPlan.parse("harness.worker:crash:cell=db:count=inf")
        figures_mod.set_fault_plan(plan)
        prefetch(["4.2"], jobs=1, retries=0)
        quarantined = figures_mod.quarantined()
        assert [key[0] for key in quarantined] == ["db"]
        assert all(key in figures_mod._CACHE
                   for key in grid_keys(plan) if key[0] != "db")

    def test_clear_cache_lifts_quarantine(self):
        plan = FaultPlan.parse("harness.worker:crash:cell=db:count=inf")
        figures_mod.set_fault_plan(plan)
        prefetch(["4.2"], jobs=1, retries=0)
        assert figures_mod.quarantined()
        clear_cache()
        assert figures_mod.quarantined() == {}
        figures_mod.set_fault_plan(None)
        assert cached_run("db", 1, "cg-nogc").workload == "db"


class TestHangTolerance:
    def test_short_hang_just_delays_the_cell(self):
        plan = FaultPlan.parse(
            "harness.worker:hang:cell=jess:seconds=0.05:count=inf"
        )
        figures_mod.set_fault_plan(plan)
        prefetch(["4.2"], jobs=1, retries=0)
        assert figures_mod.quarantined() == {}
        for key in grid_keys(plan):
            assert key in figures_mod._CACHE

    def test_cell_timeout_retries_past_a_hang(self):
        # Attempt 0 hangs well past the cell timeout; attempt 1 is clean.
        plan = FaultPlan.parse(
            "harness.worker:hang:cell=jess:seconds=5:count=1"
        )
        figures_mod.set_fault_plan(plan)
        prefetch(["4.2"], jobs=2, cell_timeout=1.0, retries=2)
        assert figures_mod.quarantined() == {}
        for key in grid_keys(plan):
            assert key in figures_mod._CACHE


class TestPlanKeyedCache:
    def test_faulted_and_clean_cells_never_collide(self):
        clean_key = figures_mod.cell_key("db", 1, "cg-nogc")
        plan = FaultPlan.parse("heap.alloc:oom:after=1000000000")
        armed_key = figures_mod.cell_key("db", 1, "cg-nogc", plan=plan)
        assert clean_key != armed_key
        assert clean_key[:5] == armed_key[:5]
