"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os

import pytest

from repro import CGPolicy, Mutator, Program, Runtime, RuntimeConfig


def make_runtime(
    heap_words: int = 1 << 16,
    cg: CGPolicy | None = None,
    tracing: str = "marksweep",
    gc_period_ops: int | None = None,
    paranoid: bool = True,
    dispatch: str | None = None,
    **cg_overrides,
) -> Runtime:
    """A runtime with paranoid CG checking on by default (tests only).

    ``dispatch`` defaults to the ``REPRO_DISPATCH`` env knob (falling back
    to the runtime default), so CI can sweep the whole suite across the
    chain/table/closure/compiled/tiered tiers without touching any test.
    """
    if cg is None:
        cg = CGPolicy(paranoid=paranoid, **cg_overrides)
    if dispatch is None:
        dispatch = os.environ.get("REPRO_DISPATCH", "tiered")
    config = RuntimeConfig(
        heap_words=heap_words,
        cg=cg,
        tracing=tracing,
        gc_period_ops=gc_period_ops,
        dispatch=dispatch,
    )
    runtime = Runtime(config)
    define_test_classes(runtime.program)
    return runtime


def define_test_classes(program: Program) -> None:
    """The small class library most tests share."""
    program.define_class("Node", fields=["next", "payload"])
    program.define_class("Pair", fields=["first", "second"])
    program.define_class("Box", fields=["value"])
    program.define_class("Big", fields=[f"f{i}" for i in range(14)])


@pytest.fixture
def rt() -> Runtime:
    return make_runtime()


@pytest.fixture
def rt_no_tracing() -> Runtime:
    return make_runtime(tracing="none")


@pytest.fixture
def m(rt: Runtime) -> Mutator:
    return Mutator(rt)


def assert_clean(runtime: Runtime) -> None:
    """Heap accounting and equilive invariants all hold."""
    runtime.check_heap_accounting()
    runtime.check_cg_invariants()
