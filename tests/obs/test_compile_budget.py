"""Compile-budget accounting surfaces: metrics, snapshots, request latency.

The interpreter's always-on compile counters (closure compiles, codegen,
promotions, adaptive recompiles, persistent-cache traffic) feed three
read-only surfaces — ``vm.compile.*`` in the metrics registry, the
``compile`` section of the ``cg-snapshot/4`` schema, and the per-request
``compile_ms`` attribution in ``RunResult.latency``.  All three must be
pure observation: armed or not, a run's counters stay bit-identical.
"""

from repro import CGPolicy, Runtime, RuntimeConfig, assemble
from repro.api import RunRequest, execute
from repro.obs.heartbeat import LiveSnapshot, runtime_snapshot
from repro.obs.metrics import collect_runtime_metrics

HOT_SOURCE = (
    "class Main\nmethod Main.main(0)\n"
    + "    const 0\n    store 0\n    const 0\n    store 1\n"
    + "loop:\n"
    + "    load 0\n    const 400\n    if_icmpge done\n"
    + "    load 0\n    invokestatic Main.step\n"
    + "    load 1\n    add\n    store 1\n"
    + "    iinc 0 1\n    goto loop\n"
    + "done:\n    load 1\n    retval\n"
    + "method Main.step(1)\n"
    + "    load 0\n    const 2\n    mul\n    retval\n"
)


def run_tiered(**config_kwargs):
    config_kwargs.setdefault("cg", CGPolicy(paranoid=True))
    config_kwargs.setdefault("dispatch", "tiered")
    rt = Runtime(RuntimeConfig(**config_kwargs),
                 program=assemble(HOT_SOURCE))
    result = rt.run("Main.main", [])
    assert result == sum(2 * i for i in range(400))
    return rt


class TestMetricsSurface:
    def test_vm_compile_counters_present(self):
        rt = run_tiered(promote_after=4)
        snapshot = collect_runtime_metrics(rt).snapshot()
        assert snapshot["vm.compile.methods"] > 0
        assert snapshot["vm.compile.codegenned"] > 0
        assert snapshot["vm.compile.promoted"] > 0
        assert snapshot["vm.compile.ms"] > 0.0
        assert "vm.compile.cache_hits" in snapshot
        assert "vm.compile.cache_misses" in snapshot

    def test_cold_tiered_run_codegens_nothing(self):
        # Cold profile AND cold caches: a warm codegen cache would
        # promote on the first visit regardless of the threshold.
        from repro.jvm.compiledcode import clear_codegen_caches

        clear_codegen_caches()
        rt = run_tiered(promote_after=1_000_000)
        snapshot = collect_runtime_metrics(rt).snapshot()
        assert snapshot["vm.compile.codegenned"] == 0
        assert snapshot["vm.compile.promoted"] == 0
        assert snapshot["vm.compile.methods"] > 0  # closure tier still compiles

    def test_unstarted_runtime_has_no_compile_metrics(self):
        # No interpreter yet -> the compile block is absent, not zeroed.
        rt = Runtime(RuntimeConfig())
        snapshot = collect_runtime_metrics(rt).snapshot()
        assert "vm.compile.methods" not in snapshot


class TestSnapshotSurface:
    def test_compile_section_in_snapshot(self):
        rt = run_tiered(promote_after=4)
        data = runtime_snapshot(rt)
        assert data["schema"] == "cg-snapshot/4"
        compile_section = data["compile"]
        assert compile_section["methods_promoted"] > 0
        assert compile_section["methods_compiled"] > 0
        assert compile_section["compile_ms"] >= 0.0
        assert compile_section["codegen_ms"] >= 0.0
        assert set(compile_section) == {
            "methods_compiled", "methods_codegenned", "methods_promoted",
            "methods_recompiled", "compile_ms", "codegen_ms",
            "cache_hits", "cache_misses",
        }

    def test_compile_section_none_before_interpreter(self):
        rt = Runtime(RuntimeConfig())
        assert runtime_snapshot(rt)["compile"] is None

    def test_live_snapshot_serializes(self):
        rt = run_tiered(promote_after=4)
        snap = LiveSnapshot.capture(rt)
        assert snap.to_json()  # round-trips through json.dumps
        assert snap.data["compile"]["methods_promoted"] > 0


class TestRequestAttribution:
    def run_profiled(self, system):
        return execute(RunRequest("server", system=system, requests=30,
                                  profile=True, cold_start=True))

    def test_latency_carries_compile_fields(self):
        latency = self.run_profiled("cg").latency
        assert latency["requests"] == 30
        assert set(latency["compile_ms"]) == {"p50_ms", "p99_ms",
                                              "p999_ms", "max_ms"}
        assert latency["compile_total_ms"] >= 0.0
        assert latency["first_request_ms"] > 0.0
        assert latency["first_request_compile_ms"] >= 0.0
        assert (latency["first_request_compile_ms"]
                <= latency["compile_total_ms"] + 1e-9)

    def test_compiled_system_pays_compile_up_front(self):
        # Eager per-method codegen lands inside the earliest request
        # windows, so the compiled system must attribute some compile
        # time to requests; counters still match the tiered default.
        tiered = self.run_profiled("cg")
        compiled = self.run_profiled("cg-compiled")
        assert compiled.ops == tiered.ops
        assert compiled.latency["compile_total_ms"] > 0.0

    def test_accounting_never_changes_counters(self):
        profiled = self.run_profiled("cg")
        plain = execute(RunRequest("server", system="cg", requests=30))
        assert plain.ops == profiled.ops
        assert plain.objects_created == profiled.objects_created
