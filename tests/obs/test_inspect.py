"""``repro inspect``: spool reading, rendering, fleet rollup, CLI.

The acceptance bar for the whole subsystem is the last test here:
a run started in *another process* with ``heartbeat_every`` armed can be
inspected live — ``repro inspect`` renders a snapshot while the child is
still in flight.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.obs import inspect as inspect_mod
from repro.obs.heartbeat import SNAPSHOT_SCHEMA


def fake_snapshot(**over):
    snap = {
        "schema": SNAPSHOT_SCHEMA, "kind": "heartbeat", "phase": "live",
        "seq": 3, "pid": 1234, "ops": 4200,
        "labels": {"workload": "jess", "size": 1, "system": "cg"},
        "uptime_s": 0.5, "allocator": "next-fit",
        "heap": {"capacity_words": 1000, "live_words": 400,
                 "peak_live_words": 500, "occupancy": 0.4,
                 "fragmentation": 0.1, "live_objects": 40},
        "equilive": {"blocks": 5, "static_blocks": 1,
                     "largest_block": 100, "live_objects": 40},
        "recycle": {"parked_objects": 2, "parked_words": 20},
        "frames": [{"thread": "main", "frames": [
            {"frame_id": 1, "depth": 0, "method": "Main.main"},
            {"frame_id": 2, "depth": 1, "method": "Rete.fire"},
        ]}],
        "fault_stats": {},
        "metrics": {"counters": {"cg.objects_popped": 7}, "gauges": {},
                    "histograms": {}},
    }
    snap.update(over)
    return snap


def write_run(spool: Path, pid: int, snaps, ordinal=1) -> Path:
    spool.mkdir(parents=True, exist_ok=True)
    path = spool / f"run-{pid}-{ordinal}.jsonl"
    path.write_text("".join(json.dumps(s) + "\n" for s in snaps))
    return path


class TestSpoolReading:
    def test_read_snapshots_tolerates_garbage(self, tmp_path):
        path = tmp_path / "run-1-1.jsonl"
        path.write_text('{"ops": 1}\nnot json\n\n[1,2]\n{"ops": 2}\n')
        snaps = inspect_mod.read_snapshots(path)
        assert [s["ops"] for s in snaps] == [1, 2]

    def test_read_snapshots_missing_file(self, tmp_path):
        assert inspect_mod.read_snapshots(tmp_path / "gone.jsonl") == []

    def test_resolve_target_pid_picks_newest(self, tmp_path):
        old = write_run(tmp_path, 77, [fake_snapshot(seq=1)], ordinal=1)
        time.sleep(0.02)
        new = write_run(tmp_path, 77, [fake_snapshot(seq=2)], ordinal=2)
        assert inspect_mod.resolve_target("77", tmp_path) == new
        assert inspect_mod.resolve_target(str(old), tmp_path) == old
        assert inspect_mod.resolve_target("9999999", tmp_path) is None


class TestRendering:
    def test_render_snapshot_mentions_the_load_bearing_facts(self):
        text = inspect_mod.render_snapshot(fake_snapshot())
        assert "pid=1234" in text
        assert "jess:1:cg" in text
        assert "40.0% occupied" in text
        assert "5 live" in text
        assert "Rete.fire" in text
        assert "cg.objects_popped=7" in text

    def test_render_snapshot_degrades_on_sparse_data(self):
        text = inspect_mod.render_snapshot(
            {"schema": SNAPSHOT_SCHEMA, "kind": "heartbeat"}
        )
        assert "cell=?" in text


class TestFleetRollup:
    def test_statuses_and_aggregates(self, tmp_path):
        write_run(tmp_path, 10, [fake_snapshot(pid=10)], ordinal=1)
        write_run(tmp_path, 11,
                  [fake_snapshot(pid=11, phase="final",
                                 labels={"workload": "compress", "size": 1,
                                         "system": "cg"})],
                  ordinal=1)
        stale = write_run(tmp_path, 12, [fake_snapshot(pid=12)], ordinal=1)
        old = time.time() - 3600
        os.utime(stale, (old, old))
        (tmp_path / "quarantine-db_1_cg.json").write_text(json.dumps(
            {"cell": "db:1:cg", "site": "harness.worker", "kind": "crash",
             "message": "boom"}
        ))
        rollup = inspect_mod.fleet_rollup(tmp_path, stale_after=10.0)
        agg = rollup["aggregate"]
        assert agg["runs"] == 3
        assert (agg["live"], agg["done"], agg["stale"]) == (1, 1, 1)
        assert agg["quarantined"] == 1
        assert agg["workers"] == [10, 11, 12]
        # done runs are excluded from aggregate pressure: 2 active runs.
        assert agg["live_words"] == 800
        assert agg["capacity_words"] == 2000
        assert agg["heap_pressure"] == pytest.approx(0.4)
        text = inspect_mod.render_fleet(rollup)
        assert "1 live, 1 done, 1 stale, 1 quarantined" in text
        assert "db:1:cg" in text and "boom" in text
        assert "aggregate heap pressure" in text

    def test_empty_spool(self, tmp_path):
        rollup = inspect_mod.fleet_rollup(tmp_path)
        assert rollup["aggregate"]["runs"] == 0
        assert "0 run(s)" in inspect_mod.render_fleet(rollup)


class TestCli:
    def test_single_target_json(self, tmp_path, capsys):
        path = write_run(tmp_path, 55, [fake_snapshot(seq=1),
                                        fake_snapshot(seq=9)])
        assert inspect_mod.main([str(path), "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["seq"] == 9

    def test_fleet_json_default_mode(self, tmp_path, capsys):
        write_run(tmp_path, 55, [fake_snapshot()])
        assert inspect_mod.main(["--spool", str(tmp_path), "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["aggregate"]["runs"] == 1

    def test_missing_target_fails(self, tmp_path, capsys):
        assert inspect_mod.main(
            ["31337", "--spool", str(tmp_path)]
        ) == 1
        assert "no spool file" in capsys.readouterr().err

    def test_watch_count_renders_new_seqs(self, tmp_path, capsys):
        path = write_run(tmp_path, 55, [fake_snapshot(seq=1)])
        code = inspect_mod.main([str(path), "--watch", "--json",
                                 "--count", "1", "--timeout", "5"])
        assert code == 0
        assert json.loads(capsys.readouterr().out)["seq"] == 1


CHILD = textwrap.dedent("""
    import sys
    from repro import api
    # Loop forever: the parent inspects us mid-flight, then kills us.
    while True:
        api.run("jess", 1, "cg", heartbeat_every=200,
                heartbeat_spool=sys.argv[1])
""")


class TestCrossProcess:
    def test_inspect_attaches_to_in_flight_run(self, tmp_path):
        """Acceptance: render a live snapshot of a run in another process."""
        spool = tmp_path / "spool"
        env = dict(os.environ, PYTHONPATH="src")
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD, str(spool)],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            cwd=Path(__file__).resolve().parents[2],
        )
        try:
            deadline = time.time() + 60
            snap = None
            while time.time() < deadline:
                target = inspect_mod.resolve_target(str(child.pid), spool)
                if target is not None:
                    snap = inspect_mod.latest_snapshot(target)
                    if snap is not None and snap.get("phase") == "live":
                        break
                assert child.poll() is None, "child died before heartbeating"
                time.sleep(0.05)
            assert snap is not None and snap["phase"] == "live", \
                "never saw a live in-flight snapshot"
            assert snap["pid"] == child.pid
            assert snap["labels"] == {"workload": "jess", "size": 1,
                                      "system": "cg"}
            # Workloads tick in bulk (mutator.tick(n)), so beats land at
            # the first op count >= the 200-op boundary, not exactly on it.
            assert snap["ops"] >= 200
            text = inspect_mod.render_snapshot(snap)
            assert "jess:1:cg" in text
            # And the fleet view sees the same run as live.
            rollup = inspect_mod.fleet_rollup(spool)
            assert child.pid in rollup["aggregate"]["workers"]
        finally:
            child.kill()
            child.wait()
