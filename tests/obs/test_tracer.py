"""Tracer behaviour: ring bounds, JSONL round trips, and live-run parity."""

from repro import CGPolicy, FaultPlan, FaultSpec, Mutator, Runtime, RuntimeConfig
from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    read_trace,
    summarize,
    write_trace,
)
from tests.conftest import define_test_classes


def traced_runtime(tracer, **config_kw):
    config = RuntimeConfig(
        heap_words=config_kw.pop("heap_words", 1 << 14),
        cg=config_kw.pop("cg", CGPolicy(paranoid=True)),
        tracing=config_kw.pop("tracing", "marksweep"),
        tracer=tracer,
        **config_kw,
    )
    runtime = Runtime(config)
    define_test_classes(runtime.program)
    return runtime


class TestRingBuffer:
    def test_overflow_keeps_newest_events(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit("new", handle=i)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        assert not tracer.complete
        kept = [event.data["handle"] for event in tracer]
        assert kept == [6, 7, 8, 9]
        # Sequence numbers are global, so truncation is visible.
        assert [event.seq for event in tracer] == [6, 7, 8, 9]

    def test_no_overflow_is_complete(self):
        tracer = Tracer(capacity=8)
        for i in range(8):
            tracer.emit("new", handle=i)
        assert tracer.complete
        assert tracer.dropped == 0

    def test_clear_resets_counts(self):
        tracer = Tracer(capacity=2)
        tracer.emit("new")
        tracer.emit("new")
        tracer.emit("new")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.emitted == 0
        assert tracer.complete


class TestNullTracer:
    def test_emits_nothing(self):
        tracer = NullTracer()
        tracer.emit("new", handle=1)
        tracer.emit("union", a=1, b=2)
        assert len(tracer) == 0
        assert list(tracer) == []
        assert tracer.emitted == 0
        assert tracer.kind_counts() == {}

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_default_runtime_uses_null_tracer(self):
        runtime = Runtime(RuntimeConfig(heap_words=1 << 12))
        assert runtime.tracer is NULL_TRACER
        assert runtime.collector.tracer is NULL_TRACER


class TestJsonlRoundTrip:
    def test_lossless_round_trip(self, tmp_path):
        tracer = Tracer(capacity=64)
        tracer.emit("new", handle=1, cls="Node", size=4, depth=0, thread=0)
        tracer.emit("union", a=1, b=2, sizes=[1, 1], target_depth=0,
                    static=False)
        tracer.emit("pin", handle=1, cause="putstatic", members=2,
                    from_depth=0)
        path = str(tmp_path / "trace.jsonl")
        written = write_trace(path, tracer)
        assert written == 3
        meta, events = read_trace(path)
        assert meta["emitted"] == 3
        assert meta["dropped"] == 0
        assert events == list(tracer)

    def test_meta_records_truncation(self, tmp_path):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit("new", handle=i)
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, tracer)
        meta, events = read_trace(path)
        assert meta["dropped"] == 3
        assert [e.seq for e in events] == [3, 4]

    def test_headerless_trace_is_accepted(self, tmp_path):
        path = tmp_path / "bare.jsonl"
        path.write_text('{"seq": 0, "kind": "new", "handle": 7}\n')
        meta, events = read_trace(str(path))
        assert meta["dropped"] == 0
        assert events == [TraceEvent(0, "new", {"handle": 7})]


class TestLiveRunParity:
    """The acceptance bar: the trace alone reproduces the run's counters."""

    def run_busy_program(self, tracer):
        runtime = traced_runtime(
            tracer, heap_words=420,
            cg=CGPolicy(recycling=True, resetting=True, paranoid=True),
            gc_period_ops=400,
            # One injected allocation failure, so the busy program also
            # exercises the fault_inject/degrade/oom_recover event kinds.
            faults=FaultPlan([FaultSpec("heap.alloc", "oom", after=50)]),
        )
        m = Mutator(runtime)
        with m.frame():
            keeper = m.new("Node")
            m.set_local(0, keeper)
            with m.frame():
                victim = m.new("Node")
                m.putfield(keeper, "next", victim)
                m.root(victim)
            with m.frame():
                m.areturn(m.new("Node"))
            m.putstatic("pin", m.new("Node"))
            for _ in range(120):
                with m.frame():
                    a = m.new("Node")
                    b = m.new("Node")
                    m.putfield(a, "next", b)
                    m.root(a)
                    m.root(b)
            with m.frame():
                m.root(m.new_array(96))  # recycle first-fit must miss
            m.putfield(keeper, "next", None)
        return runtime

    def test_summary_matches_live_counters_exactly(self):
        tracer = Tracer(capacity=1 << 16)
        runtime = self.run_busy_program(tracer)
        assert tracer.complete
        stats = runtime.collector.stats
        summary = summarize(tracer)
        assert summary.objects_popped == stats.objects_popped
        assert summary.contaminations == stats.contaminations
        assert summary.objects_created == stats.objects_created
        assert summary.frame_pops == stats.frame_pops
        assert summary.blocks_collected == stats.blocks_collected
        assert summary.reset_passes == stats.reset_passes
        assert summary.recycle_hits == stats.objects_recycled
        assert summary.recycle_misses == stats.recycle_misses
        assert summary.gc_cycles == runtime.tracing.work.cycles

    def test_all_event_kinds_captured(self):
        tracer = Tracer(capacity=1 << 16)
        self.run_busy_program(tracer)
        seen = set(tracer.kind_counts())
        assert seen == set(EVENT_KINDS)

    def test_parity_survives_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(capacity=1 << 16)
        runtime = self.run_busy_program(tracer)
        path = str(tmp_path / "run.jsonl")
        write_trace(path, tracer)
        meta, events = read_trace(path)
        summary = summarize(events, complete=meta["dropped"] == 0)
        assert summary.complete
        stats = runtime.collector.stats
        assert summary.objects_popped == stats.objects_popped
        assert summary.contaminations == stats.contaminations

    def test_tracing_does_not_change_collection(self):
        quiet = self.run_busy_program(NULL_TRACER)
        traced = self.run_busy_program(Tracer(capacity=1 << 16))
        a, b = quiet.collector.stats, traced.collector.stats
        assert a.objects_popped == b.objects_popped
        assert a.contaminations == b.contaminations
        assert a.objects_created == b.objects_created


class TestSummaryRendering:
    def test_render_mentions_incomplete_trace(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit("frame_pop", frame=i, depth=0, blocks=0, freed=2)
        summary = summarize(tracer, complete=tracer.complete)
        text = summary.render()
        assert "INCOMPLETE" in text
        assert summary.objects_popped == 4  # only the surviving events
