"""Per-opcode execution histogram (``count_opcodes``).

Counting is opt-in: it swaps in a slower per-instruction dispatch loop, so
it must be exact when enabled (totals equal ``vm.ops``) and completely
absent — no counters allocated, no metrics exported — when disabled.
"""

import pytest

from repro import CGPolicy, Runtime, RuntimeConfig, assemble
from repro.api import run as api_run
from repro.obs.events import Tracer, read_trace, summarize, write_trace
from repro.obs.metrics import collect_runtime_metrics

SOURCE = """
class Node
    field next

class Main

method Main.main(1)
    const 0
    store 1
loop:
    load 1
    load 0
    if_icmpge done
    new Node
    pop
    iinc 1 1
    goto loop
done:
    load 1
    retval
"""

DISPATCHES = ("chain", "table", "closure")


def counted_runtime(dispatch, count_opcodes=True):
    config = RuntimeConfig(
        heap_words=4096,
        cg=CGPolicy(paranoid=True),
        dispatch=dispatch,
        count_opcodes=count_opcodes,
    )
    return Runtime(config, program=assemble(SOURCE))


class TestHistogramTotals:
    @pytest.mark.parametrize("dispatch", DISPATCHES)
    def test_totals_equal_vm_ops(self, dispatch):
        rt = counted_runtime(dispatch)
        assert rt.run("Main.main", [25]) == 25
        hist = rt.interpreter.opcode_histogram()
        assert sum(hist.values()) == rt.ops
        assert sum(hist.values()) == rt.interpreter.instructions_executed
        # The loop shape is known: 25 allocations, 25 pops.
        assert hist["new"] == 25
        assert hist["pop"] == 25

    @pytest.mark.parametrize("dispatch", DISPATCHES)
    def test_histograms_identical_across_tiers(self, dispatch):
        reference = counted_runtime("chain")
        reference.run("Main.main", [10])
        rt = counted_runtime(dispatch)
        rt.run("Main.main", [10])
        assert (rt.interpreter.opcode_histogram()
                == reference.interpreter.opcode_histogram())

    def test_disabled_means_no_counts(self):
        rt = counted_runtime("closure", count_opcodes=False)
        rt.run("Main.main", [5])
        assert rt.interpreter.op_counts is None
        assert rt.interpreter.opcode_histogram() == {}


class TestHistogramExport:
    def test_metrics_registry_gains_vm_op(self):
        rt = counted_runtime("closure")
        rt.run("Main.main", [8])
        reg = collect_runtime_metrics(rt)
        hist = reg.histograms["vm.op"]
        assert sum(hist.values()) == reg.counters["vm.ops"]

    def test_metrics_registry_clean_when_disabled(self):
        rt = counted_runtime("closure", count_opcodes=False)
        rt.run("Main.main", [8])
        reg = collect_runtime_metrics(rt)
        assert "vm.op" not in reg.histograms

    def test_api_run_carries_histogram(self):
        result = api_run("bc-list", 1, "cg", count_opcodes=True)
        hist = result.metrics["histograms"]["vm.op"]
        assert sum(hist.values()) == result.metrics["counters"]["vm.ops"]

    def test_api_run_default_has_no_histogram(self):
        result = api_run("bc-list", 1, "cg")
        assert "vm.op" not in result.metrics.get("histograms", {})

    def test_count_opcodes_excluded_from_fingerprint(self):
        plain = RuntimeConfig(cg=CGPolicy())
        counted = RuntimeConfig(cg=CGPolicy(), count_opcodes=True)
        assert plain.fingerprint() == counted.fingerprint()


class TestTraceSummaryExposure:
    def test_summary_renders_top_opcodes(self):
        summary = summarize([], complete=True,
                            op_hist={"load": 40, "add": 9, "goto": 12})
        assert summary.op_hist == {"load": 40, "add": 9, "goto": 12}
        rendered = summary.render()
        assert "top opcodes" in rendered
        assert "load=40" in rendered

    def test_summary_without_histogram_omits_line(self):
        assert "top opcodes" not in summarize([], complete=True).render()

    def test_trace_meta_round_trips_histogram(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_trace(path, Tracer(), op_hist={"const": 3, "retval": 1})
        meta, events = read_trace(path)
        assert meta["op_hist"] == {"const": 3, "retval": 1}
        assert events == []
