"""Property test: ``MetricsRegistry`` survives to_dict -> JSON -> from_dict.

Heartbeat snapshots carry a full registry dump across a process boundary,
so the serialized form must be lossless: counters, gauges, and histogram
bucket *keys* (always strings after :meth:`observe`) all round-trip, and
``to_dict -> from_dict -> to_dict`` is the identity — including for a
histogram that happens to have zero buckets.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import MetricsRegistry

names = st.text(
    st.characters(whitelist_categories=("Ll", "Nd"), whitelist_characters="._"),
    min_size=1, max_size=20,
)
counters = st.dictionaries(names, st.integers(-(10**9), 10**9), max_size=8)
gauges = st.dictionaries(
    names, st.floats(allow_nan=False, allow_infinity=False, width=32),
    max_size=8,
)
# Bucket keys as observe() would produce them: stringified ints or labels.
buckets = st.dictionaries(
    st.one_of(names, st.integers(0, 1000).map(str)),
    st.integers(0, 10**9),
    max_size=6,
)
histograms = st.dictionaries(names, buckets, max_size=6)


def build(counter_d, gauge_d, hist_d):
    reg = MetricsRegistry()
    reg.counters.update(counter_d)
    reg.gauges.update(gauge_d)
    reg.histograms.update({k: dict(v) for k, v in hist_d.items()})
    return reg


@settings(max_examples=200, deadline=None)
@given(counters, gauges, histograms)
def test_to_dict_from_dict_identity(counter_d, gauge_d, hist_d):
    reg = build(counter_d, gauge_d, hist_d)
    wire = json.loads(json.dumps(reg.to_dict()))
    assert MetricsRegistry.from_dict(wire).to_dict() == reg.to_dict()


def test_empty_histogram_survives():
    reg = MetricsRegistry()
    reg.histograms["cg.age_hist"] = {}
    out = MetricsRegistry.from_dict(reg.to_dict()).to_dict()
    assert out["histograms"] == {"cg.age_hist": {}}


def test_observe_stringifies_bucket_keys():
    reg = MetricsRegistry()
    reg.observe("depth", 3)
    reg.merge_histogram("depth", {3: 2, "3": 1})
    assert reg.histograms["depth"] == {"3": 4}
    wire = json.loads(json.dumps(reg.to_dict()))
    assert MetricsRegistry.from_dict(wire).to_dict() == reg.to_dict()
