"""Latency percentiles: profiler windows → snapshot schema → inspect render."""

import json

from repro.api import run
from repro.obs import inspect as inspect_mod
from repro.obs.heartbeat import SNAPSHOT_SCHEMA, runtime_snapshot
from repro.obs.profile import (
    NULL_PROFILER,
    PhaseProfiler,
    SAMPLE_WINDOW,
)


class TestProfilerPercentiles:
    def test_nearest_rank_percentiles(self):
        profiler = PhaseProfiler()
        # 100 samples of 1ms..100ms: p50 = 50ms, p99 = 99ms, max = 100ms.
        for i in range(1, 101):
            profiler.add("interpret", i / 1000.0)
        summary = profiler.latency_summary()
        dist = summary["interpret"]
        assert dist["p50_ms"] == 50.0
        assert dist["p99_ms"] == 99.0
        assert dist["max_ms"] == 100.0
        assert dist["samples"] == 100
        assert dist["window"] == 100

    def test_single_sample_collapses_all_ranks(self):
        profiler = PhaseProfiler()
        profiler.add("msa", 0.002)
        dist = profiler.latency_summary()["msa"]
        assert dist["p50_ms"] == dist["p99_ms"] == dist["max_ms"] == 2.0

    def test_window_is_bounded_but_lifetime_count_is_not(self):
        profiler = PhaseProfiler()
        for i in range(SAMPLE_WINDOW + 100):
            profiler.add("cg-events", 0.001)
        dist = profiler.latency_summary()["cg-events"]
        assert dist["window"] == SAMPLE_WINDOW
        assert dist["samples"] == SAMPLE_WINDOW + 100

    def test_old_samples_roll_off_the_window(self):
        profiler = PhaseProfiler()
        profiler.add("interpret", 10.0)  # a 10s outlier...
        for _ in range(SAMPLE_WINDOW):
            profiler.add("interpret", 0.001)  # ...pushed out by the window
        assert profiler.latency_summary()["interpret"]["max_ms"] == 1.0

    def test_empty_and_null_profilers_summarize_empty(self):
        assert PhaseProfiler().latency_summary() == {}
        assert NULL_PROFILER.latency_summary() == {}


class TestSnapshotSchema:
    def test_profiled_run_spools_latency_in_heartbeats(self, tmp_path):
        run("jess", 1, "cg", profile=True, heartbeat_every=500,
            heartbeat_spool=str(tmp_path))
        (path,) = tmp_path.glob("run-*.jsonl")
        snap = inspect_mod.latest_snapshot(path)
        assert snap["schema"] == SNAPSHOT_SCHEMA
        latency = snap["latency"]
        assert latency, "profiled heartbeat run must carry percentiles"
        for dist in latency.values():
            assert dist["p50_ms"] <= dist["p99_ms"] <= dist["max_ms"]
            assert dist["window"] <= SAMPLE_WINDOW

    def test_unprofiled_heartbeat_run_spools_null_latency(self, tmp_path):
        run("jess", 1, "cg", heartbeat_every=500,
            heartbeat_spool=str(tmp_path))
        (path,) = tmp_path.glob("run-*.jsonl")
        assert inspect_mod.latest_snapshot(path)["latency"] is None

    def test_runtime_snapshot_latency_section(self):
        from repro.jvm.runtime import Runtime, RuntimeConfig
        from repro.obs.profile import PhaseProfiler

        runtime = Runtime(RuntimeConfig(heap_words=1 << 16))
        runtime.profiler = PhaseProfiler()
        runtime.profiler.add("interpret", 0.004)
        snap = runtime_snapshot(runtime)
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["latency"]["interpret"]["p50_ms"] == 4.0
        # JSON-serializable as spooled.
        json.dumps(snap, default=str)

    def test_latency_none_when_profiling_off(self):
        from repro.jvm.runtime import Runtime, RuntimeConfig

        runtime = Runtime(RuntimeConfig(heap_words=1 << 16))
        snap = runtime_snapshot(runtime)
        assert snap["latency"] is None


class TestInspectRendering:
    def test_render_snapshot_shows_percentiles(self):
        snap = {
            "schema": SNAPSHOT_SCHEMA, "kind": "heartbeat", "pid": 1,
            "latency": {"interpret": {"p50_ms": 0.5, "p99_ms": 2.25,
                                      "max_ms": 9.0, "samples": 640,
                                      "window": 512}},
        }
        text = inspect_mod.render_snapshot(snap)
        assert "latency interpret: p50 0.500ms p99 2.250ms max 9.000ms" in text
        assert "(640 samples, window 512)" in text

    def test_fleet_renders_pool_status(self, tmp_path):
        (tmp_path / "pool-77.json").write_text(json.dumps({
            "kind": "pool", "phase": "serving", "pid": 77, "jobs": 2,
            "queued": 3, "completed": 9, "failed": 1, "steals": 4,
            "replaced": 2,
            "workers": [
                {"id": 0, "pid": 78, "state": "busy",
                 "cell": "jess:1:cg", "jobs_done": 5},
                {"id": 1, "pid": 79, "state": "idle",
                 "cell": None, "jobs_done": 4},
            ],
        }))
        rollup = inspect_mod.fleet_rollup(tmp_path)
        assert len(rollup["pools"]) == 1
        text = inspect_mod.render_fleet(rollup)
        assert "pool pid=77 [serving]: 2 worker(s) (1 busy)" in text
        assert "3 queued" in text and "4 steal(s)" in text
        assert "worker 0 pid=78 busy (5 jobs) ← jess:1:cg" in text

    def test_non_pool_json_in_spool_is_ignored(self, tmp_path):
        (tmp_path / "pool-1.json").write_text('{"kind": "other"}')
        (tmp_path / "pool-2.json").write_text("not json")
        assert inspect_mod.discover_pools(tmp_path) == []
