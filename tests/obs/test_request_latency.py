"""Per-request pause attribution: the maths, the plumbing, the surface.

The tentpole claim — "CG never stops the world mid-request" — is only
checkable if pause time is attributed to request windows correctly and
the numbers survive the trip from profiler to RunResult to heartbeat to
``repro inspect``.  These tests pin each hop.
"""

import pytest

from repro.api import RunRequest, execute, result_from_dict, result_to_dict
from repro.obs.profile import (
    NULL_PROFILER,
    PAUSE_BUCKETS_MS,
    PAUSE_PHASES,
    PhaseProfiler,
    _nearest_rank,
)


class TestNearestRank:
    def test_single_sample_is_every_percentile(self):
        dist = _nearest_rank([0.004])
        assert dist == {"p50_ms": 4.0, "p99_ms": 4.0,
                        "p999_ms": 4.0, "max_ms": 4.0}

    def test_percentiles_of_uniform_ramp(self):
        window = sorted((i + 1) / 1000.0 for i in range(1000))
        dist = _nearest_rank(window)
        assert dist["p50_ms"] == pytest.approx(500.0)
        assert dist["p99_ms"] == pytest.approx(990.0)
        assert dist["p999_ms"] == pytest.approx(999.0)
        assert dist["max_ms"] == pytest.approx(1000.0)


class TestAttribution:
    def test_pause_inside_window_charged_to_request(self):
        profiler = PhaseProfiler()
        profiler.request_begin()
        profiler.add("msa", 0.002)
        profiler.add("interpret", 0.010)  # mutator work: not a pause
        profiler.request_end()
        summary = profiler.request_summary()
        assert summary["requests"] == 1
        assert summary["pause_ms"]["max_ms"] == pytest.approx(2.0)

    def test_pause_outside_window_not_charged(self):
        profiler = PhaseProfiler()
        profiler.add("msa", 0.005)  # between requests
        profiler.request_begin()
        profiler.request_end()
        summary = profiler.request_summary()
        assert summary["pause_ms"]["max_ms"] == pytest.approx(0.0)
        # ...but the histogram sees every pause, windowed or not.
        assert sum(summary["pause_hist"]["counts"]) == 1

    def test_mutator_time_is_total_minus_pause(self):
        profiler = PhaseProfiler()
        profiler._note_request(0.010, 0.004)
        summary = profiler.request_summary()
        assert summary["mutator_ms"]["max_ms"] == pytest.approx(6.0)
        assert summary["pause_share_pct"] == pytest.approx(40.0)

    def test_end_without_begin_is_a_no_op(self):
        profiler = PhaseProfiler()
        profiler.request_end()
        assert profiler.request_summary() is None

    def test_histogram_bucket_boundaries(self):
        profiler = PhaseProfiler()
        profiler.add("msa", 0.00004)      # 0.04ms -> first bucket
        profiler.add("msa", 0.00005)      # exactly 0.05ms -> first bucket
        profiler.add("cg-events", 0.0006)  # 0.6ms -> le 1.0 bucket
        profiler.add("msa", 0.5)          # 500ms -> overflow
        counts = profiler.pause_hist
        assert len(counts) == len(PAUSE_BUCKETS_MS) + 1
        assert counts[0] == 2
        assert counts[list(PAUSE_BUCKETS_MS).index(1.0)] == 1
        assert counts[-1] == 1

    def test_interpret_is_not_a_pause_phase(self):
        assert "interpret" not in PAUSE_PHASES
        assert "compile" not in PAUSE_PHASES
        assert PAUSE_PHASES == {"msa", "cg-events", "recycle-search"}


class TestNullProfiler:
    def test_brackets_are_no_ops(self):
        NULL_PROFILER.request_begin()
        NULL_PROFILER.request_end()
        assert NULL_PROFILER.request_summary() is None
        assert NULL_PROFILER.request_totals == []
        assert not NULL_PROFILER.enabled


class TestSurface:
    def run_profiled(self, **kwargs):
        return execute(RunRequest("server", system="cg", requests=40,
                                  profile=True, **kwargs))

    def test_result_latency_round_trips(self):
        result = self.run_profiled()
        assert result.latency["requests"] == 40
        restored = result_from_dict(result_to_dict(result))
        assert restored.latency == result.latency

    def test_unprofiled_result_has_empty_latency(self):
        result = execute(RunRequest("server", system="cg", requests=40))
        assert result.latency == {}

    def test_snapshot_carries_requests_section(self, tmp_path):
        result = self.run_profiled(heartbeat_every=500,
                                   heartbeat_spool=str(tmp_path))
        from repro.obs.inspect import latest_snapshot, render_snapshot

        (run_file,) = tmp_path.glob("run-*.jsonl")
        snapshot = latest_snapshot(run_file)
        assert snapshot["schema"] == "cg-snapshot/4"
        requests = snapshot["requests"]
        assert requests["requests"] == result.latency["requests"] == 40
        assert requests["pause_hist"]["le_ms"] == list(PAUSE_BUCKETS_MS)
        rendered = render_snapshot(snapshot)
        assert "requests: 40 served" in rendered
        assert "pause p99" in rendered

    def test_unprofiled_snapshot_requests_is_none(self, tmp_path):
        execute(RunRequest("server", system="cg", requests=40,
                           heartbeat_every=500,
                           heartbeat_spool=str(tmp_path)))
        from repro.obs.inspect import latest_snapshot

        (run_file,) = tmp_path.glob("run-*.jsonl")
        assert latest_snapshot(run_file)["requests"] is None
