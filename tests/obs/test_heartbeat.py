"""Heartbeat snapshots: cadence, determinism, spool hygiene, shared schema.

The heartbeat is the live counterpart of the crash dump: every
``heartbeat_every`` executed opcodes the runtime serializes a
:class:`LiveSnapshot` into a bounded spool ring.  The contract under test:

* beats fire at *exact* op counts, identically under all five dispatch
  tiers (arming a heartbeat forces the per-instruction tick loops, same
  discipline as ``gc_period_ops``);
* arming a heartbeat leaves every determinism counter bit-identical to a
  heartbeat-off run — observation must not perturb the experiment;
* the spool ring never exceeds its bounds (lines per file, files per pid);
* crash dumps and heartbeats share the ``cg-snapshot/1`` schema.
"""

from __future__ import annotations

import json
import os
import socket

import pytest

from repro import CGPolicy, Runtime, RuntimeConfig, assemble
from repro.faults import CrashDump
from repro.obs.heartbeat import (
    DEFAULT_RING,
    MAX_RUN_FILES,
    SNAPSHOT_SCHEMA,
    Heartbeat,
    LiveSnapshot,
    run_file_pid,
    runtime_snapshot,
)

DISPATCHES = ("chain", "table", "closure")

#: ~8 ops per iteration plus prologue; allocates a Node each lap so the
#: heap/equilive sections of the snapshot are non-trivial.
LOOP = (
    "class Node\nfield next\n"
    "class Main\n"
    "method Main.main(1)\n"
    "    const 0\n    store 1\n"
    "loop:\n"
    "    new Node\n    pop\n"
    "    iinc 1 1\n"
    "    load 1\n    load 0\n    if_icmplt loop\n"
    "    load 1\n    retval\n"
)


def run_loop(iterations, dispatch, tmp_path=None, every=None, **config_kwargs):
    config_kwargs.setdefault("cg", CGPolicy(paranoid=True))
    if every is not None:
        config_kwargs["heartbeat_every"] = every
        config_kwargs["heartbeat_spool"] = str(tmp_path)
    rt = Runtime(RuntimeConfig(dispatch=dispatch, **config_kwargs),
                 program=assemble(LOOP))
    result = rt.run("Main.main", [iterations])
    assert result == iterations
    if rt.heartbeat is not None:
        rt.heartbeat.close(rt)
    return rt


def read_spool(tmp_path):
    files = sorted(p for p in os.listdir(tmp_path) if p.startswith("run-"))
    assert files, f"no run files in {tmp_path}"
    out = []
    for name in files:
        with open(os.path.join(tmp_path, name)) as fh:
            out.append([json.loads(line) for line in fh])
    return files, out


class TestCadence:
    @pytest.mark.parametrize("dispatch", DISPATCHES)
    def test_beats_at_exact_op_counts(self, dispatch, tmp_path):
        every = 100
        rt = run_loop(300, dispatch, tmp_path, every=every)
        _, spools = read_spool(tmp_path)
        snaps = spools[-1]
        live = [s for s in snaps if s["phase"] == "live"]
        assert live, "no live beats fired"
        for snap in live:
            assert snap["ops"] % every == 0, snap["ops"]
        seqs = [s["seq"] for s in snaps]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        assert snaps[-1]["phase"] == "final"
        assert snaps[-1]["ops"] == rt.ops

    def test_same_beat_schedule_across_dispatch_tiers(self, tmp_path):
        schedules = {}
        for dispatch in DISPATCHES:
            spool = tmp_path / dispatch
            spool.mkdir()
            run_loop(300, dispatch, spool, every=64)
            _, spools = read_spool(spool)
            schedules[dispatch] = [
                (s["seq"], s["ops"], s["phase"]) for s in spools[-1]
            ]
        assert schedules["table"] == schedules["chain"]
        assert schedules["closure"] == schedules["chain"]

    def test_beats_fire_alongside_periodic_gc(self, tmp_path):
        # gc_period and heartbeat share the per-op tick path; both triggers
        # must keep firing when armed together.
        rt = run_loop(400, "closure", tmp_path, every=128, gc_period_ops=256)
        assert rt.collector is None or rt.ops > 0
        _, spools = read_spool(tmp_path)
        live = [s for s in spools[-1] if s["phase"] == "live"]
        assert live and all(s["ops"] % 128 == 0 for s in live)


class TestDeterminism:
    @pytest.mark.parametrize("dispatch", DISPATCHES)
    def test_counters_bit_identical_with_heartbeat(self, dispatch, tmp_path):
        base = run_loop(500, dispatch)
        beat = run_loop(500, dispatch, tmp_path, every=50)
        assert beat.ops == base.ops
        assert beat.heap.occupancy() == base.heap.occupancy()
        assert (beat.heap.free_list.search_steps
                == base.heap.free_list.search_steps)
        if base.collector is not None:
            assert beat.collector.stats == base.collector.stats
            assert (beat.collector.final_census()
                    == base.collector.final_census())

    def test_bench_counters_bit_identical_through_api(self, tmp_path):
        # The benchmark harness's determinism fingerprint is (vm.ops,
        # alloc.search_steps); arming a heartbeat must not move either,
        # nor any other counter a BENCH_*.json row reads.
        from repro import api

        base = api.run("compress", 1, "cg")
        beat = api.run("compress", 1, "cg", heartbeat_every=500,
                       heartbeat_spool=str(tmp_path))
        assert beat.metrics["counters"] == base.metrics["counters"]
        assert beat.metrics["histograms"] == base.metrics["histograms"]

    def test_fingerprint_excludes_heartbeat(self, tmp_path):
        plain = RuntimeConfig()
        armed = RuntimeConfig(heartbeat_every=100,
                              heartbeat_spool=str(tmp_path),
                              heartbeat_labels={"workload": "x"})
        assert armed.fingerprint() == plain.fingerprint()

    def test_heartbeat_every_validated(self):
        with pytest.raises(ValueError):
            RuntimeConfig(heartbeat_every=0)


class TestSpoolHygiene:
    def test_ring_bounded(self, tmp_path):
        run_loop(3000, "closure", tmp_path, every=10)
        _, spools = read_spool(tmp_path)
        assert 0 < len(spools[-1]) <= DEFAULT_RING

    def test_custom_ring_size(self, tmp_path):
        hb = Heartbeat(every=1, spool=tmp_path, ring=3)
        rt = run_loop(50, "closure")
        for _ in range(10):
            hb.beat(rt)
        hb.close(rt)
        _, spools = read_spool(tmp_path)
        assert len(spools[-1]) == 3
        assert spools[-1][-1]["phase"] == "final"

    def test_run_files_pruned_per_pid(self, tmp_path):
        rt = run_loop(50, "closure")
        for _ in range(MAX_RUN_FILES + 5):
            hb = Heartbeat(every=1, spool=tmp_path)
            hb.beat(rt)
            hb.close(rt)
        files, _ = read_spool(tmp_path)
        mine = [f for f in files if run_file_pid(f) == os.getpid()]
        assert 0 < len(mine) <= MAX_RUN_FILES

    def test_close_is_idempotent(self, tmp_path):
        hb = Heartbeat(every=1, spool=tmp_path)
        rt = run_loop(50, "closure")
        hb.close(rt)
        hb.close(rt)
        _, spools = read_spool(tmp_path)
        assert sum(1 for s in spools[-1] if s["phase"] == "final") == 1

    def test_unwritable_spool_is_swallowed(self, tmp_path):
        # Observation must never kill the run: a spool path that cannot
        # even be created (here: nested under a regular file) degrades
        # every beat to a no-op.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        hb = Heartbeat(every=1, spool=blocker / "deep" / "spool")
        rt = run_loop(50, "closure")
        hb.beat(rt)
        hb.close(rt)


class TestSocket:
    def test_datagrams_pushed_to_unix_socket(self, tmp_path):
        if not hasattr(socket, "AF_UNIX"):
            pytest.skip("no AF_UNIX on this platform")
        path = str(tmp_path / "hb.sock")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
        server.bind(path)
        server.setblocking(False)
        try:
            hb = Heartbeat(every=1, spool=tmp_path, socket_path=path)
            rt = run_loop(50, "closure")
            hb.beat(rt)
            hb.close(rt)
            datagrams = []
            while True:
                try:
                    datagrams.append(server.recv(1 << 20))
                except BlockingIOError:
                    break
            assert len(datagrams) >= 2
            snap = json.loads(datagrams[0])
            assert snap["schema"] == SNAPSHOT_SCHEMA
        finally:
            server.close()


class TestSharedSchema:
    def test_snapshot_shape(self):
        rt = run_loop(200, "closure")
        snap = LiveSnapshot.capture(rt, seq=7, phase="live",
                                    labels={"workload": "loop"})
        data = snap.data
        assert data["schema"] == SNAPSHOT_SCHEMA
        assert data["kind"] == "heartbeat"
        assert data["seq"] == 7
        assert data["pid"] == os.getpid()
        assert data["ops"] == rt.ops
        assert data["heap"]["capacity_words"] > 0
        assert "live_words" in data["heap"]
        assert data["frames"]
        assert "counters" in data["metrics"]
        json.dumps(data)  # fully serializable

    def test_crash_dump_builds_on_same_serializer(self):
        rt = run_loop(200, "closure")
        dump = CrashDump.capture(rt, reason="test", site="heap.alloc")
        base = runtime_snapshot(rt)
        assert dump.data["schema"] == SNAPSHOT_SCHEMA
        assert dump.data["kind"] == "crash"
        assert dump.data["reason"] == "test"
        assert dump.data["site"] == "heap.alloc"
        # Shared sections agree with the live serializer.
        for key in ("ops", "heap", "equilive", "recycle", "allocator"):
            assert dump.data[key] == base[key], key
        json.loads(dump.to_json())
