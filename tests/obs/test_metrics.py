"""MetricsRegistry: typed metrics, snapshots/deltas, and runtime folding."""

import json

from repro import CGPolicy, Mutator
from repro.obs import MetricsRegistry, collect_runtime_metrics
from tests.conftest import make_runtime


class TestRegistryBasics:
    def test_counters_and_gauges(self):
        reg = MetricsRegistry()
        reg.inc("a.count")
        reg.inc("a.count", 4)
        reg.set_counter("b.count", 9)
        reg.set_gauge("c.level", 0.5)
        assert reg.counters == {"a.count": 5, "b.count": 9}
        assert reg.gauges == {"c.level": 0.5}

    def test_histograms(self):
        reg = MetricsRegistry()
        reg.observe("sizes", 1)
        reg.observe("sizes", 1)
        reg.observe("sizes", ">10", 3)
        assert reg.histograms["sizes"] == {"1": 2, ">10": 3}

    def test_to_dict_from_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("x", 2)
        reg.set_gauge("y", 1.25)
        reg.observe("h", "bucket", 7)
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()

    def test_json_line_is_valid_json_with_labels(self):
        reg = MetricsRegistry()
        reg.inc("x")
        record = json.loads(reg.to_json_line(workload="jess", size=1))
        assert record["workload"] == "jess"
        assert record["counters"] == {"x": 1}


class TestSnapshotDelta:
    def test_delta_reports_changes_only(self):
        reg = MetricsRegistry()
        reg.inc("ops", 10)
        reg.set_gauge("live", 100)
        before = reg.snapshot()
        reg.inc("ops", 5)
        reg.set_gauge("live", 80)
        reg.inc("new_counter", 1)
        delta = reg.delta(before)
        assert delta == {"ops": 5, "live": -20, "new_counter": 1}

    def test_identical_snapshots_delta_empty(self):
        reg = MetricsRegistry()
        reg.inc("ops", 3)
        assert reg.delta(reg.snapshot()) == {}

    def test_removed_name_goes_negative(self):
        reg = MetricsRegistry()
        assert reg.delta({"gone": 4.0}) == {"gone": -4.0}


class TestRuntimeFolding:
    def run_small(self):
        rt = make_runtime(cg=CGPolicy(recycling=True, paranoid=True))
        m = Mutator(rt)
        with m.frame():
            keeper = m.new("Node")
            m.set_local(0, keeper)
            for _ in range(10):
                with m.frame():
                    node = m.new("Node")
                    m.putfield(node, "next", keeper)
                    m.root(node)
        return rt

    def test_cg_counters_match_stats(self):
        rt = self.run_small()
        reg = collect_runtime_metrics(rt)
        stats = rt.collector.stats
        assert reg.counters["cg.objects_created"] == stats.objects_created
        assert reg.counters["cg.objects_popped"] == stats.objects_popped
        assert reg.counters["cg.contaminations"] == stats.contaminations
        assert reg.counters["cg.frame_pops"] == stats.frame_pops
        assert reg.counters["cg.uf_finds"] == rt.collector.equilive.ds.finds

    def test_counter_histograms_folded(self):
        rt = self.run_small()
        reg = collect_runtime_metrics(rt)
        stats = rt.collector.stats
        age = reg.histograms["cg.age_hist"]
        assert sum(age.values()) == sum(stats.age_hist.values())
        sizes = reg.histograms["cg.block_size_hist"]
        assert sum(sizes.values()) == stats.blocks_collected

    def test_heap_and_gc_views(self):
        rt = self.run_small()
        reg = collect_runtime_metrics(rt)
        assert reg.counters["heap.objects_created"] == rt.heap.objects_created
        assert reg.gauges["heap.capacity_words"] == rt.heap.capacity
        assert reg.gauges["heap.live_words"] == rt.heap.live_words
        assert 0.0 <= reg.gauges["heap.occupancy"] <= 1.0
        assert reg.counters["gc.cycles"] == rt.tracing.work.cycles
        assert reg.counters["vm.ops"] == rt.ops

    def test_no_cg_runtime_still_folds(self):
        rt = make_runtime(cg=CGPolicy.disabled())
        m = Mutator(rt)
        with m.frame():
            m.root(m.new("Node"))
        reg = collect_runtime_metrics(rt)
        assert "cg.objects_created" not in reg.counters
        assert reg.counters["heap.objects_created"] == 1

    def test_runner_result_carries_metrics(self):
        from repro.api import run as run_workload

        result = run_workload("jess", size=1, system="cg")
        counters = result.metrics["counters"]
        assert counters["cg.objects_popped"] == result.census["popped"]
        assert counters["vm.ops"] == result.ops
        assert counters["alloc.search_steps"] == result.alloc_search_steps
        assert result.metrics["gauges"]["heap.peak_live_words"] == (
            result.peak_live_words
        )
