"""PhaseProfiler: accumulation, reporting, and VM wiring."""

from repro import CGPolicy, Mutator, Runtime, RuntimeConfig
from repro.obs import NULL_PROFILER, PhaseProfiler
from repro.obs.profile import (
    PHASE_CG_EVENTS,
    PHASE_INTERPRET,
    PHASE_MSA,
)
from tests.conftest import define_test_classes


class TestAccumulation:
    def test_add_accumulates_seconds_and_samples(self):
        profiler = PhaseProfiler()
        profiler.add("msa", 0.25)
        profiler.add("msa", 0.75)
        profiler.add("interpret", 1.0)
        assert profiler.seconds["msa"] == 1.0
        assert profiler.calls["msa"] == 2
        assert profiler.total_seconds() == 2.0

    def test_charge_depth(self):
        profiler = PhaseProfiler()
        profiler.charge_depth(3, 0.5)
        profiler.charge_depth(3, 0.5)
        profiler.charge_depth(0, 0.1)
        assert profiler.depth_seconds == {3: 1.0, 0: 0.1}

    def test_phase_context_manager_times_the_block(self):
        profiler = PhaseProfiler()
        with profiler.phase("work"):
            sum(range(1000))
        assert profiler.calls["work"] == 1
        assert profiler.seconds["work"] > 0.0

    def test_phase_charges_even_on_exception(self):
        profiler = PhaseProfiler()
        try:
            with profiler.phase("boom"):
                raise ValueError
        except ValueError:
            pass
        assert profiler.calls["boom"] == 1


class TestReporting:
    def test_to_dict_shape(self):
        profiler = PhaseProfiler()
        profiler.add("msa", 0.5)
        profiler.charge_depth(2, 0.5)
        report = profiler.to_dict()
        assert report["phases"] == {"msa": {"seconds": 0.5, "samples": 1}}
        assert report["depth_seconds"] == {"2": 0.5}

    def test_render_lists_phases_and_depth_bars(self):
        profiler = PhaseProfiler()
        profiler.add("interpret", 0.9)
        profiler.add("msa", 0.1)
        profiler.charge_depth(1, 0.9)
        text = profiler.render()
        assert "interpret" in text
        assert "msa" in text
        assert "depth   1" in text
        assert "#" in text

    def test_render_handles_empty_profile(self):
        assert "phase" in PhaseProfiler().render()


class TestNullProfiler:
    def test_disabled_and_inert(self):
        assert NULL_PROFILER.enabled is False
        NULL_PROFILER.add("msa", 1.0)
        NULL_PROFILER.charge_depth(1, 1.0)
        with NULL_PROFILER.phase("x"):
            pass
        assert NULL_PROFILER.total_seconds() == 0.0
        assert NULL_PROFILER.to_dict() == {"phases": {}, "depth_seconds": {}}

    def test_runtime_defaults_to_null_profiler(self):
        runtime = Runtime(RuntimeConfig(heap_words=1 << 12))
        assert runtime.profiler is NULL_PROFILER
        assert runtime.collector.profiler is NULL_PROFILER


class TestVmWiring:
    def run_profiled(self):
        runtime = Runtime(
            RuntimeConfig(
                heap_words=420,
                cg=CGPolicy(recycling=True),
                tracing="marksweep",
                gc_period_ops=300,
                profile=True,
            )
        )
        define_test_classes(runtime.program)
        m = Mutator(runtime)
        with m.frame():
            keeper = m.new("Node")
            m.set_local(0, keeper)
            for _ in range(60):
                with m.frame():
                    node = m.new("Node")
                    m.putfield(node, "next", keeper)
                    m.root(node)
        return runtime

    def test_profiled_run_populates_phases(self):
        runtime = self.run_profiled()
        profiler = runtime.profiler
        assert profiler.enabled
        assert profiler.seconds[PHASE_CG_EVENTS] > 0.0
        assert profiler.calls[PHASE_CG_EVENTS] > 0
        # Every tracing-collector cycle is one MSA phase sample.
        assert profiler.calls[PHASE_MSA] == runtime.tracing.work.cycles

    def test_collector_wrappers_preserve_behaviour(self):
        profiled = self.run_profiled()
        config = RuntimeConfig(
            heap_words=420,
            cg=CGPolicy(recycling=True),
            tracing="marksweep",
            gc_period_ops=300,
        )
        plain = Runtime(config)
        define_test_classes(plain.program)
        m = Mutator(plain)
        with m.frame():
            keeper = m.new("Node")
            m.set_local(0, keeper)
            for _ in range(60):
                with m.frame():
                    node = m.new("Node")
                    m.putfield(node, "next", keeper)
                    m.root(node)
        a, b = profiled.collector.stats, plain.collector.stats
        assert a.objects_popped == b.objects_popped
        assert a.contaminations == b.contaminations
        assert a.objects_created == b.objects_created

    def test_interpreter_charges_phase_and_depth(self):
        from repro import assemble

        source = """
        class Main
        method Main.main(0) locals=2
            const 500
            store 0
            const 0
            store 1
        top:
            load 0
            ifzero done
            iinc 1 1
            iinc 0 -1
            goto top
        done:
            load 1
            retval
        """
        runtime = Runtime(
            RuntimeConfig(heap_words=1 << 12, profile=True),
            program=assemble(source),
        )
        result = runtime.run("Main.main", [])
        assert result == 500
        profiler = runtime.profiler
        assert profiler.seconds[PHASE_INTERPRET] > 0.0
        assert profiler.calls[PHASE_INTERPRET] >= 1
        assert sum(profiler.depth_seconds.values()) > 0.0

    def test_metrics_export_profile_gauges(self):
        from repro.api import run as run_workload

        result = run_workload("jess", size=1, system="cg", profile=True)
        gauges = result.metrics["gauges"]
        assert gauges.get(f"profile.{PHASE_MSA}_s", 0.0) >= 0.0
        assert gauges.get(f"profile.{PHASE_CG_EVENTS}_s", 0.0) > 0.0
        counters = result.metrics["counters"]
        assert counters.get(f"profile.{PHASE_CG_EVENTS}_samples", 0) > 0
