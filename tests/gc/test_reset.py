"""The section 3.6 reset pass: rebuild CG structures during marking."""

import pytest

from repro import CGPolicy, Mutator
from repro.core.stats import CAUSE_SHARED
from tests.conftest import assert_clean, make_runtime


def reset_runtime(**kw):
    kw.setdefault("heap_words", 1 << 16)
    return make_runtime(cg=CGPolicy(resetting=True, paranoid=True), **kw)


class TestResetRepairsConservatism:
    def test_static_finger_undone(self):
        """Objects pinned by touch-and-point-away return to their frame."""
        rt = reset_runtime()
        m = Mutator(rt)
        with m.frame():
            finger = m.new("Node")
            m.putstatic("finger", finger)
            finger = m.getstatic("finger")
            with m.frame() as inner:
                victims = []
                for _ in range(5):
                    v = m.new("Node")
                    m.putfield(finger, "next", v)
                    m.putfield(finger, "next", None)
                    m.root(v)
                    victims.append(v)
                assert all(
                    rt.collector.equilive.block_of(v).is_static
                    for v in victims
                )
                rt.tracing.collect()
                # After the reset, victims are anchored on the inner frame.
                for v in victims:
                    block = rt.collector.equilive.block_of(v)
                    assert not block.is_static
                    assert block.frame is inner
            # ... and therefore collected at the inner pop.
            assert rt.collector.stats.objects_popped == 5
            assert rt.collector.stats.less_live == 5
        assert_clean(rt)

    def test_overlong_chains_reanchored(self):
        """Symmetric-contamination drag (the D-depends-on-frame-1 case of
        Fig. 2.2 step 3) is repaired: after unlinking, a reset re-anchors
        the young object on its own frame."""
        rt = reset_runtime()
        m = Mutator(rt)
        with m.frame() as outer:
            old = m.new("Node")
            m.set_local(0, old)
            with m.frame() as inner:
                young = m.new("Node")
                m.putfield(young, "next", old)  # drags young to outer
                m.root(young)
                assert rt.collector.equilive.block_of(young).frame is outer
                m.putfield(young, "next", None)
                rt.tracing.collect()
                assert rt.collector.equilive.block_of(young).frame is inner
            assert young.freed

    def test_reset_counts_passes(self):
        rt = reset_runtime()
        m = Mutator(rt)
        with m.frame():
            m.set_local(0, m.new("Node"))
            rt.tracing.collect()
            rt.tracing.collect()
        assert rt.collector.stats.reset_passes == 2


class TestResetPreservesTruth:
    def test_live_references_rebuild_contamination(self):
        """Objects that genuinely reference each other stay equilive."""
        rt = reset_runtime()
        m = Mutator(rt)
        with m.frame():
            a = m.new("Node")
            b = m.new("Node")
            m.putfield(a, "next", b)
            m.set_local(0, a)
            rt.tracing.collect()
            eq = rt.collector.equilive
            assert eq.block_of(a) is eq.block_of(b)
            assert_clean(rt)

    def test_statics_stay_static(self):
        rt = reset_runtime()
        m = Mutator(rt)
        with m.frame():
            s = m.new("Node")
            m.putstatic("s", s)
            child = m.new("Node")
            s2 = m.getstatic("s")
            m.putfield(s2, "next", child)
            rt.tracing.collect()
            eq = rt.collector.equilive
            assert eq.block_of(s).is_static
            assert eq.block_of(child).is_static  # still reachable from static

    def test_oldest_reaching_frame_wins(self):
        """An object visible from two frames re-anchors on the older one."""
        rt = reset_runtime()
        m = Mutator(rt)
        with m.frame() as outer:
            h = m.new("Node")
            m.set_local(0, h)
            with m.frame():
                m.set_local(0, h)  # also referenced by the younger frame
                rt.tracing.collect()
                assert rt.collector.equilive.block_of(h).frame is outer
            h.check_live()

    def test_cross_thread_objects_pin_shared_during_reset(self):
        rt = reset_runtime()
        m = Mutator(rt)
        other = m.spawn()
        with m.frame():
            with other.frame():
                shared = m.new("Node")
                m.set_local(0, shared)
                other.set_local(0, shared)  # both stacks reference it
                rt.tracing.collect()
                block = rt.collector.equilive.block_of(shared)
                assert block.is_static
                assert block.static_cause == CAUSE_SHARED

    def test_soundness_after_reset(self):
        """Paranoid probe active: collections after a reset stay sound."""
        rt = reset_runtime(gc_period_ops=64)
        m = Mutator(rt)
        with m.frame():
            keeper = m.new("Node")
            m.set_local(0, keeper)
            for _ in range(50):
                with m.frame():
                    x = m.new("Node")
                    y = m.new("Node")
                    m.putfield(x, "next", y)
                    m.root(x)
            keeper.check_live()
        assert rt.collector.stats.reset_passes >= 1
        assert rt.collector.stats.objects_popped >= 90
        assert_clean(rt)


class TestResetStatsProtocol:
    def test_less_live_counts_only_improvements(self):
        rt = reset_runtime()
        m = Mutator(rt)
        with m.frame():
            stable = m.new("Node")
            m.set_local(0, stable)
            rt.tracing.collect()
            # Nothing improved: stable was already anchored correctly.
            assert rt.collector.stats.less_live == 0

    def test_objects_allocated_after_snapshot_ignored(self):
        """end_reset only compares objects that existed at begin_reset."""
        rt = reset_runtime()
        m = Mutator(rt)
        with m.frame():
            old = m.new("Node")
            m.set_local(0, old)
            snapshot = rt.collector.begin_reset()
            rt.collector.reset_assign(old, m.current_frame)
            # Allocated mid-pass (never happens in a real atomic GC, but the
            # protocol must not miscount it as an improvement).
            fresh = m.new("Node")
            improved = rt.collector.end_reset(snapshot)
            assert improved == 0
            m.drop(fresh)

    def test_reset_assign_rejects_double_assignment(self):
        from repro.jvm.errors import IllegalStateError

        rt = reset_runtime()
        m = Mutator(rt)
        with m.frame():
            h = m.new("Node")
            rt.collector.begin_reset()
            rt.collector.reset_assign(h, m.current_frame)
            with pytest.raises(IllegalStateError):
                rt.collector.reset_assign(h, m.current_frame)
            m.drop(h)
