"""Unit tests for the mark-sweep collector and its CG integration."""

import pytest

from repro import CGPolicy, Mutator
from tests.conftest import assert_clean, make_runtime


class TestMarkSweepBasics:
    def test_collects_unreachable(self):
        rt = make_runtime(tracing="marksweep")
        m = Mutator(rt)
        with m.frame():
            keep = m.new("Node")
            m.set_local(0, keep)
            m.drop(m.new("Node"))  # garbage
            freed = rt.tracing.collect()
            assert freed == 1
            keep.check_live()
        assert_clean(rt)

    def test_marks_through_reference_chains(self):
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            head = m.new("Node")
            m.set_local(0, head)
            prev = head
            chain = []
            for _ in range(10):
                n = m.new("Node")
                chain.append(n)
                m.putfield(prev, "next", n)
                prev = n
            assert rt.tracing.collect() == 0
            for n in chain:
                n.check_live()

    def test_marks_through_arrays(self):
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            arr = m.new_array(3)
            m.set_local(0, arr)
            x = m.new("Node")
            m.aastore(arr, 1, x)
            assert rt.tracing.collect() == 0
            x.check_live()

    def test_cycles_are_collected(self):
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            a = m.new("Node")
            b = m.new("Node")
            m.putfield(a, "next", b)
            m.putfield(b, "next", a)
            m.drop(a)  # cycle now unreachable
            assert rt.tracing.collect() == 2
        assert_clean(rt)

    def test_statics_keep_alive(self):
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            h = m.new("Node")
            m.putstatic("s", h)
        rt.tracing.collect()
        h.check_live()

    def test_mark_clears_flags_for_next_cycle(self):
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            h = m.new("Node")
            m.set_local(0, h)
            rt.tracing.collect()
            assert not h.mark
            rt.tracing.collect()
            h.check_live()

    def test_work_counters(self):
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            for i in range(5):
                m.set_local(i, m.new("Node"))
            m.drop(m.new("Node"))
            work = rt.tracing.work
            rt.tracing.collect()
            assert work.cycles == 1
            assert work.mark_visits == 5
            assert work.sweep_visits == 6
            assert work.objects_collected == 1


class TestCGNotification:
    def test_sweep_notifies_cg(self):
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            a = m.new("Node")
            m.root(a)
            b = m.new("Node")
            m.putfield(a, "next", b)
            m.putfield(a, "next", None)  # b now dead, still in a's block
            rt.tracing.collect()
            assert rt.collector.stats.collected_by_msa == 1
            assert b.freed
        # Popping the frame must free only a (b lazily removed).
        assert rt.collector.stats.objects_popped == 1
        assert_clean(rt)

    def test_msa_never_collects_what_cg_roots_see(self):
        """Objects reachable from frames survive MSA even when their CG
        block is conservative (e.g. pinned static)."""
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            h = m.new("Node")
            m.putstatic("s", h)      # static pin
            rt.globals.clear()       # drop the static root behind CG's back
            m.set_local(0, h)        # but a local still references it
            rt.tracing.collect()
            h.check_live()


class TestCompaction:
    def test_compaction_defragments(self):
        rt = make_runtime(heap_words=4096)
        rt.config.compaction = True
        rt.tracing.compaction = True
        m = Mutator(rt)
        with m.frame():
            keepers = []
            for i in range(40):
                h = m.new("Node")
                if i % 2 == 0:
                    m.root(h)
                    keepers.append(h)
                else:
                    m.drop(h)
            rt.tracing.collect()
            assert rt.tracing.work.compactions == 1
            # One contiguous free block remains.
            assert len(rt.heap.free_list.blocks()) == 1
            for h in keepers:
                h.check_live()
        assert_clean(rt)


class TestGCWithCGDisabled:
    def test_pure_jdk_mode(self):
        rt = make_runtime(cg=CGPolicy.disabled(), heap_words=256)
        m = Mutator(rt)
        assert rt.collector is None
        with m.frame():
            for _ in range(100):
                m.drop(m.new("Node"))
        assert rt.tracing.work.cycles >= 1
        rt.check_heap_accounting()
