"""Tests for the related-work collectors: generational and train."""

import pytest

from repro import CGPolicy, Mutator
from tests.conftest import assert_clean, make_runtime


class TestGenerational:
    def test_minor_cycle_collects_young_garbage(self):
        rt = make_runtime(tracing="generational")
        m = Mutator(rt)
        with m.frame():
            keep = m.new("Node")
            m.set_local(0, keep)
            for _ in range(10):
                m.drop(m.new("Node"))
            freed = rt.tracing.collect_minor()
            assert freed == 10
            keep.check_live()
        assert_clean(rt)

    def test_survivors_promote_out_of_young(self):
        rt = make_runtime(tracing="generational")
        m = Mutator(rt)
        with m.frame():
            keep = m.new("Node")
            m.set_local(0, keep)
            rt.tracing.collect_minor()
            assert keep.id not in rt.tracing._young  # promoted
            keep.check_live()

    def test_minor_cycle_skips_old_garbage(self):
        """Old-generation garbage needs a major cycle — the classic
        generational trade-off."""
        rt = make_runtime(tracing="generational")
        m = Mutator(rt)
        with m.frame():
            h = m.new("Node")
            m.set_local(0, h)
            rt.tracing.collect_minor()  # promotes h
            m.set_local(0, None)        # now dead, but old
            assert rt.tracing.collect_minor() == 0
            assert rt.tracing.collect_major() == 1
        assert_clean(rt)

    def test_write_barrier_remembers_old_to_young(self):
        rt = make_runtime(tracing="generational")
        m = Mutator(rt)
        with m.frame():
            old = m.new("Node")
            m.set_local(0, old)
            rt.tracing.collect_minor()  # old is promoted
            young = m.new("Node")
            m.putfield(old, "next", young)
            assert rt.tracing.work.barrier_hits == 1
            # young is NOT directly rooted; survives via the remembered set
            # (set_local(0, None) keeps old alive through nothing... keep
            # old rooted, drop direct young refs).
            freed = rt.tracing.collect_minor()
            assert freed == 0
            young.check_live()
        assert_clean(rt)

    def test_allocation_pressure_escalates_to_major(self):
        rt = make_runtime(heap_words=256, tracing="generational")
        m = Mutator(rt)
        with m.frame():
            for _ in range(200):
                m.drop(m.new("Node"))
        assert rt.tracing.work.minor_cycles >= 1
        assert_clean(rt)

    def test_cg_notified_on_generational_sweep(self):
        rt = make_runtime(tracing="generational")
        m = Mutator(rt)
        with m.frame():
            a = m.new("Node")
            m.root(a)
            b = m.new("Node")
            m.putfield(a, "next", b)
            m.putfield(a, "next", None)
            rt.tracing.collect_minor()
            assert rt.collector.stats.collected_by_msa == 1
        assert rt.collector.stats.objects_popped == 1
        assert_clean(rt)


class TestTrain:
    def test_unreachable_car_members_collected(self):
        rt = make_runtime(tracing="train")
        m = Mutator(rt)
        with m.frame():
            keep = m.new("Node")
            m.set_local(0, keep)
            for _ in range(10):
                m.drop(m.new("Node"))
            freed = rt.tracing.collect()
            assert freed == 10
            keep.check_live()
        assert_clean(rt)

    def test_cyclic_garbage_reclaimed_with_train(self):
        """The train algorithm's selling point: cycles spanning cars die
        when their whole train is unreferenced."""
        rt = make_runtime(tracing="train")
        rt.tracing.car_capacity = 1  # force the cycle across cars
        m = Mutator(rt)
        with m.frame():
            a = m.new("Node")
            b = m.new("Node")
            m.putfield(a, "next", b)
            m.putfield(b, "next", a)
            m.drop(a)
            freed = rt.tracing.collect()
            assert freed == 2
        assert_clean(rt)

    def test_referenced_objects_evacuated_not_freed(self):
        rt = make_runtime(tracing="train")
        rt.tracing.car_capacity = 2
        m = Mutator(rt)
        with m.frame():
            a = m.new("Node")
            m.set_local(0, a)
            b = m.new("Node")
            m.putfield(a, "next", b)
            before = rt.tracing.work.objects_collected
            rt.tracing.collect_increment()
            a.check_live()
            b.check_live()
            assert rt.tracing.work.objects_collected == before
        assert_clean(rt)

    def test_allocation_pressure_drives_increments(self):
        rt = make_runtime(heap_words=256, tracing="train")
        m = Mutator(rt)
        with m.frame():
            for _ in range(200):
                m.drop(m.new("Node"))
        assert rt.tracing.work.cycles >= 1
        assert_clean(rt)

    def test_write_barrier_counted(self):
        rt = make_runtime(tracing="train")
        m = Mutator(rt)
        with m.frame():
            a, b = m.new("Node"), m.new("Node")
            m.putfield(a, "next", b)
            assert rt.tracing.work.barrier_hits == 1
            m.drop(a)


class TestNullCollector:
    def test_never_collects(self):
        rt = make_runtime(tracing="none")
        m = Mutator(rt)
        with m.frame():
            m.drop(m.new("Node"))
            assert rt.tracing.collect() == 0
        assert rt.tracing.work.objects_collected == 0
