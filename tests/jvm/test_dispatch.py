"""Five-way dispatch parity: chain vs table vs closure vs compiled vs tiered.

The interpreter ships five dispatch tiers: the original if/elif chain
(``dispatch="chain"``, the reference implementation), the opcode-indexed
handler table (``"table"``), the closure-compiled tier (``"closure"``)
with quickening and superinstruction fusion, the compiled tier
(``"compiled"``) that lowers each method to generated Python source and
deopts to closure slots at guard failures and quantum tails, and the
tiered tier (``"tiered"``, the default) that starts every method on the
closure tier and promotes it to the compiled tier at a call boundary
once a hotness counter crosses ``promote_after``.  These tests run the
same programs under all five and require identical results, instruction
counts, and VM state — and the parity corpus must collectively exercise
*every* opcode, so a new opcode cannot be added to one tier and
forgotten in the others.

The closure tier gets extra scrutiny: quickening must rewrite slots
in place without changing observable behaviour, and a fused
superinstruction must never straddle a scheduler quantum (the budget-split
logic falls back to the unfused closures at a slice boundary).  The
compiled tier gets its own: deopt mid-block, deopt at a quantum boundary,
and generated-code reuse across invocations must all be invisible.
"""

import pytest

from repro import CGPolicy, Runtime, RuntimeConfig, assemble
from repro.api import config_for
from repro.jvm import bytecode as bc
from repro.jvm.errors import VerifyError
from repro.workloads.base import get_workload

DISPATCHES = ("chain", "table", "closure", "compiled", "tiered")

MAIN = "class Main\nmethod Main.main(0)\n"

#: Each program is (source, entry_args, expected_result).  Together they
#: must cover the full opcode set (checked by test_corpus_covers_every_opcode).
PARITY_PROGRAMS = [
    # const/store/load/iinc/add/sub/mul/div/mod/neg/dup/pop/swap/goto/retval
    (
        MAIN
        + "    const 10\n    store 0\n    load 0\n    const 3\n    sub\n"
        + "    const 5\n    add\n    const 2\n    mul\n    const 4\n    div\n    const 100\n"
        + "    swap\n    pop\n    dup\n    pop\n    neg\n    store 1\n"
        + "    iinc 1 50\n    goto end\n    const -999\nend:\n"
        + "    load 1\n    const 7\n    mod\n    retval\n",
        [],
        -1,  # Java mod keeps the dividend sign: (-100 + 50) mod 7
    ),
    # all integer conditionals + ifzero/ifnzero
    (
        MAIN
        + "    const 0\n    store 0\n"
        + "    const 1\n    const 2\n    if_icmplt a\n    goto fail\n"
        + "a:\n    const 2\n    const 2\n    if_icmple b\n    goto fail\n"
        + "b:\n    const 3\n    const 2\n    if_icmpgt c\n    goto fail\n"
        + "c:\n    const 2\n    const 2\n    if_icmpge d\n    goto fail\n"
        + "d:\n    const 5\n    const 5\n    if_icmpeq e\n    goto fail\n"
        + "e:\n    const 5\n    const 6\n    if_icmpne f\n    goto fail\n"
        + "f:\n    const 0\n    ifzero g\n    goto fail\n"
        + "g:\n    const 9\n    ifnzero ok\n    goto fail\n"
        + "fail:\n    const 0\n    retval\n"
        + "ok:\n    const 1\n    retval\n",
        [],
        1,
    ),
    # heap opcodes: new/newarray/putfield/getfield/aastore/aaload/arraylength
    # + reference conditionals + aconst_null + instanceof + return/implicit
    (
        "class Node\nfield next\n"
        + MAIN
        + "    new Node\n    store 0\n"
        + "    load 0\n    instanceof Node\n    ifnzero t1\n"
        + "    const 0\n    retval\nt1:\n"
        + "    aconst_null\n    ifnull t2\n    const 0\n    retval\nt2:\n"
        + "    load 0\n    ifnonnull t3\n    const 0\n    retval\nt3:\n"
        + "    load 0\n    load 0\n    if_acmpeq t4\n    const 0\n    retval\n"
        + "t4:\n    load 0\n    aconst_null\n    if_acmpne t5\n"
        + "    const 0\n    retval\nt5:\n"
        + "    const 3\n    newarray\n    store 1\n"
        + "    load 1\n    const 0\n    load 0\n    aastore\n"
        + "    load 1\n    const 0\n    aaload\n    const 41\n"
        + "    invokestatic Main.wrap\n    getfield next\n    pop\n"
        + "    load 1\n    arraylength\n    retval\n"
        + "method Main.wrap(2)\n"
        + "    load 0\n    load 1\n    putfield next\n    load 0\n    retval\n"
        + "method Main.unused(0)\n    return\n",
        [],
        3,
    ),
    # statics, strings, virtual calls, spawn
    (
        "class Config\nstatic limit\n"
        + "class Worker\nfield tag\n"
        + "method Worker.poke(1)\n"
        + "    load 0\n    getfield tag\n    pop\n    return\n"
        + "method Worker.answer(1)\n    const 42\n    retval\n"
        + MAIN
        + "    const 99\n    putstatic Config.limit\n"
        + '    ldc_str "hello"\n    intern\n    pop\n'
        + "    new Worker\n    store 0\n"
        + "    load 0\n    spawn poke 1\n"
        + "    load 0\n    invokevirtual answer 1\n"
        + "    getstatic Config.limit\n    sub\n    retval\n",
        [],
        42 - 99,
    ),
]


def run_one(source, args, dispatch, **config_kwargs):
    config_kwargs.setdefault("cg", CGPolicy(paranoid=True))
    program = assemble(source)
    rt = Runtime(RuntimeConfig(dispatch=dispatch, **config_kwargs),
                 program=program)
    result = rt.run("Main.main", list(args))
    return result, rt


def snapshot(rt):
    state = [
        rt.interpreter.instructions_executed,
        rt.ops,
        rt.heap.occupancy(),
    ]
    if rt.collector is not None:
        state.append(rt.collector.stats)
        state.append(rt.collector.final_census())
    return tuple(state)


def assert_parity(source, args, expected, **config_kwargs):
    snapshots = {}
    for dispatch in DISPATCHES:
        result, rt = run_one(source, args, dispatch, **config_kwargs)
        assert result == expected, f"{dispatch}: {result} != {expected}"
        snapshots[dispatch] = snapshot(rt)
    reference = snapshots[DISPATCHES[0]]
    for dispatch in DISPATCHES[1:]:
        assert snapshots[dispatch] == reference, dispatch


class TestOpcodeParity:
    @pytest.mark.parametrize("idx", range(len(PARITY_PROGRAMS)))
    def test_program_parity(self, idx):
        source, args, expected = PARITY_PROGRAMS[idx]
        assert_parity(source, args, expected)

    def test_parity_under_periodic_gc(self):
        # gc_period_ops forces the per-instruction tick paths (no batching,
        # no fusion for the closure tier), and periodic collections
        # mid-program.
        source, args, expected = PARITY_PROGRAMS[2]
        assert_parity(source, args, expected, gc_period_ops=7,
                      heap_words=4096)

    def test_corpus_covers_every_opcode(self):
        seen = set()
        for source, _, _ in PARITY_PROGRAMS:
            program = assemble(source)
            for cls in program.classes.values():
                for method in cls.methods.values():
                    for op, _, _ in method.code:
                        seen.add(op)
        missing = [bc.OPCODE_NAMES[op] for op in range(bc.OP_COUNT)
                   if op not in seen]
        assert not missing, f"parity corpus never exercises: {missing}"

    def test_unknown_opcode_every_dispatch(self):
        for dispatch in DISPATCHES:
            program = assemble(MAIN + "    const 1\n    retval\n")
            method = program.lookup("Main").methods["main"]
            method.code[0] = (bc.OP_COUNT + 5, None, None)
            method.fusible = None  # stale: recompute from the patched code
            rt = Runtime(RuntimeConfig(dispatch=dispatch), program=program)
            with pytest.raises(VerifyError, match="unknown opcode"):
                rt.run("Main.main", [])


QUICKEN_SOURCE = (
    "class Config\nstatic limit\n"
    + "class Worker\n"
    + "method Worker.answer(1)\n    const 21\n    retval\n"
    + "method Main.twice(1)\n    load 0\n    const 2\n    mul\n    retval\n"
    + MAIN
    + "    const 7\n    putstatic Config.limit\n"
    + "    new Worker\n"
    + "    invokevirtual answer 1\n"
    + "    invokestatic Main.twice\n"
    + "    getstatic Config.limit\n"
    + "    sub\n    retval\n"
)


class TestQuickening:
    """First execution rewrites a slot with its specialized closure."""

    def test_slots_rewritten_after_first_execution(self):
        result, rt = run_one(QUICKEN_SOURCE, [], "closure")
        assert result == 42 - 7
        method = rt.program.lookup("Main").methods["main"]
        compiled = rt.interpreter._ccache[method]
        quickened = {bc.GETSTATIC: "op_getstatic",
                     bc.PUTSTATIC: "op_putstatic",
                     bc.INVOKESTATIC: "op_invokestatic",
                     bc.NEW: "op_new"}
        for pc, (op, _, _) in enumerate(method.code):
            want = quickened.get(op)
            if want is None:
                continue
            got = compiled.ccode[pc].__name__
            assert got == want, (
                f"pc {pc} ({bc.OPCODE_NAMES[op]}) still generic: {got}"
            )
            assert not got.endswith("_generic")

    def test_rerun_reuses_quickened_code(self):
        # Second invocation goes straight through the rewritten slots and
        # must produce the same answer (the cache is per-method identity).
        program = assemble(QUICKEN_SOURCE)
        rt = Runtime(RuntimeConfig(dispatch="closure"), program=program)
        first = rt.run("Main.main", [])
        method = rt.program.lookup("Main").methods["main"]
        compiled = rt.interpreter._ccache[method]
        slots_after_first = list(compiled.ccode)
        second = rt.run("Main.main", [])
        assert first == second == 35
        # No re-quickening churn: the slots are stable after one pass.
        assert list(compiled.ccode) == slots_after_first

    def test_unreachable_bad_reference_never_raises(self):
        # Resolution happens at first *execution*, not at compile time, so
        # a dead getstatic naming a missing class must stay harmless.
        source = (
            MAIN
            + "    goto ok\n"
            + "    getstatic NoSuchClass.field\n"
            + "ok:\n    const 5\n    retval\n"
        )
        for dispatch in DISPATCHES:
            result, _ = run_one(source, [], dispatch)
            assert result == 5


FUSIBLE_LOOP = (
    "class Pair\nfield a\nfield b\n"
    + MAIN
    + "    new Pair\n    store 0\n"
    + "    load 0\n    const 11\n    putfield a\n"
    + "    load 0\n    const 31\n    putfield b\n"
    + "    const 0\n    store 1\n"
    + "    const 0\n    store 2\n"
    + "loop:\n"
    + "    load 1\n    const 200\n    if_icmpge done\n"
    # load+getfield, const+add, load+load: all three fusion shapes, hot.
    + "    load 0\n    getfield a\n"
    + "    load 2\n    add\n"
    + "    const 3\n    add\n"
    + "    store 2\n"
    + "    load 0\n    load 0\n    if_acmpeq same\n"
    + "same:\n"
    + "    iinc 1 1\n    goto loop\n"
    + "done:\n"
    + "    load 2\n    retval\n"
)


class TestSuperinstructions:
    def test_fusible_pairs_found(self):
        program = assemble(FUSIBLE_LOOP)
        method = program.lookup("Main").methods["main"]
        assert method.fusible, "peephole pass found nothing to fuse"

    @pytest.mark.parametrize("quantum", [1, 2, 3, 7, 100])
    def test_quantum_split_never_skids(self, quantum):
        # A fused pair counts as two instructions; when the remaining
        # budget is one, the plain closure must run instead.  Whatever the
        # quantum, closure and table agree bit for bit.
        expected = 200 * (11 + 3)
        snapshots = {}
        for dispatch in ("table", "closure", "compiled", "tiered"):
            result, rt = run_one(FUSIBLE_LOOP, [], dispatch,
                                 quantum=quantum)
            assert result == expected
            snapshots[dispatch] = snapshot(rt)
        assert snapshots["closure"] == snapshots["table"]
        assert snapshots["compiled"] == snapshots["table"]
        assert snapshots["tiered"] == snapshots["table"]

    def test_quantum_split_with_threads(self):
        # Round-robin across a spawned allocator thread: the quantum
        # boundary now also decides interleaving, so any skid past a fused
        # pair would shift CG events between threads.
        source = (
            "class Node\nfield next\n"
            + "class Worker\n"
            + "method Worker.churn(2)\n"
            + "    const 0\n    store 2\n"
            + "wloop:\n"
            + "    load 2\n    load 1\n    if_icmpge wdone\n"
            + "    new Node\n    pop\n"
            + "    iinc 2 1\n    goto wloop\n"
            + "wdone:\n    return\n"
            + MAIN
            + "    new Worker\n    const 40\n    spawn churn 2\n"
            + "    const 0\n    store 0\n"
            + "    const 0\n    store 1\n"
            + "loop:\n"
            + "    load 0\n    const 150\n    if_icmpge done\n"
            + "    load 1\n    const 2\n    add\n    store 1\n"
            + "    iinc 0 1\n    goto loop\n"
            + "done:\n    load 1\n    retval\n"
        )
        snapshots = {}
        for dispatch in ("table", "closure", "compiled", "tiered"):
            result, rt = run_one(source, [], dispatch, quantum=7,
                                 heap_words=4096)
            assert result == 300
            snapshots[dispatch] = snapshot(rt)
        assert snapshots["closure"] == snapshots["table"]
        assert snapshots["compiled"] == snapshots["table"]
        assert snapshots["tiered"] == snapshots["table"]


class TestWorkloadDifferential:
    """Full workloads under all dispatch configs must agree exactly."""

    @pytest.mark.parametrize("name", ["jess", "raytrace"])
    def test_workload_identical(self, name):
        snapshots = {}
        for dispatch in DISPATCHES:
            wl = get_workload(name, seed=2000)
            config = config_for("cg", wl.heap_words(1))
            config.dispatch = dispatch
            rt = Runtime(config)
            wl.execute(rt, 1)
            snapshots[dispatch] = (
                rt.collector.stats,
                rt.collector.final_census(),
                rt.interpreter.instructions_executed,
                rt.heap.occupancy(),
                rt.ops,
            )
        assert snapshots["table"] == snapshots["chain"]
        assert snapshots["closure"] == snapshots["table"]
        assert snapshots["compiled"] == snapshots["table"]
        assert snapshots["tiered"] == snapshots["table"]
        assert snapshots["tiered"] == snapshots["table"]

    @pytest.mark.parametrize(
        "name", ["bc-arith", "bc-list", "bc-calls", "bc-loop"])
    def test_bytecode_workload_identical(self, name):
        # The bc-* workloads are pure assembled bytecode, so every executed
        # instruction flows through the dispatch loop under test.
        snapshots = {}
        for dispatch in DISPATCHES:
            wl = get_workload(name, seed=2000)
            config = config_for("cg", wl.heap_words(1))
            config.dispatch = dispatch
            rt = Runtime(config)
            wl.execute(rt, 1)
            snapshots[dispatch] = (
                rt.collector.stats,
                rt.collector.final_census(),
                rt.interpreter.instructions_executed,
                rt.heap.occupancy(),
                rt.ops,
            )
        assert snapshots["table"] == snapshots["chain"]
        assert snapshots["closure"] == snapshots["table"]
        assert snapshots["compiled"] == snapshots["table"]
        assert snapshots["tiered"] == snapshots["table"]
        assert snapshots["tiered"] == snapshots["table"]


POLY_SOURCE = (
    # Two unrelated receiver classes at one invokevirtual site: the
    # compiled tier's monomorphic class guard fails on every other call,
    # deopting to the closure slots mid-block at the current pc.
    "class Square\n"
    + "method Square.area(1)\n    const 4\n    retval\n"
    + "class Circle\n"
    + "method Circle.area(1)\n    const 3\n    retval\n"
    + MAIN
    + "    new Square\n    store 2\n"
    + "    new Circle\n    store 3\n"
    + "    const 0\n    store 0\n"
    + "    const 0\n    store 1\n"
    + "loop:\n"
    + "    load 0\n    const 60\n    if_icmpge done\n"
    + "    load 0\n    const 2\n    mod\n    ifzero even\n"
    + "    load 3\n    goto call\n"
    + "even:\n    load 2\n"
    + "call:\n    invokevirtual area 1\n"
    + "    load 1\n    add\n    store 1\n"
    + "    iinc 0 1\n    goto loop\n"
    + "done:\n    load 1\n    retval\n"
)

POLY_EXPECTED = 30 * 4 + 30 * 3


class TestCompiledDeopt:
    """Guard failures and quantum tails must be invisible in the results."""

    def test_polymorphic_guard_deopt_mid_block(self):
        # The call site alternates Square/Circle, so whichever class the
        # site quickens to, half the calls fail the guard and finish the
        # block on the closure tier.  All five tiers still agree exactly.
        assert_parity(POLY_SOURCE, [], POLY_EXPECTED)

    def test_deopt_site_stays_on_generated_code(self):
        # A failed guard deopts *that execution*, not the method: the
        # cached PyCompiledMethod must survive the polymorphic site.
        result, rt = run_one(POLY_SOURCE, [], "compiled")
        assert result == POLY_EXPECTED
        method = rt.program.lookup("Main").methods["main"]
        assert method in rt.interpreter._pycache
        comp = rt.interpreter._pycache[method]
        assert rt.run("Main.main", []) == POLY_EXPECTED
        assert rt.interpreter._pycache[method] is comp

    @pytest.mark.parametrize("quantum", [1, 2, 3, 7])
    def test_guard_deopt_at_quantum_boundary(self, quantum):
        # Tiny quanta force the driver's closure tail at nearly every
        # block boundary, so deopted instructions and generated-code
        # instructions interleave within a single slice.  Tick totals and
        # heap state still match the table tier bit for bit.
        snapshots = {}
        for dispatch in ("table", "closure", "compiled", "tiered"):
            result, rt = run_one(POLY_SOURCE, [], dispatch, quantum=quantum)
            assert result == POLY_EXPECTED
            snapshots[dispatch] = snapshot(rt)
        assert snapshots["closure"] == snapshots["table"]
        assert snapshots["compiled"] == snapshots["table"]
        assert snapshots["tiered"] == snapshots["table"]

    def test_deopt_at_fused_pair_boundary(self):
        # The deopt target is the *unfused* closure form: landing between
        # the halves of what the closure tier would fuse must not skid.
        snapshots = {}
        for dispatch in ("table", "closure", "compiled", "tiered"):
            result, rt = run_one(FUSIBLE_LOOP, [], dispatch, quantum=1)
            assert result == 200 * (11 + 3)
            snapshots[dispatch] = snapshot(rt)
        assert snapshots["closure"] == snapshots["table"]
        assert snapshots["compiled"] == snapshots["table"]
        assert snapshots["tiered"] == snapshots["table"]

    def test_codegen_cache_shared_across_runtimes(self):
        # Identical bytecode in a fresh runtime reuses the cached
        # generated source and code object; only the quickening-cell
        # bindings are rebuilt per runtime.
        result1, rt1 = run_one(POLY_SOURCE, [], "compiled")
        m1 = rt1.program.lookup("Main").methods["main"]
        comp1 = rt1.interpreter._pycache[m1]
        result2, rt2 = run_one(POLY_SOURCE, [], "compiled")
        m2 = rt2.program.lookup("Main").methods["main"]
        comp2 = rt2.interpreter._pycache[m2]
        assert result1 == result2 == POLY_EXPECTED
        assert comp2.source is comp1.source  # cache hit, not a regen
        assert comp2.run.__code__ is comp1.run.__code__
        assert comp2.run is not comp1.run  # bindings are per-runtime


HOT_LOOP = (
    MAIN
    + "    const 0\n    store 0\n"
    + "    const 0\n    store 1\n"
    + "loop:\n"
    + "    load 0\n    const 120\n    if_icmpge done\n"
    + "    load 0\n    invokestatic Main.step\n"
    + "    load 1\n    add\n    store 1\n"
    + "    iinc 0 1\n    goto loop\n"
    + "done:\n    load 1\n    retval\n"
    + "method Main.step(1)\n"
    + "    load 0\n    const 2\n    mul\n    retval\n"
)

HOT_EXPECTED = sum(2 * i for i in range(120))


class TestTieredPromotion:
    """Promotion timing is a performance decision, never a semantic one."""

    @pytest.mark.parametrize("promote_after", [1, 2, 5, 16, 1_000_000])
    def test_promotion_boundary_parity(self, promote_after):
        # Sweep the threshold across "promote on first visit", "promote
        # mid-run", and "never promote": counters must be bit-identical
        # to the table tier at every boundary.
        ref_result, ref_rt = run_one(HOT_LOOP, [], "table")
        assert ref_result == HOT_EXPECTED
        result, rt = run_one(HOT_LOOP, [], "tiered",
                             promote_after=promote_after)
        assert result == HOT_EXPECTED
        assert snapshot(rt) == snapshot(ref_rt), promote_after

    def test_hot_methods_actually_promote(self):
        result, rt = run_one(HOT_LOOP, [], "tiered", promote_after=4)
        assert result == HOT_EXPECTED
        interp = rt.interpreter
        assert interp.methods_promoted > 0
        # Promoted methods live in the compiled-tier cache; the callee
        # Main.step is called 120 times so it must be among them.
        step = rt.program.lookup("Main").methods["step"]
        assert step in interp._pycache

    def test_cold_run_never_promotes(self):
        # "Cold" means cold caches too: a warm codegen cache would
        # short-circuit the threshold (promotion is free on a hit), so
        # drop it to observe the pure profile-gated behaviour.
        from repro.jvm.compiledcode import clear_codegen_caches

        clear_codegen_caches()
        result, rt = run_one(HOT_LOOP, [], "tiered", promote_after=1_000_000)
        assert result == HOT_EXPECTED
        interp = rt.interpreter
        assert interp.methods_promoted == 0
        assert not interp._pycache

    def test_warm_cache_promotes_on_first_visit(self):
        # A prior run leaves the generated form in the cross-runtime
        # codegen cache; a fresh tiered runtime then promotes at each
        # method's first driver visit — no re-profiling, no codegen —
        # with counters identical to the cold run.
        cold_result, cold_rt = run_one(HOT_LOOP, [], "tiered",
                                       promote_after=4)
        result, rt = run_one(HOT_LOOP, [], "tiered",
                             promote_after=1_000_000)
        assert result == cold_result == HOT_EXPECTED
        interp = rt.interpreter
        assert interp.methods_promoted > 0
        assert interp.methods_codegenned == 0
        assert snapshot(rt) == snapshot(cold_rt)

    @pytest.mark.parametrize("quantum", [1, 3, 7])
    def test_promotion_with_tiny_quanta(self, quantum):
        # Promotion decisions land at driver visits, so tiny quanta give
        # many more decision points; parity must hold regardless.
        ref_result, ref_rt = run_one(HOT_LOOP, [], "table", quantum=quantum)
        result, rt = run_one(HOT_LOOP, [], "tiered", quantum=quantum,
                             promote_after=3)
        assert result == ref_result == HOT_EXPECTED
        assert snapshot(rt) == snapshot(ref_rt)

    def test_polymorphic_deopts_recorded(self):
        # An alternating-receiver call site placed *mid-block* (POLY_SOURCE
        # puts its site at a branch target, i.e. a block leader, whose
        # guard deopts re-enter rather than record): the per-method deopt
        # counter must see the mid-block deopts because they gate adaptive
        # recompilation — and parity must still hold.
        source = (
            "class Square\n"
            + "method Square.area(1)\n    const 4\n    retval\n"
            + "class Circle\n"
            + "method Circle.area(1)\n    const 3\n    retval\n"
            + MAIN
            + "    new Square\n    store 2\n"
            + "    new Circle\n    store 3\n"
            + "    const 0\n    store 0\n"
            + "    const 0\n    store 1\n"
            + "loop:\n"
            + "    load 0\n    const 60\n    if_icmpge done\n"
            + "    load 0\n    const 2\n    mod\n    ifzero even\n"
            + "    load 3\n    store 4\n    goto call\n"
            + "even:\n    load 2\n    store 4\n"
            + "call:\n    load 4\n    invokevirtual area 1\n"
            + "    load 1\n    add\n    store 1\n"
            + "    iinc 0 1\n    goto loop\n"
            + "done:\n    load 1\n    retval\n"
        )
        ref_result, ref_rt = run_one(source, [], "table")
        result, rt = run_one(source, [], "tiered", promote_after=2)
        assert result == ref_result == POLY_EXPECTED
        assert snapshot(rt) == snapshot(ref_rt)
        assert sum(rt.interpreter._deopts.values()) > 0

    def test_adaptive_recompile_fires_on_clean_methods(self):
        # Enough driver visits with zero deopts triggers the one-shot
        # lifted-caps recompile; counters stay identical to the table
        # tier and the recompiled flag is recorded.
        source = (
            MAIN
            + "    const 0\n    store 0\n    const 0\n    store 1\n"
            + "loop:\n"
            + "    load 0\n    const 4000\n    if_icmpge done\n"
            + "    load 1\n    const 3\n    add\n    store 1\n"
            + "    iinc 0 1\n    goto loop\n"
            + "done:\n    load 1\n    retval\n"
        )
        expected = 4000 * 3
        ref_result, ref_rt = run_one(source, [], "table", quantum=64)
        result, rt = run_one(source, [], "tiered", quantum=64,
                             promote_after=2)
        assert result == ref_result == expected
        assert snapshot(rt) == snapshot(ref_rt)
        assert rt.interpreter.methods_recompiled > 0
