"""Table-vs-chain dispatch parity.

The interpreter ships two dispatch loops: the opcode-indexed handler table
(default) and the original if/elif chain (``RuntimeConfig(dispatch="chain")``),
kept as the reference implementation.  These tests run the same programs
under both and require identical results, instruction counts, and VM state —
and the parity corpus must collectively exercise *every* opcode, so a new
opcode cannot be added to one loop and forgotten in the other.
"""

import pytest

from repro import CGPolicy, Runtime, RuntimeConfig, assemble
from repro.harness.runner import config_for
from repro.jvm import bytecode as bc
from repro.jvm.errors import VerifyError
from repro.workloads.base import get_workload

MAIN = "class Main\nmethod Main.main(0)\n"

#: Each program is (source, entry_args, expected_result).  Together they
#: must cover the full opcode set (checked by test_corpus_covers_every_opcode).
PARITY_PROGRAMS = [
    # const/store/load/iinc/add/sub/mul/div/mod/neg/dup/pop/swap/goto/retval
    (
        MAIN
        + "    const 10\n    store 0\n    load 0\n    const 3\n    sub\n"
        + "    const 5\n    add\n    const 2\n    mul\n    const 4\n    div\n    const 100\n"
        + "    swap\n    pop\n    dup\n    pop\n    neg\n    store 1\n"
        + "    iinc 1 50\n    goto end\n    const -999\nend:\n"
        + "    load 1\n    const 7\n    mod\n    retval\n",
        [],
        -1,  # Java mod keeps the dividend sign: (-100 + 50) mod 7
    ),
    # all integer conditionals + ifzero/ifnzero
    (
        MAIN
        + "    const 0\n    store 0\n"
        + "    const 1\n    const 2\n    if_icmplt a\n    goto fail\n"
        + "a:\n    const 2\n    const 2\n    if_icmple b\n    goto fail\n"
        + "b:\n    const 3\n    const 2\n    if_icmpgt c\n    goto fail\n"
        + "c:\n    const 2\n    const 2\n    if_icmpge d\n    goto fail\n"
        + "d:\n    const 5\n    const 5\n    if_icmpeq e\n    goto fail\n"
        + "e:\n    const 5\n    const 6\n    if_icmpne f\n    goto fail\n"
        + "f:\n    const 0\n    ifzero g\n    goto fail\n"
        + "g:\n    const 9\n    ifnzero ok\n    goto fail\n"
        + "fail:\n    const 0\n    retval\n"
        + "ok:\n    const 1\n    retval\n",
        [],
        1,
    ),
    # heap opcodes: new/newarray/putfield/getfield/aastore/aaload/arraylength
    # + reference conditionals + aconst_null + instanceof + return/implicit
    (
        "class Node\nfield next\n"
        + MAIN
        + "    new Node\n    store 0\n"
        + "    load 0\n    instanceof Node\n    ifnzero t1\n"
        + "    const 0\n    retval\nt1:\n"
        + "    aconst_null\n    ifnull t2\n    const 0\n    retval\nt2:\n"
        + "    load 0\n    ifnonnull t3\n    const 0\n    retval\nt3:\n"
        + "    load 0\n    load 0\n    if_acmpeq t4\n    const 0\n    retval\n"
        + "t4:\n    load 0\n    aconst_null\n    if_acmpne t5\n"
        + "    const 0\n    retval\nt5:\n"
        + "    const 3\n    newarray\n    store 1\n"
        + "    load 1\n    const 0\n    load 0\n    aastore\n"
        + "    load 1\n    const 0\n    aaload\n    const 41\n"
        + "    invokestatic Main.wrap\n    getfield next\n    pop\n"
        + "    load 1\n    arraylength\n    retval\n"
        + "method Main.wrap(2)\n"
        + "    load 0\n    load 1\n    putfield next\n    load 0\n    retval\n"
        + "method Main.unused(0)\n    return\n",
        [],
        3,
    ),
    # statics, strings, virtual calls, spawn
    (
        "class Config\nstatic limit\n"
        + "class Worker\nfield tag\n"
        + "method Worker.poke(1)\n"
        + "    load 0\n    getfield tag\n    pop\n    return\n"
        + "method Worker.answer(1)\n    const 42\n    retval\n"
        + MAIN
        + "    const 99\n    putstatic Config.limit\n"
        + '    ldc_str "hello"\n    intern\n    pop\n'
        + "    new Worker\n    store 0\n"
        + "    load 0\n    spawn poke 1\n"
        + "    load 0\n    invokevirtual answer 1\n"
        + "    getstatic Config.limit\n    sub\n    retval\n",
        [],
        42 - 99,
    ),
]


def run_one(source, args, dispatch, **config_kwargs):
    config_kwargs.setdefault("cg", CGPolicy(paranoid=True))
    program = assemble(source)
    rt = Runtime(RuntimeConfig(dispatch=dispatch, **config_kwargs),
                 program=program)
    result = rt.run("Main.main", list(args))
    return result, rt


def assert_parity(source, args, expected, **config_kwargs):
    res_t, rt_t = run_one(source, args, "table", **config_kwargs)
    res_c, rt_c = run_one(source, args, "chain", **config_kwargs)
    assert res_t == expected
    assert res_c == expected
    assert (rt_t.interpreter.instructions_executed
            == rt_c.interpreter.instructions_executed)
    assert rt_t.ops == rt_c.ops
    assert rt_t.heap.occupancy() == rt_c.heap.occupancy()
    if rt_t.collector is not None:
        assert rt_t.collector.stats == rt_c.collector.stats
        assert rt_t.collector.final_census() == rt_c.collector.final_census()


class TestOpcodeParity:
    @pytest.mark.parametrize("idx", range(len(PARITY_PROGRAMS)))
    def test_program_parity(self, idx):
        source, args, expected = PARITY_PROGRAMS[idx]
        assert_parity(source, args, expected)

    def test_parity_under_periodic_gc(self):
        # gc_period_ops forces the per-instruction tick path of the table
        # loop (no batching), and periodic collections mid-program.
        source, args, expected = PARITY_PROGRAMS[2]
        assert_parity(source, args, expected, gc_period_ops=7,
                      heap_words=4096)

    def test_corpus_covers_every_opcode(self):
        seen = set()
        for source, _, _ in PARITY_PROGRAMS:
            program = assemble(source)
            for cls in program.classes.values():
                for method in cls.methods.values():
                    for op, _, _ in method.code:
                        seen.add(op)
        missing = [bc.OPCODE_NAMES[op] for op in range(bc.OP_COUNT)
                   if op not in seen]
        assert not missing, f"parity corpus never exercises: {missing}"

    def test_unknown_opcode_both_dispatches(self):
        for dispatch in ("table", "chain"):
            program = assemble(MAIN + "    const 1\n    retval\n")
            method = program.lookup("Main").methods["main"]
            method.code[0] = (bc.OP_COUNT + 5, None, None)
            rt = Runtime(RuntimeConfig(dispatch=dispatch), program=program)
            with pytest.raises(VerifyError, match="unknown opcode"):
                rt.run("Main.main", [])


class TestWorkloadDifferential:
    """Full workloads under both dispatch configs must agree exactly."""

    @pytest.mark.parametrize("name", ["jess", "raytrace"])
    def test_workload_identical(self, name):
        snapshots = {}
        for dispatch in ("table", "chain"):
            wl = get_workload(name, seed=2000)
            config = config_for("cg", wl.heap_words(1))
            config.dispatch = dispatch
            rt = Runtime(config)
            wl.execute(rt, 1)
            snapshots[dispatch] = (
                rt.collector.stats,
                rt.collector.final_census(),
                rt.interpreter.instructions_executed,
                rt.heap.occupancy(),
                rt.ops,
            )
        assert snapshots["table"] == snapshots["chain"]
