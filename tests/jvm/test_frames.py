"""Unit tests for frames, call stacks, and frame ordering."""

import pytest

from repro.jvm.errors import IllegalStateError
from repro.jvm.frames import CallStack, Frame, FrameIdSource, StaticFrame
from repro.jvm.heap import Heap
from repro.jvm.model import Program


def make_stack(thread_id=0):
    return CallStack(thread_id, FrameIdSource())


class TestCallStack:
    def test_push_assigns_increasing_depths(self):
        stack = make_stack()
        f0 = stack.push(None)
        f1 = stack.push(None)
        f2 = stack.push(None)
        assert [f.depth for f in (f0, f1, f2)] == [0, 1, 2]
        assert stack.depth == 3

    def test_frame_ids_globally_unique(self):
        ids = FrameIdSource()
        s1 = CallStack(0, ids)
        s2 = CallStack(1, ids)
        a = s1.push(None)
        b = s2.push(None)
        c = s1.push(None)
        assert len({a.frame_id, b.frame_id, c.frame_id}) == 3
        assert a.frame_id >= 1  # id 0 reserved for the static frame

    def test_pop_lifo(self):
        stack = make_stack()
        f0 = stack.push(None)
        f1 = stack.push(None)
        assert stack.pop() is f1
        assert f1.popped
        assert stack.current is f0

    def test_pop_empty_raises(self):
        stack = make_stack()
        with pytest.raises(IllegalStateError):
            stack.pop()

    def test_current_on_empty_raises(self):
        stack = make_stack()
        with pytest.raises(IllegalStateError):
            _ = stack.current

    def test_caller(self):
        stack = make_stack()
        f0 = stack.push(None)
        assert stack.caller is None
        stack.push(None)
        assert stack.caller is f0


class TestFrameOrdering:
    def test_shallower_is_older_within_thread(self):
        stack = make_stack()
        f0 = stack.push(None)
        f1 = stack.push(None)
        assert f0.is_older_than(f1)
        assert not f1.is_older_than(f0)
        assert not f0.is_older_than(f0)

    def test_static_frame_is_oldest(self):
        static = StaticFrame()
        stack = make_stack()
        f0 = stack.push(None)
        assert static.is_older_than(f0)
        assert not f0.is_older_than(static)
        assert not static.is_older_than(static)

    def test_cross_thread_comparison_rejected(self):
        ids = FrameIdSource()
        a = CallStack(0, ids).push(None)
        b = CallStack(1, ids).push(None)
        with pytest.raises(IllegalStateError):
            a.is_older_than(b)


class TestFrameRoots:
    def test_root_references_collects_handles_only(self):
        heap = Heap(1024)
        program = Program()
        cls = program.define_class("N", fields=["x"])
        h1 = heap.allocate(cls, 0, 1, 0)
        h2 = heap.allocate(cls, 0, 1, 0)
        frame = Frame(1, 0, 0, None, nlocals=3)
        frame.locals[0] = h1
        frame.locals[1] = 42
        frame.stack.append(h2)
        frame.stack.append("str")
        assert frame.root_references() == [h1, h2]

    def test_set_local_extends(self):
        frame = Frame(1, 0, 0, None, nlocals=1)
        frame.set_local(4, "v")
        assert len(frame.locals) == 5
        assert frame.locals[4] == "v"

    def test_add_root_returns_index(self):
        frame = Frame(1, 0, 0, None, nlocals=2)
        idx = frame.add_root("h")
        assert idx == 2
        assert frame.locals[2] == "h"


class TestStaticFrame:
    def test_properties(self):
        static = StaticFrame()
        assert static.is_static_frame
        assert static.frame_id == 0
        assert static.depth == -1

    def test_real_frames_are_not_static(self):
        stack = make_stack()
        assert not stack.push(None).is_static_frame
