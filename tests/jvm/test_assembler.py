"""Unit tests for the textual assembler."""

import pytest

from repro.jvm import bytecode as bc
from repro.jvm.assembler import assemble
from repro.jvm.errors import AssemblerError


class TestClasses:
    def test_class_with_fields_and_statics(self):
        program = assemble(
            """
            class Point
                field x
                field y
                static origin
            """
        )
        cls = program.lookup("Point")
        assert cls.fields == ["x", "y"]
        assert "origin" in cls.statics

    def test_class_extends(self):
        program = assemble(
            """
            class Base
                field a
            class Derived extends Base
                field b
            """
        )
        derived = program.lookup("Derived")
        assert derived.fields == ["a", "b"]
        assert derived.superclass.name == "Base"

    def test_field_outside_class_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("field x")


class TestMethods:
    def test_method_header_and_code(self):
        program = assemble(
            """
            class C
            method C.add(2)
                load 0
                load 1
                add
                retval
            """
        )
        method = program.resolve("C.add")
        assert method.nargs == 2
        assert [op for op, _, _ in method.code] == [
            bc.LOAD, bc.LOAD, bc.ADD, bc.RETVAL,
        ]

    def test_explicit_locals(self):
        program = assemble(
            """
            class C
            method C.m(1) locals=5
                return
            """
        )
        assert program.resolve("C.m").nlocals == 5

    def test_locals_inferred_from_stores(self):
        program = assemble(
            """
            class C
            method C.m(1)
                const 1
                store 3
                return
            """
        )
        assert program.resolve("C.m").nlocals == 4

    def test_instruction_outside_method_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("const 1")


class TestLabels:
    def test_labels_resolve_to_pcs(self):
        program = assemble(
            """
            class C
            method C.loop(1)
            top:
                load 0
                ifzero done
                iinc 0 -1
                goto top
            done:
                return
            """
        )
        method = program.resolve("C.loop")
        assert method.labels == {"top": 0, "done": 4}
        ifzero = method.code[1]
        assert ifzero == (bc.IFZERO, 4, None)
        goto = method.code[3]
        assert goto == (bc.GOTO, 0, None)

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble(
                """
                class C
                method C.m(0)
                    goto nowhere
                """
            )

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError, match="duplicate label"):
            assemble(
                """
                class C
                method C.m(0)
                a:
                a:
                    return
                """
            )


class TestOperands:
    def test_string_literal(self):
        program = assemble(
            """
            class C
            method C.m(0)
                ldc_str "hello world"
                retval
            """
        )
        op, a, _ = program.resolve("C.m").code[0]
        assert op == bc.LDC_STR
        assert a == "hello world"

    def test_unquoted_string_rejected(self):
        with pytest.raises(AssemblerError, match="quoted string"):
            assemble(
                """
                class C
                method C.m(0)
                    ldc_str bare
                """
            )

    def test_invokevirtual_takes_name_and_nargs(self):
        program = assemble(
            """
            class C
            method C.m(1)
                load 0
                invokevirtual run 1
                return
            """
        )
        op, a, b = program.resolve("C.m").code[1]
        assert (op, a, b) == (bc.INVOKEVIRTUAL, "run", 1)

    def test_iinc_two_ints(self):
        program = assemble(
            """
            class C
            method C.m(1)
                iinc 0 -3
                return
            """
        )
        assert program.resolve("C.m").code[0] == (bc.IINC, 0, -3)

    def test_wrong_arity_rejected(self):
        with pytest.raises(AssemblerError, match="expects"):
            assemble(
                """
                class C
                method C.m(0)
                    const
                """
            )

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble(
                """
                class C
                method C.m(0)
                    frobnicate 1
                """
            )

    def test_comments_and_blank_lines_ignored(self):
        program = assemble(
            """
            ; a file comment

            class C    ; trailing comment
            method C.m(0)
                const 1   ; push one
                retval
            """
        )
        assert len(program.resolve("C.m").code) == 2


class TestDisassembler:
    def test_roundtrip_readable(self):
        program = assemble(
            """
            class C
            method C.m(0)
                const 7
                retval
            """
        )
        text = bc.disassemble(program.resolve("C.m").code)
        assert "const 7" in text
        assert "retval" in text
