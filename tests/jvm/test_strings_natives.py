"""Unit tests for string interning (section 3.2) and natives (section 3.3)."""

import pytest

from repro import Mutator, assemble, CGPolicy, Runtime, RuntimeConfig
from repro.jvm.errors import LinkageError, VMError
from repro.jvm.interpreter import VOID
from repro.jvm.model import JMethod
from tests.conftest import assert_clean, make_runtime


class TestInternTable:
    def test_first_intern_becomes_canonical(self, rt, m):
        with m.frame():
            s = m.new_string("abc")
            assert m.intern(s) is s
        assert rt.intern_table.misses == 1

    def test_equal_contents_map_to_same_object(self, rt, m):
        with m.frame():
            a = m.intern(m.new_string("k"))
            b = m.intern(m.new_string("k"))
            c = m.intern(m.new_string("other"))
            assert a is b
            assert a is not c
        assert rt.intern_table.hits == 1
        assert rt.intern_table.misses == 2

    def test_interned_strings_survive_all_pops(self, rt, m):
        with m.frame():
            s = m.intern(m.new_string("forever"))
        s.check_live()
        assert s in set(rt.iter_static_roots())

    def test_intern_non_string_rejected(self, rt, m):
        with m.frame():
            h = m.new("Node")
            with pytest.raises(VMError, match="non-string"):
                rt.intern(h)
            m.drop(h)

    def test_duplicate_string_is_collectable(self, rt, m):
        with m.frame():
            m.intern(m.new_string("x"))
            dup = m.new_string("x")
            canon = m.intern(dup)
            assert canon is not dup
        assert dup.freed  # the non-canonical copy died with the frame
        assert_clean(rt)


class TestNatives:
    def make_vm(self, source, cg=None):
        program = assemble(source)
        rt = Runtime(
            RuntimeConfig(cg=cg or CGPolicy(paranoid=True)), program=program
        )
        return rt

    def test_native_method_runs_and_returns(self):
        source = """
        class Main
        method Main.main(0)
            const 20
            invokestatic Main.twice
            retval
        """
        rt = self.make_vm(source)
        cls = rt.program.lookup("Main")
        cls.add_method(JMethod("twice", 1, native=lambda env, args: args[0] * 2))
        assert rt.run("Main.main") == 40

    def test_native_void_pushes_nothing(self):
        source = """
        class Main
        method Main.main(0)
            invokestatic Main.sideeffect
            const 5
            retval
        """
        rt = self.make_vm(source)
        hits = []
        cls = rt.program.lookup("Main")
        cls.add_method(
            JMethod("sideeffect", 0, native=lambda env, args: (hits.append(1), VOID)[1])
        )
        assert rt.run("Main.main") == 5
        assert hits == [1]

    def test_native_returning_reference_is_pinned(self):
        source = """
        class Box
            field v
        class Main
        method Main.main(0) locals=1
            invokestatic Main.makeBox
            store 0
            const 0
            retval
        """
        rt = self.make_vm(source)
        cls = rt.program.lookup("Main")

        def make_box(env, args):
            return env.runtime.allocate("Box", env.thread)

        cls.add_method(JMethod("makeBox", 0, native=make_box))
        rt.run("Main.main")
        st = rt.collector.stats
        # Conservative: the native-returned box lives forever.
        assert st.objects_pinned["native"] == 1
        assert st.objects_popped == 0

    def test_native_callback_into_java_pins_result(self):
        source = """
        class Box
            field v
        class Factory
        method Factory.make(0)
            new Box
            retval
        class Main
        method Main.main(0)
            invokestatic Main.driver
            retval
        """
        rt = self.make_vm(source)
        cls = rt.program.lookup("Main")

        def driver(env, args):
            box = env.call("Factory.make", [])
            return 1 if box is not None else 0

        cls.add_method(JMethod("driver", 0, native=driver))
        assert rt.run("Main.main") == 1
        assert rt.collector.stats.objects_pinned["native"] == 1

    def test_env_pin_unpin_roots(self):
        rt = make_runtime()
        m = Mutator(rt)
        from repro.jvm.natives import NativeEnv

        env = NativeEnv(rt, rt.main_thread)
        with m.frame():
            h = m.new("Node")
            env.pin(h)
            assert h in set(rt.iter_static_roots())
            env.unpin(h)
            assert h not in set(rt.iter_static_roots())
            m.drop(h)

    def test_registry_lookup_missing(self):
        from repro.jvm.natives import NativeRegistry

        reg = NativeRegistry()
        with pytest.raises(LinkageError):
            reg.lookup("No.such")

    def test_registry_register_and_has(self):
        from repro.jvm.natives import NativeRegistry

        reg = NativeRegistry()
        fn = lambda env, args: None
        reg.register("C.m", fn)
        assert reg.has("C.m")
        assert reg.lookup("C.m") is fn
