"""Unit tests for the heap: free list, handles, accounting, compaction."""

import pytest

from repro.jvm.errors import UseAfterCollect, VMError
from repro.jvm.heap import (
    OBJECT_HEADER_WORDS,
    FreeList,
    Heap,
)
from repro.jvm.model import Program


def make_heap(capacity=1024):
    return Heap(capacity), Program()


class TestFreeList:
    def test_initial_state_one_block(self):
        fl = FreeList(100)
        assert fl.blocks() == [(0, 100)]
        assert fl.free_words == 100

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FreeList(0)

    def test_allocate_carves_from_front(self):
        fl = FreeList(100)
        assert fl.allocate(10) == 0
        assert fl.allocate(10) == 10
        assert fl.free_words == 80

    def test_allocate_exact_block_removes_it(self):
        fl = FreeList(10)
        assert fl.allocate(10) == 0
        assert fl.blocks() == []
        assert fl.allocate(1) is None

    def test_allocation_failure_returns_none(self):
        fl = FreeList(10)
        assert fl.allocate(11) is None

    def test_free_and_reuse(self):
        fl = FreeList(30)
        a = fl.allocate(10)
        b = fl.allocate(10)
        fl.free(a, 10)
        fl.reset_scan()
        assert fl.allocate(10) == a
        assert b == 10

    def test_coalesce_with_previous(self):
        fl = FreeList(30)
        a = fl.allocate(10)
        b = fl.allocate(10)
        fl.free(a, 10)
        fl.free(b, 10)
        assert fl.blocks() == [(0, 30)]

    def test_coalesce_with_next(self):
        fl = FreeList(30)
        a = fl.allocate(10)
        b = fl.allocate(10)
        fl.free(b, 10)
        fl.free(a, 10)
        assert fl.blocks() == [(0, 30)]

    def test_coalesce_bridges_both_sides(self):
        fl = FreeList(30)
        a = fl.allocate(10)
        b = fl.allocate(10)
        c = fl.allocate(10)
        fl.free(a, 10)
        fl.free(c, 10)
        assert len(fl.blocks()) == 2
        fl.free(b, 10)
        assert fl.blocks() == [(0, 30)]

    def test_overlapping_free_rejected(self):
        fl = FreeList(30)
        fl.allocate(10)
        fl.free(0, 10)
        with pytest.raises(VMError):
            fl.free(5, 10)

    def test_next_fit_resumes_after_last_allocation(self):
        fl = FreeList(100)
        a = fl.allocate(20)  # 0
        b = fl.allocate(20)  # 20
        fl.allocate(60)      # 40..100, list now empty
        fl.free(a, 20)
        fl.free(b, 20)       # coalesced: one 40-word block at 0
        # next-fit wraps and finds it
        assert fl.allocate(30) == 0

    def test_search_steps_counted(self):
        fl = FreeList(100)
        before = fl.search_steps
        fl.allocate(10)
        assert fl.search_steps == before + 1

    def test_fragmented_search_costs_more(self):
        fl = FreeList(100)
        addrs = [fl.allocate(10) for _ in range(10)]
        # Free alternating blocks: five 10-word holes.
        for a in addrs[::2]:
            fl.free(a, 10)
        fl.reset_scan()
        before = fl.search_steps
        assert fl.allocate(10) is not None
        assert fl.search_steps == before + 1  # first hole fits
        fl.reset_scan()
        before = fl.search_steps
        assert fl.allocate(20) is None  # no hole fits: scanned all
        assert fl.search_steps - before == len(fl.blocks())


class TestHeapAllocation:
    def test_allocate_object_charges_header_plus_fields(self):
        heap, prog = make_heap()
        node = prog.define_class("Node", fields=["a", "b", "c"])
        h = heap.allocate(node, 0, 1, 0)
        assert h.size == OBJECT_HEADER_WORDS + 3
        assert set(h.fields) == {"a", "b", "c"}
        assert all(v is None for v in h.fields.values())

    def test_allocate_array(self):
        heap, prog = make_heap()
        arr = heap.allocate(prog.lookup(Program.ARRAY), 0, 1, 0, length=5)
        assert arr.is_array
        assert arr.length == 5
        assert arr.size == OBJECT_HEADER_WORDS + 5
        assert arr.elements == [None] * 5

    def test_zero_length_array(self):
        heap, prog = make_heap()
        arr = heap.allocate(prog.lookup(Program.ARRAY), 0, 1, 0, length=0)
        assert arr.length == 0
        assert arr.size == OBJECT_HEADER_WORDS

    def test_handles_get_unique_increasing_ids(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["x"])
        ids = [heap.allocate(node, 0, 1, 0).id for _ in range(5)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_exhaustion_returns_none(self):
        heap, prog = make_heap(capacity=16)
        big = prog.define_class("Big", fields=[f"f{i}" for i in range(20)])
        assert heap.allocate(big, 0, 1, 0) is None

    def test_birth_metadata_recorded(self):
        heap, prog = make_heap()
        node = prog.define_class("N2", fields=["x"])
        h = heap.allocate(node, 3, 42, 7)
        assert h.alloc_thread == 3
        assert h.birth_frame_id == 42
        assert h.birth_depth == 7


class TestHeapFreeAndAccounting:
    def test_free_returns_storage(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["x"])
        h = heap.allocate(node, 0, 1, 0)
        live_before = heap.live_words
        heap.free(h, "test")
        assert h.freed
        assert h.freed_by == "test"
        assert heap.live_words == live_before - h.size
        heap.check_accounting()

    def test_double_free_rejected(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["x"])
        h = heap.allocate(node, 0, 1, 0)
        heap.free(h, "test")
        with pytest.raises(VMError):
            heap.free(h, "test")

    def test_freed_handle_access_raises(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["x"])
        h = heap.allocate(node, 0, 1, 0)
        heap.free(h, "oracle-test")
        with pytest.raises(UseAfterCollect):
            h.check_live()

    def test_freed_handle_drops_outgoing_references(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["x"])
        a = heap.allocate(node, 0, 1, 0)
        b = heap.allocate(node, 0, 1, 0)
        a.fields["x"] = b
        heap.free(a, "test")
        assert a.fields is None

    def test_retire_parks_storage(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["x"])
        h = heap.allocate(node, 0, 1, 0)
        free_before = heap.free_list.free_words
        heap.retire(h, "cg")
        assert h.freed
        assert heap.free_list.free_words == free_before  # NOT returned yet
        heap.check_accounting(recycled_words=h.size)
        heap.release_recycled(h)
        heap.check_accounting()

    def test_accounting_detects_leak(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["x"])
        h = heap.allocate(node, 0, 1, 0)
        heap.retire(h, "cg")  # parked but not reported as recycled
        with pytest.raises(VMError):
            heap.check_accounting(recycled_words=0)


class TestAdoptStorage:
    def test_adopt_reuses_address(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["x"])
        old = heap.allocate(node, 0, 1, 0)
        addr = old.addr
        heap.retire(old, "cg")
        new = heap.adopt_storage(old, node, 0, 2, 1)
        assert new.addr == addr
        assert new.id != old.id
        heap.check_accounting()

    def test_adopt_from_larger_donor_returns_surplus(self):
        heap, prog = make_heap()
        big = prog.define_class("BigD", fields=[f"f{i}" for i in range(10)])
        small = prog.define_class("SmallD", fields=["x"])
        old = heap.allocate(big, 0, 1, 0)
        heap.retire(old, "cg")
        free_before = heap.free_list.free_words
        new = heap.adopt_storage(old, small, 0, 2, 1)
        surplus = old.size - new.size
        assert surplus > 0
        assert heap.free_list.free_words == free_before + surplus
        heap.check_accounting()

    def test_adopt_requires_dead_donor(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["x"])
        live = heap.allocate(node, 0, 1, 0)
        with pytest.raises(VMError):
            heap.adopt_storage(live, node, 0, 2, 1)

    def test_adopt_requires_big_enough_donor(self):
        heap, prog = make_heap()
        small = prog.define_class("S", fields=["x"])
        big = prog.define_class("B", fields=[f"f{i}" for i in range(10)])
        old = heap.allocate(small, 0, 1, 0)
        heap.retire(old, "cg")
        with pytest.raises(VMError):
            heap.adopt_storage(old, big, 0, 2, 1)


class TestCompaction:
    def test_compact_slides_objects_to_base(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["x"])
        handles = [heap.allocate(node, 0, 1, 0) for _ in range(5)]
        for h in handles[::2]:
            heap.free(h, "test")
        moved = heap.compact()
        assert moved > 0
        live = sorted(heap.live_handles(), key=lambda h: h.addr)
        cursor = 0
        for h in live:
            assert h.addr == cursor
            cursor += h.size
        assert heap.free_list.blocks() == [(cursor, heap.capacity - cursor)]
        heap.check_accounting()

    def test_compact_empty_heap(self):
        heap, _ = make_heap()
        assert heap.compact() == 0
        assert heap.free_list.free_words == heap.capacity


class TestHandleModel:
    def test_references_iterates_fields(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["a", "b"])
        x = heap.allocate(node, 0, 1, 0)
        y = heap.allocate(node, 0, 1, 0)
        x.fields["a"] = y
        x.fields["b"] = 42  # primitives are not references
        assert list(x.references()) == [y]

    def test_references_iterates_array_elements(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["a"])
        arr = heap.allocate(prog.lookup(Program.ARRAY), 0, 1, 0, length=3)
        y = heap.allocate(node, 0, 1, 0)
        arr.elements[1] = y
        arr.elements[2] = "not-a-ref"
        assert list(arr.references()) == [y]

    def test_arraylength_on_object_raises(self):
        heap, prog = make_heap()
        node = prog.define_class("N", fields=["a"])
        h = heap.allocate(node, 0, 1, 0)
        with pytest.raises(VMError):
            _ = h.length

    def test_handle_region_accounting(self):
        heap, prog = make_heap()
        heap.handle_words = 16
        node = prog.define_class("N", fields=["a"])
        for _ in range(4):
            heap.allocate(node, 0, 1, 0)
        assert heap.handle_region_words() == 64
