"""Unit tests for the class/method model."""

import pytest

from repro.jvm.errors import LinkageError
from repro.jvm.model import JClass, JMethod, Program


class TestJClass:
    def test_field_inheritance_order(self):
        base = JClass("Base", fields=["a", "b"])
        derived = JClass("Derived", fields=["c"], superclass=base)
        assert derived.fields == ["a", "b", "c"]

    def test_field_shadowing_not_duplicated(self):
        base = JClass("Base", fields=["a"])
        derived = JClass("Derived", fields=["a", "b"], superclass=base)
        assert derived.fields == ["a", "b"]

    def test_instance_size_min_one_word(self):
        empty = JClass("Empty")
        assert empty.instance_size_words() == 1

    def test_method_resolution_walks_supers(self):
        base = JClass("Base")
        derived = JClass("Derived", superclass=base)
        method = JMethod("run", 1)
        base.add_method(method)
        assert derived.resolve_method("run") is method

    def test_override_wins(self):
        base = JClass("Base")
        derived = JClass("Derived", superclass=base)
        base.add_method(JMethod("run", 1))
        override = JMethod("run", 1)
        derived.add_method(override)
        assert derived.resolve_method("run") is override
        assert base.resolve_method("run") is not override

    def test_missing_method_raises(self):
        cls = JClass("C")
        with pytest.raises(LinkageError):
            cls.resolve_method("nope")


class TestJMethod:
    def test_nlocals_defaults_to_nargs(self):
        assert JMethod("m", 3).nlocals == 3

    def test_nlocals_below_nargs_rejected(self):
        with pytest.raises(LinkageError):
            JMethod("m", 3, nlocals=2)

    def test_qualified_name(self):
        cls = JClass("pkg/C")
        method = JMethod("m", 0)
        cls.add_method(method)
        assert method.qualified_name == "pkg/C.m"


class TestProgram:
    def test_wellknown_classes_exist(self):
        program = Program()
        assert program.lookup(Program.OBJECT).name == Program.OBJECT
        assert program.lookup(Program.STRING).fields == ["value"]
        assert program.lookup(Program.ARRAY).is_array

    def test_define_class_defaults_to_object_super(self):
        program = Program()
        cls = program.define_class("C")
        assert cls.superclass is program.lookup(Program.OBJECT)

    def test_duplicate_class_rejected(self):
        program = Program()
        program.define_class("C")
        with pytest.raises(LinkageError):
            program.define_class("C")

    def test_unknown_class_raises(self):
        with pytest.raises(LinkageError):
            Program().lookup("Missing")

    def test_resolve_qualified(self):
        program = Program()
        cls = program.define_class("C")
        method = JMethod("m", 0)
        cls.add_method(method)
        assert program.resolve("C.m") is method

    def test_resolve_malformed(self):
        with pytest.raises(LinkageError):
            Program().resolve("nodot")

    def test_explicit_superclass(self):
        program = Program()
        program.define_class("Base", fields=["x"])
        derived = program.define_class("Derived", superclass="Base")
        assert derived.fields == ["x"]
