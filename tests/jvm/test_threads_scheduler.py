"""Unit tests for threads and the round-robin scheduler."""

import pytest

from repro.jvm.errors import IllegalStateError
from repro.jvm.frames import FrameIdSource
from repro.jvm.threads import JThread, Scheduler


def make_thread(tid=0, name="t"):
    return JThread(tid, name, FrameIdSource())


class TestJThread:
    def test_fresh_thread_state(self):
        t = make_thread()
        assert t.alive and not t.started and not t.finished

    def test_finished_after_stack_drains(self):
        t = make_thread()
        t.started = True
        t.stack.push(None)
        assert not t.finished
        t.stack.pop()
        assert t.finished


class TestScheduler:
    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            Scheduler(quantum=0)

    def test_round_robin_order(self):
        sched = Scheduler()
        threads = [make_thread(i, f"t{i}") for i in range(3)]
        for t in threads:
            sched.register(t)
            t.stack.push(None)  # runnable
        picked = [sched.next_thread() for _ in range(6)]
        assert picked == threads + threads

    def test_skips_threads_with_empty_stacks(self):
        sched = Scheduler()
        a, b = make_thread(0, "a"), make_thread(1, "b")
        sched.register(a)
        sched.register(b)
        b.stack.push(None)
        assert sched.next_thread() is b
        assert sched.next_thread() is b

    def test_none_when_nothing_runnable(self):
        sched = Scheduler()
        sched.register(make_thread())
        assert sched.next_thread() is None

    def test_empty_scheduler(self):
        assert Scheduler().next_thread() is None

    def test_retire_removes_from_rotation(self):
        sched = Scheduler()
        t = make_thread()
        sched.register(t)
        t.stack.push(None)
        sched.retire(t)
        assert sched.next_thread() is None

    def test_retire_unknown_rejected(self):
        with pytest.raises(IllegalStateError):
            Scheduler().retire(make_thread())

    def test_runnable_listing(self):
        sched = Scheduler()
        a, b = make_thread(0), make_thread(1)
        sched.register(a)
        sched.register(b)
        a.stack.push(None)
        assert sched.runnable() == [a]


class TestSchedulerDeterminism:
    def test_quantum_interleaving_is_deterministic(self):
        """Two identical multithreaded bytecode runs produce identical
        sharing outcomes (the basis of every mtrt/javac census figure)."""
        from repro import CGPolicy, Runtime, RuntimeConfig, assemble

        source = """
        class Box
            field v
        class W
            field item
        method W.run(1)
            load 0
            getfield item
            const 1
            putfield v
            return
        class Main
        method Main.main(0) locals=2
            new Box
            store 0
            new W
            store 1
            load 1
            load 0
            putfield item
            load 1
            spawn run 1
            const 0
            retval
        """

        def run_once():
            rt = Runtime(
                RuntimeConfig(cg=CGPolicy(paranoid=True), quantum=3),
                program=assemble(source),
            )
            rt.run("Main.main")
            return dict(rt.collector.stats.objects_pinned)

        assert run_once() == run_once()
