"""Unit tests for the direct-drive mutator and its root discipline."""

import pytest

from repro import Mutator
from repro.jvm.errors import IllegalStateError
from tests.conftest import assert_clean, make_runtime


class TestTempRoots:
    def test_new_is_temp_rooted_on_operand_stack(self, rt, m):
        with m.frame() as frame:
            h = m.new("Node")
            assert h in frame.stack
            m.drop(h)
            assert h not in frame.stack

    def test_store_consumes_temp_root(self, rt, m):
        with m.frame() as frame:
            a = m.new("Node")
            b = m.new("Node")
            m.putfield(a, "next", b)
            assert b not in frame.stack  # consumed by the store
            assert a in frame.stack      # container still temp-rooted
            m.drop(a)

    def test_set_local_consumes_temp_root(self, rt, m):
        with m.frame() as frame:
            h = m.new("Node")
            m.set_local(0, h)
            assert h not in frame.stack
            assert frame.locals[0] is h

    def test_putstatic_consumes(self, rt, m):
        with m.frame() as frame:
            h = m.new("Node")
            m.putstatic("k", h)
            assert h not in frame.stack

    def test_aastore_consumes(self, rt, m):
        with m.frame() as frame:
            arr = m.new_array(2)
            h = m.new("Node")
            m.aastore(arr, 0, h)
            assert h not in frame.stack
            m.drop(arr)

    def test_temp_root_survives_gc(self):
        """The whole point: an unconsumed allocation must survive a GC."""
        rt = make_runtime(heap_words=128, tracing="marksweep")
        m = Mutator(rt)
        with m.frame():
            precious = m.new("Node")
            # Force collections by exhausting the heap with garbage.
            for _ in range(60):
                m.drop(m.new("Node"))
            precious.check_live()  # still alive: operand stack is a root
            m.drop(precious)
        assert rt.tracing.work.cycles >= 1
        assert_clean(rt)

    def test_getfield_keep_temp_roots_result(self, rt, m):
        with m.frame() as frame:
            a = m.new("Node")
            b = m.new("Node")
            m.putfield(a, "next", b)
            out = m.getfield(a, "next", keep=True)
            assert out is b
            assert b in frame.stack
            m.drop(a)
            m.drop(b)

    def test_aaload_keep(self, rt, m):
        with m.frame() as frame:
            arr = m.new_array(1)
            h = m.new("Node")
            m.aastore(arr, 0, h)
            out = m.aaload(arr, 0, keep=True)
            assert out is h
            assert h in frame.stack
            m.drop(arr)
            m.drop(h)


class TestFramesAndReturns:
    def test_frame_context_pushes_and_pops(self, rt, m):
        assert m.depth == 0
        with m.frame():
            assert m.depth == 1
            with m.frame():
                assert m.depth == 2
        assert m.depth == 0

    def test_areturn_reroots_on_caller_stack(self, rt, m):
        with m.frame() as outer:
            with m.frame():
                h = m.new("Node")
                m.areturn(h)
            assert h in outer.stack
            m.consume_from_caller(h)
            assert h not in outer.stack

    def test_areturn_without_frame_rejected(self, rt, m):
        with pytest.raises(IllegalStateError):
            # No frame at all.
            m.areturn(None)

    def test_root_returns_local_index(self, rt, m):
        with m.frame() as frame:
            h = m.new("Node")
            idx = m.root(h)
            assert frame.locals[idx] is h
            assert h not in frame.stack

    def test_get_local(self, rt, m):
        with m.frame():
            h = m.new("Node")
            m.set_local(2, h)
            assert m.get_local(2) is h
            assert m.get_local(99) is None


class TestSpawn:
    def test_spawn_binds_new_thread(self, rt, m):
        other = m.spawn("worker")
        assert other.thread is not m.thread
        assert other.runtime is rt

    def test_spawned_thread_frames_are_independent(self, rt, m):
        other = m.spawn()
        with m.frame():
            with other.frame():
                assert m.depth == 1
                assert other.depth == 1
                a = m.new("Node")
                b = other.new("Node")
                assert a.alloc_thread == m.thread.thread_id
                assert b.alloc_thread == other.thread.thread_id
                m.drop(a)
                other.drop(b)


class TestTicks:
    def test_every_op_charges_runtime_ops(self, rt, m):
        before = rt.ops
        with m.frame():
            h = m.new("Node")
            m.putfield(h, "payload", 1)
            m.getfield(h, "payload")
            m.drop(h)
        assert rt.ops >= before + 4
