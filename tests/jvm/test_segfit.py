"""Segregated-fit free list: unit behavior plus the allocator config knob."""

import pytest

from repro.core.policy import CGPolicy
from repro.api import run as run_workload
from repro.jvm.heap import (
    ALLOCATOR_CHOICES,
    FreeList,
    SegregatedFreeList,
    _size_class,
    make_free_list,
)
from repro.jvm.runtime import Runtime, RuntimeConfig


class TestSizeClasses:
    def test_exact_classes_are_identity(self):
        for size in range(1, 33):
            assert _size_class(size) == size

    def test_range_classes_are_monotonic(self):
        classes = [_size_class(s) for s in range(1, 5000)]
        assert classes == sorted(classes)

    def test_powers_of_two_bucket_boundaries(self):
        assert _size_class(33) == _size_class(64)
        assert _size_class(64) != _size_class(65)
        assert _size_class(65) == _size_class(128)


class TestSegregatedFreeList:
    def test_allocate_and_free_roundtrip(self):
        fl = SegregatedFreeList(1024)
        a = fl.allocate(10)
        b = fl.allocate(20)
        assert a is not None and b is not None
        assert fl.free_words == 1024 - 30
        fl.free(a, 10)
        fl.free(b, 20)
        assert fl.free_words == 1024

    def test_addresses_never_overlap(self):
        fl = SegregatedFreeList(512)
        spans = []
        for size in [3, 17, 40, 100, 5, 64, 33]:
            addr = fl.allocate(size)
            assert addr is not None
            for other, osize in spans:
                assert addr + size <= other or other + osize <= addr
            spans.append((addr, size))

    def test_recycles_freed_block_of_same_class(self):
        fl = SegregatedFreeList(256)
        a = fl.allocate(8)
        fl.free(a, 8)
        b = fl.allocate(8)
        assert b == a  # exact bin served the hole back

    def test_search_steps_accounting_monotonic(self):
        fl = SegregatedFreeList(256)
        before = fl.search_steps
        fl.allocate(8)
        assert fl.search_steps > before

    def test_exhaustion_returns_none(self):
        fl = SegregatedFreeList(64)
        assert fl.allocate(60) is not None
        assert fl.allocate(60) is None

    def test_consolidation_reassembles_fragments(self):
        fl = SegregatedFreeList(128)
        addrs = [fl.allocate(8) for _ in range(16)]
        assert all(a is not None for a in addrs)
        for a in addrs:
            fl.free(a, 8)
        # Each hole sits in the size-8 bin; a 100-word request must trigger
        # the deferred coalescing pass and then succeed.
        assert fl.allocate(100) is not None

    def test_replace_free_space_matches_next_fit_contract(self):
        for cls in (FreeList, SegregatedFreeList):
            fl = cls(256)
            fl.allocate(50)
            fl.replace_free_space([(0, 100), (200, 56)])
            assert fl.free_words == 156
            assert fl.largest_block == 100


class TestFactory:
    def test_choices(self):
        assert make_free_list("next-fit", 64).__class__ is FreeList
        assert make_free_list("segregated", 64).__class__ is SegregatedFreeList
        with pytest.raises(ValueError, match="allocator"):
            make_free_list("bogus", 64)

    def test_runtime_config_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(allocator="bogus")
        for choice in ALLOCATOR_CHOICES:
            RuntimeConfig(allocator=choice)


class TestAllocatorAblation:
    def test_runtime_uses_configured_allocator(self):
        rt = Runtime(RuntimeConfig(allocator="segregated",
                                   cg=CGPolicy.paper_default()))
        assert isinstance(rt.heap.free_list, SegregatedFreeList)

    def test_cg_segfit_system_preserves_gc_behavior(self):
        """The allocator only changes placement, never what CG collects."""
        base = run_workload("jess", 1, "cg")
        seg = run_workload("jess", 1, "cg-segfit")
        assert seg.cg_stats == base.cg_stats
        assert seg.census == base.census
        assert seg.ops == base.ops
        assert seg.objects_created == base.objects_created

    def test_accounting_invariant_holds_under_pressure(self):
        # A squeezed heap forces frees, GC, and reuse through the
        # segregated list; run_workload calls heap.check_accounting.
        base = run_workload("raytrace", 1, "cg")
        squeezed = max(1024, int(base.peak_live_words * 1.05) + 64)
        result = run_workload("raytrace", 1, "cg-segfit", heap_words=squeezed)
        assert result.census == base.census
