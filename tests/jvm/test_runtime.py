"""Unit tests for runtime allocation policy, roots, and periodic GC."""

import pytest

from repro import CGPolicy, Mutator, OutOfMemoryError, Runtime, RuntimeConfig
from tests.conftest import assert_clean, define_test_classes, make_runtime


class TestConfig:
    def test_rejects_unknown_tracing(self):
        with pytest.raises(ValueError):
            RuntimeConfig(tracing="zgc")

    def test_rejects_nonpositive_heap(self):
        with pytest.raises(ValueError):
            RuntimeConfig(heap_words=0)

    def test_handle_width_follows_policy(self):
        rt = Runtime(RuntimeConfig(cg=CGPolicy(handle_words=8)))
        assert rt.heap.handle_words == 8

    def test_disabled_cg_uses_jdk_handles(self):
        rt = Runtime(RuntimeConfig(cg=CGPolicy.disabled()))
        assert rt.collector is None
        assert rt.heap.handle_words == 2


class TestAllocationPolicy:
    def test_allocation_failure_triggers_tracing_gc(self):
        rt = make_runtime(heap_words=64, tracing="marksweep")
        m = Mutator(rt)
        with m.frame():
            # Node = 2 header + 2 fields = 4 words; 16 fill the heap.
            for _ in range(40):
                m.drop(m.new("Node"))
        assert rt.tracing.work.cycles >= 1
        assert rt.tracing.work.objects_collected > 0
        assert_clean(rt)

    def test_oom_when_nothing_collectable(self):
        rt = make_runtime(heap_words=64, tracing="marksweep")
        m = Mutator(rt)
        with pytest.raises(OutOfMemoryError):
            with m.frame():
                for i in range(40):
                    m.root(m.new("Node"))  # all rooted: unreclaimable

    def test_oom_with_null_gc(self):
        rt = make_runtime(heap_words=64, tracing="none")
        m = Mutator(rt)
        with pytest.raises(OutOfMemoryError):
            with m.frame():
                for _ in range(40):
                    m.drop(m.new("Node"))

    def test_cg_frees_without_tracing_gc(self):
        """CG alone sustains a loop that would OOM under the null collector."""
        rt = make_runtime(heap_words=64, tracing="none")
        m = Mutator(rt)
        with m.frame():
            for _ in range(40):
                with m.frame():
                    m.root(m.new("Node"))
        assert rt.tracing.work.cycles == 0
        assert rt.collector.stats.objects_popped == 40
        assert_clean(rt)

    def test_recycle_consulted_before_tracing_gc(self):
        rt = make_runtime(
            heap_words=64, cg=CGPolicy(recycling=True, paranoid=True),
            tracing="marksweep",
        )
        m = Mutator(rt)
        with m.frame():
            for _ in range(40):
                with m.frame():
                    m.root(m.new("Node"))
        assert rt.collector.stats.objects_recycled > 0
        assert rt.tracing.work.cycles == 0
        assert_clean(rt)


class TestRoots:
    def test_roots_include_locals_stack_statics_intern_native(self):
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            local = m.new("Node")
            m.set_local(0, local)
            temp = m.new("Node")  # operand-stack temp root
            static = m.new("Node")
            m.putstatic("s", static)
            interned = m.intern(m.new_string("k"))
            pinned = m.new("Node")
            rt.natives.pin(pinned)
            roots = set(rt.iter_roots())
            assert {local, temp, static, interned, pinned} <= roots
            m.drop(temp)
            rt.natives.unpin(pinned)
            m.drop(pinned)

    def test_static_roots_subset(self):
        rt = make_runtime()
        m = Mutator(rt)
        with m.frame():
            local = m.new("Node")
            m.set_local(0, local)
            static = m.new("Node")
            m.putstatic("s", static)
            static_roots = set(rt.iter_static_roots())
            assert static in static_roots
            assert local not in static_roots

    def test_class_statics_are_roots(self):
        rt = make_runtime()
        cls = rt.program.lookup("Node")
        m = Mutator(rt)
        with m.frame():
            h = m.new("Node")
            rt.store_static("singleton", h, cls=cls)
            assert h in set(rt.iter_roots())


class TestPeriodicGC:
    def test_periodic_trigger_runs_tracing_collector(self):
        rt = make_runtime(heap_words=1 << 16, gc_period_ops=50)
        m = Mutator(rt)
        with m.frame():
            for _ in range(30):
                h = m.new("Node")
                m.root(h)
                for _ in range(5):
                    m.tick()
        assert rt.tracing.work.cycles >= 2

    def test_no_periodic_gc_by_default(self):
        rt = make_runtime(heap_words=1 << 16)
        m = Mutator(rt)
        with m.frame():
            for _ in range(50):
                m.root(m.new("Node"))
        assert rt.tracing.work.cycles == 0


class TestThreads:
    def test_thread_ids_unique_and_registered(self):
        rt = make_runtime()
        t1 = rt.new_thread("a")
        t2 = rt.new_thread("b")
        ids = {rt.main_thread.thread_id, t1.thread_id, t2.thread_id}
        assert len(ids) == 3
        assert set(rt.threads()) >= {rt.main_thread, t1, t2}


class TestCensusConsistency:
    def test_population_conserved(self):
        """created == popped + swept + live (invariant of the evaluation)."""
        rt = make_runtime(heap_words=512, tracing="marksweep")
        m = Mutator(rt)
        with m.frame():
            keep = m.new("Node")
            m.set_local(0, keep)
            for i in range(100):
                with m.frame():
                    h = m.new("Node")
                    m.root(h)
                if i % 3 == 0:
                    # Dies mid-frame: only the tracing collector can get it
                    # before the outer pop.
                    m.drop(m.new("Node"))
        st = rt.collector.stats
        live = rt.heap.live_count()
        assert st.objects_created == st.objects_popped + st.collected_by_msa + live
        assert_clean(rt)
