"""The persistent codegen cache: correctness-neutral, key-invalidated.

The disk level exists so *fresh processes* (warm pool workers, repeated
``serve`` requests) skip source generation for methods a sibling already
compiled.  These tests drive it in-process by clearing the in-memory
level between runtimes — exactly the state a new worker starts in — and
require byte-identical results with and without the cache, hit/miss
accounting on the interpreter, and graceful degradation on corruption.
"""

import json

import pytest

from repro import CGPolicy, Runtime, RuntimeConfig, assemble
from repro.api import RunRequest, execute, request_from_dict, request_to_dict
from repro.jvm import compiledcode
from repro.jvm.compiledcode import (
    _disk_key,
    clear_codegen_caches,
    codegen_cache_dir,
    set_codegen_cache_dir,
)

SOURCE = (
    "class Main\nmethod Main.main(0)\n"
    + "    const 0\n    store 0\n    const 0\n    store 1\n"
    + "loop:\n"
    + "    load 0\n    const 50\n    if_icmpge done\n"
    + "    load 1\n    const 2\n    add\n    store 1\n"
    + "    iinc 0 1\n    goto loop\n"
    + "done:\n    load 1\n    retval\n"
)
EXPECTED = 100


@pytest.fixture
def cache_dir(tmp_path):
    """Arm the disk cache at a temp dir; restore the pristine default."""
    saved = compiledcode._disk_cache_override
    set_codegen_cache_dir(tmp_path)
    clear_codegen_caches()
    yield tmp_path
    compiledcode._disk_cache_override = saved
    clear_codegen_caches()


def run_compiled(**config_kwargs):
    config_kwargs.setdefault("cg", CGPolicy(paranoid=True))
    rt = Runtime(RuntimeConfig(dispatch="compiled", **config_kwargs),
                 program=assemble(SOURCE))
    result = rt.run("Main.main", [])
    return result, rt


class TestDiskRoundTrip:
    def test_miss_then_hit_across_processes(self, cache_dir):
        # First runtime: cold disk, every codegen is a recorded miss that
        # publishes an entry.
        result1, rt1 = run_compiled()
        assert result1 == EXPECTED
        assert rt1.interpreter.codegen_cache_misses > 0
        assert rt1.interpreter.codegen_cache_hits == 0
        entries = list(cache_dir.glob("cg-*.json"))
        assert entries, "miss published no cache entry"

        # Second "process": empty in-memory cache, warm disk.
        clear_codegen_caches()
        result2, rt2 = run_compiled()
        assert result2 == EXPECTED
        assert rt2.interpreter.codegen_cache_hits > 0
        assert rt2.interpreter.methods_codegenned == 0, (
            "a disk hit must skip source generation entirely"
        )

    def test_hit_produces_identical_counters(self, cache_dir):
        result1, rt1 = run_compiled()
        cold = (rt1.interpreter.instructions_executed, rt1.ops,
                rt1.heap.occupancy())
        clear_codegen_caches()
        result2, rt2 = run_compiled()
        warm = (rt2.interpreter.instructions_executed, rt2.ops,
                rt2.heap.occupancy())
        assert result1 == result2 == EXPECTED
        assert cold == warm

    def test_corrupt_entry_degrades_to_miss(self, cache_dir):
        run_compiled()
        entries = list(cache_dir.glob("cg-*.json"))
        for path in entries:
            path.write_text("{not json", encoding="utf-8")
        clear_codegen_caches()
        result, rt = run_compiled()
        assert result == EXPECTED
        assert rt.interpreter.codegen_cache_misses > 0
        # The poisoned files were dropped and republished with good
        # payloads: a third process hits cleanly.
        for path in cache_dir.glob("cg-*.json"):
            json.loads(path.read_text(encoding="utf-8"))

    def test_truncated_marshal_degrades_to_miss(self, cache_dir):
        run_compiled()
        for path in cache_dir.glob("cg-*.json"):
            data = json.loads(path.read_text(encoding="utf-8"))
            data["code"] = data["code"][:8]
            path.write_text(json.dumps(data), encoding="utf-8")
        clear_codegen_caches()
        result, rt = run_compiled()
        assert result == EXPECTED
        assert rt.interpreter.codegen_cache_hits == 0


class TestKeying:
    def test_caps_enter_the_key(self):
        code = [(1, 2, None), (3, None, None)]
        base = _disk_key("Main.main", code, (8, 48))
        assert _disk_key("Main.main", code, (16, 256)) != base
        assert _disk_key("Main.other", code, (8, 48)) != base
        assert _disk_key("Main.main", [(1, 9, None)], (8, 48)) != base

    def test_lifted_recompile_writes_a_second_entry(self, cache_dir):
        # The tiered tier's adaptive recompile uses lifted caps, so its
        # entry must never collide with the default-caps one.
        rt = Runtime(RuntimeConfig(dispatch="tiered", promote_after=2,
                                   quantum=64, cg=CGPolicy(paranoid=True)),
                     program=assemble(
                         SOURCE.replace("const 50", "const 4000")))
        assert rt.run("Main.main", []) == 4000 * 2
        assert rt.interpreter.methods_recompiled > 0
        digests = {p.name for p in cache_dir.glob("cg-*.json")}
        assert len(digests) >= 2


class TestArming:
    def test_default_is_disarmed(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CODEGEN_CACHE", raising=False)
        saved = compiledcode._disk_cache_override
        compiledcode._disk_cache_override = compiledcode._DISK_UNSET
        try:
            assert codegen_cache_dir() is None
            clear_codegen_caches()
            result, rt = run_compiled()
            assert result == EXPECTED
            assert rt.interpreter.codegen_cache_hits == 0
            assert rt.interpreter.codegen_cache_misses == 0
        finally:
            compiledcode._disk_cache_override = saved

    def test_env_knob_arms(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path))
        saved = compiledcode._disk_cache_override
        compiledcode._disk_cache_override = compiledcode._DISK_UNSET
        try:
            assert codegen_cache_dir() == tmp_path
            clear_codegen_caches()
            run_compiled()
            assert list(tmp_path.glob("cg-*.json"))
        finally:
            compiledcode._disk_cache_override = saved
            clear_codegen_caches()

    def test_override_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CODEGEN_CACHE", str(tmp_path / "env"))
        saved = compiledcode._disk_cache_override
        set_codegen_cache_dir(tmp_path / "override")
        try:
            assert codegen_cache_dir() == tmp_path / "override"
            set_codegen_cache_dir(None)
            assert codegen_cache_dir() is None
        finally:
            compiledcode._disk_cache_override = saved


class TestColdStartRequests:
    def test_cold_start_clears_warm_cache(self):
        # Two identical in-process runs share the module-level cache; a
        # cold_start request starts from scratch and pays codegen again.
        warmup = execute(RunRequest("bc-loop", 1, "cg-compiled"))
        warm = execute(RunRequest("bc-loop", 1, "cg-compiled"))
        cold = execute(RunRequest("bc-loop", 1, "cg-compiled",
                                  cold_start=True))
        assert warm.ops == cold.ops == warmup.ops
        warm_gen = warm.metrics["counters"]["vm.compile.codegenned"]
        cold_gen = cold.metrics["counters"]["vm.compile.codegenned"]
        assert warm_gen == 0
        assert cold_gen > 0

    def test_cold_start_round_trips_the_wire(self):
        request = RunRequest("bc-loop", 1, "cg-compiled", cold_start=True)
        restored = request_from_dict(request_to_dict(request))
        assert restored.cold_start is True
        assert request_from_dict(
            request_to_dict(RunRequest("bc-loop", 1, "cg"))
        ).cold_start is False
