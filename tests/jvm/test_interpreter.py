"""Unit tests for the bytecode interpreter."""

import pytest

from repro import CGPolicy, Runtime, RuntimeConfig, assemble
from repro.jvm.errors import (
    NullPointerError,
    VerifyError,
    VMError,
)


def run(source, entry="Main.main", args=None, **config_kwargs):
    config_kwargs.setdefault("cg", CGPolicy(paranoid=True))
    program = assemble(source)
    rt = Runtime(RuntimeConfig(**config_kwargs), program=program)
    result = rt.run(entry, args or [])
    return result, rt


MAIN = "class Main\nmethod Main.main(0)\n"


class TestArithmetic:
    def test_add(self):
        result, _ = run(MAIN + "    const 2\n    const 3\n    add\n    retval")
        assert result == 5

    def test_sub_mul(self):
        result, _ = run(
            MAIN + "    const 10\n    const 4\n    sub\n    const 3\n    mul\n    retval"
        )
        assert result == 18

    def test_div_truncates_toward_zero(self):
        result, _ = run(MAIN + "    const -7\n    const 2\n    div\n    retval")
        assert result == -3  # Java semantics, not Python floor

    def test_mod_java_sign(self):
        result, _ = run(MAIN + "    const -7\n    const 2\n    mod\n    retval")
        assert result == -1

    def test_div_by_zero(self):
        with pytest.raises(VMError, match="division by zero"):
            run(MAIN + "    const 1\n    const 0\n    div\n    retval")

    def test_neg(self):
        result, _ = run(MAIN + "    const 5\n    neg\n    retval")
        assert result == -5


class TestLocalsAndStack:
    def test_store_load(self):
        result, _ = run(
            MAIN + "    const 9\n    store 0\n    load 0\n    retval"
        )
        assert result == 9

    def test_dup_pop_swap(self):
        result, _ = run(
            MAIN
            + "    const 1\n    const 2\n    swap\n    pop\n    dup\n    add\n    retval"
        )
        # stack: 1 2 -> swap -> 2 1 -> pop -> 2 -> dup -> 2 2 -> add -> 4
        assert result == 4

    def test_iinc(self):
        result, _ = run(
            MAIN + "    const 5\n    store 0\n    iinc 0 37\n    load 0\n    retval"
        )
        assert result == 42


class TestControlFlow:
    def test_loop_counts_down(self):
        source = """
        class Main
        method Main.main(0) locals=2
            const 10
            store 0
            const 0
            store 1
        top:
            load 0
            ifzero done
            iinc 1 2
            iinc 0 -1
            goto top
        done:
            load 1
            retval
        """
        result, _ = run(source)
        assert result == 20

    def test_comparison_branches(self):
        source = """
        class Main
        method Main.main(0)
            const 3
            const 4
            if_icmplt yes
            const 0
            retval
        yes:
            const 1
            retval
        """
        result, _ = run(source)
        assert result == 1

    def test_null_branches(self):
        source = """
        class Main
        method Main.main(0)
            aconst_null
            ifnull isnull
            const 0
            retval
        isnull:
            const 1
            retval
        """
        result, _ = run(source)
        assert result == 1


class TestObjects:
    def test_new_getfield_putfield(self):
        source = """
        class Box
            field v
        class Main
        method Main.main(0) locals=1
            new Box
            store 0
            load 0
            const 11
            putfield v
            load 0
            getfield v
            retval
        """
        result, _ = run(source)
        assert result == 11

    def test_putfield_on_null_raises(self):
        source = """
        class Box
            field v
        class Main
        method Main.main(0)
            aconst_null
            const 1
            putfield v
            return
        """
        with pytest.raises(NullPointerError):
            run(source)

    def test_unknown_field_raises(self):
        source = """
        class Box
            field v
        class Main
        method Main.main(0)
            new Box
            getfield missing
            retval
        """
        with pytest.raises(VMError, match="no field"):
            run(source)

    def test_statics_via_class(self):
        source = """
        class Config
            static limit
        class Main
        method Main.main(0)
            const 99
            putstatic Config.limit
            getstatic Config.limit
            retval
        """
        result, _ = run(source)
        assert result == 99

    def test_instanceof(self):
        source = """
        class Animal
        class Dog extends Animal
        class Main
        method Main.main(0)
            new Dog
            instanceof Animal
            retval
        """
        result, _ = run(source)
        assert result == 1


class TestArrays:
    def test_array_store_load_length(self):
        source = """
        class Main
        method Main.main(0) locals=1
            const 3
            newarray
            store 0
            load 0
            const 1
            const 42
            aastore
            load 0
            const 1
            aaload
            load 0
            arraylength
            add
            retval
        """
        result, _ = run(source)
        assert result == 45

    def test_out_of_bounds(self):
        from repro.jvm.errors import ArrayIndexError

        source = """
        class Main
        method Main.main(0) locals=1
            const 2
            newarray
            store 0
            load 0
            const 5
            aaload
            retval
        """
        with pytest.raises(ArrayIndexError):
            run(source)


class TestInvocation:
    def test_invokestatic_with_args(self):
        source = """
        class Math
        method Math.max(2)
            load 0
            load 1
            if_icmpge first
            load 1
            retval
        first:
            load 0
            retval
        class Main
        method Main.main(0)
            const 3
            const 8
            invokestatic Math.max
            retval
        """
        result, _ = run(source)
        assert result == 8

    def test_virtual_dispatch(self):
        source = """
        class Animal
        method Animal.speak(1)
            const 0
            retval
        class Dog extends Animal
        method Dog.speak(1)
            const 1
            retval
        class Main
        method Main.main(0)
            new Dog
            invokevirtual speak 1
            retval
        """
        result, _ = run(source)
        assert result == 1

    def test_virtual_on_null_raises(self):
        source = """
        class Main
        method Main.main(0)
            aconst_null
            invokevirtual speak 1
            retval
        """
        with pytest.raises(NullPointerError):
            run(source)

    def test_arity_mismatch_detected(self):
        source = """
        class C
        method C.two(2)
            const 0
            retval
        class Main
        method Main.main(0)
            new C
            invokevirtual two 1
            retval
        """
        with pytest.raises(VerifyError):
            run(source)

    def test_recursion(self):
        source = """
        class Math
        method Math.fib(1)
            load 0
            const 2
            if_icmpge recurse
            load 0
            retval
        recurse:
            load 0
            const 1
            sub
            invokestatic Math.fib
            load 0
            const 2
            sub
            invokestatic Math.fib
            add
            retval
        class Main
        method Main.main(0)
            const 10
            invokestatic Math.fib
            retval
        """
        result, _ = run(source)
        assert result == 55

    def test_falling_off_end_returns_void(self):
        source = """
        class C
        method C.noop(0)
            const 1
            pop
        class Main
        method Main.main(0)
            invokestatic C.noop
            const 7
            retval
        """
        result, _ = run(source)
        assert result == 7

    def test_main_args(self):
        source = """
        class Main
        method Main.main(2)
            load 0
            load 1
            add
            retval
        """
        result, _ = run(source, args=[20, 22])
        assert result == 42

    def test_wrong_main_arity(self):
        with pytest.raises(VerifyError):
            run(MAIN + "    return", args=[1])


class TestCGIntegration:
    def test_areturn_keeps_returned_object_alive(self):
        source = """
        class Box
            field v
        class Factory
        method Factory.make(0)
            new Box
            retval
        class Main
        method Main.main(0) locals=1
            invokestatic Factory.make
            store 0
            load 0
            const 5
            putfield v
            load 0
            getfield v
            retval
        """
        result, rt = run(source)
        assert result == 5
        # The box dies when main pops.
        assert rt.collector.stats.objects_popped == 1

    def test_objects_die_at_method_return(self):
        source = """
        class Box
            field v
        class Worker
        method Worker.job(0) locals=1
            new Box
            store 0
            return
        class Main
        method Main.main(0) locals=1
            const 10
            store 0
        top:
            load 0
            ifzero done
            invokestatic Worker.job
            iinc 0 -1
            goto top
        done:
            const 0
            retval
        """
        _, rt = run(source)
        assert rt.collector.stats.objects_popped == 10
        assert rt.collector.stats.age_hist[0] == 10

    def test_instruction_counting(self):
        _, rt = run(MAIN + "    const 1\n    retval")
        assert rt.interpreter.instructions_executed == 2
        assert rt.ops >= 2
