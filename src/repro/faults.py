"""Deterministic fault injection and structured failure reporting.

The paper's collector is *sound but conservative*: CG may retain garbage,
so a deployment must assume the heap can run dry and prove the runtime
degrades gracefully instead of crashing.  This module is the seam that
makes those failures reproducible:

* A :class:`FaultPlan` arms failure points at named **sites** —
  ``heap.alloc`` (synthetic allocation failure), ``interp.step`` (an
  injected trap in the dispatch loop), ``native.call`` (a native-boundary
  escape failure), and ``harness.worker`` (a crash or hang inside a
  parallel figure-grid worker).  Firing schedules are pure counter
  arithmetic (``after``/``every``/``count``) so a plan replays identically
  on every run; there is no wall-clock or RNG dependence anywhere.
* Each firing produces a :class:`FaultReport`; unrecoverable ones carry a
  :class:`CrashDump` — heap occupancy, the equilive-block census, the
  recycle-list census, a trace tail, and every thread's frame stack —
  serialized to JSON for postmortems.
* The runtime answers ``heap.alloc`` failures with a recovery cascade
  (recycle search, CG emergency pass, mark-sweep backstop) before giving
  up; see :meth:`repro.jvm.runtime.Runtime._allocate_slow`.

With no plan armed every hook reduces to a single ``is not None`` test,
so figure tables and bench counters stay bit-identical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from difflib import get_close_matches
from typing import Dict, Iterable, List, Optional, Tuple

from .jvm.errors import VMError

#: Every site a plan can arm, with the failure it synthesizes there.
FAULT_SITES = (
    "heap.alloc",      # the free-list allocation returns no storage
    "interp.step",     # the dispatch loop hits a trap (bad-opcode analogue)
    "native.call",     # a native boundary crossing fails to escape-pin
    "harness.worker",  # a parallel figure-grid worker crashes or hangs
)

#: Failure kinds each site supports.
SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    "heap.alloc": ("oom",),
    "interp.step": ("trap",),
    "native.call": ("escape",),
    "harness.worker": ("crash", "hang"),
}


def did_you_mean(name: str, choices: Iterable[str]) -> str:
    """A ``" (did you mean 'x'?)"`` suffix for ValueError messages."""
    match = get_close_matches(str(name), list(choices), n=1, cutoff=0.5)
    return f" (did you mean {match[0]!r}?)" if match else ""


# ---------------------------------------------------------------------------
# Plan: what to fail, where, and when
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FaultSpec:
    """One armed site: fire ``count`` times starting at hit ``after``.

    For the hit-counted sites (everything but ``harness.worker``) the hit
    index is 0-based: ``after=10`` fails the 11th crossing of the site,
    then every ``every``-th crossing after that, ``count`` times in total
    (``count=None`` means unbounded).  For ``harness.worker`` the "hit"
    is a (cell, attempt) pair: attempts ``after .. after+count-1`` of any
    cell whose ``workload:size:system`` id starts with ``cell`` are
    sabotaged; ``hang`` sleeps ``seconds`` before proceeding.
    """

    site: str
    kind: str
    after: int = 0
    every: int = 1
    count: Optional[int] = 1
    cell: Optional[str] = None
    seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"fault site must be one of {FAULT_SITES}, got {self.site!r}"
                f"{did_you_mean(self.site, FAULT_SITES)}"
            )
        kinds = SITE_KINDS[self.site]
        if self.kind not in kinds:
            raise ValueError(
                f"fault kind for {self.site} must be one of {kinds}, "
                f"got {self.kind!r}{did_you_mean(self.kind, kinds)}"
            )
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.every < 1:
            raise ValueError("every must be >= 1")
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None for unbounded)")
        if self.seconds <= 0:
            raise ValueError("seconds must be positive")

    def to_dict(self) -> Dict:
        return {
            "site": self.site, "kind": self.kind, "after": self.after,
            "every": self.every, "count": self.count, "cell": self.cell,
            "seconds": self.seconds,
        }

    @staticmethod
    def from_dict(data: Dict) -> "FaultSpec":
        return FaultSpec(**data)

    _INT_KEYS = ("after", "every")

    @staticmethod
    def parse(text: str) -> "FaultSpec":
        """Parse ``site:kind[:key=value...]``, e.g. ``heap.alloc:oom:after=100``."""
        parts = [p.strip() for p in text.split(":") if p.strip()]
        if len(parts) < 2:
            raise ValueError(
                f"fault spec {text!r} must look like site:kind[:key=value...]"
            )
        site, kind, *options = parts
        kwargs: Dict[str, object] = {}
        for option in options:
            if "=" not in option:
                raise ValueError(f"bad fault option {option!r} (need key=value)")
            key, _, value = option.partition("=")
            key = key.strip()
            value = value.strip()
            if key in FaultSpec._INT_KEYS:
                kwargs[key] = int(value)
            elif key == "count":
                kwargs[key] = None if value in ("inf", "*", "none") else int(value)
            elif key == "seconds":
                kwargs[key] = float(value)
            elif key == "cell":
                kwargs[key] = value
            else:
                known = FaultSpec._INT_KEYS + ("count", "seconds", "cell")
                raise ValueError(
                    f"unknown fault option {key!r}{did_you_mean(key, known)}"
                )
        return FaultSpec(site, kind, **kwargs)


class FaultPlan:
    """A deterministic set of armed fault sites (at most one per site).

    Firing state (hit and fire counters) is **per runtime**: the
    :class:`~repro.jvm.runtime.Runtime` constructor calls :meth:`rearm`,
    so every run driven by the same plan replays the same schedule —
    including each worker process of the parallel harness, which receives
    its own deserialized copy.
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = seed
        self._by_site: Dict[str, FaultSpec] = {}
        for spec in self.specs:
            if spec.site in self._by_site:
                raise ValueError(f"duplicate fault spec for site {spec.site!r}")
            self._by_site[spec.site] = spec
        self._hits: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self.rearm()

    # -- state ----------------------------------------------------------

    def rearm(self) -> None:
        """Reset all firing state (called once per Runtime construction)."""
        self._hits = {site: 0 for site in self._by_site}
        self._fired = {site: 0 for site in self._by_site}

    def arms(self, site: str) -> bool:
        return site in self._by_site

    def fired(self, site: str) -> int:
        return self._fired.get(site, 0)

    def _next_fire_index(self, site: str) -> Optional[int]:
        spec = self._by_site[site]
        fired = self._fired[site]
        if spec.count is not None and fired >= spec.count:
            return None
        return spec.after + fired * spec.every

    def hits_until_fire(self, site: str) -> Optional[int]:
        """Hits left before the site fires again (None = never again)."""
        if site not in self._by_site:
            return None
        index = self._next_fire_index(site)
        if index is None:
            return None
        return max(0, index - self._hits[site])

    def charge(self, site: str, n: int) -> None:
        """Advance the hit counter by ``n`` without firing (bulk hits)."""
        self._hits[site] += n

    def consume_fire(self, site: str) -> int:
        """Record one firing; returns the 1-based firing ordinal."""
        self._hits[site] += 1
        self._fired[site] += 1
        return self._fired[site]

    def should_fire(self, site: str) -> bool:
        """Count one hit at ``site``; True iff this hit is a firing point.

        The hit is consumed either way, so callers just branch on the
        result — the schedule arithmetic lives entirely here.
        """
        spec = self._by_site.get(site)
        if spec is None:
            return False
        index = self._next_fire_index(site)
        if index is not None and self._hits[site] == index:
            self.consume_fire(site)
            return True
        self._hits[site] += 1
        return False

    def worker_injection(self, cell_id: str, attempt: int) -> Optional[FaultSpec]:
        """The sabotage (if any) for attempt ``attempt`` of grid cell ``cell_id``.

        Stateless per call: the decision depends only on the spec and the
        (cell, attempt) pair, so retries of other cells never shift it.
        """
        spec = self._by_site.get("harness.worker")
        if spec is None:
            return None
        if spec.cell and not cell_id.startswith(spec.cell):
            return None
        if attempt < spec.after:
            return None
        if spec.count is not None and attempt >= spec.after + spec.count:
            return None
        return spec

    # -- identity / serialization --------------------------------------

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "specs": [spec.to_dict() for spec in
                      sorted(self.specs, key=lambda s: s.site)],
        }

    @staticmethod
    def from_dict(data: Dict) -> "FaultPlan":
        return FaultPlan(
            [FaultSpec.from_dict(spec) for spec in data.get("specs", [])],
            seed=data.get("seed", 0),
        )

    @staticmethod
    def parse(text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``;``-separated specs, e.g. ``heap.alloc:oom:after=50;...``."""
        specs = [FaultSpec.parse(part) for part in text.split(";") if part.strip()]
        if not specs:
            raise ValueError(f"empty fault plan {text!r}")
        return FaultPlan(specs, seed=seed)

    def fingerprint(self) -> str:
        """Stable digest of the plan's semantics (not its firing state)."""
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha1(payload.encode()).hexdigest()[:12]

    def describe(self) -> Dict:
        """Plan + current firing state, for crash dumps."""
        return {
            "plan": self.to_dict(),
            "hits": dict(self._hits),
            "fired": dict(self._fired),
        }

    def __repr__(self) -> str:
        armed = ", ".join(f"{s.site}:{s.kind}" for s in self.specs)
        return f"<FaultPlan [{armed}]>"


# ---------------------------------------------------------------------------
# Reports and dumps: every injected failure is structured, never a bare trace
# ---------------------------------------------------------------------------

@dataclass
class FaultReport:
    """What fired, where, and the state it left behind (all picklable)."""

    site: str
    kind: str
    message: str
    firing: int = 1
    context: Dict[str, object] = field(default_factory=dict)
    dump: Optional[Dict] = None

    def to_dict(self) -> Dict:
        return {
            "site": self.site, "kind": self.kind, "message": self.message,
            "firing": self.firing, "context": dict(self.context),
            "dump": self.dump,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, default=str)


class CrashDump:
    """Postmortem snapshot of a runtime, JSON-serializable end to end.

    Built on the same base serializer as the live-inspection heartbeat
    (:func:`repro.obs.heartbeat.runtime_snapshot`): both carry the
    ``cg-snapshot/1`` schema tag plus heap occupancy, equilive/recycle
    censuses, frame stacks, and fault stats.  A crash dump adds the
    postmortem sections (``reason``/``site``/``trace_tail``/``retained``/
    ``fault_plan``); a heartbeat adds liveness identity and the metrics
    registry instead.
    """

    def __init__(self, data: Dict) -> None:
        self.data = data

    def to_dict(self) -> Dict:
        return self.data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.data, indent=indent, sort_keys=True, default=str)

    def __repr__(self) -> str:
        return f"<CrashDump reason={self.data.get('reason')!r}>"

    TRACE_TAIL = 50

    @classmethod
    def capture(cls, runtime, reason: str, site: Optional[str] = None,
                **extra) -> "CrashDump":
        """Snapshot ``runtime`` after a failure.  Read-only and tolerant:
        every section degrades to ``None`` when its subsystem is absent."""
        from .obs.heartbeat import runtime_snapshot

        data: Dict[str, object] = runtime_snapshot(runtime)
        data["kind"] = "crash"
        data["reason"] = reason
        data["site"] = site
        data.update(extra)
        tracer = runtime.tracer
        if tracer.enabled:
            tail = list(tracer)[-cls.TRACE_TAIL:]
            data["trace_tail"] = [
                {"seq": e.seq, "kind": e.kind, **e.data} for e in tail
            ]
        else:
            data["trace_tail"] = []
        backstop = getattr(runtime.tracing, "backstop_census", None)
        data["retained"] = backstop() if backstop is not None else None
        plan = runtime.config.faults
        data["fault_plan"] = plan.describe() if plan is not None else None
        return cls(data)

    @staticmethod
    def _frame_stacks(runtime) -> List[Dict]:
        from .obs.heartbeat import frame_stacks

        return frame_stacks(runtime)


def inject(runtime, site: str, kind: str, message: str,
           capture_dump: bool = True, **context) -> FaultReport:
    """Account one firing at ``site`` on ``runtime`` and build its report.

    Bumps ``runtime.fault_stats``, emits a ``fault_inject`` trace event
    (when tracing), and attaches a :class:`CrashDump` unless the caller
    expects to recover.
    """
    stats = getattr(runtime, "fault_stats", None)
    if stats is not None:
        stats[f"injected.{site}"] += 1
    plan = runtime.config.faults
    firing = plan.fired(site) if plan is not None else 1
    tracer = runtime.tracer
    if tracer.enabled:
        tracer.emit("fault_inject", site=site, fault=kind, firing=firing,
                    ops=runtime.ops)
    dump = None
    if capture_dump:
        dump = CrashDump.capture(runtime, reason=message, site=site).to_dict()
    return FaultReport(site=site, kind=kind, message=message, firing=firing,
                       context=dict(context), dump=dump)


# ---------------------------------------------------------------------------
# Exceptions
# ---------------------------------------------------------------------------

class FaultError(VMError):
    """Base for injected failures; always carries a :class:`FaultReport`."""

    def __init__(self, report: FaultReport, message: Optional[str] = None):
        self.report = report
        super().__init__(message or report.message)

    def __reduce__(self):
        # Keeps the report attached across the process boundary when a
        # harness worker raises one of these (futures pickle exceptions).
        return (self.__class__, (self.report, str(self)))


class TrapFault(FaultError):
    """An injected trap in the interpreter's dispatch loop."""


class NativeCallFault(FaultError):
    """An injected failure at the native-call boundary."""


class WorkerFault(FaultError):
    """An injected crash inside a parallel figure-grid worker."""


class QuarantinedCellError(VMError):
    """A grid cell exhausted its retries and was quarantined.

    Raised when a figure generator asks for the cell's result; the CLI
    reports it and moves on instead of failing the whole grid.
    """

    def __init__(self, key: Tuple, report: Optional[FaultReport] = None):
        self.key = key
        self.report = report
        super().__init__(f"cell {self.cell_id} is quarantined"
                         + (f": {report.message}" if report else ""))

    @property
    def cell_id(self) -> str:
        return f"{self.key[0]}:{self.key[1]}:{self.key[2]}"
