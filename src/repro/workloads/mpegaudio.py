"""``mpegaudio`` — MPEG-3 decoder (SPECjvm98 _222_mpegaudio shape).

Paper characterisation: like compress, computational — only 7,550 objects
small, 93% of them static (synthesis filter banks, huffman tables, window
coefficients built at startup), 6-7% collectable, and essentially no growth
with the size knob.  A couple of decoder-state objects cross the native
boundary (the reference decoder wraps native audio output), which we model
via the native-pin path (section 3.3).

Shape realisation: startup pins the filter/huffman tables; each audio frame
is decoded in its own frame with a small number of sample-buffer
temporaries that die at the pop; a rare temporary references a static
window table (the 6% -> 7% opt gap); decoding itself is tick-heavy.
"""

from __future__ import annotations

import random

from ..jvm.model import Program
from ..jvm.mutator import Mutator
from .base import Workload, register, scaled


@register
class Mpegaudio(Workload):
    name = "mpegaudio"
    description = "MPEG-3 decompressor"
    source_lines = "N/A"

    FILTER_TABLES = 620
    NATIVE_STATE = 3
    FRAMES = 16
    TICKS_PER_FRAME = 2600

    def define_classes(self, program: Program) -> None:
        program.define_class("mpeg/Table", fields=["coeffs", "scale"])
        program.define_class(
            "mpeg/SampleBuffer", fields=["data", "channel"]
        )
        program.define_class(
            "mpeg/SubbandTemp", fields=["window", "phase"]
        )
        program.define_class("mpeg/DecoderState", fields=["stream", "sync"])

    def heap_words(self, size: int) -> int:
        return 4000

    def run(self, mutator: Mutator, size: int, rng: random.Random) -> None:
        self._build_tables(mutator)
        frames = scaled(self.FRAMES, size, growth=0.05)
        ticks = scaled(self.TICKS_PER_FRAME, size, growth=1.0)
        for f in range(frames):
            with mutator.frame(name="mpeg.decodeFrame"):
                self._decode_frame(mutator, f, ticks, rng)

    # ------------------------------------------------------------------

    def _build_tables(self, mutator: Mutator) -> None:
        """Huffman/synthesis tables: the 93% static bulk."""
        for i in range(self.FILTER_TABLES):
            table = mutator.new("mpeg/Table")
            mutator.putfield(table, "scale", i)
            mutator.putstatic(f"mpeg.table{i}", table)
        # Decoder state shared with the (simulated) native audio layer.
        for i in range(self.NATIVE_STATE):
            state = mutator.new("mpeg/DecoderState")
            mutator.native_escape(state)

    def _decode_frame(self, mutator: Mutator, frame: int, ticks: int,
                      rng: random.Random) -> None:
        mutator.tick(ticks)  # huffman decode + IMDCT + synthesis filter
        left = mutator.new("mpeg/SampleBuffer")
        mutator.putfield(left, "channel", 0)
        mutator.root(left)
        right = mutator.new("mpeg/SampleBuffer")
        mutator.putfield(right, "channel", 1)
        mutator.root(right)
        temp = mutator.new("mpeg/SubbandTemp")
        if frame % 4 == 0:
            # Occasionally the temp holds a static window table: the
            # small opt gap (6% -> 7%).
            window = mutator.getstatic(f"mpeg.table{rng.randrange(self.FILTER_TABLES)}")
            mutator.putfield(temp, "window", window)
        mutator.root(temp)
