"""``jess`` — expert-system shell (SPECjvm98 _202_jess shape).

Paper characterisation: 45,867 objects small; collectable 35% without /
61% with the static optimization — the largest opt gap in the suite,
because rule matching constantly creates short-lived *tokens* that
reference facts held in the (static) working memory.  Static share ~39%
small, shrinking as the run grows (the large run is dominated by transient
match activity).

Shape realisation:

* the rule base and initial fact list are asserted into static working
  memory at startup;
* each rule *activation* runs in its own frame: it allocates match tokens
  and partial bindings that reference working-memory facts (opt-sensitive)
  and die at the frame pop;
* a fraction of activations asserts a new fact (escapes to the working
  memory -> static) or links tokens to each other (multi-object blocks).
"""

from __future__ import annotations

import random

from ..jvm.model import Program
from ..jvm.mutator import Mutator
from .base import Workload, register, scaled


@register
class Jess(Workload):
    name = "jess"
    description = "Expert System"
    source_lines = "570"

    INITIAL_FACTS = 1000
    RULES = 80
    ACTIVATIONS = 360
    TOKENS_PER_ACTIVATION = 4
    #: Fraction of activations asserting a new (static) fact.
    ASSERT_EVERY = 12

    def define_classes(self, program: Program) -> None:
        program.define_class("jess/Fact", fields=["slot0", "slot1", "next"])
        program.define_class("jess/Rule", fields=["lhs", "rhs"])
        program.define_class(
            "jess/Token", fields=["fact", "parent", "binding"]
        )
        program.define_class("jess/Binding", fields=["value", "next"])

    def heap_words(self, size: int) -> int:
        # Static working memory grows with the run; leave ~2x slack so the
        # base system collects a handful of times per size step.
        return {1: 16000, 10: 40000, 100: 34000}[size]

    def run(self, mutator: Mutator, size: int, rng: random.Random) -> None:
        self._assert_rulebase(mutator, size)
        activations = scaled(self.ACTIVATIONS, size, growth=1.0)
        for a in range(activations):
            with mutator.frame(name="jess.fireRule"):
                self._fire_rule(mutator, a, rng)

    # ------------------------------------------------------------------

    def _assert_rulebase(self, mutator: Mutator, size: int) -> None:
        """Startup: rules and initial facts go to static working memory."""
        facts = scaled(self.INITIAL_FACTS, size, growth=0.12)
        wm = mutator.new_array(facts + scaled(self.ACTIVATIONS, size) // self.ASSERT_EVERY + 1)
        mutator.putstatic("jess.workingMemory", wm)
        wm = mutator.getstatic("jess.workingMemory")
        for i in range(facts):
            fact = mutator.new("jess/Fact")
            mutator.putfield(fact, "slot0", i)
            mutator.aastore(wm, i, fact)
        mutator.putstatic("jess.factCount", facts)
        rules = mutator.new_array(self.RULES)
        mutator.putstatic("jess.rules", rules)
        rules = mutator.getstatic("jess.rules")
        for i in range(self.RULES):
            rule = mutator.new("jess/Rule")
            mutator.aastore(rules, i, rule)

    def _fire_rule(self, mutator: Mutator, activation: int,
                   rng: random.Random) -> None:
        wm = mutator.getstatic("jess.workingMemory")
        fact_count = mutator.getstatic("jess.factCount")
        # Each beta join builds a token pair one or two frames down the
        # match network and returns it to the activation frame, so jess's
        # deaths land at frame distances 1-2 (Fig. 4.6's jess profile,
        # which peaks at distance 2).
        join_depth = 1 + activation % 2
        for join in range(self.TOKENS_PER_ACTIVATION // 2):
            token = self._beta_join(mutator, join, join_depth, rng)
            mutator.root(token)
            mutator.tick(12)  # agenda maintenance
        if activation % self.ASSERT_EVERY == 0:
            # The rule's RHS asserts a new fact: it escapes to working
            # memory and becomes static.
            new_fact = mutator.new("jess/Fact")
            mutator.putfield(new_fact, "slot1", activation)
            mutator.aastore(wm, fact_count, new_fact)
            mutator.putstatic("jess.factCount", fact_count + 1)
        # One scratch binding that never escapes: exact (singleton) block.
        binding = mutator.new("jess/Binding")
        mutator.putfield(binding, "value", activation)
        mutator.root(binding)

    def _beta_join(self, mutator: Mutator, join: int, depth: int,
                   rng: random.Random):
        """Create a token pair ``depth`` frames down and return it up."""
        with mutator.frame(name="jess.betaJoin"):
            if depth > 1:
                token = self._beta_join(mutator, join, depth - 1, rng)
                return mutator.areturn(token)
            wm = mutator.getstatic("jess.workingMemory")
            fact_count = mutator.getstatic("jess.factCount")
            left = mutator.new("jess/Token")
            if join == 0:
                # The first join's token references a working-memory fact:
                # it (and its partner) is collectable only thanks to the
                # static optimization — the paper's 35% -> 61% gap.
                fact = mutator.aaload(wm, rng.randrange(fact_count))
                mutator.putfield(left, "fact", fact)
            right = mutator.new("jess/Token")
            # Tokens pair up (beta joins): blocks of size 2 dominate,
            # matching the Fig. 4.5 jess distribution.
            mutator.putfield(right, "parent", left)
            mutator.tick(40)  # alpha/beta network evaluation
            return mutator.areturn(right)
