"""``javac`` — the Java compiler (SPECjvm98 _213_javac shape).

Paper characterisation: the odd one out.  In the small run the majority of
its 26,116 objects are forced into the static set *by thread sharing*
(Fig. A.1 — javac is the only benchmark with a meaningful thread column),
only ~24% are collectable, and Fig. 4.6 shows a distinctive death profile:
"a significant portion of objects allocated in a frame are detected
collectable when that frame's caller returns" (distance 1).  The large run
flips to ~91% collectable with thread sharing down to about a third of
objects (Fig. A.4).

Shape realisation:

* per-unit parse frames build AST subtrees one frame down and return them
  to the unit frame (deaths at distance 1, the javac signature);
* symbols are entered into a long-lived symbol table owned by the compiler's
  root frame (NOT static) that a background class-writer thread also reads:
  the first cross-thread read pins the table's whole equilive block, and
  every later symbol entered contaminates into it — so symbols count as
  *thread-shared*, not putstatic-static, exactly as the paper attributes
  them;
* identifier strings go through ``String.intern`` (section 3.2);
* the unit count scales linearly with size while per-unit sharing shrinks,
  reproducing the small-to-large flip.
"""

from __future__ import annotations

import random

from ..jvm.model import Program
from ..jvm.mutator import Mutator
from .base import Workload, register, scaled


@register
class Javac(Workload):
    name = "javac"
    description = "Java Compiler"
    source_lines = "9485"

    UNITS = 14
    DECLS_PER_UNIT = 8
    SYMBOLS_PER_UNIT = 58
    GRAMMAR_STATICS = 200
    IDENTIFIERS = 60
    TABLE_SLOTS = 4096

    def define_classes(self, program: Program) -> None:
        program.define_class(
            "javac/AstNode", fields=["kind", "left", "right"]
        )
        program.define_class(
            "javac/Symbol", fields=["name", "type", "owner"]
        )
        program.define_class("javac/Type", fields=["tag", "elem"])
        program.define_class("javac/Scope", fields=["table", "outer"])

    def heap_words(self, size: int) -> int:
        # The shared symbol table is live for the whole run and grows with
        # it; the harness (like SPEC's) raises -Xmx with the input size.
        return {1: 9600, 10: 70000, 100: 36000}[size]

    def run(self, mutator: Mutator, size: int, rng: random.Random) -> None:
        self._init_compiler(mutator)
        # The compiler-lifetime symbol table: rooted in the main frame, so
        # it is NOT static — it becomes thread-shared on first writer read.
        scope = mutator.new("javac/Scope")
        mutator.set_local(0, scope)
        table = mutator.new_array(self.TABLE_SLOTS)
        mutator.putfield(scope, "table", table)

        writer = mutator.spawn("javac-classwriter")
        units = scaled(self.UNITS, size, growth=1.0)
        decls = scaled(self.DECLS_PER_UNIT, size, growth=0.25)
        # Per-unit sharing shrinks with size: small runs share over half
        # their objects, large runs about a third.
        symbols_per_unit = max(6, int(self.SYMBOLS_PER_UNIT * size ** -0.12))
        count = 0
        with writer.frame(name="javac.classWriterLoop"):
            for unit in range(units):
                with mutator.frame(name="javac.compileUnit"):
                    count = self._compile_unit(
                        mutator, writer, table, unit, count,
                        decls, symbols_per_unit, rng,
                    )

    # ------------------------------------------------------------------

    def _init_compiler(self, mutator: Mutator) -> None:
        """Predefined types and operator tables: genuinely static."""
        for i in range(self.GRAMMAR_STATICS):
            t = mutator.new("javac/Type")
            mutator.putstatic(f"javac.predef{i}", t)

    def _compile_unit(self, mutator: Mutator, writer: Mutator, table,
                      unit: int, count: int, decls: int,
                      symbols_per_unit: int, rng: random.Random) -> int:
        # Parse: each declaration's subtree is built one frame down and
        # returned to the unit frame (deaths at distance 1).
        for _ in range(decls):
            with mutator.frame(name="javac.parseDecl"):
                tree = self._parse_decl(mutator, rng)
            # root() moves the returned tree from the operand stack into a
            # local slot (never leaving it unrooted across a GC point).
            mutator.root(tree)
        # Identifier strings are interned (section 3.2).
        if unit % 3 == 0:
            name = mutator.new_string(f"ident{unit % self.IDENTIFIERS}")
            mutator.intern(name)
        # Enter symbols into the shared table; the class-writer thread
        # consumes them as it streams class files out -> thread-shared.
        for s in range(symbols_per_unit):
            symbol = mutator.new("javac/Symbol")
            mutator.putfield(symbol, "name", s)
            slot = (count + s) % self.TABLE_SLOTS
            mutator.aastore(table, slot, symbol)
            if s % 2 == 0:
                writer.aaload(table, slot, keep=False)
                writer.tick(2)
        mutator.tick(1400)  # attribution / code generation
        return count + symbols_per_unit

    def _parse_decl(self, mutator: Mutator, rng: random.Random):
        left = mutator.new("javac/AstNode")
        right = mutator.new("javac/AstNode")
        root = mutator.new("javac/AstNode")
        mutator.putfield(root, "left", left)
        mutator.putfield(root, "right", right)
        mutator.tick(20)
        return mutator.areturn(root)
