"""``db`` — in-memory database manager (SPECjvm98 _209_db shape).

Paper characterisation: the small run mostly *builds* the database — 64% of
its 7,608 objects live in the static index, only 36% are collectable.  The
large run inverts completely: 3.2M objects, 99% collectable, and — uniquely
in the suite — 0% *exactly* collectable: every transient object is part of
a multi-object block, because query results are linked lists whose nodes
contaminate one another.

Shape realisation:

* startup loads records into a static index (array of records), each record
  carrying a field object — the static bulk;
* each transaction runs in its own frame and builds a linked chain of
  result tuples (head -> node -> node ...), so every tuple is in a block of
  size >= 2 (0% exact);
* transactions scale steeply with the size knob (the paper's 7.6k -> 3.2M
  explosion), while the index grows slowly — flipping static-heavy into
  collectable-heavy;
* a fraction of result tuples references an index record: opt-sensitive
  (the paper's 18% -> 36% small-run gap).
"""

from __future__ import annotations

import random

from ..jvm.model import Program
from ..jvm.mutator import Mutator
from .base import Workload, register, scaled


@register
class Db(Workload):
    name = "db"
    description = "Database Manager"
    source_lines = "1020"

    RECORDS = 280
    TRANSACTIONS = 96
    RESULTS_PER_QUERY = 3

    def define_classes(self, program: Program) -> None:
        program.define_class("db/Record", fields=["key", "payload"])
        program.define_class("db/Field", fields=["text"])
        program.define_class(
            "db/ResultNode", fields=["record", "next", "score"]
        )

    def heap_words(self, size: int) -> int:
        # db is compute-bound (shell sort); roomy heaps keep the base
        # system's collections rare, as the paper's ~0.94 speedups imply.
        return {1: 9000, 10: 16000, 100: 26000}[size]

    def run(self, mutator: Mutator, size: int, rng: random.Random) -> None:
        records = scaled(self.RECORDS, size, growth=0.12)
        self._load_database(mutator, records)
        transactions = scaled(self.TRANSACTIONS, size, growth=1.2)
        for txn in range(transactions):
            with mutator.frame(name="db.transaction"):
                self._transaction(mutator, records, txn, rng)

    # ------------------------------------------------------------------

    def _load_database(self, mutator: Mutator, records: int) -> None:
        index = mutator.new_array(records)
        mutator.putstatic("db.index", index)
        index = mutator.getstatic("db.index")
        for i in range(records):
            record = mutator.new("db/Record")
            field = mutator.new("db/Field")
            mutator.putfield(record, "payload", field)
            mutator.putfield(record, "key", i)
            mutator.aastore(index, i, record)

    def _transaction(self, mutator: Mutator, records: int, txn: int,
                     rng: random.Random) -> None:
        # The index scan runs one or two frames below the transaction and
        # returns the result chain up, so db's deaths land at frame
        # distances 1-2 (Fig. 4.6's db profile peaks at 2).
        head = self._scan_index(mutator, records, txn, 1 + txn % 2, rng)
        mutator.root(head)
        # Sort / format the results (computation), then drop them with the
        # transaction frame.
        mutator.tick(110)

    def _scan_index(self, mutator: Mutator, records: int, txn: int,
                    depth: int, rng: random.Random):
        with mutator.frame(name="db.scanIndex"):
            if depth > 1:
                head = self._scan_index(mutator, records, txn, depth - 1, rng)
                return mutator.areturn(head)
            index = mutator.getstatic("db.index")
            head = mutator.new("db/ResultNode")
            mutator.set_local(0, head)
            tail = head
            for r in range(self.RESULTS_PER_QUERY - 1):
                mutator.tick(34)  # index scan / comparison work
                node = mutator.new("db/ResultNode")
                mutator.putfield(node, "score", r)
                if r == 0 and txn % 2 == 0:
                    # Half the queries keep a reference to the matched
                    # record: collectable only with the static optimization
                    # (the paper's 18% -> 36% small-run gap).
                    record = mutator.aaload(index, rng.randrange(records))
                    mutator.putfield(node, "record", record)
                # Chain into the result list: blocks of size >= 2, so db's
                # exactly-collectable share is ~0% (Fig. 4.9).
                mutator.putfield(tail, "next", node)
                tail = mutator.getfield(tail, "next")
            return mutator.areturn(head)
