"""Interpreter-driven bytecode workloads (the dispatch benchmarks).

The SPEC-shaped workloads drive the runtime through the direct
:class:`~repro.jvm.mutator.Mutator`, bypassing the interpreter entirely —
perfect for CG measurements, useless for measuring dispatch cost.  The
workloads here are real assembled bytecode executed by
:meth:`Runtime.run`, so the chain/table/closure/compiled/tiered tiers
differ on them.  They are the workloads behind the bench harness's
cg-vs-table speedup ladder and the five-way parity differential
tests.

* ``bc-arith`` — pure integer arithmetic and branching, zero allocation:
  dispatch overhead in isolation.
* ``bc-list`` — linked-list build/traverse: ``new``/``putfield`` CG events
  plus the ``load+getfield`` superinstruction on the hot walk.
* ``bc-calls`` — virtual calls over alternating receiver classes (inline-
  cache stress), statics, an object array, and a spawned allocator thread.

All three are deterministic with no seed sensitivity: the bytecode is the
program, the iteration count is the only knob.
"""

from __future__ import annotations

import random

from ..jvm.assembler import assemble
from ..jvm.model import Program
from ..jvm.mutator import Mutator
from ..jvm.runtime import Runtime
from .base import SIZES, Workload, register, scaled


class BytecodeWorkload(Workload):
    """A workload whose body is assembled bytecode, not a Mutator script."""

    #: Assembly source (see :mod:`repro.jvm.assembler` for the grammar).
    source: str = ""
    #: ``Class.method`` entry point; receives the iteration count as its
    #: single argument.
    entry: str = ""
    #: Iterations at size 1; sizes 10/100 scale with ``growth``.
    base_iterations: int = 0
    growth: float = 0.5

    def define_classes(self, program: Program) -> None:
        assemble(self.source, program)

    def run(self, mutator: Mutator, size: int,
            rng: random.Random) -> None:  # pragma: no cover
        raise NotImplementedError(
            "bytecode workloads drive the interpreter, not the Mutator"
        )

    def iterations(self, size: int) -> int:
        return scaled(self.base_iterations, size, self.growth)

    def execute(self, runtime: Runtime, size: int) -> None:
        if size not in SIZES:
            raise ValueError(f"size must be one of {SIZES}, got {size}")
        self.define_classes(runtime.program)
        runtime.run(self.entry, [self.iterations(size)])


@register
class BcArith(BytecodeWorkload):
    name = "bc-arith"
    description = "integer arithmetic/branch kernel (dispatch in isolation)"
    source_lines = "N/A"
    entry = "ArithMain.main"
    base_iterations = 40000

    source = """
    class ArithMain

    method ArithMain.main(1) locals=3
        ; locals: 0=iters, 1=i, 2=acc
        const 0
        store 1
        const 1
        store 2
    loop:
        load 1
        load 0
        if_icmpge done
        ; acc = (acc*3 + i) mod 65521
        load 2
        const 3
        mul
        load 1
        add
        const 65521
        mod
        store 2
        ; odd iterations: acc += 7
        load 1
        const 2
        mod
        ifzero even
        load 2
        const 7
        add
        store 2
    even:
        iinc 1 1
        goto loop
    done:
        load 2
        retval
    """

    def heap_words(self, size: int) -> int:
        # Allocates nothing; a small fixed heap keeps construction cheap.
        return 1024


@register
class BcLoop(BytecodeWorkload):
    name = "bc-loop"
    description = "nested-loop + call kernel with long straight-line blocks"
    source_lines = "N/A"
    entry = "BcLoop.main"
    base_iterations = 2200

    # The compiled tier's best case, by construction: the inner loop body
    # and the helper method are long branchless load/const/arith/store
    # runs, which the codegen collapses to a few Python statements per
    # basic block with the operand stack never touching frame.stack.
    # One invokestatic per outer iteration keeps the call path (frame
    # push/pop, quickened static dispatch) in the measurement without
    # letting frame churn dominate the straight-line work.
    source = """
    class BcLoop

    method BcLoop.mix(2) locals=2
        ; locals: 0=acc, 1=i — branchless mixer, returns the new acc
        load 0
        const 3
        mul
        load 1
        add
        store 0
        load 0
        const 5
        mul
        const 17
        add
        store 0
        load 0
        load 0
        add
        load 1
        add
        store 0
        load 0
        const 7
        mul
        load 1
        sub
        store 0
        load 0
        const 9
        mul
        const 23
        add
        store 0
        load 0
        const 11
        mul
        load 1
        add
        store 0
        load 0
        const 65521
        mod
        store 0
        load 0
        retval

    method BcLoop.main(1) locals=4
        ; locals: 0=iters, 1=i, 2=acc, 3=j
        const 1
        store 2
        const 0
        store 1
    outer:
        load 1
        load 0
        if_icmpge done
        const 10
        store 3
    inner:
        ; five 6-instruction branchless groups, then one bounding mod;
        ; bottom-tested so each iteration is a single straight-line trace
        load 2
        const 3
        mul
        load 3
        add
        store 2
        load 2
        const 5
        mul
        load 1
        add
        store 2
        load 2
        const 7
        mul
        load 3
        sub
        store 2
        load 2
        load 2
        add
        const 13
        add
        store 2
        load 2
        const 9
        mul
        load 1
        sub
        store 2
        load 2
        const 65521
        mod
        store 2
        iinc 3 -1
        load 3
        ifnzero inner
        load 2
        load 1
        invokestatic BcLoop.mix
        store 2
        iinc 1 1
        goto outer
    done:
        load 2
        retval
    """

    def heap_words(self, size: int) -> int:
        # Allocates nothing; a small fixed heap keeps construction cheap.
        return 1024


@register
class BcList(BytecodeWorkload):
    name = "bc-list"
    description = "linked-list build/sum (new/putfield + load+getfield walk)"
    source_lines = "N/A"
    entry = "BcList.main"
    base_iterations = 700

    source = """
    class BcNode
        field next
        field val

    class BcList

    method BcList.build(1) locals=4
        ; locals: 0=n, 1=i, 2=head, 3=node
        aconst_null
        store 2
        const 0
        store 1
    loop:
        load 1
        load 0
        if_icmpge done
        new BcNode
        store 3
        load 3
        load 2
        putfield next
        load 3
        load 1
        putfield val
        load 3
        store 2
        iinc 1 1
        goto loop
    done:
        load 2
        retval

    method BcList.sum(1) locals=2
        ; locals: 0=node, 1=acc
        const 0
        store 1
    walk:
        load 0
        ifnull out
        load 0
        getfield val
        load 1
        add
        store 1
        load 0
        getfield next
        store 0
        goto walk
    out:
        load 1
        retval

    method BcList.main(1) locals=3
        ; locals: 0=outer iterations, 1=k, 2=acc
        const 0
        store 1
        const 0
        store 2
    outer:
        load 1
        load 0
        if_icmpge done
        const 12
        invokestatic BcList.build
        invokestatic BcList.sum
        load 2
        add
        store 2
        iinc 1 1
        goto outer
    done:
        load 2
        retval
    """

    def heap_words(self, size: int) -> int:
        # Each outer iteration's 12-node list dies after its sum; size the
        # heap so the jdk system must actually collect.
        return 4096


@register
class BcCalls(BytecodeWorkload):
    name = "bc-calls"
    description = "virtual dispatch over mixed receivers + statics + spawn"
    source_lines = "N/A"
    entry = "BcCalls.main"
    base_iterations = 9000

    source = """
    class Shape
        field kind

    class Square extends Shape
        field side

    class Circle extends Shape
        field r

    class BcCounter
        static total

    class BcWorker

    class BcCalls
        static shapes

    method Shape.area(1) locals=1
        const 3
        retval

    method Square.area(1) locals=1
        load 0
        getfield side
        load 0
        getfield side
        mul
        retval

    method Circle.area(1) locals=1
        load 0
        getfield r
        load 0
        getfield r
        mul
        const 3
        mul
        retval

    method BcWorker.work(2) locals=3
        ; allocation churn on a spawned thread: 0=receiver, 1=n, 2=i
        const 0
        store 2
    wloop:
        load 2
        load 1
        if_icmpge wdone
        new Shape
        pop
        iinc 2 1
        goto wloop
    wdone:
        return

    method BcCalls.main(1) locals=5
        ; locals: 0=iters, 1=i, 2=arr, 3=shape, 4=worker
        const 0
        putstatic BcCounter.total
        ; eight shapes: six Squares then two Circles — mostly-monomorphic
        ; call sites with periodic inline-cache misses
        const 8
        newarray
        store 2
        const 0
        store 1
    fill:
        load 1
        const 8
        if_icmpge filled
        load 1
        const 6
        if_icmplt mksquare
        new Circle
        store 3
        load 3
        const 2
        putfield r
        goto stored
    mksquare:
        new Square
        store 3
        load 3
        const 3
        putfield side
    stored:
        load 2
        load 1
        load 3
        aastore
        iinc 1 1
        goto fill
    filled:
        load 2
        putstatic BcCalls.shapes
        ; concurrent allocation churn, interleaved round-robin
        new BcWorker
        store 4
        load 4
        const 400
        spawn work 2
        const 0
        store 1
    mloop:
        load 1
        load 0
        if_icmpge mdone
        getstatic BcCalls.shapes
        load 1
        const 8
        mod
        aaload
        invokevirtual area 1
        getstatic BcCounter.total
        add
        putstatic BcCounter.total
        iinc 1 1
        goto mloop
    mdone:
        getstatic BcCounter.total
        retval
    """

    def heap_words(self, size: int) -> int:
        # The worker's churn objects live until its frame pops, so give the
        # backstop collector something to chew on without thrashing.
        return 8192
