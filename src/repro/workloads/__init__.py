"""SPECjvm98-shaped workloads (see base.py for the modelling rationale)."""

from . import (  # noqa: F401
    bytecode,
    compress,
    db,
    jack,
    javac,
    jess,
    mpegaudio,
    raytrace,
    server,
)
from .base import (
    REGISTRY,
    SIZE_NAMES,
    SIZES,
    Param,
    Workload,
    all_workloads,
    get_workload,
    register,
    scaled,
)

__all__ = [
    "REGISTRY",
    "SIZES",
    "SIZE_NAMES",
    "Param",
    "Workload",
    "all_workloads",
    "get_workload",
    "register",
    "scaled",
]
