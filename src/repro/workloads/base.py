"""Workload framework: SPECjvm98-shaped mutators.

The paper evaluates on the (proprietary) SPECjvm98 suite at its three size
settings (1, 10, 100).  Each workload here is a synthetic mutator whose
*reference-flow shape* — how many objects are allocated, which fraction
escapes to statics, how references chain objects into equilive blocks, how
deep objects travel from their birth frame, and what is shared between
threads — is modelled on the paper's per-benchmark characterisation
(Figs. 4.1-4.6, 4.9, A.1-A.4).  Object counts are scaled down roughly 20x
(pure-Python substrate); every percentage-shaped result is count-invariant.

Workloads drive the runtime through :class:`~repro.jvm.mutator.Mutator`, so
the CG collector sees the same event stream bytecode would produce.  They
are deterministic: all randomness comes from a seeded ``random.Random``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Iterable, List, Type

from ..jvm.model import Program
from ..jvm.mutator import Mutator
from ..jvm.runtime import Runtime

#: SPEC's size knob.
SIZES = (1, 10, 100)
SIZE_NAMES = {1: "small", 10: "medium", 100: "large"}


class Workload(ABC):
    """One benchmark: class definitions plus a mutator program."""

    #: Benchmark name as the paper spells it (e.g. "compress").
    name: str = "?"
    #: One-line description (the Fig. 4.1 "description" column).
    description: str = "?"
    #: The paper's "lines of source" figure, for the Fig. 4.1 table.
    source_lines: str = "N/A"

    def __init__(self, seed: int = 2000) -> None:
        self.seed = seed

    # ------------------------------------------------------------------

    @abstractmethod
    def define_classes(self, program: Program) -> None:
        """Register this workload's classes on the program."""

    @abstractmethod
    def run(self, mutator: Mutator, size: int, rng: random.Random) -> None:
        """Execute the benchmark body inside ``mutator``'s main frame."""

    @abstractmethod
    def heap_words(self, size: int) -> int:
        """Heap sizing that puts the traditional collector under pressure
        comparable to the paper's runs (several GC cycles in JDK mode)."""

    # ------------------------------------------------------------------

    def execute(self, runtime: Runtime, size: int) -> None:
        """Standard entry: define classes, run inside a root frame."""
        if size not in SIZES:
            raise ValueError(f"size must be one of {SIZES}, got {size}")
        self.define_classes(runtime.program)
        mutator = Mutator(runtime)
        rng = random.Random(self.seed + size)
        with mutator.frame(name=f"{self.name}.main"):
            self.run(mutator, size, rng)

    def __repr__(self) -> str:
        return f"<Workload {self.name}>"


REGISTRY: Dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator: add a workload to the global registry."""
    if cls.name in REGISTRY:
        raise ValueError(f"duplicate workload {cls.name!r}")
    REGISTRY[cls.name] = cls
    return cls


def get_workload(name: str, seed: int = 2000) -> Workload:
    try:
        return REGISTRY[name](seed=seed)
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(REGISTRY)}"
        ) from None


def all_workloads(seed: int = 2000) -> List[Workload]:
    """The eight benchmarks, in the paper's table order."""
    order = [
        "compress", "jess", "raytrace", "db",
        "javac", "mpegaudio", "mtrt", "jack",
    ]
    return [get_workload(name, seed) for name in order if name in REGISTRY]


def scaled(base: int, size: int, growth: float = 1.0) -> int:
    """Scale a size-1 count to a SPEC size.

    ``growth`` < 1 damps scaling (compress/mpegaudio barely grow);
    ``growth`` = 1 scales linearly with the size knob.
    """
    if size == 1:
        return base
    return max(base, int(base * size ** growth))
