"""Workload framework: SPECjvm98-shaped mutators.

The paper evaluates on the (proprietary) SPECjvm98 suite at its three size
settings (1, 10, 100).  Each workload here is a synthetic mutator whose
*reference-flow shape* — how many objects are allocated, which fraction
escapes to statics, how references chain objects into equilive blocks, how
deep objects travel from their birth frame, and what is shared between
threads — is modelled on the paper's per-benchmark characterisation
(Figs. 4.1-4.6, 4.9, A.1-A.4).  Object counts are scaled down roughly 20x
(pure-Python substrate); every percentage-shaped result is count-invariant.

Workloads drive the runtime through :class:`~repro.jvm.mutator.Mutator`, so
the CG collector sees the same event stream bytecode would produce.  They
are deterministic: all randomness comes from a seeded ``random.Random``.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Type

from ..faults import did_you_mean
from ..jvm.model import Program
from ..jvm.mutator import Mutator
from ..jvm.runtime import Runtime

#: SPEC's size knob — the *batch* workloads' special case.  Open-ended
#: workloads (``open_ended = True``) are terminated by their own schema
#: parameters (``requests``/``max_ops``) instead.
SIZES = (1, 10, 100)
SIZE_NAMES = {1: "small", 10: "medium", 100: "large"}


@dataclass(frozen=True)
class Param:
    """One entry in a workload's parameter schema.

    ``choices`` makes it an enumerated string parameter (arrival
    patterns); otherwise it is an integer with optional bounds.  The
    default itself is validated at registration time, so a schema can
    never ship an unusable default.
    """

    default: object
    doc: str = ""
    choices: Optional[Tuple[str, ...]] = None
    minimum: Optional[int] = None
    maximum: Optional[int] = None

    def validate(self, workload: str, name: str, value: object) -> object:
        if self.choices is not None:
            if value not in self.choices:
                raise ValueError(
                    f"workload {workload!r}: invalid {name}={value!r}"
                    f"{did_you_mean(str(value), self.choices)}; "
                    f"choices: {self.choices}"
                )
            return value
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(
                f"workload {workload!r}: {name} must be an int, "
                f"got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ValueError(
                f"workload {workload!r}: {name} must be >= {self.minimum}, "
                f"got {value}"
            )
        if self.maximum is not None and value > self.maximum:
            raise ValueError(
                f"workload {workload!r}: {name} must be <= {self.maximum}, "
                f"got {value}"
            )
        return value


def resolve_params(cls: "Type[Workload]",
                   params: Optional[Dict] = None) -> Dict[str, object]:
    """Merge ``params`` over ``cls.param_schema`` defaults, validating."""
    schema = cls.param_schema
    resolved = {name: spec.default for name, spec in schema.items()}
    for name, value in (params or {}).items():
        if name not in schema:
            known = (f"; known: {sorted(schema)}" if schema
                     else " (it takes no parameters)")
            raise ValueError(
                f"workload {cls.name!r} has no parameter {name!r}"
                f"{did_you_mean(name, tuple(schema))}{known}"
            )
        resolved[name] = schema[name].validate(cls.name, name, value)
    return resolved


class Workload(ABC):
    """One benchmark: class definitions plus a mutator program."""

    #: Benchmark name as the paper spells it (e.g. "compress").
    name: str = "?"
    #: One-line description (the Fig. 4.1 "description" column).
    description: str = "?"
    #: The paper's "lines of source" figure, for the Fig. 4.1 table.
    source_lines: str = "N/A"
    #: Parameter schema (name -> :class:`Param`), installed by
    #: ``@register(params={...})``; empty for the batch workloads.
    param_schema: Dict[str, Param] = {}
    #: Open-ended workloads run until a schema-defined termination
    #: condition (requests served, op budget), not a SIZES knob.
    open_ended: bool = False

    def __init__(self, seed: int = 2000,
                 params: Optional[Dict] = None) -> None:
        self.seed = seed
        self.params = resolve_params(type(self), params)

    # ------------------------------------------------------------------

    @abstractmethod
    def define_classes(self, program: Program) -> None:
        """Register this workload's classes on the program."""

    @abstractmethod
    def run(self, mutator: Mutator, size: int, rng: random.Random) -> None:
        """Execute the benchmark body inside ``mutator``'s main frame."""

    @abstractmethod
    def heap_words(self, size: int) -> int:
        """Heap sizing that puts the traditional collector under pressure
        comparable to the paper's runs (several GC cycles in JDK mode)."""

    # ------------------------------------------------------------------

    def execute(self, runtime: Runtime, size: int) -> None:
        """Standard entry: define classes, run inside a root frame."""
        if size not in SIZES:
            raise ValueError(f"size must be one of {SIZES}, got {size}")
        self.define_classes(runtime.program)
        mutator = Mutator(runtime)
        rng = random.Random(self.seed + size)
        with mutator.frame(name=f"{self.name}.main"):
            self.run(mutator, size, rng)

    @classmethod
    def requests_for_size(cls, size: int) -> int:
        """Legacy ``size=`` shim for open-ended workloads: map a SIZES
        knob to an equivalent request count (bit-identical runs)."""
        raise NotImplementedError(
            f"workload {cls.name!r} has no size->requests mapping"
        )

    def __repr__(self) -> str:
        return f"<Workload {self.name}>"


REGISTRY: Dict[str, Type[Workload]] = {}


def register(cls: Optional[Type[Workload]] = None, *,
             params: Optional[Dict[str, Param]] = None):
    """Class decorator: add a workload to the global registry.

    ``@register`` is the historical bare form; ``@register(params={...})``
    additionally installs a parameter schema (each value a :class:`Param`)
    whose defaults are validated here, at import time.
    """

    def _add(klass: Type[Workload]) -> Type[Workload]:
        schema = dict(params) if params is not None else dict(
            klass.param_schema or {}
        )
        for pname, spec in schema.items():
            if not isinstance(spec, Param):
                raise TypeError(
                    f"workload {klass.name!r}: schema entry {pname!r} "
                    f"must be a Param, got {type(spec).__name__}"
                )
            spec.validate(klass.name, pname, spec.default)
        klass.param_schema = schema
        if klass.name in REGISTRY:
            raise ValueError(f"duplicate workload {klass.name!r}")
        REGISTRY[klass.name] = klass
        return klass

    if cls is not None:
        return _add(cls)
    return _add


def get_workload(name: str, seed: int = 2000,
                 params: Optional[Dict] = None) -> Workload:
    try:
        cls = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}{did_you_mean(name, tuple(REGISTRY))}"
            f"; known: {sorted(REGISTRY)}"
        ) from None
    return cls(seed=seed, params=params)


def all_workloads(seed: int = 2000) -> List[Workload]:
    """The eight benchmarks, in the paper's table order."""
    order = [
        "compress", "jess", "raytrace", "db",
        "javac", "mpegaudio", "mtrt", "jack",
    ]
    return [get_workload(name, seed) for name in order if name in REGISTRY]


def scaled(base: int, size: int, growth: float = 1.0) -> int:
    """Scale a size-1 count to a SPEC size.

    ``growth`` < 1 damps scaling (compress/mpegaudio barely grow);
    ``growth`` = 1 scales linearly with the size knob.
    """
    if size == 1:
        return base
    return max(base, int(base * size ** growth))
