"""``compress`` — modified Lempel-Ziv (SPECjvm98 _201_compress shape).

Paper characterisation: few objects (5,123 small / 6,959 large), almost all
long-lived (static dictionary and I/O state), heavy computation between
allocations.  Collectable: 9% without / 11% with the static optimization;
static share ~89%; essentially no thread sharing.  The large run allocates
barely more than the small one — the size knob buys compute, not objects.

Shape realisation:

* startup pins code-table/dictionary entries via ``putstatic`` chains;
* each input block is compressed in its own frame with a handful of buffer
  objects that die when the frame pops;
* a sub-fraction of the per-block temporaries references a static dictionary
  entry — collectable only with the section 3.4 optimization (the paper's
  2-point opt gap);
* long tick runs model the LZW hash loop.
"""

from __future__ import annotations

import random

from ..jvm.model import Program
from ..jvm.mutator import Mutator
from .base import Workload, register, scaled


@register
class Compress(Workload):
    name = "compress"
    description = "Modified Lempel-Ziv"
    source_lines = "920"

    DICT_ENTRIES = 480
    IO_STATE = 48
    BLOCKS = 12
    TEMPS_PER_BLOCK = 4
    TICKS_PER_BLOCK = 2200

    def define_classes(self, program: Program) -> None:
        program.define_class("compress/CodeEntry", fields=["code", "next"])
        program.define_class("compress/Buffer", fields=["data", "pos"])
        program.define_class(
            "compress/Probe", fields=["entry", "hash"]
        )
        program.define_class(
            "compress/IoState", fields=["stream", "mode"]
        )

    def heap_words(self, size: int) -> int:
        # Statics dominate; leave room for only a few blocks of temps so the
        # traditional collector must run in JDK mode.
        return 4200

    def run(self, mutator: Mutator, size: int, rng: random.Random) -> None:
        self._build_dictionary(mutator)
        blocks = scaled(self.BLOCKS, size, growth=0.07)
        ticks = scaled(self.TICKS_PER_BLOCK, size, growth=1.0)
        for block in range(blocks):
            with mutator.frame(name="compress.compressBlock"):
                self._compress_block(mutator, block, ticks, rng)

    # ------------------------------------------------------------------

    def _build_dictionary(self, mutator: Mutator) -> None:
        """Startup: the code dictionary and I/O state live forever."""
        table = mutator.new_array(self.DICT_ENTRIES)
        mutator.putstatic("compress.codeTable", table)
        table = mutator.getstatic("compress.codeTable")
        for i in range(self.DICT_ENTRIES):
            entry = mutator.new("compress/CodeEntry")
            mutator.putfield(entry, "code", i)
            mutator.aastore(table, i, entry)
        for i in range(self.IO_STATE):
            state = mutator.new("compress/IoState")
            mutator.putstatic(f"compress.io{i}", state)

    def _compress_block(self, mutator: Mutator, block: int, ticks: int,
                        rng: random.Random) -> None:
        table = mutator.getstatic("compress.codeTable")
        inbuf = mutator.new("compress/Buffer")
        mutator.set_local(0, inbuf)
        outbuf = mutator.new("compress/Buffer")
        mutator.set_local(1, outbuf)
        # The LZW hash loop: computation, occasional dictionary probes.
        mutator.tick(ticks)
        for p in range(self.TEMPS_PER_BLOCK - 1):
            probe = mutator.new("compress/Probe")
            mutator.putfield(probe, "hash", p)
            if p == 0:
                # One probe per block holds a reference to a static
                # dictionary entry: with the optimization this store is
                # free; without it the probe is dragged into the static set
                # (the paper's 9% -> 11% opt gap).
                entry = mutator.aaload(table, rng.randrange(self.DICT_ENTRIES))
                mutator.putfield(probe, "entry", entry)
            mutator.root(probe)
        mutator.putfield(outbuf, "pos", ticks)
