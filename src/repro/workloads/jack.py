"""``jack`` — PCCTS parser generator (SPECjvm98 _228_jack shape).

Paper characterisation: the allocation firehose — 393,742 objects small,
89% collectable with the optimization (69% without), and the suite's
largest *exact* share (30%): tokens are singletons.  Fig. 4.6 shows jack's
signature: most objects die at distance 1 (263,574) — a token is allocated
inside ``nextToken`` and returned to the parsing method that consumes and
drops it — and Fig. 4.5 shows blocks of size 1 and 2 dominating (tokens
and token-node pairs).

Shape realisation:

* the grammar tables are static (the 11% static share);
* ``parse`` loops over productions; each production frame calls
  ``nextToken`` (one frame down) which allocates the token and areturns it
  (death at distance 1, token block stays a never-unioned singleton: exact);
* every production allocates a node and attaches one token to it (a block
  of size 2) plus scratch singletons (distance 0);
* a minority of nodes cite a static grammar rule — the no-opt gap
  (89% -> 69%).
"""

from __future__ import annotations

import random

from ..jvm.model import Program
from ..jvm.mutator import Mutator
from .base import Workload, register, scaled


@register
class Jack(Workload):
    name = "jack"
    description = "PCCTS tool"
    source_lines = "N/A"

    GRAMMAR_RULES = 230
    PRODUCTIONS = 420
    TOKENS_PER_PRODUCTION = 3

    def define_classes(self, program: Program) -> None:
        program.define_class("jack/Token", fields=["kind", "text"])
        program.define_class(
            "jack/Node", fields=["token", "child", "rule"]
        )
        program.define_class("jack/Rule", fields=["name", "rhs"])
        program.define_class("jack/Scratch", fields=["bits"])

    def heap_words(self, size: int) -> int:
        return {1: 13000, 10: 16000, 100: 30000}[size]

    def run(self, mutator: Mutator, size: int, rng: random.Random) -> None:
        self._load_grammar(mutator, size)
        productions = scaled(self.PRODUCTIONS, size, growth=1.0)
        for p in range(productions):
            with mutator.frame(name="jack.parseProduction"):
                self._parse_production(mutator, p, rng)

    # ------------------------------------------------------------------

    def _load_grammar(self, mutator: Mutator, size: int) -> None:
        rules = scaled(self.GRAMMAR_RULES, size, growth=0.62)
        table = mutator.new_array(rules)
        mutator.putstatic("jack.grammar", table)
        mutator.putstatic("jack.ruleCount", rules)
        table = mutator.getstatic("jack.grammar")
        for i in range(rules):
            rule = mutator.new("jack/Rule")
            mutator.putfield(rule, "name", i)
            mutator.aastore(table, i, rule)

    def _parse_production(self, mutator: Mutator, production: int,
                          rng: random.Random) -> None:
        grammar = mutator.getstatic("jack.grammar")
        rule_count = mutator.getstatic("jack.ruleCount")
        # Lex the production's tokens: each is born one frame down and
        # returned (distance 1); all but one stay exact singletons.
        tokens = []
        for t in range(self.TOKENS_PER_PRODUCTION):
            with mutator.frame(name="jack.nextToken"):
                token = self._next_token(mutator, t, rng)
            # root() consumes the operand-stack entry itself; unrooting
            # first would open a GC window on the fresh token.
            mutator.root(token)
            tokens.append(token)
        # Build the production's node, attaching one token: size-2 block.
        node = mutator.new("jack/Node")
        mutator.putfield(node, "token", tokens[0])
        if production % 2 == 1:
            # Half the productions keep a second token as a child: a mix of
            # size-2 and size-3 blocks (Fig. 4.5's jack profile).
            mutator.putfield(node, "child", tokens[1])
        if production % 2 == 0:
            # Half the nodes cite the static grammar rule they were produced
            # by: the 69% -> 89% opt gap (the attached token is dragged
            # along, so each hit is worth the whole block).
            rule = mutator.aaload(grammar, rng.randrange(rule_count))
            mutator.putfield(node, "rule", rule)
        mutator.root(node)
        # Scratch singleton (distance 0, exact).
        scratch = mutator.new("jack/Scratch")
        mutator.putfield(scratch, "bits", production)
        mutator.root(scratch)
        mutator.tick(36)  # semantic actions / output generation

    def _next_token(self, mutator: Mutator, kind: int,
                    rng: random.Random):
        mutator.tick(9)  # scanning
        token = mutator.new("jack/Token")
        mutator.putfield(token, "kind", kind)
        return mutator.areturn(token)
