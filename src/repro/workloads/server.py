"""Long-running sessioned server workload (the paper's ch. 4.2 claim).

The thesis closes by arguing CG's frame-pop reclamation should shine in
*long-running servers and servlets*: each request builds an object graph
that mostly dies when its handler frame pops, so CG reclaims it with no
marking pause — while a tracing collector accumulates request garbage
until an allocation failure stops the world mid-request.  This workload
restates that claim as a production SLO: serve N requests under a seeded
arrival schedule and measure p50/p99/p999 request latency per system.

Structure:

* **Request handlers are bytecode** (``Srv.handle``), invoked once per
  request through :meth:`Runtime.invoke`, so all five dispatch tiers
  execute the same handler program and CG counters stay bit-identical
  across tiers.  Each request allocates a request object, a three-header
  chain, and a response — all frame-local — plus a route-table read
  (section 3.4 keeps the request uncontaminated by the static route).
* **Session escape**: every ``escape_every``-th request allocates a
  session object and ``aastore``\\ s it into the static session table —
  the configurable escape rate (putstatic pinning via the array).
* **Connection churn**: the Python-side acceptor groups requests into
  connections; each connection is a mutator frame holding a ``SrvConn``
  object, so connection close is itself a frame-pop reclamation.
* **Arrival patterns** (``steady`` / ``bursty`` / ``diurnal``) are
  inter-arrival gaps in mutator ops from a seeded ``random.Random`` —
  integer arithmetic only, so schedules are deterministic everywhere.
* **Termination is requests served** (``requests``), optionally capped
  by an op budget (``max_ops``) — not a SIZES knob.  The legacy ``size=``
  shim maps 1/10/100 to fixed request counts, bit-identically.

When profiling is armed, the acceptor brackets each handler invocation
with ``profiler.request_begin()``/``request_end()``, attributing every
collector pause that lands inside the window (MSA, CG events, recycle
search) to that request — the raw material for the ``bench --sla`` SLO
tables.  The brackets never tick the runtime, so profiled and unprofiled
runs have identical counters.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..jvm.assembler import assemble
from ..jvm.model import Program
from ..jvm.mutator import Mutator
from ..jvm.runtime import Runtime
from .base import Param, Workload, register

#: Route-table slots (mirrors the ``const 8`` / ``mod`` in the bytecode).
ROUTES = 8

#: Baseline inter-arrival gap in mutator ops; patterns modulate it.
BASE_GAP = 32

#: The legacy ``size=`` shim: SPEC knob -> requests served.
SIZE_REQUESTS = {1: 150, 10: 600, 100: 2400}

SERVER_SOURCE = """
class SrvRequest
    field path
    field headers

class SrvHeader
    field name
    field next

class SrvResponse
    field status

class SrvSession
    field user

class SrvRoute
    field pattern
    field hits

class SrvConn
    field id
    field served

class Srv
    static routes
    static sessions

method Srv.boot(1) locals=4
    ; arg 0 = session-table slots; locals: 1=i, 2=route array, 3=route
    const 8
    newarray
    store 2
    const 0
    store 1
fill:
    load 1
    const 8
    if_icmpge filled
    new SrvRoute
    store 3
    load 3
    load 1
    putfield pattern
    load 3
    const 0
    putfield hits
    load 2
    load 1
    load 3
    aastore
    iinc 1 1
    goto fill
filled:
    load 2
    putstatic Srv.routes
    load 0
    newarray
    putstatic Srv.sessions
    return

method Srv.handle(3) locals=7
    ; args: 0=request id, 1=session escape slot (-1: none), 2=spin count
    ; locals: 3=request/header cursor, 4=scratch object, 5=i, 6=acc
    new SrvRequest
    store 3
    load 3
    load 0
    putfield path
    ; chain three headers off the request (frame-local garbage)
    new SrvHeader
    store 4
    load 4
    const 0
    putfield name
    load 3
    load 4
    putfield headers
    load 4
    store 3
    const 1
    store 5
hdrs:
    load 5
    const 3
    if_icmpge routed
    new SrvHeader
    store 4
    load 4
    load 5
    putfield name
    load 3
    load 4
    putfield next
    load 4
    store 3
    iinc 5 1
    goto hdrs
routed:
    ; route lookup: a static-table read plus a hit counter.  The route is
    ; already static, so the section 3.4 optimization keeps the request
    ; graph uncontaminated by it.
    getstatic Srv.routes
    load 0
    const 8
    mod
    aaload
    store 4
    load 4
    load 4
    getfield hits
    const 1
    add
    putfield hits
    ; business logic: a bounded integer spin
    const 0
    store 6
    const 0
    store 5
spin:
    load 5
    load 2
    if_icmpge spun
    load 6
    const 3
    mul
    load 0
    add
    const 65521
    mod
    store 6
    iinc 5 1
    goto spin
spun:
    ; the response dies with this frame: CG's frame-pop win
    new SrvResponse
    store 4
    load 4
    const 200
    putfield status
    ; session escape: pin one object per escaping request into the
    ; static session table
    load 1
    const 0
    if_icmplt done
    new SrvSession
    store 4
    load 4
    load 0
    putfield user
    getstatic Srv.sessions
    load 1
    load 4
    aastore
done:
    load 6
    retval
"""


def arrival_gaps(pattern: str, rng: random.Random,
                 base_gap: int = BASE_GAP) -> Iterator[int]:
    """Yield inter-arrival gaps (mutator ops) forever, deterministically.

    * ``steady``  — the base gap with small jitter.
    * ``bursty``  — runs of near-zero gaps (a burst) separated by long
      idle stretches; same long-run mean order, very different shape.
    * ``diurnal`` — an integer triangle wave over a 240-request "day",
      swinging between ~0.4x and ~1.6x of the base gap.  Integer
      arithmetic only: no libm in the schedule, so counters are
      reproducible across platforms.
    """
    i = 0
    burst_left = 0
    while True:
        if pattern == "steady":
            yield base_gap + rng.randrange(7)
        elif pattern == "bursty":
            if burst_left > 0:
                burst_left -= 1
                yield rng.randrange(3)
            else:
                burst_left = 4 + rng.randrange(12)
                yield base_gap * (4 + rng.randrange(8))
        else:  # diurnal
            t = i % 240
            swing = t if t < 120 else 240 - t
            yield max(1, base_gap * (40 + swing) // 100) + rng.randrange(5)
        i += 1


@register(params={
    "requests": Param(400, "requests to serve before shutdown", minimum=1),
    "pattern": Param("steady", "arrival-schedule shape",
                     choices=("steady", "bursty", "diurnal")),
    "escape_every": Param(50, "every Nth request escapes a session "
                              "(0: none escape)", minimum=0),
    "sessions": Param(64, "session-table slots", minimum=1),
    "conn_requests": Param(16, "mean requests served per connection",
                           minimum=1),
    "spin": Param(40, "handler business-logic iterations", minimum=0),
    "max_ops": Param(0, "op-budget cap (0: unlimited)", minimum=0),
})
class ServerWorkload(Workload):
    name = "server"
    description = "long-running sessioned request/response server"
    source_lines = "N/A"
    open_ended = True

    @classmethod
    def requests_for_size(cls, size: int) -> int:
        try:
            return SIZE_REQUESTS[size]
        except KeyError:
            raise ValueError(
                f"size must be one of {sorted(SIZE_REQUESTS)}, got {size}"
            ) from None

    def define_classes(self, program: Program) -> None:
        assemble(SERVER_SOURCE, program)

    def run(self, mutator: Mutator, size: int,
            rng: random.Random) -> None:  # pragma: no cover
        raise NotImplementedError(
            "the server workload drives its own accept loop"
        )

    def heap_words(self, size: int) -> int:
        # Small enough that the tracing systems must collect mid-run
        # (that is the pause being measured), with headroom for the
        # static route/session tables CG pins forever.
        return max(1536, 512 + 8 * self.params["sessions"])

    def execute(self, runtime: Runtime, size: int) -> None:
        p = self.params
        requests = p["requests"]
        escape_every = p["escape_every"]
        sessions = p["sessions"]
        conn_requests = p["conn_requests"]
        spin = p["spin"]
        max_ops = p["max_ops"] or None

        self.define_classes(runtime.program)
        mutator = Mutator(runtime)
        rng = random.Random(self.seed * 7919 + requests)
        gaps = arrival_gaps(p["pattern"], rng)
        profiler = runtime.profiler
        tick = mutator.tick
        invoke = runtime.invoke

        runtime.invoke("Srv.boot", [sessions])
        served = 0
        conn_id = 0
        with mutator.frame(name="server.accept"):
            while served < requests and (max_ops is None
                                         or runtime.ops < max_ops):
                conn_id += 1
                conn_len = 1 + rng.randrange(2 * conn_requests - 1)
                with mutator.frame(name="server.conn"):
                    conn = mutator.new("SrvConn")
                    mutator.putfield(conn, "id", conn_id)
                    mutator.root(conn)
                    handled = 0
                    while (handled < conn_len and served < requests
                           and (max_ops is None or runtime.ops < max_ops)):
                        gap = next(gaps)
                        if gap:
                            tick(gap)
                        slot = -1
                        if (escape_every
                                and served % escape_every
                                == escape_every - 1):
                            slot = rng.randrange(sessions)
                        profiler.request_begin()
                        invoke("Srv.handle", [served, slot, spin])
                        profiler.request_end()
                        served += 1
                        handled += 1
                        mutator.putfield(conn, "served", handled)
                # connection close: the conn object (and anything
                # contaminated to it) dies at this frame pop
