"""``raytrace`` / ``mtrt`` — ray tracer (SPECjvm98 _205_raytrace/_227_mtrt).

Paper characterisation: the allocation-heaviest benchmarks (276,960 objects
small) and CG's best case — 98% collectable, tiny static share (the scene),
and a striking age-at-death profile (Fig. 4.6): over half the collected
objects die more than five frames from their birth frame, because vectors
and intersection records allocated deep in the shading recursion are
contaminated by the per-pixel ray they attach to, anchoring them at the
pixel frame far above.

``mtrt`` is the same tracer with two render threads sharing the scene: only
a sliver of objects (the scene graph touched by both threads) goes to the
thread-shared static set — matching the paper's observation that mtrt's
results are nearly identical to raytrace's.

Shape realisation per pixel (frame depths in parentheses):

    renderScene(1) -> renderRow(2) -> renderPixel(3):
        Ray allocated here
        trace(4) ... trace(4+depth):      # reflection recursion
            Vec/Isect temps, putfield onto the ray -> anchored at (3)
            shade color returned by areturn up the chain

so temps die when the pixel frame pops, at distance ~recursion depth (>5),
while per-call scratch vectors die at distance 0-2.
"""

from __future__ import annotations

import random

from ..jvm.model import Program
from ..jvm.mutator import Mutator
from .base import Workload, register, scaled


class _TracerCore:
    """Shared scene/render machinery for raytrace and mtrt."""

    SCENE_OBJECTS = 110
    ROWS = 12
    PIXELS_PER_ROW = 14
    MAX_BOUNCES = 12

    def define_tracer_classes(self, program: Program) -> None:
        if "raytrace/Vec" in program.classes:
            return
        program.define_class("raytrace/Vec", fields=["x", "y", "z"])
        program.define_class(
            "raytrace/Ray", fields=["origin", "dir", "isect"]
        )
        program.define_class(
            "raytrace/Isect", fields=["point", "normal", "prim"]
        )
        program.define_class(
            "raytrace/Primitive", fields=["center", "material"]
        )
        program.define_class("raytrace/Color", fields=["r", "g", "b"])

    def build_scene(self, mutator: Mutator, count: int) -> None:
        """The scene graph: the only long-lived data (static)."""
        scene = mutator.new_array(count)
        mutator.putstatic("raytrace.scene", scene)
        scene = mutator.getstatic("raytrace.scene")
        for i in range(count):
            prim = mutator.new("raytrace/Primitive")
            center = mutator.new("raytrace/Vec")
            mutator.putfield(prim, "center", center)
            mutator.aastore(scene, i, prim)

    def render_row(self, mutator: Mutator, pixels: int, bounces: int,
                   rng: random.Random) -> None:
        for _ in range(pixels):
            with mutator.frame(name="raytrace.renderPixel"):
                self.render_pixel(mutator, bounces, rng)

    def render_pixel(self, mutator: Mutator, bounces: int,
                     rng: random.Random) -> None:
        ray = mutator.new("raytrace/Ray")
        mutator.set_local(0, ray)
        origin = mutator.new("raytrace/Vec")
        mutator.putfield(ray, "origin", origin)
        depth = 2 + rng.randrange(bounces)
        color = self._trace(mutator, ray, depth, rng)
        # The resulting color is consumed here (written to the static
        # framebuffer would pin it; SPEC raytrace writes pixels to an int
        # canvas, so the Color object itself stays frame-local).
        mutator.getfield(color, "r")

    def _trace(self, mutator: Mutator, ray, depth: int,
               rng: random.Random):
        with mutator.frame(name="raytrace.trace"):
            mutator.tick(10)  # intersection math
            # Scratch vector: dies with this very frame (distance 0).
            scratch = mutator.new("raytrace/Vec")
            mutator.root(scratch)
            # Intersection record attaches to the ray: contaminated into
            # the pixel-frame block -> dies far from its birth frame.
            isect = mutator.new("raytrace/Isect")
            normal = mutator.new("raytrace/Vec")
            mutator.putfield(isect, "normal", normal)
            mutator.putfield(ray, "isect", isect)
            if depth > 0:
                # The recursive areturn left the color on this frame's
                # operand stack (rooted); areturn below consumes it.
                color = self._trace(mutator, ray, depth - 1, rng)
            else:
                color = mutator.new("raytrace/Color")
            return mutator.areturn(color)


@register
class Raytrace(Workload, _TracerCore):
    name = "raytrace"
    description = "Ray Tracer"
    source_lines = "3750"

    def define_classes(self, program: Program) -> None:
        self.define_tracer_classes(program)

    def heap_words(self, size: int) -> int:
        # The scene (live set) grows with the input model; roomy at small
        # sizes (the paper's small-run base system barely collected).
        return {1: 22000, 10: 34000, 100: 38000}[size]

    def run(self, mutator: Mutator, size: int, rng: random.Random) -> None:
        self.build_scene(mutator, scaled(self.SCENE_OBJECTS, size, growth=0.55))
        rows = scaled(self.ROWS, size, growth=0.55)
        pixels = scaled(self.PIXELS_PER_ROW, size, growth=0.45)
        for _ in range(rows):
            with mutator.frame(name="raytrace.renderRow"):
                self.render_row(mutator, pixels, self.MAX_BOUNCES, rng)


@register
class Mtrt(Workload, _TracerCore):
    name = "mtrt"
    description = "Ray Tracer, threaded"
    source_lines = "3750"

    def define_classes(self, program: Program) -> None:
        self.define_tracer_classes(program)

    def heap_words(self, size: int) -> int:
        return {1: 22000, 10: 34000, 100: 38000}[size]

    def run(self, mutator: Mutator, size: int, rng: random.Random) -> None:
        self.build_scene(mutator, scaled(self.SCENE_OBJECTS, size, growth=0.55))
        rows = scaled(self.ROWS, size, growth=0.55)
        pixels = scaled(self.PIXELS_PER_ROW, size, growth=0.45)
        worker = mutator.spawn("render-2")
        with worker.frame(name="mtrt.workerMain"):
            # A handful of coordination objects are genuinely shared: both
            # threads touch them (the paper reports ~45 shared objects).
            shared = []
            for _ in range(3):
                latch = mutator.new("raytrace/Color")
                mutator.set_local(len(shared), latch)
                shared.append(latch)
            for latch in shared:
                worker.touch(latch)
            # Interleave the two render threads row by row, as the round
            # robin scheduler would.
            for row in range(rows):
                renderer = mutator if row % 2 == 0 else worker
                with renderer.frame(name="mtrt.renderRow"):
                    self.render_row(renderer, pixels, self.MAX_BOUNCES, rng)
