"""Configuration knobs for the contaminated-garbage collector.

Each flag corresponds to a design point evaluated in the paper:

* ``static_opt`` — the Plezbert optimization (thesis section 3.4): storing a
  reference *to* an already-static object does not contaminate the storer.
  Fig. 4.1 compares collectability with and without it.
* ``recycling`` — deferred freeing with first-fit reuse of dead objects at
  allocation time (section 3.7, Figs. 4.12/4.13).
* ``recycle_by_type`` — the chapter 6 future-work variant: dead objects are
  additionally indexed by (class, size) so same-type allocations reuse
  storage in O(1) instead of a linear first-fit scan.  Implies
  ``recycling``.
* ``resetting`` — rebuild CG structures from true reachability during each
  mark-sweep pass (section 3.6, Fig. 4.11).
* ``handle_words`` — accounted handle width: 16 for the straightforward CG
  handle, 8 for the squeezed variant (section 3.5), 2 for the unmodified JDK.
* ``paranoid`` — reproduction-only: independently verify, at every frame pop,
  that no object CG is about to free is still reachable.  Quadratic; used by
  the test suite, never by benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..jvm.heap import (
    HANDLE_WORDS_CG_SQUEEZED,
    HANDLE_WORDS_CG_WIDE,
    HANDLE_WORDS_JDK,
)


@dataclass(frozen=True)
class CGPolicy:
    """Immutable CG configuration; pass to the runtime at construction."""

    enabled: bool = True
    static_opt: bool = True
    recycling: bool = False
    recycle_by_type: bool = False
    resetting: bool = False
    handle_words: int = HANDLE_WORDS_CG_WIDE
    paranoid: bool = False

    def __post_init__(self) -> None:
        if self.recycle_by_type and not self.recycling:
            # Typed indexing is a refinement of recycling, not a mode of
            # its own; normalise rather than reject.
            object.__setattr__(self, "recycling", True)
        valid_widths = (
            HANDLE_WORDS_JDK,
            HANDLE_WORDS_CG_SQUEEZED,
            HANDLE_WORDS_CG_WIDE,
        )
        if self.handle_words not in valid_widths:
            raise ValueError(
                f"handle_words must be one of {valid_widths}, got {self.handle_words}"
            )

    @staticmethod
    def disabled() -> "CGPolicy":
        """The unmodified base system (JDK-style: traditional GC only)."""
        return CGPolicy(enabled=False, handle_words=HANDLE_WORDS_JDK)

    @staticmethod
    def paper_default() -> "CGPolicy":
        """The configuration behind the headline results (opt on, Fig. 4.1)."""
        return CGPolicy()

    @staticmethod
    def no_opt() -> "CGPolicy":
        """CG without the section 3.4 optimization (Fig. 4.1 'no opt' column)."""
        return CGPolicy(static_opt=False)

    @staticmethod
    def with_recycling() -> "CGPolicy":
        return CGPolicy(recycling=True)

    @staticmethod
    def with_typed_recycling() -> "CGPolicy":
        """Chapter 6's by-type recycling extension."""
        return CGPolicy(recycling=True, recycle_by_type=True)

    @staticmethod
    def with_resetting() -> "CGPolicy":
        return CGPolicy(resetting=True)
