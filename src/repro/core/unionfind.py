"""Disjoint-set (union-find) forest with union by rank and path compression.

This is the data structure the paper uses to maintain the *equilive*
equivalence relation over heap objects (thesis section 3.1.1).  Elements are
small integers (object handle ids), which keeps the forest compact and lets
callers attach per-set payloads keyed by the root id.

The amortised cost per operation is O(alpha(n)) (inverse Ackermann), which the
paper characterises as "a (nearly) constant amount of work per storage
reference".  We additionally count find/union operations so the evaluation
harness can charge CG maintenance work in its cost model.
"""

from __future__ import annotations

from typing import Iterator, List


class DisjointSets:
    """Union-find forest over integer elements ``0 .. n-1``.

    Elements are added with :meth:`make_set` and are never removed; callers
    that recycle element ids (as the CG collector does when an object is
    freed) simply call :meth:`reset` on the id to make it a fresh singleton.

    Attributes:
        finds: number of find operations performed (including internal ones).
        unions: number of union operations that actually merged two sets.
    """

    __slots__ = ("_parent", "_rank", "finds", "unions")

    def __init__(self) -> None:
        self._parent: List[int] = []
        self._rank: List[int] = []
        self.finds = 0
        self.unions = 0

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, x: int) -> bool:
        return 0 <= x < len(self._parent)

    def make_set(self) -> int:
        """Create a new singleton set and return its element id."""
        x = len(self._parent)
        self._parent.append(x)
        self._rank.append(0)
        return x

    def ensure(self, x: int) -> None:
        """Extend the universe so that element ``x`` exists (as a singleton).

        Grows ``_parent``/``_rank`` with one slice assignment each rather
        than a ``make_set`` call per missing element — the collector calls
        this on every allocation, so the per-call cost matters.
        """
        n = len(self._parent)
        if x >= n:
            self._parent[n:] = range(n, x + 1)
            self._rank[n:] = [0] * (x + 1 - n)

    def ensure_singleton(self, x: int) -> None:
        """``ensure(x)`` followed by ``reset(x)`` in one call.

        The collector performs exactly this pair on every allocation (the
        universe must contain the new handle id, and it must start as a
        fresh singleton even when the id slot already existed); fusing them
        halves the call overhead on the hottest CG path.
        """
        n = len(self._parent)
        if x >= n:
            self._parent[n:] = range(n, x + 1)
            self._rank[n:] = [0] * (x + 1 - n)
        else:
            self._parent[x] = x
            self._rank[x] = 0

    def reset(self, x: int) -> None:
        """Detach ``x`` into a fresh singleton set.

        This is only legal when every other member of ``x``'s old set has been
        (or is being) reset as well — the CG collector uses it when an entire
        equilive block dies, and the §3.6 resetting pass uses it after
        dismantling all blocks.  Resetting a root whose children still point
        at it would corrupt the forest, so callers must reset whole sets.
        """
        self._parent[x] = x
        self._rank[x] = 0

    def find(self, x: int) -> int:
        """Return the representative (root) of ``x``'s set, compressing the path."""
        self.finds += 1
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        # Path compression: point every traversed node directly at the root.
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, x: int, y: int) -> int:
        """Merge the sets containing ``x`` and ``y``; return the new root.

        Union by rank: the shallower tree is attached under the deeper one.
        Returns the surviving root (which is also returned when ``x`` and
        ``y`` were already in the same set).
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        self.unions += 1
        rank = self._rank
        if rank[rx] < rank[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        if rank[rx] == rank[ry]:
            rank[rx] += 1
        return rx

    def same_set(self, x: int, y: int) -> bool:
        """True when ``x`` and ``y`` are currently equilive."""
        return self.find(x) == self.find(y)

    def rank_of(self, x: int) -> int:
        """Rank of the tree rooted at ``x``'s representative.

        Section 3.5 of the thesis observes that ranks stay small in practice
        (<= 10 for SPECjvm98), which is what allowed packing rank into the
        low bits of the parent pointer; we expose it so tests can check the
        same bound holds for our workloads.
        """
        return self._rank[self.find(x)]

    def roots(self) -> Iterator[int]:
        """Iterate over current set representatives (no compression)."""
        for x, p in enumerate(self._parent):
            if x == p:
                yield x
