"""The contaminated-garbage collector (the paper's contribution).

The collector is an event consumer: the VM (or a direct-drive mutator)
reports exactly the events the thesis instruments in Sun's interpreter
(section 3.1.3) —

* object creation            -> a fresh singleton equilive block on the
                                currently active frame;
* ``putfield`` / ``aastore`` -> symmetric contamination: the two objects'
                                blocks merge, dependent on the older frame
                                (with the section 3.4 static optimization);
* ``areturn``                -> the returned object's block is promoted to
                                the caller's frame if that frame is older;
* ``putstatic``              -> the referenced object's block is pinned to
                                frame 0 (live for the program's duration);
* frame pop                  -> every block on the frame's list is dead and
                                is reclaimed (or parked for recycling);

plus the pessimistic cases of sections 3.2/3.3: interned strings, objects
escaping to native code, objects touched by a second thread, and objects
returned off the bottom of a thread's stack are pinned to frame 0.

The collector never marks: reclamation at a frame pop is a walk of that
frame's block list only.  Conservatism (objects believed live that are in
fact dead) is quantified, not corrected — except by the optional section 3.6
reset pass, driven by the tracing collector through the ``begin_reset`` /
``reset_assign`` / ``reset_union`` / ``end_reset`` protocol.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional, Tuple

from ..jvm.errors import IllegalStateError
from ..jvm.frames import Frame, StaticFrame
from ..jvm.heap import Handle, Heap
from ..obs.events import NULL_TRACER
from ..obs.profile import NULL_PROFILER, PHASE_CG_EVENTS, PHASE_RECYCLE
from .equilive import EquiliveBlock, EquiliveManager
from .policy import CGPolicy
from .recycle import RecycleList
from .stats import (
    CAUSE_INTERN,
    CAUSE_MERGED,
    CAUSE_NATIVE,
    CAUSE_PUTSTATIC,
    CAUSE_ROOTLESS,
    CAUSE_SHARED,
    CGStats,
)


class ResetSnapshot:
    """Pre-reset dependence of every live object (for the Fig. 4.11 metric)."""

    __slots__ = ("entries",)

    def __init__(self) -> None:
        #: handle id -> (was_static, dependent frame depth)
        self.entries: Dict[int, Tuple[bool, int]] = {}


class ContaminatedCollector:
    """Event-driven CG collector over a :class:`~repro.jvm.heap.Heap`."""

    def __init__(self, heap: Heap, static_frame: StaticFrame,
                 policy: Optional[CGPolicy] = None,
                 tracer=None, profiler=None) -> None:
        self.heap = heap
        self.policy = policy or CGPolicy()
        self.static_frame = static_frame
        self.stats = CGStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Cached flag so disabled tracing costs one attribute test on the
        #: (already expensive) event paths, never a method call.
        self._trace = self.tracer.enabled
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.equilive = EquiliveManager(static_frame)
        self.recycle = RecycleList(
            heap, self.stats, by_type=self.policy.recycle_by_type,
            tracer=self.tracer,
        )
        #: Optional oracle installed by the runtime for paranoid mode: given
        #: a list of handles CG is about to free, raise if any is reachable.
        self.reachability_probe: Optional[Callable[[List[Handle]], None]] = None
        if self.profiler.enabled:
            # Shadow the hot event handlers with timing wrappers only when
            # profiling is on; the disabled configuration keeps the plain
            # bound methods and pays nothing.
            self.on_store = self._timed(self.on_store, PHASE_CG_EVENTS)
            self.on_areturn = self._timed(self.on_areturn, PHASE_CG_EVENTS)
            self.on_putstatic = self._timed(self.on_putstatic, PHASE_CG_EVENTS)
            self.on_frame_pop = self._timed(self.on_frame_pop, PHASE_CG_EVENTS)
            self.take_recycled = self._timed(self.take_recycled, PHASE_RECYCLE)

    def set_tracer(self, tracer) -> None:
        """Install (or replace) the event tracer after construction.

        The collector caches ``tracer.enabled`` in ``_trace`` at
        construction time for event-path speed, so assigning
        ``collector.tracer`` directly would leave the cached flag stale
        and silently drop events.  This is the supported way to attach a
        tracer late; it refreshes the cache here and in the recycle list.
        """
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._trace = self.tracer.enabled
        self.recycle.set_tracer(self.tracer)

    def _timed(self, method, phase: str):
        profiler = self.profiler

        def wrapper(*args, **kwargs):
            started = perf_counter()
            try:
                return method(*args, **kwargs)
            finally:
                profiler.add(phase, perf_counter() - started)

        return wrapper

    # ------------------------------------------------------------------
    # Mutator events
    # ------------------------------------------------------------------

    def on_alloc(self, handle: Handle, frame: Frame) -> EquiliveBlock:
        """A new object is associated with the currently active frame."""
        self.stats.objects_created += 1
        # Inline of equilive.create(): this runs once per allocation.
        equilive = self.equilive
        ds = equilive.ds
        parent = ds._parent
        hid = handle.id
        n = len(parent)
        if hid >= n:
            parent[n:] = range(n, hid + 1)
            ds._rank[n:] = [0] * (hid + 1 - n)
        else:
            parent[hid] = hid
            ds._rank[hid] = 0
        block = EquiliveBlock(handle, frame)
        equilive._blocks[hid] = block
        frame.cg_blocks[block] = None
        if self._trace:
            self.tracer.emit(
                "new", handle=handle.id, cls=handle.cls.name,
                size=handle.size, depth=frame.depth,
                thread=handle.alloc_thread,
            )
        if frame is self.static_frame:
            # Allocated outside any method (class loading, interpreter
            # internals): immediately static, per section 3.2.
            self._pin_block(block, CAUSE_INTERN)
        return block

    def on_store(self, container: Handle, value: Optional[Handle]) -> None:
        """``putfield``/``aastore``: symmetric contamination (chapter 2)."""
        self.stats.store_events += 1
        if value is None:
            return
        if container.freed:
            container.check_live()
        if value.freed:
            value.check_live()
        equilive = self.equilive
        bc = equilive.block_of(container)
        bv = equilive.block_of(value)
        if bc is bv:
            return
        if bv.is_static and not bc.is_static and self.policy.static_opt:
            # Section 3.4: referencing an already-static object cannot make
            # it "more live"; skip contaminating the container.
            self.stats.static_opt_hits += 1
            return
        self._merge(bc, bv)

    def on_putstatic(self, value: Optional[Handle]) -> None:
        """A static variable now references ``value``: pin to frame 0."""
        self.stats.putstatic_events += 1
        if value is None:
            return
        value.check_live()
        self.pin_static(value, CAUSE_PUTSTATIC)

    def on_areturn(self, value: Handle, caller: Optional[Frame]) -> None:
        """``areturn``: the block must outlive the caller's frame."""
        self.stats.areturn_events += 1
        value.check_live()
        if caller is None:
            # Returned off the bottom of a thread's stack (or to a native
            # caller with no frame): nothing anchors it, pin conservatively.
            self.pin_static(value, CAUSE_ROOTLESS)
            return
        block = self.equilive.block_of(value)
        if block.is_static:
            return
        if caller.is_older_than(block.frame):
            if self._trace:
                self.tracer.emit(
                    "promote", handle=value.id,
                    from_depth=block.frame.depth, to_depth=caller.depth,
                )
            self.equilive.move_to_frame(block, caller)

    def on_access(self, handle: Handle, thread_id: int) -> None:
        """Any heap access: detect sharing between threads (section 3.3)."""
        if handle.freed:
            handle.check_live()
        if handle.pinned_cause is not None:
            return  # already static; no further action can affect it
        if handle.alloc_thread != thread_id:
            self.pin_static(handle, CAUSE_SHARED)

    def on_intern(self, handle: Handle) -> None:
        """Interpreter-internal static reference (String.intern, section 3.2)."""
        self.pin_static(handle, CAUSE_INTERN)

    def on_native_escape(self, handle: Handle) -> None:
        """Object handed to native code (section 3.3): pin conservatively."""
        self.pin_static(handle, CAUSE_NATIVE)

    def on_frame_pop(self, frame: Frame) -> int:
        """Collect every equilive block dependent on the popped frame.

        Returns the number of objects reclaimed.  With recycling enabled the
        dead objects are parked for reuse instead of freed (section 3.7).
        """
        self.stats.frame_pops += 1
        if not frame.cg_blocks:
            if self._trace:
                self.tracer.emit(
                    "frame_pop", frame=frame.frame_id, depth=frame.depth,
                    blocks=0, freed=0,
                )
            return 0
        freed = 0
        recycling = self.policy.recycling
        equilive = self.equilive
        stats = self.stats
        age_hist = stats.age_hist
        depth = frame.depth
        reclaim = self.heap.retire if recycling else self.heap.free
        blocks = list(frame.cg_blocks)
        for block in blocks:
            live = [h for h in block.members if not h.freed]
            equilive.detach(block)
            equilive.forget_members(block)
            if not live:
                continue
            if self.policy.paranoid and self.reachability_probe is not None:
                self.reachability_probe(live)
            stats.blocks_collected += 1
            stats.block_size_hist[len(live)] += 1
            if self._trace:
                self.tracer.emit(
                    "block_collect", frame=frame.frame_id, depth=depth,
                    size=len(live), exact=not block.ever_unioned,
                )
            if not block.ever_unioned:
                stats.exact_blocks += 1
                stats.exact_objects += len(live)
            for handle in live:
                age_hist[handle.birth_depth - depth] += 1
                reclaim(handle, "contaminated-gc")
                freed += 1
            if recycling:
                self.recycle.park(live)
        stats.objects_popped += freed
        if self._trace:
            self.tracer.emit(
                "frame_pop", frame=frame.frame_id, depth=frame.depth,
                blocks=len(blocks), freed=freed,
            )
        return freed

    # ------------------------------------------------------------------
    # Allocation-time recycling hook (section 3.7)
    # ------------------------------------------------------------------

    def take_recycled(self, size: int, cls=None) -> Optional[Handle]:
        """Search the recycle list for ``size`` words of storage.

        With by-type recycling enabled (chapter 6), an exact (class, size)
        bucket is consulted first; otherwise this is the section 3.7
        linear first-fit.
        """
        if not self.policy.recycling:
            return None
        donor = self.recycle.take_fit(size, cls=cls)
        if donor is not None:
            self.stats.objects_recycled += 1
        return donor

    # ------------------------------------------------------------------
    # Emergency recovery (the allocation cascade's CG-only tier)
    # ------------------------------------------------------------------

    def emergency_pass(self) -> int:
        """Reclaim storage using only what CG already knows, no tracing.

        Two pop-driven sweeps: (1) detach equilive blocks whose members
        have all since been reclaimed out of band (MSA's lazy deletion
        leaves them on frame lists until the frame pops); (2) flush every
        parked recycle object back to the free list.  Both only touch
        provably-dead storage, so no census or collection counter moves —
        this is exactly what a frame pop/GC would eventually do, done now.
        Returns the number of parked objects released.
        """
        equilive = self.equilive
        for block in list(equilive.blocks()):
            if block.live_size() == 0:
                equilive.detach(block)
                equilive.forget_members(block)
        return self.recycle.flush()

    def block_census(self) -> Dict[str, int]:
        """Instantaneous equilive-block summary for crash dumps."""
        blocks = live_objects = static_blocks = static_objects = largest = 0
        for block in self.equilive.blocks():
            size = block.live_size()
            blocks += 1
            live_objects += size
            if size > largest:
                largest = size
            if block.is_static:
                static_blocks += 1
                static_objects += size
        return {
            "blocks": blocks,
            "live_objects": live_objects,
            "static_blocks": static_blocks,
            "static_objects": static_objects,
            "largest_block": largest,
        }

    # ------------------------------------------------------------------
    # Tracing-collector integration
    # ------------------------------------------------------------------

    def on_collected_by_msa(self, handle: Handle) -> None:
        """The tracing collector reclaimed an object CG still thought live.

        The handle stays on its block's member list with its ``freed`` flag
        set (lazy deletion); the block skips it when it is eventually popped.
        """
        self.stats.collected_by_msa += 1

    def begin_reset(self) -> ResetSnapshot:
        """Start a section 3.6 reset pass: snapshot and dismantle all blocks."""
        snapshot = ResetSnapshot()
        for block in self.equilive.blocks():
            entry = (block.is_static, block.frame.depth)
            for handle in block.live_members():
                snapshot.entries[handle.id] = entry
        self.equilive.dismantle_all()
        return snapshot

    def reset_assign(self, handle: Handle, frame: Frame) -> None:
        """Associate ``handle`` with ``frame`` (first root that reaches it)."""
        if self.equilive.has_block(handle):
            raise IllegalStateError(f"reset_assign of already-assigned #{handle.id}")
        block = self.equilive.create(handle, frame)
        if frame is self.static_frame:
            block.static_cause = handle.pinned_cause or CAUSE_MERGED
            if handle.pinned_cause is None:
                handle.pinned_cause = block.static_cause
                self.stats.objects_pinned[block.static_cause] += 1

    def reset_union(self, a: Handle, b: Handle) -> None:
        """Union along a reference edge discovered during marking."""
        ba = self.equilive.block_of(a)
        bb = self.equilive.block_of(b)
        if ba is not bb:
            self._merge(ba, bb)

    def end_reset(self, snapshot: ResetSnapshot) -> int:
        """Finish a reset pass; returns the number of less-live objects.

        An object is *less live* when its rebuilt dependence is strictly
        younger than before the pass (e.g. it dropped out of the static set,
        or moved to a deeper frame) — the approximation error the reset pass
        repairs (Fig. 4.11).
        """
        self.stats.reset_passes += 1
        improved = 0
        for block in self.equilive.blocks():
            now_static = block.is_static
            depth_now = block.frame.depth
            for handle in block.live_members():
                was = snapshot.entries.get(handle.id)
                if was is None:
                    continue  # allocated after the snapshot; nothing to compare
                was_static, depth_before = was
                if was_static and not now_static:
                    improved += 1
                    handle.pinned_cause = None
                elif not was_static and not now_static and depth_now > depth_before:
                    improved += 1
        self.stats.less_live += improved
        if self._trace:
            self.tracer.emit(
                "reset_pass", improved=improved,
                blocks=self.equilive.block_count(),
            )
        return improved

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def pin_static(self, handle: Handle, cause: str) -> None:
        """Pin ``handle``'s whole block to frame 0 with the given cause."""
        block = self.equilive.block_of(handle)
        if block.is_static:
            return
        self.stats.static_pins[cause] += 1
        self._pin_block(block, cause)

    def _pin_block(self, block: EquiliveBlock, cause: str) -> None:
        if self._trace:
            self.tracer.emit(
                "pin", handle=block.members[0].id, cause=cause,
                members=len(block.members), from_depth=block.frame.depth,
            )
        self._stamp_members(block, cause)
        block.static_cause = cause
        self.equilive.pin_static(block, cause)

    def _stamp_members(self, block: EquiliveBlock, cause: str) -> None:
        stamped = self.stats.objects_pinned
        for handle in block.members:
            if not handle.freed and handle.pinned_cause is None:
                handle.pinned_cause = cause
                stamped[cause] += 1

    def _merge(self, ba: EquiliveBlock, bb: EquiliveBlock) -> EquiliveBlock:
        """Merge two distinct blocks per the paper's rules (section 2.2)."""
        if ba.is_static or bb.is_static:
            cause = ba.static_cause or bb.static_cause or CAUSE_MERGED
            if not ba.is_static:
                self._stamp_members(ba, cause)
                ba.static_cause = cause
            if not bb.is_static:
                self._stamp_members(bb, cause)
                bb.static_cause = cause
            target = self.static_frame
        elif ba.frame.thread_id != bb.frame.thread_id:
            # Blocks anchored in different threads' stacks have no common
            # frame order; treat as shared (section 3.3).
            self.stats.static_pins[CAUSE_SHARED] += 1
            self._stamp_members(ba, CAUSE_SHARED)
            self._stamp_members(bb, CAUSE_SHARED)
            ba.static_cause = CAUSE_SHARED
            bb.static_cause = CAUSE_SHARED
            target = self.static_frame
        else:
            target = ba.frame if ba.frame.is_older_than(bb.frame) else bb.frame
        if self._trace:
            self.tracer.emit(
                "union", a=ba.members[0].id, b=bb.members[0].id,
                sizes=[len(ba.members), len(bb.members)],
                target_depth=target.depth,
                static=target is self.static_frame,
            )
        merged = self.equilive.merge(ba, bb, target)
        self.stats.contaminations += 1
        return merged

    # ------------------------------------------------------------------
    # End-of-run accounting
    # ------------------------------------------------------------------

    def final_census(self) -> Dict[str, int]:
        """Classify surviving objects: the popped/static/thread breakdown
        of Tables A.2-A.4 plus the per-cause static composition of A.1."""
        static_count = 0
        shared_count = 0
        for block in self.equilive.blocks():
            for handle in block.live_members():
                if handle.pinned_cause == CAUSE_SHARED:
                    shared_count += 1
                else:
                    static_count += 1
        return {
            "popped": self.stats.objects_popped,
            "static": static_count,
            "thread": shared_count,
            "collected_by_msa": self.stats.collected_by_msa,
        }
