"""Counters for everything the paper's evaluation chapter reports.

One :class:`CGStats` instance per runtime.  The harness combines these with
heap/collector counters into per-figure rows; nothing here is interpreted —
percentages and bucketing happen in :mod:`repro.harness`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict


#: Static-pin causes, in the vocabulary of the thesis.
CAUSE_PUTSTATIC = "putstatic"      # section 3.1.3: putstatic instruction
CAUSE_INTERN = "intern"            # section 3.2: interpreter-internal refs
CAUSE_NATIVE = "native"            # section 3.3: escaped to native code
CAUSE_SHARED = "shared"            # section 3.3: touched by a second thread
CAUSE_MERGED = "merged"            # contaminated by a static object
CAUSE_ROOTLESS = "rootless"        # returned off the bottom of a thread stack


@dataclass
class CGStats:
    """Raw event counters maintained by the CG collector."""

    # --- object population -------------------------------------------------
    objects_created: int = 0
    #: Objects reclaimed by CG when their dependent frame popped (Fig. 4.1).
    objects_popped: int = 0
    #: Objects whose parked storage was reused by a later allocation (Fig. 4.13).
    objects_recycled: int = 0
    #: Objects reclaimed by the tracing collector instead of CG (Fig. 4.11).
    collected_by_msa: int = 0

    # --- event counts (cost-model inputs) -----------------------------------
    store_events: int = 0
    areturn_events: int = 0
    putstatic_events: int = 0
    frame_pops: int = 0
    blocks_collected: int = 0
    #: Unions that actually merged two blocks ("contaminations").
    contaminations: int = 0
    #: Stores suppressed by the section 3.4 optimization.
    static_opt_hits: int = 0

    # --- static-set composition (Figs. 4.2-4.4, A.1-A.4) --------------------
    #: Blocks pinned static, keyed by cause.
    static_pins: Counter = field(default_factory=Counter)
    #: Objects stamped with each cause when their block went static.
    objects_pinned: Counter = field(default_factory=Counter)

    # --- equilive block shape (Fig. 4.5) -------------------------------------
    #: Size of each block at the moment CG collected it -> count of blocks.
    block_size_hist: Counter = field(default_factory=Counter)
    #: Blocks collected that never participated in a union ("exact").
    exact_blocks: int = 0
    exact_objects: int = 0

    # --- age at death (Fig. 4.6) ---------------------------------------------
    #: Frame distance (birth depth - collecting frame depth) -> object count.
    age_hist: Counter = field(default_factory=Counter)

    # --- resetting (section 3.6, Fig. 4.11) ----------------------------------
    reset_passes: int = 0
    #: Objects whose dependence improved (moved younger) during a reset pass.
    less_live: int = 0

    # --- recycling (section 3.7 / chapter 6 typed variant) --------------------
    recycle_search_steps: int = 0
    recycle_misses: int = 0
    recycle_typed_hits: int = 0

    def collectable_fraction(self) -> float:
        """Fraction of created objects CG reclaimed (the Fig. 4.1 metric)."""
        if self.objects_created == 0:
            return 0.0
        return self.objects_popped / self.objects_created

    def exact_fraction(self) -> float:
        """Fraction of created objects collected in never-unioned blocks."""
        if self.objects_created == 0:
            return 0.0
        return self.exact_objects / self.objects_created

    def age_buckets(self) -> Dict[str, int]:
        """Fig. 4.6 bucketing: distances 0..5 plus '>5'."""
        buckets = {str(d): 0 for d in range(6)}
        buckets[">5"] = 0
        for distance, count in self.age_hist.items():
            key = str(distance) if distance <= 5 else ">5"
            buckets[key] += count
        return buckets

    def block_size_buckets(self) -> Dict[str, int]:
        """Fig. 4.5 bucketing: sizes 1-5, 6-10, >10."""
        buckets = {"1": 0, "2": 0, "3": 0, "4": 0, "5": 0, "6-10": 0, ">10": 0}
        for size, count in self.block_size_hist.items():
            if size <= 5:
                buckets[str(size)] += count
            elif size <= 10:
                buckets["6-10"] += count
            else:
                buckets[">10"] += count
        return buckets
