"""Deferred freeing and reuse of CG-collected objects (section 3.7 + §6).

Thesis section 3.7: instead of returning each dead object to the free list
at frame pop, the popped frame's equilive sets are spliced onto a *recycle
list*.  When an allocation fails, the allocator first walks the recycle
list doing a first-fit search for a dead object at least as big as
requested, reusing its storage directly; only then does it fall back to the
tracing collector.  This converts per-object free-list insertion (and the
allocator's post-fill heap rescans) into a pointer update at pop time and a
usually-short scan at allocation time.

The list is unordered, so the worst case is O(n) per failed lookup — the
thesis calls this out ("Another possibility would be to keep the sets
organized by type, so that we could merely look for a specific type of
object").  That future-work variant is implemented here too: with
``by_type=True`` dead objects are additionally indexed by (class, size), so
an allocation of a seen type is a dictionary hit ("For languages like Java,
where objects of a given type always take the same size (except for
arrays), such object recycling could have a big payoff", thesis chapter 6).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..jvm.heap import Handle, Heap
from ..jvm.model import JClass
from ..obs.events import NULL_TRACER
from .stats import CGStats


class RecycleList:
    """Dead-but-unfreed objects awaiting reuse.

    Two lookup disciplines:

    * default — the thesis's unordered first-fit scan (section 3.7);
    * ``by_type=True`` — the chapter 6 extension: an exact (class, size)
      bucket is consulted first (O(1)); the linear scan remains only as the
      fallback for never-seen shapes.
    """

    def __init__(self, heap: Heap, stats: CGStats, by_type: bool = False,
                 tracer=None) -> None:
        self._heap = heap
        self._stats = stats
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._trace = self._tracer.enabled
        self.by_type = by_type
        self._dead: List[Handle] = []
        #: (class name, size) -> stack of dead handles (typed mode only).
        self._buckets: Dict[Tuple[str, int], List[Handle]] = defaultdict(list)
        self._parked_words = 0

    def set_tracer(self, tracer) -> None:
        """Replace the tracer and refresh the cached ``_trace`` flag."""
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._trace = self._tracer.enabled

    def __len__(self) -> int:
        return len(self._dead)

    @property
    def parked_words(self) -> int:
        """Storage currently held off the free list (for heap accounting)."""
        return self._parked_words

    def park(self, handles: List[Handle]) -> None:
        """Splice a popped frame's dead objects onto the list (O(1) per list)."""
        for handle in handles:
            self._parked_words += handle.size
            if self.by_type:
                self._buckets[(handle.cls.name, handle.size)].append(handle)
        self._dead.extend(handles)

    def take_fit(self, size: int, cls: Optional[JClass] = None) -> Optional[Handle]:
        """Find a dead object with at least ``size`` words of storage.

        In typed mode an exact (class, size) bucket hit costs one step and
        returns storage of precisely the right shape; otherwise (and always
        in plain mode) this is the thesis's linear first-fit.
        """
        if self.by_type and cls is not None:
            bucket = self._buckets.get((cls.name, size))
            if bucket:
                self._stats.recycle_search_steps += 1
                self._stats.recycle_typed_hits += 1
                handle = bucket.pop()
                self._remove_from_dead(handle)
                self._parked_words -= handle.size
                if self._trace:
                    self._tracer.emit(
                        "recycle_hit", size=size, donor=handle.id,
                        donor_size=handle.size, typed=True, steps=1,
                    )
                return handle
        dead = self._dead
        for i, handle in enumerate(dead):
            self._stats.recycle_search_steps += 1
            if handle.size >= size:
                dead[i] = dead[-1]
                dead.pop()
                self._parked_words -= handle.size
                if self.by_type:
                    self._remove_from_bucket(handle)
                if self._trace:
                    self._tracer.emit(
                        "recycle_hit", size=size, donor=handle.id,
                        donor_size=handle.size, typed=False, steps=i + 1,
                    )
                return handle
        self._stats.recycle_misses += 1
        if self._trace:
            self._tracer.emit("recycle_miss", size=size, scanned=len(dead))
        return None

    def flush(self) -> int:
        """Return all parked storage to the free list (pre-GC / pre-compaction).

        Returns the number of objects released.  The tracing collector calls
        this so sweep and compaction see a consistent free list.
        """
        released = len(self._dead)
        for handle in self._dead:
            self._heap.release_recycled(handle)
        self._dead.clear()
        self._buckets.clear()
        self._parked_words = 0
        return released

    # ------------------------------------------------------------------

    def census(self) -> Dict[str, int]:
        """Instantaneous parked-storage summary for crash dumps."""
        sizes = [handle.size for handle in self._dead]
        return {
            "parked_objects": len(self._dead),
            "parked_words": self._parked_words,
            "largest_parked": max(sizes) if sizes else 0,
            "typed_buckets": len(self._buckets),
        }

    def _remove_from_dead(self, handle: Handle) -> None:
        # Swap-remove by identity; typed hits are usually near the tail
        # (LIFO reuse keeps recently popped storage hot).
        dead = self._dead
        for i in range(len(dead) - 1, -1, -1):
            if dead[i] is handle:
                dead[i] = dead[-1]
                dead.pop()
                return

    def _remove_from_bucket(self, handle: Handle) -> None:
        bucket = self._buckets.get((handle.cls.name, handle.size))
        if bucket is None:
            return
        for i in range(len(bucket) - 1, -1, -1):
            if bucket[i] is handle:
                bucket[i] = bucket[-1]
                bucket.pop()
                return
