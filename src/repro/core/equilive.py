"""Equilive blocks: the partition of heap objects CG maintains.

An *equilive block* is one class of the equilive equivalence relation
(thesis section 2.2): a set of objects treated as having the same lifetime,
dependent on a single stack frame.  Blocks live on their dependent frame's
``cg_blocks`` list (section 3.1.2) and are merged by union-find when objects
contaminate each other.

Representation: :class:`EquiliveBlock` is the payload hanging off a
union-find root.  ``members`` uses lazy deletion — an object reclaimed out of
band (by the tracing collector) just stays in the list with its ``freed``
flag set and is skipped when the block is collected — so merging is O(1)
amortised and nothing is ever removed from the middle of a list, exactly like
the linked-list splices the paper's implementation uses.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..jvm.errors import IllegalStateError
from ..jvm.frames import Frame, StaticFrame
from ..jvm.heap import Handle
from .unionfind import DisjointSets


class EquiliveBlock:
    """One equilive set: members, dependent frame, and pin bookkeeping."""

    __slots__ = ("members", "frame", "static_cause", "ever_unioned")

    def __init__(self, handle: Handle, frame: Frame) -> None:
        self.members: List[Handle] = [handle]
        self.frame = frame
        #: None while collectible; otherwise the cause that pinned it static.
        self.static_cause: Optional[str] = None
        self.ever_unioned = False

    @property
    def is_static(self) -> bool:
        return self.static_cause is not None

    def live_members(self) -> Iterator[Handle]:
        for handle in self.members:
            if not handle.freed:
                yield handle

    def live_size(self) -> int:
        return sum(1 for _ in self.live_members())

    def __repr__(self) -> str:
        where = self.static_cause or f"frame#{self.frame.frame_id}"
        return f"<EquiliveBlock n={len(self.members)} on {where}>"


class EquiliveManager:
    """Union-find over handles plus block payloads and frame lists.

    This layer is policy-free: it knows how to create, look up, merge, move,
    and dismantle blocks, and it maintains the invariant that every block is
    on exactly one frame list (the static frame's list for pinned blocks).
    The :class:`~repro.core.collector.ContaminatedCollector` applies the
    paper's rules on top.
    """

    def __init__(self, static_frame: StaticFrame) -> None:
        self.ds = DisjointSets()
        self.static_frame = static_frame
        #: union-find root id -> block payload.
        self._blocks: Dict[int, EquiliveBlock] = {}

    # ------------------------------------------------------------------
    # Creation / lookup
    # ------------------------------------------------------------------

    def create(self, handle: Handle, frame: Frame) -> EquiliveBlock:
        """Make a fresh singleton block for a newly allocated object."""
        hid = handle.id
        # Inline of ds.ensure_singleton(): one call saved per allocation.
        ds = self.ds
        parent = ds._parent
        n = len(parent)
        if hid >= n:
            parent[n:] = range(n, hid + 1)
            ds._rank[n:] = [0] * (hid + 1 - n)
        else:
            parent[hid] = hid
            ds._rank[hid] = 0
        block = EquiliveBlock(handle, frame)
        self._blocks[hid] = block
        frame.cg_blocks[block] = None
        return block

    def block_of(self, handle: Handle) -> EquiliveBlock:
        ds = self.ds
        hid = handle.id
        # Inline of ``hid in ds``: this runs twice per store event.
        if not 0 <= hid < len(ds._parent):
            raise IllegalStateError(
                f"object #{hid} has no equilive block (never tracked)"
            )
        # Inline of ds.find() (same counter discipline): saves a call on
        # the path every contamination event takes twice.
        ds.finds += 1
        parent = ds._parent
        root = hid
        while parent[root] != root:
            root = parent[root]
        node = hid
        while parent[node] != root:
            parent[node], node = root, parent[node]
        try:
            return self._blocks[root]
        except KeyError:
            raise IllegalStateError(
                f"object #{hid} has no equilive block (freed or untracked)"
            ) from None

    def has_block(self, handle: Handle) -> bool:
        if handle.id not in self.ds:
            return False
        return self.ds.find(handle.id) in self._blocks

    def blocks(self) -> Iterator[EquiliveBlock]:
        return iter(self._blocks.values())

    def block_count(self) -> int:
        return len(self._blocks)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def merge(self, a: EquiliveBlock, b: EquiliveBlock,
              target_frame: Frame) -> EquiliveBlock:
        """Union two distinct blocks; the result depends on ``target_frame``.

        The caller computes ``target_frame`` per the paper's rules (older of
        the two dependent frames, or the static frame).  Member lists are
        spliced smaller-into-larger.
        """
        if a is b:
            raise IllegalStateError("merge of a block with itself")
        ds = self.ds
        parent = ds._parent
        # Inline of ds.find() on both representatives plus ds.union() — the
        # counter discipline is preserved exactly: two finds here, and union
        # itself charges two more (its root lookups, instant on roots).
        ds.finds += 2
        x = a.members[0].id
        ra = x
        while parent[ra] != ra:
            ra = parent[ra]
        while parent[x] != ra:
            parent[x], x = ra, parent[x]
        y = b.members[0].id
        rb = y
        while parent[rb] != rb:
            rb = parent[rb]
        while parent[y] != rb:
            parent[y], y = rb, parent[y]
        ds.finds += 2
        ds.unions += 1
        rank = ds._rank
        root, loser_root = ra, rb
        if rank[root] < rank[loser_root]:
            root, loser_root = loser_root, root
        parent[loser_root] = root
        if rank[root] == rank[loser_root]:
            rank[root] += 1
        winner, loser = (a, b) if root == ra else (b, a)
        # Splice the smaller member list into the larger one.
        if len(winner.members) < len(loser.members):
            winner.members, loser.members = loser.members, winner.members
        winner.members.extend(loser.members)
        winner.ever_unioned = True
        # Remove both from their frame lists, reattach winner to the target.
        del winner.frame.cg_blocks[winner]
        del loser.frame.cg_blocks[loser]
        del self._blocks[ra if root == rb else rb]
        self._blocks[root] = winner
        # Static causes survive a merge: if either side was pinned the merged
        # block is pinned, preferring the side that was already static.
        if winner.static_cause is None and loser.static_cause is not None:
            winner.static_cause = loser.static_cause
        winner.frame = target_frame
        target_frame.cg_blocks[winner] = None
        return winner

    def move_to_frame(self, block: EquiliveBlock, frame: Frame) -> None:
        """Re-hang ``block`` on a different frame's list (areturn, pinning)."""
        if block.frame is frame:
            return
        del block.frame.cg_blocks[block]
        block.frame = frame
        frame.cg_blocks[block] = None

    def pin_static(self, block: EquiliveBlock, cause: str) -> None:
        if block.static_cause is None:
            block.static_cause = cause
        self.move_to_frame(block, self.static_frame)

    def detach(self, block: EquiliveBlock) -> None:
        """Remove a block entirely (its objects are being collected)."""
        del block.frame.cg_blocks[block]
        root = self.ds.find(block.members[0].id)
        del self._blocks[root]

    def forget_members(self, block: EquiliveBlock) -> None:
        """Reset union-find state for all members of a detached block.

        Safe because the whole set is dismantled at once (see
        :meth:`repro.core.unionfind.DisjointSets.reset`).
        """
        for handle in block.members:
            self.ds.reset(handle.id)

    def dismantle_all(self) -> List[EquiliveBlock]:
        """Tear down every block (start of a section 3.6 reset pass)."""
        blocks = list(self._blocks.values())
        for block in blocks:
            del block.frame.cg_blocks[block]
            self.forget_members(block)
        self._blocks.clear()
        return blocks

    # ------------------------------------------------------------------
    # Validation (used by tests; invariant 4 of DESIGN.md)
    # ------------------------------------------------------------------

    def check_invariants(self, frames: List[Frame]) -> None:
        seen: Dict[EquiliveBlock, Frame] = {}
        for frame in frames:
            for block in frame.cg_blocks:
                if block in seen:
                    raise IllegalStateError(f"{block!r} on two frame lists")
                seen[block] = frame
                if block.frame is not frame:
                    raise IllegalStateError(f"{block!r} frame pointer stale")
        registered = set(self._blocks.values())
        if registered != set(seen):
            raise IllegalStateError(
                "block registry and frame lists disagree: "
                f"{len(registered)} registered vs {len(seen)} listed"
            )
        for root, block in self._blocks.items():
            for handle in block.live_members():
                if self.ds.find(handle.id) != root:
                    raise IllegalStateError(
                        f"member #{handle.id} not in its block's set"
                    )
