"""Core of the reproduction: the contaminated-garbage collector.

See :mod:`repro.core.collector` for the algorithm and DESIGN.md for the map
from thesis sections to modules.
"""

from .collector import ContaminatedCollector, ResetSnapshot
from .equilive import EquiliveBlock, EquiliveManager
from .policy import CGPolicy
from .recycle import RecycleList
from .stats import (
    CAUSE_INTERN,
    CAUSE_MERGED,
    CAUSE_NATIVE,
    CAUSE_PUTSTATIC,
    CAUSE_ROOTLESS,
    CAUSE_SHARED,
    CGStats,
)
from .unionfind import DisjointSets

__all__ = [
    "CAUSE_INTERN",
    "CAUSE_MERGED",
    "CAUSE_NATIVE",
    "CAUSE_PUTSTATIC",
    "CAUSE_ROOTLESS",
    "CAUSE_SHARED",
    "CGPolicy",
    "CGStats",
    "ContaminatedCollector",
    "DisjointSets",
    "EquiliveBlock",
    "EquiliveManager",
    "RecycleList",
    "ResetSnapshot",
]
