"""The no-op collector: never reclaims anything.

Section 4.5 isolates CG's maintenance overhead by running the base system
"with the asynchronous GC disabled as well as giving it plenty of storage".
Configuring the runtime with this collector (and a big heap) reproduces that
setup: any allocation failure becomes an immediate OutOfMemoryError, so a
run that completes performed zero tracing work.
"""

from __future__ import annotations

from .base import GCWork


class NullCollector:
    """Never collects; used to measure mutator-side overheads only."""

    name = "none"

    def __init__(self, runtime=None) -> None:
        self.runtime = runtime
        self.work = GCWork()

    def collect(self) -> int:
        self.work.cycles += 1
        return 0
