"""Common interface and counters for tracing collectors.

CG is designed to "operate in concert with a traditional collector,
decreasing the frequency with which the traditional collector must be
called" (thesis chapter 1).  The tracing collectors here are that
traditional side: they run when allocation fails (or on the periodic
trigger used by the resetting experiment, Fig. 4.11), they enumerate roots
from thread stacks, statics, the intern table, and native pins, and they
notify the CG collector of anything they reclaim so its lazy structures stay
consistent.

``GCWork`` counters are the cost-model inputs: the paper attributes CG's
benefit to *avoided marking* ("the marking phase pollutes the cache"), so
mark visits are the headline quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Protocol, TYPE_CHECKING

from ..jvm.heap import Handle

if TYPE_CHECKING:  # pragma: no cover
    from ..jvm.runtime import Runtime


@dataclass
class GCWork:
    """Work performed by a tracing collector over a run."""

    cycles: int = 0
    minor_cycles: int = 0
    mark_visits: int = 0
    sweep_visits: int = 0
    objects_collected: int = 0
    words_collected: int = 0
    compactions: int = 0
    objects_moved: int = 0
    #: Write-barrier events recorded (generational / train only).
    barrier_hits: int = 0


class TracingCollector(Protocol):
    """What the runtime requires of a traditional collector."""

    work: GCWork

    def collect(self) -> int:
        """Run a full collection; return the number of objects reclaimed."""
        ...


def mark_from(roots: Iterable[Handle], work: GCWork) -> List[Handle]:
    """Standard iterative marking; returns the list of marked handles.

    Callers must clear ``mark`` flags afterwards (sweep does this for
    survivors).  Freed handles are skipped defensively — roots are scanned
    from live frames, so they should never appear, and the property tests
    assert they don't.
    """
    marked: List[Handle] = []
    stack = [h for h in roots if not h.freed]
    for handle in stack:
        handle.mark = True
    # De-duplicate root entries that were marked twice before scanning.
    stack = list({id(h): h for h in stack}.values())
    marked.extend(stack)
    work.mark_visits += len(stack)
    while stack:
        handle = stack.pop()
        for ref in handle.references():
            if not ref.mark and not ref.freed:
                ref.mark = True
                marked.append(ref)
                stack.append(ref)
                work.mark_visits += 1
    return marked
