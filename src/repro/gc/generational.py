"""A simple two-generation collector (background comparator).

The thesis's introduction frames CG against generational collection:
"recently created objects are more likely to die than older objects", so a
generational collector concentrates marking on the young generation.  This
implementation is the textbook scheme the introduction describes:

* new objects are *young*; a **minor** cycle marks only from roots plus the
  remembered set and sweeps unmarked young objects; survivors are promoted;
* a **major** cycle is a full mark-sweep (delegating to the same sweep);
* a write barrier records old-to-young stores into the remembered set —
  exactly the bookkeeping the thesis notes that "all generational
  approaches" require and CG avoids.

It exists so the benchmark harness can quantify, on the same workloads, the
marking work CG avoids relative to both MSA and a generational baseline.
"""

from __future__ import annotations

from typing import Dict, Set, TYPE_CHECKING

from ..jvm.heap import Handle
from .base import GCWork, mark_from

if TYPE_CHECKING:  # pragma: no cover
    from ..jvm.runtime import Runtime


class GenerationalCollector:
    """Two generations, remembered-set write barrier, promote-on-survive."""

    name = "generational"

    def __init__(self, runtime: "Runtime", promote_after: int = 1) -> None:
        self.runtime = runtime
        self.work = GCWork()
        self.promote_after = max(1, promote_after)
        #: handle id -> minor cycles survived (absence means old generation).
        self._young: Dict[int, int] = {}
        #: old objects that may reference young ones (remembered set).
        self._remembered: Set[int] = set()
        self._remembered_handles: Dict[int, Handle] = {}

    # ------------------------------------------------------------------
    # Runtime hooks
    # ------------------------------------------------------------------

    def note_allocation(self, handle: Handle) -> None:
        self._young[handle.id] = 0

    def write_barrier(self, container: Handle, value: Handle) -> None:
        """Record an old-to-young store."""
        if container.id not in self._young and value.id in self._young:
            self.work.barrier_hits += 1
            if container.id not in self._remembered:
                self._remembered.add(container.id)
                self._remembered_handles[container.id] = container

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self) -> int:
        """Minor cycle first; escalate to a major cycle if it freed little."""
        freed = self.collect_minor()
        heap = self.runtime.heap
        if heap.free_list.largest_block * 4 < heap.capacity // 8:
            freed += self.collect_major()
        return freed

    def collect_minor(self) -> int:
        self.work.minor_cycles += 1
        runtime = self.runtime
        roots = list(runtime.iter_roots())
        roots.extend(
            h for h in self._remembered_handles.values() if not h.freed
        )
        marked = mark_from(roots, self.work)
        reclaimed = 0
        survivors: Dict[int, int] = {}
        for handle in runtime.heap.live_handles():
            age = self._young.get(handle.id)
            if age is None:
                continue  # old generation: untouched by a minor cycle
            self.work.sweep_visits += 1
            if handle.mark:
                if age + 1 >= self.promote_after:
                    pass  # promoted: drops out of the young table
                else:
                    survivors[handle.id] = age + 1
            else:
                if runtime.collector is not None:
                    runtime.collector.on_collected_by_msa(handle)
                self.work.objects_collected += 1
                self.work.words_collected += handle.size
                runtime.heap.free(handle, "generational-minor")
                reclaimed += 1
        self._young = survivors
        for handle in marked:
            handle.mark = False
        self._prune_remembered()
        runtime.heap.free_list.reset_scan()
        return reclaimed

    def collect_major(self) -> int:
        self.work.cycles += 1
        runtime = self.runtime
        mark_from(runtime.iter_roots(), self.work)
        reclaimed = 0
        for handle in runtime.heap.live_handles():
            self.work.sweep_visits += 1
            if handle.mark:
                handle.mark = False
                continue
            if runtime.collector is not None:
                runtime.collector.on_collected_by_msa(handle)
            self.work.objects_collected += 1
            self.work.words_collected += handle.size
            runtime.heap.free(handle, "generational-major")
            reclaimed += 1
            self._young.pop(handle.id, None)
        self._remembered.clear()
        self._remembered_handles.clear()
        runtime.heap.free_list.reset_scan()
        return reclaimed

    def _prune_remembered(self) -> None:
        dead = [hid for hid, h in self._remembered_handles.items() if h.freed]
        for hid in dead:
            self._remembered.discard(hid)
            del self._remembered_handles[hid]
