"""A simplified train-algorithm collector (thesis section 5.1 comparator).

The thesis relates CG to the train algorithm: "Each stack frame is
associated with a train.  When the stack frame is popped, all cars of the
frame's train are known to be free...  Instead of moving individual objects,
our approach essentially joins two trains."  To let the harness compare the
two incremental schemes on identical workloads, this module implements the
classic train discipline in reduced form:

* the mature space is ordered into *trains* of fixed-capacity *cars*;
* each increment collects the lowest car of the lowest train: objects in it
  that are referenced from outside the car are evacuated to the train of a
  referencer (clustering related objects, which is the algorithm's point);
  unreferenced remainder is reclaimed;
* when the lowest train as a whole has no external references, the entire
  train is reclaimed at once — this is how the algorithm collects cyclic
  garbage that per-car evacuation would chase forever.

Remembered sets are approximated by a scan (acceptable at simulator scale;
the per-reference bookkeeping cost is modelled by ``barrier_hits``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, TYPE_CHECKING

from ..jvm.heap import Handle
from .base import GCWork, mark_from

if TYPE_CHECKING:  # pragma: no cover
    from ..jvm.runtime import Runtime


class _Car:
    __slots__ = ("train_id", "car_id", "members")

    def __init__(self, train_id: int, car_id: int) -> None:
        self.train_id = train_id
        self.car_id = car_id
        self.members: Dict[int, Handle] = {}


class TrainCollector:
    """Reduced train algorithm over the shared heap."""

    name = "train"

    def __init__(self, runtime: "Runtime", car_capacity: int = 64) -> None:
        self.runtime = runtime
        self.work = GCWork()
        self.car_capacity = max(1, car_capacity)
        self._cars: "OrderedDict[int, _Car]" = OrderedDict()
        self._car_of: Dict[int, int] = {}  # handle id -> car key
        self._next_train = 1
        self._next_car = 1
        self._open_car: Optional[_Car] = None

    # ------------------------------------------------------------------
    # Runtime hooks
    # ------------------------------------------------------------------

    def note_allocation(self, handle: Handle) -> None:
        car = self._open_car
        if car is None or len(car.members) >= self.car_capacity:
            car = self._new_car(self._next_train)
            self._open_car = car
        car.members[handle.id] = handle
        self._car_of[handle.id] = car.car_id

    def write_barrier(self, container: Handle, value: Handle) -> None:
        self.work.barrier_hits += 1

    # ------------------------------------------------------------------

    def _new_car(self, train_id: int) -> _Car:
        car = _Car(train_id, self._next_car)
        self._next_car += 1
        self._cars[car.car_id] = car
        return car

    def _drop_dead_members(self) -> None:
        for car in list(self._cars.values()):
            dead = [hid for hid, h in car.members.items() if h.freed]
            for hid in dead:
                del car.members[hid]
                self._car_of.pop(hid, None)
            if not car.members and car is not self._open_car:
                del self._cars[car.car_id]

    # ------------------------------------------------------------------
    # Collection increments
    # ------------------------------------------------------------------

    def collect(self) -> int:
        """Run increments until a full rotation of current cars completes."""
        self._drop_dead_members()
        rotations = len(self._cars) + 1
        freed = 0
        for _ in range(rotations):
            freed += self.collect_increment()
            heap = self.runtime.heap
            if heap.free_list.largest_block >= heap.capacity // 16:
                break
        self.runtime.heap.free_list.reset_scan()
        return freed

    def collect_increment(self) -> int:
        """Collect the lowest car (and the lowest train when it is dead)."""
        self.work.cycles += 1
        self._drop_dead_members()
        if not self._cars:
            return 0
        lowest = next(iter(self._cars.values()))
        marked = mark_from(self.runtime.iter_roots(), self.work)
        lowest_train = lowest.train_id
        train_reachable = any(
            h.mark
            for car in self._cars.values()
            if car.train_id == lowest_train
            for h in car.members.values()
        )
        freed = 0
        if not train_reachable:
            # Whole lowest train is garbage (this is what reclaims cycles).
            for car in [c for c in self._cars.values() if c.train_id == lowest_train]:
                freed += self._reclaim_car(car)
        else:
            freed += self._evacuate_and_reclaim(lowest, marked)
        for handle in marked:
            handle.mark = False
        return freed

    def _reclaim_car(self, car: _Car) -> int:
        runtime = self.runtime
        freed = 0
        for handle in list(car.members.values()):
            if handle.mark:
                continue  # directly rooted; move to a fresh train instead
            if runtime.collector is not None:
                runtime.collector.on_collected_by_msa(handle)
            self.work.objects_collected += 1
            self.work.words_collected += handle.size
            runtime.heap.free(handle, "train")
            freed += 1
        survivors = [h for h in car.members.values() if not h.freed]
        del self._cars[car.car_id]
        if car is self._open_car:
            self._open_car = None
        for handle in survivors:
            del self._car_of[handle.id]
            self._append_to_train(handle, self._next_train + 1)
        return freed

    def _evacuate_and_reclaim(self, car: _Car, marked: List[Handle]) -> int:
        """Move externally referenced members out, reclaim the rest."""
        external_targets: Set[int] = set()
        referencer_train: Dict[int, int] = {}
        car_ids = set(car.members)
        for handle in marked:
            if handle.freed:
                continue
            src_car = self._car_of.get(handle.id)
            src_train = (
                self._cars[src_car].train_id if src_car in self._cars else None
            )
            for ref in handle.references():
                if ref.id in car_ids and handle.id not in car_ids:
                    external_targets.add(ref.id)
                    if src_train is not None:
                        referencer_train.setdefault(ref.id, src_train)
        # Root-referenced members also survive.
        for handle in car.members.values():
            if handle.mark:
                external_targets.add(handle.id)
        freed = 0
        runtime = self.runtime
        for handle in list(car.members.values()):
            if handle.id in external_targets:
                continue
            if handle.mark:
                continue
            if runtime.collector is not None:
                runtime.collector.on_collected_by_msa(handle)
            self.work.objects_collected += 1
            self.work.words_collected += handle.size
            runtime.heap.free(handle, "train")
            freed += 1
        survivors = [h for h in car.members.values() if not h.freed]
        del self._cars[car.car_id]
        if car is self._open_car:
            self._open_car = None
        for handle in survivors:
            del self._car_of[handle.id]
            target = referencer_train.get(handle.id, self._next_train + 1)
            self._append_to_train(handle, target)
            self.work.objects_moved += 1
        return freed

    def _append_to_train(self, handle: Handle, train_id: int) -> None:
        if train_id > self._next_train:
            self._next_train = train_id
        tail: Optional[_Car] = None
        for car in self._cars.values():
            if car.train_id == train_id and len(car.members) < self.car_capacity:
                tail = car
        if tail is None:
            tail = self._new_car(train_id)
        tail.members[handle.id] = handle
        self._car_of[handle.id] = tail.car_id
