"""Mark-sweep collector ("MSA" in the thesis) with the section 3.6 reset pass.

This is the base JDK 1.1.8 collector the paper compares against: mark every
object reachable from the roots of computation, sweep the rest, optionally
compact.  Two CG integrations live here:

* **Notification** — every object the sweep reclaims while CG still thought
  it live is reported via ``on_collected_by_msa`` (lazy removal from its
  equilive block; Fig. 4.11's "collected by MSA" column).

* **Resetting** (section 3.6) — when the CG policy enables it, the mark
  phase is replaced by a frame-ordered traversal that *rebuilds* the
  equilive partition from true reachability: all blocks are dismantled,
  statics are processed first (frame 0), then each thread's frames oldest to
  youngest; the first root that reaches an object determines its new
  dependent frame, and every reference edge re-unions the endpoint blocks.
  Because statics and older frames are processed first, each object lands on
  the oldest frame that actually reaches it — undoing the "contamination
  cannot be undone" approximation for the price of one traversal the
  traditional collector was doing anyway.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List

from ..jvm.heap import Handle
from .base import GCWork, mark_from

if TYPE_CHECKING:  # pragma: no cover
    from ..jvm.runtime import Runtime


class MarkSweepCollector:
    """Precise mark-sweep over the runtime's roots."""

    name = "marksweep"

    def __init__(self, runtime: "Runtime", compaction: bool = False) -> None:
        self.runtime = runtime
        self.compaction = compaction
        self.work = GCWork()

    # ------------------------------------------------------------------

    def collect(self) -> int:
        """One full cycle: (reset-)mark, sweep, optionally compact."""
        runtime = self.runtime
        self.work.cycles += 1
        cg = runtime.collector
        if cg is not None and cg.policy.recycling:
            # Parked recycle storage must rejoin the free list so sweep and
            # compaction see a consistent heap.
            cg.recycle.flush()
        if cg is not None and cg.policy.resetting:
            self._mark_with_reset()
        else:
            mark_from(runtime.iter_roots(), self.work)
        reclaimed = self._sweep()
        if self.compaction:
            self.work.compactions += 1
            self.work.objects_moved += runtime.heap.compact()
        runtime.heap.free_list.reset_scan()
        return reclaimed

    # ------------------------------------------------------------------

    def backstop_census(self) -> Dict[str, int]:
        """Measure what CG is retaining, without collecting anything.

        Marks from the roots into a *local* ``GCWork`` (so the run's real
        counters don't drift), counts live-but-unreachable objects — the
        conservatism the Karkare et al. line of work quantifies — then
        clears every mark.  Used by crash dumps only.
        """
        work = GCWork()
        marked = mark_from(self.runtime.iter_roots(), work)
        live = unreachable_objects = unreachable_words = 0
        for handle in self.runtime.heap.live_handles():
            if handle.freed:
                continue
            live += 1
            if not handle.mark:
                unreachable_objects += 1
                unreachable_words += handle.size
        for handle in marked:
            handle.mark = False
        return {
            "live_objects": live,
            "unreachable_objects": unreachable_objects,
            "unreachable_words": unreachable_words,
            "mark_visits": work.mark_visits,
        }

    def _sweep(self) -> int:
        runtime = self.runtime
        cg = runtime.collector
        reclaimed = 0
        for handle in runtime.heap.live_handles():
            self.work.sweep_visits += 1
            if handle.mark:
                handle.mark = False
                continue
            if cg is not None:
                cg.on_collected_by_msa(handle)
            self.work.objects_collected += 1
            self.work.words_collected += handle.size
            reclaimed += 1
            runtime.heap.free(handle, "mark-sweep")
        return reclaimed

    # ------------------------------------------------------------------
    # Section 3.6: rebuild CG structures during marking
    # ------------------------------------------------------------------

    def _mark_with_reset(self) -> None:
        runtime = self.runtime
        cg = runtime.collector
        assert cg is not None
        snapshot = cg.begin_reset()
        # Statics, interned strings, and native pins anchor frame 0 and are
        # processed first so static reachability dominates.
        static_frame = runtime.static_frame
        for root in runtime.iter_static_roots():
            self._assign_and_traverse(root, static_frame)
        # Then every thread's frames, oldest first: the first (oldest) frame
        # that reaches an object becomes its rebuilt dependent frame.
        for thread in runtime.threads():
            for frame in thread.stack:
                for root in frame.root_references():
                    self._assign_and_traverse(root, frame)
        cg.end_reset(snapshot)

    def _assign_and_traverse(self, root: Handle, frame) -> None:
        cg = self.runtime.collector
        assert cg is not None
        if root.freed:
            return
        stack: List[Handle] = []
        if not root.mark:
            root.mark = True
            self.work.mark_visits += 1
            if not cg.equilive.has_block(root):
                cg.reset_assign(root, frame)
            stack.append(root)
        elif cg.equilive.has_block(root):
            # Already traversed from an earlier root.  If that root belonged
            # to a different thread's stack, the object is shared between
            # threads and must be pinned (section 3.3); otherwise the older
            # assignment dominates and there is nothing new to learn.
            block = cg.equilive.block_of(root)
            if (
                not block.is_static
                and not frame.is_static_frame
                and block.frame.thread_id != frame.thread_id
            ):
                from ..core.stats import CAUSE_SHARED

                cg.pin_static(root, CAUSE_SHARED)
            return
        while stack:
            handle = stack.pop()
            for ref in handle.references():
                if ref.freed:
                    continue
                if not ref.mark:
                    ref.mark = True
                    self.work.mark_visits += 1
                    if not cg.equilive.has_block(ref):
                        cg.reset_assign(ref, frame)
                    stack.append(ref)
                # Re-union along every edge: this is what rebuilds the
                # (symmetric) contamination relation from live references.
                cg.reset_union(handle, ref)
