"""Tracing ("traditional") collectors CG runs in concert with."""

from .base import GCWork, mark_from
from .generational import GenerationalCollector
from .marksweep import MarkSweepCollector
from .nullgc import NullCollector
from .train import TrainCollector

__all__ = [
    "GCWork",
    "GenerationalCollector",
    "MarkSweepCollector",
    "NullCollector",
    "TrainCollector",
    "mark_from",
]
