"""``python -m repro serve`` — the worker pool as a long-running service.

The final layer of the pool refactor: a Unix-socket front door that turns
the harness from a batch script into a resident service.  A server owns
one :class:`~repro.harness.pool.WorkerPool` and accepts line-delimited
JSON over ``SOCK_STREAM`` connections; clients submit serialized
:class:`~repro.api.RunRequest`\\ s and receive serialized
:class:`~repro.api.RunResult`\\ s as each completes — responses stream
back in *completion* order, tagged with the caller's ``id``, so one
connection can keep many cells in flight.

Wire protocol (one JSON object per line, both directions)::

    -> {"op": "run", "id": "cell-1", "request": {"workload": "jess", ...},
        "no_cache": false}
    <- {"id": "cell-1", "ok": true, "cached": false, "pid": 12345,
        "wall_seconds": 0.41, "result": {...}}          # result_to_dict
    <- {"id": "cell-2", "ok": false,
        "error": {"site": "harness.worker", "kind": "crash", ...}}

    -> {"op": "ping"}            <- {"ok": true, "op": "ping", "pid": ...}
    -> {"op": "stats"}           <- {"ok": true, "op": "stats", "stats": {...}}
    -> {"op": "shutdown"}        <- {"ok": true, "op": "shutdown"}

Semantics worth noting:

* ``run`` requests are keyed through the same cell-key digest as the
  figure cache, so the serve path, ``prefetch``, and ``bench`` all share
  one on-disk result cache, and two clients asking for the same cell
  single-flight onto one worker run (``no_cache: true`` opts out).
* Fault tolerance is the pool's: a worker crash mid-request is retried
  and, past its retry budget, comes back as a structured ``ok: false``
  error — the connection (and every other in-flight request) survives.
* The pool publishes ``pool-<pid>.json`` and workers spool heartbeats to
  the same directory, so ``python -m repro inspect --fleet`` renders the
  live service.

Failure responses never close the connection; only EOF from the client,
a malformed line (unparseable JSON gets an ``ok: false`` reply, then the
line is dropped), or server shutdown do.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import socket
import sys
import threading
from typing import Dict, Iterable, List, Optional, Sequence

from ..faults import FaultPlan
from .pool import WorkerPool

#: Sentinel pushed onto a connection outbox to stop its writer thread.
_CLOSE = object()


def request_key(request: Dict):
    """The cell key for a serialized run request (shared-cache identity).

    Delegates to :func:`repro.harness.figures.cell_key` so a cell served
    over the socket digests to the *same* on-disk cache entry the figure
    prefetcher and the sequential generators use.
    """
    from .figures import cell_key

    plan = (FaultPlan.from_dict(request["faults"])
            if request.get("faults") else None)
    workload = request.get("workload", "?")
    params = dict(request.get("params") or {})
    if isinstance(workload, dict):  # a WorkloadSpec wire form
        params = {**(workload.get("params") or {}), **params}
        workload = workload.get("name", "?")
    if request.get("requests") is not None:
        params["requests"] = request["requests"]
    if request.get("max_ops") is not None:
        params["max_ops"] = request["max_ops"]
    return cell_key(
        workload,
        request.get("size", 1),
        request.get("system", "cg"),
        request.get("gc_period_ops"),
        request.get("heap_words"),
        plan=plan,
        count_opcodes=request.get("count_opcodes", False),
        params=params or None,
    )


class ServeServer:
    """One listening Unix socket in front of one :class:`WorkerPool`."""

    def __init__(self, socket_path: str, pool: WorkerPool, *,
                 fault_plan: Optional[FaultPlan] = None,
                 heartbeat_every: Optional[int] = None) -> None:
        self.socket_path = str(socket_path)
        self.pool = pool
        self.fault_plan = fault_plan
        self.heartbeat_every = heartbeat_every
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self.socket_path)
        self._listener.listen(16)

    # -- lifecycle -------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown` (or socket teardown)."""
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed by shutdown()
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-serve-conn", daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        for thread in self._threads:
            thread.join(timeout=1.0)

    def serve_in_background(self) -> threading.Thread:
        """``serve_forever`` on a daemon thread (tests, embedded servers)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-accept", daemon=True,
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop accepting, close the socket, tear the pool down.  Idempotent."""
        if self._stop.is_set():
            return
        self._stop.set()
        try:
            self._listener.close()
        except OSError:
            pass
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        self.pool.shutdown()

    # -- per-connection plumbing ----------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        outbox: "queue.Queue" = queue.Queue()
        writer = threading.Thread(
            target=self._drain_outbox, args=(conn, outbox),
            name="repro-serve-writer", daemon=True,
        )
        writer.start()
        pending = {"n": 0}
        lock = threading.Lock()
        try:
            reader = conn.makefile("r", encoding="utf-8")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    message = json.loads(line)
                except ValueError:
                    outbox.put({"ok": False, "error": {
                        "kind": "bad-request",
                        "message": "unparseable JSON line",
                    }})
                    continue
                if not self._handle(message, outbox, pending, lock):
                    break
            # EOF from the client: flush whatever is still in flight
            # before closing (the writer drains the outbox in order).
            with lock:
                drained = pending["n"] == 0
            if not drained:
                self._await_pending(pending, lock)
        except OSError:
            pass
        finally:
            outbox.put(_CLOSE)
            writer.join(timeout=5.0)
            try:
                conn.close()
            except OSError:
                pass

    def _await_pending(self, pending: Dict, lock: threading.Lock,
                       timeout: float = 60.0) -> None:
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with lock:
                if pending["n"] == 0:
                    return
            time.sleep(0.02)

    def _handle(self, message: Dict, outbox: "queue.Queue",
                pending: Dict, lock: threading.Lock) -> bool:
        """Process one request line; False ends the connection loop."""
        op = message.get("op", "run")
        if op == "ping":
            outbox.put({"ok": True, "op": "ping", "pid": os.getpid()})
            return True
        if op == "stats":
            outbox.put({"ok": True, "op": "stats",
                        "stats": self.pool.stats()})
            return True
        if op == "shutdown":
            outbox.put({"ok": True, "op": "shutdown"})
            # Close the listener from a helper thread so this connection
            # can still flush its acknowledgement.
            threading.Thread(target=self.shutdown, daemon=True).start()
            return False
        if op != "run":
            outbox.put({"id": message.get("id"), "ok": False, "error": {
                "kind": "bad-request", "message": f"unknown op {op!r}",
            }})
            return True
        request = message.get("request")
        request_id = message.get("id")
        if not isinstance(request, dict) or "workload" not in request:
            outbox.put({"id": request_id, "ok": False, "error": {
                "kind": "bad-request",
                "message": "run needs a request object with a workload",
            }})
            return True
        if self.heartbeat_every and not request.get("heartbeat_every"):
            # Server-armed heartbeats: cells spool live snapshots next to
            # the pool status file (observational, never part of the key).
            request = dict(request, heartbeat_every=self.heartbeat_every,
                           heartbeat_spool=(str(self.pool.spool)
                                            if self.pool.spool else None))
        try:
            key = (None if message.get("no_cache")
                   else request_key(request))
            plan = (FaultPlan.from_dict(request["faults"])
                    if request.get("faults") else self.fault_plan)
            job = self.pool.submit(request, key=key, plan=plan)
        except (ValueError, KeyError, TypeError) as exc:
            outbox.put({"id": request_id, "ok": False, "error": {
                "kind": "bad-request", "message": str(exc),
            }})
            return True
        with lock:
            pending["n"] += 1

        def deliver(finished_job) -> None:
            if finished_job.status == "done":
                outbox.put({
                    "id": request_id, "ok": True,
                    "cached": finished_job.cached,
                    "pid": finished_job.pid,
                    "wall_seconds": finished_job.wall_seconds,
                    "result": finished_job.result_dict,
                })
            else:
                report = finished_job.report
                outbox.put({
                    "id": request_id, "ok": False,
                    "error": (report.to_dict() if report is not None else
                              {"kind": "crash",
                               "message": "job lost by the pool"}),
                })
            with lock:
                pending["n"] -= 1

        job.add_done_callback(deliver)
        return True

    @staticmethod
    def _drain_outbox(conn: socket.socket, outbox: "queue.Queue") -> None:
        while True:
            item = outbox.get()
            if item is _CLOSE:
                return
            try:
                conn.sendall((json.dumps(item) + "\n").encode("utf-8"))
            except OSError:
                return  # client went away; keep draining to _CLOSE


# ---------------------------------------------------------------------------
# Client helpers (used by examples/serve_client.py, tests, and CI)
# ---------------------------------------------------------------------------

def call(socket_path: str, message: Dict, timeout: float = 30.0) -> Dict:
    """One request, one response (``ping``/``stats``/``shutdown``)."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(str(socket_path))
        sock.sendall((json.dumps(message) + "\n").encode("utf-8"))
        reader = sock.makefile("r", encoding="utf-8")
        line = reader.readline()
    if not line:
        raise ConnectionError("server closed the connection without replying")
    return json.loads(line)


def submit_requests(socket_path: str, requests: Iterable[Dict],
                    timeout: float = 120.0, *,
                    no_cache: bool = False) -> List[Dict]:
    """Stream a batch of run requests over one connection.

    Returns one response per request, re-ordered to match the input
    (the server streams them back in completion order).  Raises on a
    dropped connection or on a response for an unknown id — never on an
    ``ok: false`` response, which is the caller's to interpret.
    """
    requests = list(requests)
    ids = [f"req-{i}" for i in range(len(requests))]
    responses: Dict[str, Dict] = {}
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(str(socket_path))
        payload = "".join(
            json.dumps({"op": "run", "id": rid, "request": request,
                        "no_cache": no_cache}) + "\n"
            for rid, request in zip(ids, requests)
        )
        sock.sendall(payload.encode("utf-8"))
        reader = sock.makefile("r", encoding="utf-8")
        while len(responses) < len(requests):
            line = reader.readline()
            if not line:
                raise ConnectionError(
                    f"server closed with {len(requests) - len(responses)} "
                    f"responses outstanding"
                )
            response = json.loads(line)
            rid = response.get("id")
            if rid not in set(ids) - set(responses):
                raise ValueError(f"response for unexpected id {rid!r}")
            responses[rid] = response
    return [responses[rid] for rid in ids]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve run requests over a Unix socket from a warm "
                    "worker pool.",
    )
    parser.add_argument(
        "--socket", required=True, metavar="PATH",
        help="Unix socket path to listen on (created; replaced if stale)",
    )
    parser.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="worker processes in the pool (default 2)",
    )
    parser.add_argument(
        "--result-cache", metavar="DIR",
        help="shared on-disk result cache (also $REPRO_RESULT_CACHE)",
    )
    parser.add_argument(
        "--spool", metavar="DIR",
        help="heartbeat/pool-status spool for `repro inspect --fleet`",
    )
    parser.add_argument(
        "--heartbeat-every", type=int, metavar="OPS",
        help="arm worker heartbeats every OPS mutator operations",
    )
    parser.add_argument(
        "--cell-timeout", type=float, metavar="SECONDS",
        help="per-attempt timeout before a worker is killed and replaced",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="attempts per cell beyond the first (default 2)",
    )
    parser.add_argument(
        "--faults", metavar="PLAN",
        help="ambient fault plan (see repro.faults.FaultPlan.parse)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.heartbeat_every is not None and args.heartbeat_every < 1:
        parser.error("--heartbeat-every must be >= 1")
    fault_plan = None
    if args.faults:
        try:
            fault_plan = FaultPlan.parse(args.faults)
        except ValueError as exc:
            parser.error(str(exc))

    cache_dir = args.result_cache or os.environ.get("REPRO_RESULT_CACHE")
    pool = WorkerPool(
        args.jobs, cache_dir=cache_dir, spool=args.spool,
        retries=args.retries, cell_timeout=args.cell_timeout,
    )
    server = ServeServer(args.socket, pool, fault_plan=fault_plan,
                         heartbeat_every=args.heartbeat_every)
    print(f"[serve] pid={os.getpid()} listening on {args.socket} "
          f"({args.jobs} workers)", file=sys.stderr, flush=True)
    warm = pool.warmup()
    print(f"[serve] workers warm: {sorted(warm.values())}",
          file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    print("[serve] shut down", file=sys.stderr, flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
