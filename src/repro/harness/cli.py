"""Command-line entry point: print any figure/table from the paper.

Usage::

    python -m repro.harness.cli 4.1 4.5        # specific figures
    python -m repro.harness.cli --all           # everything (slow: large runs)
    python -m repro.harness.cli --small         # everything size-1 only
    python -m repro.harness.cli --list
"""

from __future__ import annotations

import argparse
import sys

from .figures import ALL_FIGURES

SMALL_FIGURES = ["4.1", "4.2", "4.5", "4.6", "4.7", "4.11", "4.12", "4.13",
                 "A.1", "A.2"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate tables/figures from 'Contaminated Garbage Collection'.",
    )
    parser.add_argument("figures", nargs="*", help="figure ids, e.g. 4.1 A.2")
    parser.add_argument("--all", action="store_true", help="every figure")
    parser.add_argument(
        "--small", action="store_true", help="all size-1 figures (fast)"
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    args = parser.parse_args(argv)

    if args.list:
        for fig_id in ALL_FIGURES:
            print(fig_id)
        return 0

    wanted = list(args.figures)
    if args.all:
        wanted = list(ALL_FIGURES)
    elif args.small and not wanted:
        wanted = list(SMALL_FIGURES)
    if not wanted:
        parser.print_help()
        return 2

    unknown = [f for f in wanted if f not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure id(s): {unknown}; use --list", file=sys.stderr)
        return 2

    for fig_id in wanted:
        print(ALL_FIGURES[fig_id]())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
