"""Command-line entry point: print any figure/table from the paper.

Usage::

    python -m repro.harness.cli 4.1 4.5        # specific figures
    python -m repro.harness.cli --all           # everything (slow: large runs)
    python -m repro.harness.cli --small         # everything size-1 only
    python -m repro.harness.cli --list

Observability::

    python -m repro.harness.cli --trace out.jsonl 4.1   # trace the runs
    python -m repro.harness.cli trace-summary out.jsonl # recount from trace
    python -m repro.harness.cli --metrics out.json 4.1  # per-run metrics
    python -m repro.harness.cli --heartbeat-every 5000 --spool spool/ 4.2
"""

from __future__ import annotations

import argparse
import json
import sys

from ..obs.events import Tracer, read_trace, summarize, tracing_to, write_trace
from . import figures as figures_mod
from .figures import ALL_FIGURES

SMALL_FIGURES = ["4.1", "4.2", "4.5", "4.6", "4.7", "4.11", "4.12", "4.13",
                 "A.1", "A.2"]


def trace_summary_main(argv) -> int:
    """``trace-summary PATH``: recompute a run's counters from its trace."""
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli trace-summary",
        description="Summarize a JSONL event trace written by --trace.",
    )
    parser.add_argument("path", help="trace file (JSONL)")
    args = parser.parse_args(argv)
    try:
        meta, events = read_trace(args.path)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"not a JSONL event trace: {args.path} ({exc})", file=sys.stderr)
        return 2
    complete = int(meta.get("dropped", 0)) == 0
    summary = summarize(events, complete=complete,
                        op_hist=meta.get("op_hist"))
    print(summary.render())
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace-summary":
        return trace_summary_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate tables/figures from 'Contaminated Garbage Collection'.",
    )
    parser.add_argument("figures", nargs="*", help="figure ids, e.g. 4.1 A.2")
    parser.add_argument("--all", action="store_true", help="every figure")
    parser.add_argument(
        "--small", action="store_true", help="all size-1 figures (fast)"
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument(
        "--trace", metavar="PATH",
        help="record collector/VM events during the runs and write JSONL",
    )
    parser.add_argument(
        "--trace-capacity", type=int, default=None, metavar="N",
        help="ring-buffer capacity for --trace (default ~1M events)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH",
        help="write one metrics record per executed run as JSON",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="prefetch the (workload, size, system) grid with N worker "
             "processes before generating tables (default: 1, sequential)",
    )
    parser.add_argument(
        "--result-cache", metavar="DIR",
        help="persist per-cell run results as JSON under DIR and reuse them "
             "across invocations (also: REPRO_RESULT_CACHE env var)",
    )
    parser.add_argument(
        "--faults", metavar="SPEC",
        help="arm a deterministic fault plan for every run, e.g. "
             "'heap.alloc:oom:after=1000' or "
             "'harness.worker:crash:cell=jess:count=inf' "
             "(';'-separated specs; see repro.faults)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock timeout for --jobs prefetch workers; a "
             "cell that times out is retried, then quarantined",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="extra attempts per failing/hanging cell before quarantine "
             "(default: 2)",
    )
    parser.add_argument(
        "--heartbeat-every", type=int, default=None, metavar="OPS",
        help="spool a live snapshot of every run each OPS executed "
             "opcodes; inspect in-flight with 'python -m repro inspect'",
    )
    parser.add_argument(
        "--spool", metavar="DIR",
        help="heartbeat spool directory (default: $REPRO_SPOOL or the "
             "system temp dir)",
    )
    args = parser.parse_args(argv)

    if args.result_cache:
        figures_mod.set_result_cache(args.result_cache)

    if args.heartbeat_every is not None and args.heartbeat_every < 1:
        print("bad --heartbeat-every: must be >= 1", file=sys.stderr)
        return 2
    # Process-global and observational only (never part of a cell key);
    # set unconditionally so repeated main() calls in one process (tests)
    # cannot leak a stale heartbeat setting.
    figures_mod.set_heartbeat(args.heartbeat_every, args.spool)

    # Per-opcode execution counts (vm.op.*) only exist when requested:
    # counting swaps in a slower dispatch loop, so it must never tax a
    # plain figure run.  Set unconditionally — the flag is process-global
    # and main() may be invoked more than once in one process (tests).
    figures_mod.set_opcode_counting(bool(args.metrics))

    if args.faults:
        try:
            plan = figures_mod.FaultPlan.parse(args.faults)
        except ValueError as exc:
            print(f"bad --faults spec: {exc}", file=sys.stderr)
            return 2
        figures_mod.set_fault_plan(plan)

    if args.list:
        for fig_id in ALL_FIGURES:
            print(fig_id)
        return 0

    wanted = list(args.figures)
    if args.all:
        wanted = list(ALL_FIGURES)
    elif args.small and not wanted:
        wanted = list(SMALL_FIGURES)
    if not wanted:
        parser.print_help()
        return 2

    unknown = [f for f in wanted if f not in ALL_FIGURES]
    if unknown:
        print(f"unknown figure id(s): {unknown}; use --list", file=sys.stderr)
        return 2

    tracer = None
    if args.trace:
        tracer = (
            Tracer(args.trace_capacity) if args.trace_capacity else Tracer()
        )

    def generate() -> None:
        # A quarantined cell sinks only the figures that read it; the rest
        # of the grid still prints, and the skip is reported on stderr.
        for fig_id in wanted:
            try:
                print(ALL_FIGURES[fig_id]())
            except figures_mod.QuarantinedCellError as exc:
                print(
                    f"[quarantine] figure {fig_id} skipped: "
                    f"cell {exc.cell_id} is quarantined "
                    f"({exc.report.kind if exc.report else 'unknown fault'})",
                    file=sys.stderr,
                )
            print()

    if args.jobs > 1 and tracer is None:
        # Warm the shared run cache in parallel; the generators then hit it.
        # Skipped under --trace: worker processes would not see the tracer.
        cells = figures_mod.prefetch(
            wanted, args.jobs,
            cell_timeout=args.cell_timeout, retries=args.retries,
        )
        print(
            f"[prefetch] {cells} cells warmed with {args.jobs} jobs",
            file=sys.stderr,
        )
    elif args.jobs > 1:
        print("[prefetch] skipped: incompatible with --trace", file=sys.stderr)

    if tracer is not None:
        with tracing_to(tracer):
            generate()
        # With --metrics the runs counted opcodes; fold the per-run vm.op
        # histograms into the trace meta so trace-summary can report them
        # (events themselves carry no opcodes).
        op_hist = {}
        if args.metrics:
            for result in figures_mod.cached_results():
                for op, n in result.metrics.get(
                        "histograms", {}).get("vm.op", {}).items():
                    op_hist[op] = op_hist.get(op, 0) + int(n)
        written = write_trace(args.trace, tracer, op_hist=op_hist or None)
        status = "complete" if tracer.complete else (
            f"ring overflowed, {tracer.dropped} oldest events dropped"
        )
        print(
            f"[trace] {written} events -> {args.trace} ({status})",
            file=sys.stderr,
        )
    else:
        generate()

    quarantined = figures_mod.quarantined()
    if quarantined:
        print(
            f"[quarantine] {len(quarantined)} cell(s) quarantined:",
            file=sys.stderr,
        )
        for key, report in sorted(quarantined.items(), key=lambda kv: kv[0][:3]):
            print(
                f"[quarantine]   {key[0]}:{key[1]}:{key[2]} -> "
                f"{report.site}/{report.kind}: {report.message}",
                file=sys.stderr,
            )

    if args.metrics:
        records = [
            {
                "workload": result.workload,
                "size": result.size,
                "system": result.system,
                "heap_words": result.heap_words,
                "wall_seconds": result.wall_seconds,
                "metrics": result.metrics,
            }
            for result in figures_mod.cached_results()
        ]
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump(records, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(
            f"[metrics] {len(records)} run records -> {args.metrics}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    try:
        code = main()
    except BrokenPipeError:  # e.g. `... trace-summary f | head`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        code = 0
    raise SystemExit(code)
