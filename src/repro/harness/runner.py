"""Deprecated shim over :mod:`repro.api` (the stable entry surface).

Everything that used to live here — the system table, ``config_for``,
:class:`RunResult`, the serialization helpers, and ``run_workload`` — moved
to :mod:`repro.api` so the runner, the figure cache, the bench harness,
and the CLI share one construction path.  The names are re-exported here
for compatibility; ``run_workload`` additionally warns, since
:func:`repro.api.run` is its direct replacement.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

from ..api import (
    BIG_HEAP_WORDS,
    RESET_PERIOD_OPS,
    SYSTEMS,
    RunRequest,
    RunResult,
    config_for,
    result_from_dict,
    result_to_dict,
)
from ..api import run as _run
from ..workloads.base import Workload

__all__ = [
    "BIG_HEAP_WORDS",
    "RESET_PERIOD_OPS",
    "SYSTEMS",
    "RunRequest",
    "RunResult",
    "config_for",
    "result_from_dict",
    "result_to_dict",
    "run_workload",
]


def run_workload(
    workload: Union[str, Workload],
    size: int = 1,
    system: str = "cg",
    heap_words: Optional[int] = None,
    gc_period_ops: Optional[int] = None,
    seed: int = 2000,
    tracer=None,
    profile: bool = False,
) -> RunResult:
    """Deprecated: call :func:`repro.api.run` instead (same signature)."""
    warnings.warn(
        "repro.harness.runner.run_workload is deprecated; "
        "use repro.api.run()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run(
        workload, size, system, heap_words=heap_words,
        gc_period_ops=gc_period_ops, seed=seed, tracer=tracer,
        profile=profile,
    )
