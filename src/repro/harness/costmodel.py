"""Deterministic cost model standing in for the paper's wall-clock timings.

The paper measured a modified JDK 1.1.8 on an UltraSparc-IIi; we cannot
reproduce those absolute seconds, but its *explanation* of them is explicit
(sections 4.5-4.6): CG pays "extra work at every store operation" and for
maintaining the equilive sets, and wins by "avoidance of the traditional
garbage collector ... primarily ... the marking phase".  The model charges
exactly those quantities:

* every mutator operation (instruction or direct-drive op) costs ``W_OP``;
* every tracing-collector mark visit costs ``W_MARK`` (deliberately the
  most expensive unit: marking touches cold objects and pollutes the
  cache — the paper's stated reason CG wins);
* sweep visits, free-list frees and allocation search steps cost their own
  (cheaper) units;
* CG maintenance: union-find finds/unions, store/areturn event handling,
  per-block pop splices, the wider handle initialisation at allocation, and
  recycle-list search steps.

The output is "simulated milliseconds" — meaningless absolutely, meaningful
as ratios, which is how every timing figure in the paper is read (its
"speedup" columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..jvm.runtime import Runtime

# Weights, in abstract work units.
W_OP = 1.0            # one interpreted operation
W_MARK = 8.0          # marking touches a cold object (cache pollution)
W_SWEEP = 1.0         # sweep scans a handle
W_FREE = 0.8          # free-list insertion (with coalescing)
W_ALLOC_STEP = 0.5    # one next-fit probe
W_UF = 0.15           # one union-find find/union (near-constant, hot cache)
W_CG_EVENT = 0.2      # store/areturn/putstatic event handling
W_CG_POP = 0.2        # per-block pop splice
W_CG_ALLOC = 0.6      # initialising the wider CG handle (sections 3.1/3.5)
W_RECYCLE_STEP = 0.3  # first-fit probe of the recycle list
W_BARRIER = 0.4       # generational/train write barrier
W_GC_CYCLE = 1500.0   # fixed pause per tracing cycle (stop threads, scan roots)

#: Work units per simulated millisecond (arbitrary but fixed).
UNITS_PER_MS = 1000.0


@dataclass(frozen=True)
class CostBreakdown:
    """Work units charged to each subsystem of a finished run."""

    mutator: float
    allocator: float
    tracing_gc: float
    cg_maintenance: float

    @property
    def total_units(self) -> float:
        return self.mutator + self.allocator + self.tracing_gc + self.cg_maintenance

    @property
    def total_ms(self) -> float:
        return self.total_units / UNITS_PER_MS


def cost_of(runtime: "Runtime") -> CostBreakdown:
    """Charge a finished runtime's counters against the weight table."""
    mutator = W_OP * runtime.ops

    free_list = runtime.heap.free_list
    allocator = (
        W_ALLOC_STEP * free_list.search_steps + W_FREE * free_list.frees
    )

    work = runtime.tracing.work
    tracing_gc = (
        W_MARK * work.mark_visits
        + W_SWEEP * work.sweep_visits
        + W_BARRIER * work.barrier_hits
        + W_GC_CYCLE * (work.cycles + work.minor_cycles)
    )

    cg = 0.0
    collector = runtime.collector
    if collector is not None:
        ds = collector.equilive.ds
        stats = collector.stats
        # Handle-width scaling: the 16-word handle costs its full unit, the
        # squeezed 8-word handle half (section 3.5's stated benefit).
        handle_factor = runtime.heap.handle_words / 16.0
        cg = (
            W_UF * (ds.finds + ds.unions)
            + W_CG_EVENT
            * (stats.store_events + stats.areturn_events + stats.putstatic_events)
            + W_CG_POP * (stats.blocks_collected + stats.frame_pops)
            + W_CG_ALLOC * handle_factor * stats.objects_created
            + W_RECYCLE_STEP * stats.recycle_search_steps
        )
    return CostBreakdown(
        mutator=mutator,
        allocator=allocator,
        tracing_gc=tracing_gc,
        cg_maintenance=cg,
    )
