"""Plain-text table rendering for the figure generators."""

from __future__ import annotations

from typing import Iterable, List, Sequence


class Table:
    """A titled, aligned text table (one per paper figure)."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def column(self, name: str) -> List[str]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    def row_for(self, key: str) -> List[str]:
        """The row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row {key!r} in table {self.title!r}")

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def pct(value: float) -> str:
    """Whole-percent formatting, as the paper's tables print."""
    return f"{value:.0f}%"


def render_all(tables: Iterable[Table]) -> str:
    return "\n\n".join(t.render() for t in tables)
