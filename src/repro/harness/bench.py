"""Wall-clock benchmark harness with a persistent baseline.

``python -m repro bench`` times the (workload, system) grid end-to-end —
real seconds, not the simulated cost model — and writes a JSON report.
A committed report (``BENCH_7.json`` at the repo root) serves as the
baseline: ``--check BASELINE`` recompares and fails on regression, which
is what the CI smoke job runs.

Two kinds of comparison, deliberately different in strictness:

* **Determinism counters** (``ops``, ``alloc_search_steps``) must match the
  baseline *exactly* — runs are seeded and the VM is deterministic, so any
  drift means a behavior change, not noise.
* **Wall clock** is noisy, so each cell reports the minimum over
  ``--repeats`` runs and the check gates on the *geometric mean* of the
  per-cell current/baseline ratios, failing only beyond ``--tolerance``
  (default 25%).

``--compare OLDER`` is the *trend* view across baseline generations (e.g.
``BENCH_7.json`` vs ``BENCH_6.json``): per-cell wall/ops-per-sec deltas
plus the geomean, failing only on a >25% geomean wall regression.  Unlike
``--check``, counter drift is reported but does not fail — grids and
defaults legitimately change between versions (BENCH_4 added the
``cg-table`` column and the ``bc-*`` interpreter workloads; BENCH_5 added
``cg-closure``, ``bc-loop``, and the ``compile_ms`` column; BENCH_6 was
the SLA-only server grid; BENCH_7 combines both grids, adds the
``cg-compiled`` pin, flips ``cg`` to the tiered default, and splits
``compile_ms`` into cold/steady).

The grid carries the full dispatch ladder — ``cg-table`` (table pin),
``cg-closure`` (closure pin), and ``cg-compiled`` (everything codegenned
up front) next to ``cg`` (tiered, the default) — so every report records
the per-tier speedups on the interpreter-driven ``bc-*`` workloads.  The
headline number is the cg-vs-table geomean, which ``--check``
additionally gates with :data:`DISPATCH_FLOOR`: the baseline snapshot
must record at least the floor, and the live measurement must stay
within the noise tolerance of it.  Each cell also reports the one-time
closure-compile + codegen warmup, split into ``compile_ms_first_iter``
(cold: the cross-runtime codegen cache cleared first — what the first
request of a fresh process pays) and ``compile_ms`` (steady-state:
caches warm, the binding-rebuild cost every later run pays) — both
harvested from extra profiled runs so the timed runs stay unprofiled.
``--warmup-curve`` measures the cold-to-peak trajectory itself:
first-iteration wall, steady-state wall, and iterations to reach peak
per system.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import RunRequest, WorkloadSpec, request_to_dict
from ..api import run as run_workload

#: Grid defaults: the timing-relevant systems (CG under the default
#: tiered dispatch, the unmodified base system, the segregated-fit
#: allocator ablation, and the table/closure/compiled dispatch pins that
#: form the other rungs of the dispatch ladder).
DEFAULT_SYSTEMS = ("cg", "jdk", "cg-segfit", "cg-table", "cg-closure",
                   "cg-compiled")
DEFAULT_WORKLOADS = (
    "compress", "jess", "raytrace", "db", "javac", "mpegaudio", "jack",
    "bc-arith", "bc-list", "bc-calls", "bc-loop",
)
#: The quick grid used by ``--small`` and the CI smoke job.
SMALL_WORKLOADS = ("jess", "raytrace", "db", "bc-list")

#: The ``--sla`` grid: the server workload's tail-latency comparison —
#: CG (tiered dispatch, the default) vs the unmodified base system, the
#: segregated-fit allocator ablation, and the compiled-dispatch pin
#: (the tiered-vs-compiled warmup comparison: identical steady state,
#: very different first-request latency), under every arrival pattern.
SLA_SYSTEMS = ("cg", "jdk", "cg-segfit", "cg-compiled")
SLA_PATTERNS = ("steady", "bursty", "diurnal")
SLA_REQUESTS = 400

BENCH_VERSION = 7

#: Minimum cg-vs-table ops/sec geomean over the ``bc-*`` workloads that a
#: baseline snapshot must record for ``--check`` to pass.  ``cg`` runs
#: the tiered default, whose steady state is the compiled tier, so the
#: floor gates the same codegen the compiled-default generations did.
#: Repeated min-over-repeats measurements of the full ladder land in a
#: 2.7-3.0x band depending on the machine day (the BENCH_5 snapshot
#: caught 3.04x, BENCH_7 2.84x; the per-workload ratios barely move —
#: the spread is which end of the noise band each cell's minimum
#: samples), so the floor sits just below the band: low enough that an
#: honest re-measurement always clears it, far above the ~1.5x closure
#: geomean a broken promotion path would record.
DISPATCH_FLOOR = 2.5


def run_bench(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    size: int = 1,
    repeats: int = 3,
    jobs: int = 1,
) -> Dict:
    """Time every (workload, system) cell; wall time is min over repeats.

    ``jobs > 1`` runs the grid through the persistent worker pool
    (:mod:`repro.harness.pool`): every (cell, repeat) becomes an uncached
    job (bench must *time* each run, so no dedupe and no result cache)
    and the wall time is measured inside the worker around the run
    itself.  The determinism counters are bit-identical either way —
    only wall noise differs, which ``--check``'s geomean gate absorbs.
    """
    if jobs > 1:
        return _run_bench_pooled(workloads, systems, size, repeats, jobs)
    entries: List[Dict] = []
    for workload in workloads:
        # Paired measurement: rep i of *every* system runs back-to-back
        # before rep i+1, so all of a workload's cells sample the same
        # machine-speed windows and cross-system ratios (the dispatch
        # ladder) don't inherit slow CPU drift.  Min over repeats per
        # cell is taken across the interleaved passes.
        best: Dict[str, float] = {system: math.inf for system in systems}
        results: Dict[str, object] = {}
        for _ in range(max(1, repeats)):
            for system in systems:
                started = time.perf_counter()
                results[system] = run_workload(workload, size, system)
                elapsed = time.perf_counter() - started
                best[system] = min(best[system], elapsed)
        for system in systems:
            wall = best[system]
            result = results[system]
            entries.append({
                "workload": workload,
                "size": size,
                "system": system,
                "wall_seconds": wall,
                "ops": result.ops,
                "ops_per_sec": result.ops / wall if wall else 0.0,
                "alloc_search_steps": result.alloc_search_steps,
                # Cold first (clears the cross-runtime codegen cache and
                # repopulates it), then steady-state with caches warm.
                "compile_ms_first_iter": _harvest_compile_ms(
                    workload, size, system, cold=True),
                "compile_ms": _harvest_compile_ms(workload, size, system),
            })
    return {
        "version": BENCH_VERSION,
        "size": size,
        "repeats": repeats,
        "entries": entries,
    }


def _harvest_compile_ms(workload: str, size: int, system: str,
                        cold: bool = False) -> float:
    """One-time dispatch-compilation warmup for a cell, in milliseconds.

    The sum of the ``compile`` (closure compilation) and ``codegen``
    (Python source generation + ``compile``/``exec``) profiler phases
    from one *extra* profiled run — the timed repeats stay unprofiled so
    the phase timers never tax the wall clocks being reported.  Tiers
    that never compile (chain/table) report 0.0.

    ``cold=False`` (the ``compile_ms`` column): the cross-runtime codegen
    cache is warm by harvest time (the timed repeats populated it), so
    the codegen share reflects the steady-state binding-rebuild cost —
    the same cost the timed walls contain.  ``cold=True`` (the
    ``compile_ms_first_iter`` column): the in-memory cache is cleared
    first, so the measurement is what the first run of a fresh process
    pays — full source generation + ``compile`` for every method the
    tier chooses to codegen.  The cold/warm split is exactly where the
    tiered default wins: it codegens only the methods that got hot.
    """
    if cold:
        from ..jvm.compiledcode import clear_codegen_caches

        clear_codegen_caches()
    result = run_workload(workload, size, system, profile=True)
    gauges = result.metrics.get("gauges", {})
    seconds = (gauges.get("profile.compile_s", 0.0)
               + gauges.get("profile.codegen_s", 0.0))
    return seconds * 1000.0


def _run_bench_pooled(workloads: Sequence[str], systems: Sequence[str],
                      size: int, repeats: int, jobs: int) -> Dict:
    from .pool import get_shared_pool

    cells = [(w, s) for w in workloads for s in systems]
    requests: List[Dict] = []
    owners: List[Tuple[str, str]] = []
    for workload, system in cells:
        for _ in range(max(1, repeats)):
            requests.append(
                {"workload": workload, "size": size, "system": system}
            )
            owners.append((workload, system))
    pool = get_shared_pool(jobs)
    # Deliberately unkeyed: single-flight dedupe would collapse the
    # repeats into one run, and a cache hit has no wall time to report.
    pool_jobs = pool.submit_batch(requests)
    pool.wait(pool_jobs)
    best: Dict[Tuple[str, str], Dict] = {}
    for (workload, system), job in zip(owners, pool_jobs):
        if job.status != "done":
            report = job.report
            raise RuntimeError(
                f"bench cell {workload}/{system} failed in the pool: "
                f"{report.message if report else 'job lost'}"
            )
        wall = job.wall_seconds or 0.0
        cell = best.get((workload, system))
        if cell is None or wall < cell["wall_seconds"]:
            best[(workload, system)] = {
                "workload": workload,
                "size": size,
                "system": system,
                "wall_seconds": wall,
                "ops": job.result_dict["ops"],
                "ops_per_sec": (job.result_dict["ops"] / wall
                                if wall else 0.0),
                "alloc_search_steps": job.result_dict["alloc_search_steps"],
            }
    for (workload, system), cell in best.items():
        # Harvested in-process: the pool protocol ships counters, not
        # profiler gauges, and one profiled run per cell is cheap.
        cell["compile_ms_first_iter"] = _harvest_compile_ms(
            workload, size, system, cold=True)
        cell["compile_ms"] = _harvest_compile_ms(workload, size, system)
    return {
        "version": BENCH_VERSION,
        "size": size,
        "repeats": repeats,
        "entries": [best[cell] for cell in cells],
    }


def _sla_entry(pattern: str, system: str, wall: float,
               result_dict: Dict) -> Dict:
    """One SLA report entry from a run's serialized result."""
    cg_stats = result_dict.get("cg_stats") or {}
    ops = result_dict["ops"]
    params = dict(result_dict.get("params") or {})
    params.setdefault("pattern", pattern)
    return {
        "workload": "server",
        "size": result_dict.get("size", 0),
        "system": system,
        "params": params,
        "wall_seconds": wall,
        "ops": ops,
        "ops_per_sec": ops / wall if wall else 0.0,
        "alloc_search_steps": result_dict["alloc_search_steps"],
        "gc_cycles": (result_dict.get("gc_work") or {}).get("cycles", 0),
        "objects_popped": cg_stats.get("objects_popped", 0),
        "latency": result_dict.get("latency") or {},
    }


def run_sla(
    requests: int = SLA_REQUESTS,
    systems: Sequence[str] = SLA_SYSTEMS,
    patterns: Sequence[str] = SLA_PATTERNS,
    repeats: int = 2,
    jobs: int = 1,
) -> Dict:
    """The server-workload tail-latency grid: (pattern, system) cells.

    Unlike :func:`run_bench`, the runs here are *profiled* — per-request
    latency attribution needs the phase timers on, and the latency being
    reported must come from the same run whose wall clock is reported.
    Each cell keeps the repeat with the minimum wall (least-interference
    sample) and that run's latency section.  Counters are bit-identical
    across repeats, systems aside, so the choice never affects the
    determinism gates.
    """
    from ..api import result_to_dict

    def _request(pattern: str, system: str) -> RunRequest:
        return RunRequest(
            workload=WorkloadSpec("server", {"pattern": pattern}),
            system=system, requests=requests, profile=True,
            # Every SLA sample represents a fresh-process first request:
            # without this, in-process repeats (and warm pool workers)
            # inherit a warm codegen cache and first_request_ms lies.
            cold_start=True,
        )

    cells = [(p, s) for p in patterns for s in systems]
    best: Dict[Tuple[str, str], Dict] = {}
    if jobs > 1:
        from .pool import get_shared_pool

        wire: List[Dict] = []
        owners: List[Tuple[str, str]] = []
        for pattern, system in cells:
            for _ in range(max(1, repeats)):
                wire.append(request_to_dict(_request(pattern, system)))
                owners.append((pattern, system))
        pool = get_shared_pool(jobs)
        # Unkeyed on purpose, like the pooled bench path: every repeat
        # must actually run and be timed.
        pool_jobs = pool.submit_batch(wire)
        pool.wait(pool_jobs)
        for (pattern, system), job in zip(owners, pool_jobs):
            if job.status != "done":
                report = job.report
                raise RuntimeError(
                    f"sla cell server/{pattern}/{system} failed in the "
                    f"pool: {report.message if report else 'job lost'}"
                )
            wall = job.wall_seconds or 0.0
            cell = best.get((pattern, system))
            if cell is None or wall < cell["wall_seconds"]:
                best[(pattern, system)] = _sla_entry(
                    pattern, system, wall, job.result_dict
                )
    else:
        for pattern in patterns:
            # Paired interleaved measurement, as in run_bench.
            for _ in range(max(1, repeats)):
                for system in systems:
                    from ..api import execute

                    started = time.perf_counter()
                    result = execute(_request(pattern, system))
                    wall = time.perf_counter() - started
                    cell = best.get((pattern, system))
                    if cell is None or wall < cell["wall_seconds"]:
                        best[(pattern, system)] = _sla_entry(
                            pattern, system, wall, result_to_dict(result)
                        )
    return {
        "version": BENCH_VERSION,
        "sla": True,
        "requests": requests,
        "repeats": repeats,
        "entries": [best[cell] for cell in cells],
    }


#: ``--warmup-curve`` iterations per cell and the "at peak" band: an
#: iteration counts as peak once its wall is within 10% of the best
#: iteration seen for the cell.
WARMUP_ITERS = 6
WARMUP_PEAK_BAND = 1.10

#: The ``--warmup-curve`` default systems: the dispatch ladder's
#: compiling rungs (cold-start cost is what the curve measures; the
#: never-compiling table tier is the flat reference).
WARMUP_SYSTEMS = ("cg", "cg-compiled", "cg-closure", "cg-table")


def run_warmup_curve(
    workloads: Sequence[str] = ("bc-loop", "server"),
    systems: Sequence[str] = WARMUP_SYSTEMS,
    size: int = 1,
    iters: int = WARMUP_ITERS,
) -> Dict:
    """Cold-to-peak warmup trajectory per (workload, system) cell.

    Every cell starts truly cold — the cross-runtime codegen cache is
    cleared — then runs ``iters`` back-to-back iterations in one process
    (the ``serve``/WorkerPool shape: caches shared, runtimes fresh).
    Reported per cell: the first-iteration wall (codegen bill included),
    the steady-state wall (min over iterations), the warmup ratio
    between them, and time-to-peak — the first iteration whose wall is
    within :data:`WARMUP_PEAK_BAND` of the steady state.
    """
    from ..jvm.compiledcode import clear_codegen_caches

    entries: List[Dict] = []
    for workload in workloads:
        for system in systems:
            clear_codegen_caches()
            walls: List[float] = []
            for _ in range(max(2, iters)):
                started = time.perf_counter()
                run_workload(workload, size, system)
                walls.append(time.perf_counter() - started)
            steady = min(walls)
            peak_iter = next(
                i + 1 for i, w in enumerate(walls)
                if w <= steady * WARMUP_PEAK_BAND
            )
            entries.append({
                "workload": workload,
                "size": size,
                "system": system,
                "iters": len(walls),
                "first_iter_wall_seconds": walls[0],
                "steady_wall_seconds": steady,
                "warmup_ratio": walls[0] / steady if steady else 0.0,
                "time_to_peak_iters": peak_iter,
                "walls": walls,
            })
    return {
        "version": BENCH_VERSION,
        "warmup_curve": True,
        "size": size,
        "entries": entries,
    }


def warmup_lines(report: Dict) -> List[str]:
    """Human-readable table for a ``--warmup-curve`` report."""
    lines = [
        "warmup curve (first iteration pays the codegen bill; steady = "
        "min over iterations)",
        f"{'workload':>10s} {'system':<12s} {'first':>9s} {'steady':>9s} "
        f"{'ratio':>6s} {'to-peak':>7s}",
    ]
    for entry in report["entries"]:
        lines.append(
            f"{entry['workload']:>10s} {entry['system']:<12s}"
            f" {entry['first_iter_wall_seconds'] * 1000.0:8.2f}ms"
            f" {entry['steady_wall_seconds'] * 1000.0:8.2f}ms"
            f" {entry['warmup_ratio']:5.2f}x"
            f" {entry['time_to_peak_iters']:>5d}it"
        )
    return lines


def _fmt_ms(value: Optional[float]) -> str:
    return f"{value:7.3f}" if value is not None else "      -"


def sla_lines(report: Dict) -> List[str]:
    """Human-readable SLO table + pause histograms for an SLA report."""
    lines = [
        "server tail latency (ms per request; pause = collector time "
        "inside the request window)",
        f"{'pattern':>8s} {'system':<10s} {'p50':>7s} {'p99':>7s} "
        f"{'p999':>7s} {'max':>7s}  {'pause p99':>9s} {'share':>6s} "
        f"{'gc':>4s}",
    ]
    for entry in report["entries"]:
        latency = entry.get("latency") or {}
        req = latency.get("request_ms") or {}
        pause = latency.get("pause_ms") or {}
        pattern = (entry.get("params") or {}).get("pattern", "?")
        lines.append(
            f"{pattern:>8s} {entry['system']:<10s}"
            f" {_fmt_ms(req.get('p50_ms'))}"
            f" {_fmt_ms(req.get('p99_ms'))}"
            f" {_fmt_ms(req.get('p999_ms'))}"
            f" {_fmt_ms(req.get('max_ms'))} "
            f" {_fmt_ms(pause.get('p99_ms')):>9s}"
            f" {latency.get('pause_share_pct', 0.0):5.1f}%"
            f" {entry.get('gc_cycles', 0):>4d}"
        )
        hist = latency.get("pause_hist") or {}
        counts = hist.get("counts") or []
        bounds = hist.get("le_ms") or []
        nonzero = [
            (f"≤{bounds[i]:g}ms" if i < len(bounds) else
             f">{bounds[-1]:g}ms", n)
            for i, n in enumerate(counts) if n
        ]
        if nonzero:
            buckets = "  ".join(f"{label}:{n}" for label, n in nonzero)
            lines.append(f"{'':>8s} {'pauses':<10s} {buckets}")
    return lines


def write_bench(path: str, report: Dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _keyed(report: Dict) -> Dict[Tuple[str, int, str, str], Dict]:
    """Entries keyed by cell identity, including the params axis.

    Entries without a ``params`` section (every pre-v6 baseline) key as
    ``"{}"``, so old and new reports of the same parameterless grid still
    share cells.
    """
    return {
        (e["workload"], e["size"], e["system"],
         json.dumps(e.get("params") or {}, sort_keys=True)): e
        for e in report["entries"]
    }


def compare(current: Dict, baseline: Dict,
            tolerance: float = 0.25,
            wall_gate: bool = True) -> Tuple[bool, List[str]]:
    """Compare a fresh report against the committed baseline.

    Returns ``(ok, report_lines)``.  Fails when any shared cell's
    determinism counters drift, or when the geometric-mean wall-clock
    ratio exceeds ``1 + tolerance``.  Cells present in only one report
    are noted but do not fail the check (the grid may legitimately grow).

    ``wall_gate=False`` demotes the geomean verdict to advisory: only
    counter equality can fail the check.  That is the SLA-grid mode —
    its cells are milliseconds long, so pool dispatch overhead and
    worker interference swamp the wall ratio, while the counters stay
    exactly comparable across any executor.
    """
    lines: List[str] = []
    ok = True
    cur, base = _keyed(current), _keyed(baseline)
    shared = [k for k in base if k in cur]
    for key in base:
        if key not in cur:
            lines.append(f"note: baseline cell {key} not in current run")
    for key in cur:
        if key not in base:
            lines.append(f"note: new cell {key} has no baseline")

    ratios = []
    for key in shared:
        c, b = cur[key], base[key]
        # gc_cycles/objects_popped exist only on SLA entries; when both
        # sides carry them they gate exactly like the core counters.
        for counter in ("ops", "alloc_search_steps", "gc_cycles",
                        "objects_popped"):
            if counter not in c or counter not in b:
                continue
            if c[counter] != b[counter]:
                ok = False
                lines.append(
                    f"FAIL {key}: {counter} drifted "
                    f"{b[counter]} -> {c[counter]} (determinism break)"
                )
        if b["wall_seconds"] > 0 and c["wall_seconds"] > 0:
            ratio = c["wall_seconds"] / b["wall_seconds"]
            ratios.append(ratio)
            lines.append(
                f"{key[0]}/{key[2]}: {b['wall_seconds']:.4f}s -> "
                f"{c['wall_seconds']:.4f}s ({ratio:.2f}x)"
            )
    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        limit = 1.0 + tolerance
        if not wall_gate:
            lines.append(
                f"wall-clock geomean ratio: {geomean:.3f} (advisory; "
                f"counters gate this check)"
            )
        else:
            verdict = "ok" if geomean <= limit else "REGRESSION"
            lines.append(
                f"wall-clock geomean ratio: {geomean:.3f} "
                f"(limit {limit:.2f}) - {verdict}"
            )
            if geomean > limit:
                ok = False
    elif shared:
        lines.append("no timed cells to compare")
    return ok, lines


def trend(current: Dict, baseline: Dict,
          tolerance: float = 0.25) -> Tuple[bool, List[str]]:
    """Cross-generation trend report (e.g. BENCH_4 vs BENCH_3).

    Prints per-workload×system wall and ops-per-sec deltas plus the
    geomean; fails only when the wall-clock geomean regresses beyond
    ``tolerance``.  Determinism-counter drift is *noted*, not failed —
    between baseline generations the grid and the default configuration
    legitimately change (use :func:`compare` for the strict same-version
    gate).
    """
    lines: List[str] = []
    ok = True
    cur, base = _keyed(current), _keyed(baseline)
    shared = [k for k in base if k in cur]
    new = [k for k in cur if k not in base]
    gone = [k for k in base if k not in cur]
    lines.append(
        f"trend: v{current.get('version', '?')} vs "
        f"v{baseline.get('version', '?')} — {len(shared)} shared cells, "
        f"{len(new)} new, {len(gone)} removed"
    )
    ratios = []
    for key in sorted(shared):
        c, b = cur[key], base[key]
        wall_ratio = (c["wall_seconds"] / b["wall_seconds"]
                      if b["wall_seconds"] > 0 and c["wall_seconds"] > 0
                      else None)
        ops_ratio = (c["ops_per_sec"] / b["ops_per_sec"]
                     if b.get("ops_per_sec") and c.get("ops_per_sec")
                     else None)
        cell = f"{key[0]}/{key[2]}"
        if wall_ratio is not None:
            ratios.append(wall_ratio)
            ops_note = (f", {ops_ratio:.2f}x ops/s" if ops_ratio is not None
                        else "")
            lines.append(
                f"{cell}: wall {b['wall_seconds']:.4f}s -> "
                f"{c['wall_seconds']:.4f}s ({wall_ratio:.2f}x{ops_note})"
            )
        for counter in ("ops", "alloc_search_steps"):
            if c.get(counter) != b.get(counter):
                lines.append(
                    f"note: {cell} {counter} changed "
                    f"{b.get(counter)} -> {c.get(counter)}"
                )
    for key in sorted(new):
        lines.append(f"note: new cell {key[0]}/{key[2]} (no trend baseline)")
    for key in sorted(gone):
        lines.append(f"note: removed cell {key[0]}/{key[2]}")
    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        limit = 1.0 + tolerance
        verdict = "ok" if geomean <= limit else "REGRESSION"
        lines.append(
            f"trend wall-clock geomean: {geomean:.3f} "
            f"(limit {limit:.2f}) - {verdict}"
        )
        if geomean > limit:
            ok = False
    elif shared:
        lines.append("no timed cells shared with the trend baseline")
    return ok, lines


def dispatch_speedup(report: Dict) -> Tuple[Optional[float], List[str]]:
    """Dispatch-ladder ops/sec ratios from a report's own cells.

    Pairs each ``cg`` cell (tiered dispatch, the default — steady state
    is the compiled tier) with its ``cg-table`` twin — and, when
    present, the ``cg-closure`` middle rung — and reports the per-tier
    ratios; the headline geomean (the return value) is cg/table over the
    interpreter-driven ``bc-*`` workloads only — the Mutator-driven
    workloads never enter the dispatch loop, so their ratio is pure
    noise.  Returns ``(geomean_or_None, lines)``.
    """
    lines: List[str] = []
    keyed = _keyed(report)
    bc_ratios = []
    closure_ratios = []
    for (workload, size, system, params) in sorted(keyed):
        if system != "cg":
            continue
        twin = keyed.get((workload, size, "cg-table", params))
        if twin is None:
            continue
        compiled = keyed[(workload, size, system, params)].get(
            "ops_per_sec") or 0.0
        table = twin.get("ops_per_sec") or 0.0
        if not compiled or not table:
            continue
        ratio = compiled / table
        mid = keyed.get((workload, size, "cg-closure", params))
        closure = (mid.get("ops_per_sec") or 0.0) if mid else 0.0
        rung = f" (closure {closure:,.0f} = {closure / table:.2f}x)" \
            if closure else ""
        marker = ""
        if workload.startswith("bc-"):
            bc_ratios.append(ratio)
            if closure:
                closure_ratios.append(closure / table)
            marker = "  [dispatch-bound]"
        lines.append(
            f"{workload}: cg {compiled:,.0f} ops/s vs "
            f"table {table:,.0f} ops/s = {ratio:.2f}x{rung}{marker}"
        )
    geomean = None
    if bc_ratios:
        geomean = math.exp(
            sum(math.log(r) for r in bc_ratios) / len(bc_ratios)
        )
        lines.append(
            f"cg/table geomean over bc-* workloads: {geomean:.2f}x"
        )
    if closure_ratios:
        closure_geomean = math.exp(
            sum(math.log(r) for r in closure_ratios) / len(closure_ratios)
        )
        lines.append(
            f"closure/table geomean over bc-* workloads: "
            f"{closure_geomean:.2f}x"
        )
    return geomean, lines


def _bc_dispatch_ratios(report: Dict) -> Dict[str, float]:
    """Per-workload cg/table ops-per-sec ratios over the ``bc-*`` cells."""
    keyed = _keyed(report)
    ratios: Dict[str, float] = {}
    for (workload, size, system, params), cell in keyed.items():
        if system != "cg" or not workload.startswith("bc-"):
            continue
        twin = keyed.get((workload, size, "cg-table", params))
        if twin is None:
            continue
        cg = cell.get("ops_per_sec") or 0.0
        table = twin.get("ops_per_sec") or 0.0
        if cg and table:
            ratios[workload] = cg / table
    return ratios


def _geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def check_dispatch_floor(current: Dict, baseline: Dict,
                         tolerance: float = 0.25) -> Tuple[bool, List[str]]:
    """Gate the default-dispatch speedup against :data:`DISPATCH_FLOOR`.

    Two checks, matching the harness's split between determinism and
    noise.  The *baseline snapshot* must record a cg/table ``bc-*``
    geomean of at least the floor — the canonical number, measured over
    the full ladder when the snapshot was generated.  The *live* rerun
    is gated per workload against the baseline's own recorded ratio:
    each ``bc-*`` workload present in both reports must reach
    ``baseline_ratio * (1 - tolerance)``.  A cross-workload geomean
    would be meaningless for a live subset grid (``--small`` carries
    only ``bc-list``, whose ratio is structurally the ladder's lowest —
    a geomean floor calibrated on four workloads can never pass on
    one), while the per-workload band compares like with like.  A live
    report with ``bc-*`` cells but no baseline to pair them with falls
    back to the absolute floor with the same tolerance.  Reports with
    no ``bc-*`` ladder cells pass vacuously.
    """
    lines: List[str] = []
    ok = True
    base = _bc_dispatch_ratios(baseline)
    live = _bc_dispatch_ratios(current)
    if base:
        base_geomean = _geomean(base.values())
        verdict = "ok" if base_geomean >= DISPATCH_FLOOR else "FAIL"
        lines.append(
            f"baseline cg/table geomean: {base_geomean:.2f}x "
            f"(floor {DISPATCH_FLOOR:.1f}x) - {verdict}"
        )
        if base_geomean < DISPATCH_FLOOR:
            ok = False
    shared = sorted(set(base) & set(live))
    if shared:
        for workload in shared:
            need = base[workload] * (1.0 - tolerance)
            verdict = "ok" if live[workload] >= need else "FAIL"
            lines.append(
                f"live {workload}: cg/table {live[workload]:.2f}x vs "
                f"baseline {base[workload]:.2f}x "
                f"(floor {need:.2f}x with {tolerance:.0%} noise band)"
                f" - {verdict}"
            )
            if live[workload] < need:
                ok = False
    elif live:
        live_geomean = _geomean(live.values())
        live_floor = DISPATCH_FLOOR * (1.0 - tolerance)
        verdict = "ok" if live_geomean >= live_floor else "FAIL"
        lines.append(
            f"live cg/table geomean: {live_geomean:.2f}x "
            f"(floor {live_floor:.2f}x with {tolerance:.0%} noise band)"
            f" - {verdict}"
        )
        if live_geomean < live_floor:
            ok = False
    if not base and not live:
        lines.append("no bc-* dispatch-ladder cells; floor not applicable")
    return ok, lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Wall-clock benchmark over the (workload, system) grid.",
    )
    parser.add_argument(
        "--small", action="store_true",
        help=f"quick grid ({', '.join(SMALL_WORKLOADS)}) for smoke runs",
    )
    parser.add_argument(
        "--sla", action="store_true",
        help="server-workload tail-latency grid: per-system p50/p99/p999 "
             "request latency and pause histograms over "
             f"{'/'.join(SLA_PATTERNS)} arrival patterns",
    )
    parser.add_argument(
        "--requests", type=int, default=SLA_REQUESTS, metavar="N",
        help=f"requests served per --sla cell (default {SLA_REQUESTS})",
    )
    parser.add_argument(
        "--warmup-curve", action="store_true",
        help="measure the cold-to-peak warmup trajectory per system: "
             "first-iteration wall (cold codegen cache), steady-state "
             "wall, and iterations to reach peak",
    )
    parser.add_argument(
        "--iters", type=int, default=WARMUP_ITERS, metavar="N",
        help=f"iterations per --warmup-curve cell (default {WARMUP_ITERS})",
    )
    parser.add_argument(
        "--workloads", nargs="+", metavar="NAME",
        help="override the workload list",
    )
    parser.add_argument(
        "--systems", nargs="+", metavar="SYS",
        help=f"override the system list (default: {' '.join(DEFAULT_SYSTEMS)})",
    )
    parser.add_argument("--size", type=int, default=1)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per cell; wall time reported is the minimum (default 3)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run the grid through an N-worker pool (default 1: in-process)",
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the JSON report to PATH"
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a baseline report; exit 1 on regression",
    )
    parser.add_argument(
        "--compare", metavar="BASELINE",
        help="trend report vs an older baseline generation (wall/ops-per-sec"
             " deltas + geomean); exit 1 only on >tolerance geomean"
             " wall regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed geomean wall-clock slowdown for --check/--compare"
             " (default 0.25)",
    )
    args = parser.parse_args(argv)

    workloads = tuple(
        args.workloads if args.workloads
        else SMALL_WORKLOADS if args.small
        else DEFAULT_WORKLOADS
    )
    systems = tuple(args.systems) if args.systems else DEFAULT_SYSTEMS

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.warmup_curve:
        curve_workloads = (tuple(args.workloads) if args.workloads
                           else ("bc-loop", "server"))
        curve_systems = (tuple(args.systems) if args.systems
                         else WARMUP_SYSTEMS)
        report = run_warmup_curve(curve_workloads, curve_systems,
                                  size=args.size, iters=args.iters)
        for line in warmup_lines(report):
            print(line)
    elif args.sla:
        sla_systems = tuple(args.systems) if args.systems else SLA_SYSTEMS
        report = run_sla(requests=args.requests, systems=sla_systems,
                         repeats=args.repeats, jobs=args.jobs)
        for line in sla_lines(report):
            print(line)
    else:
        report = run_bench(workloads, systems, size=args.size,
                           repeats=args.repeats, jobs=args.jobs)
        for entry in report["entries"]:
            print(
                f"{entry['workload']:>10s} {entry['system']:<10s} "
                f"{entry['wall_seconds']:.4f}s  "
                f"{entry['ops_per_sec']:>12.0f} ops/s  "
                f"{entry['alloc_search_steps']:>10d} alloc steps  "
                f"{entry.get('compile_ms_first_iter', 0.0):>7.2f} cold / "
                f"{entry.get('compile_ms', 0.0):>6.2f} warm compile_ms"
            )
        speedup, speedup_lines = dispatch_speedup(report)
        for line in speedup_lines:
            print(line)
    if args.out:
        write_bench(args.out, report)
        print(f"[bench] report -> {args.out}", file=sys.stderr)

    failed = False
    if args.compare:
        try:
            older = load_bench(args.compare)
        except (OSError, ValueError) as exc:
            print(f"cannot load trend baseline: {exc}", file=sys.stderr)
            return 2
        ok, lines = trend(report, older, tolerance=args.tolerance)
        for line in lines:
            print(line)
        if not ok:
            print("[bench] trend check FAILED", file=sys.stderr)
            failed = True
        else:
            print("[bench] trend check passed", file=sys.stderr)

    if args.check:
        try:
            baseline = load_bench(args.check)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
        # SLA cells are milliseconds long: wall ratios across executors
        # are pure noise there, so the gate is counter equality only.
        ok, lines = compare(report, baseline, tolerance=args.tolerance,
                            wall_gate=not args.sla)
        floor_ok, floor_lines = check_dispatch_floor(
            report, baseline, tolerance=args.tolerance
        )
        for line in lines + floor_lines:
            print(line)
        if not (ok and floor_ok):
            print("[bench] regression check FAILED", file=sys.stderr)
            failed = True
        else:
            print("[bench] regression check passed", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
