"""Wall-clock benchmark harness with a persistent baseline.

``python -m repro bench`` times the (workload, system) grid end-to-end —
real seconds, not the simulated cost model — and writes a JSON report.
A committed report (``BENCH_3.json`` at the repo root) serves as the
baseline: ``--check BASELINE`` recompares and fails on regression, which
is what the CI smoke job runs.

Two kinds of comparison, deliberately different in strictness:

* **Determinism counters** (``ops``, ``alloc_search_steps``) must match the
  baseline *exactly* — runs are seeded and the VM is deterministic, so any
  drift means a behavior change, not noise.
* **Wall clock** is noisy, so each cell reports the minimum over
  ``--repeats`` runs and the check gates on the *geometric mean* of the
  per-cell current/baseline ratios, failing only beyond ``--tolerance``
  (default 25%).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..api import run as run_workload

#: Grid defaults: the timing-relevant systems (CG, the unmodified base
#: system, and the segregated-fit allocator ablation).
DEFAULT_SYSTEMS = ("cg", "jdk", "cg-segfit")
DEFAULT_WORKLOADS = (
    "compress", "jess", "raytrace", "db", "javac", "mpegaudio", "jack",
)
#: The quick grid used by ``--small`` and the CI smoke job.
SMALL_WORKLOADS = ("jess", "raytrace", "db")

BENCH_VERSION = 3


def run_bench(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    systems: Sequence[str] = DEFAULT_SYSTEMS,
    size: int = 1,
    repeats: int = 3,
) -> Dict:
    """Time every (workload, system) cell; wall time is min over repeats."""
    entries: List[Dict] = []
    for workload in workloads:
        for system in systems:
            best = math.inf
            result = None
            for _ in range(max(1, repeats)):
                started = time.perf_counter()
                result = run_workload(workload, size, system)
                elapsed = time.perf_counter() - started
                best = min(best, elapsed)
            entries.append({
                "workload": workload,
                "size": size,
                "system": system,
                "wall_seconds": best,
                "ops": result.ops,
                "ops_per_sec": result.ops / best if best else 0.0,
                "alloc_search_steps": result.alloc_search_steps,
            })
    return {
        "version": BENCH_VERSION,
        "size": size,
        "repeats": repeats,
        "entries": entries,
    }


def write_bench(path: str, report: Dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_bench(path: str) -> Dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _keyed(report: Dict) -> Dict[Tuple[str, int, str], Dict]:
    return {
        (e["workload"], e["size"], e["system"]): e
        for e in report["entries"]
    }


def compare(current: Dict, baseline: Dict,
            tolerance: float = 0.25) -> Tuple[bool, List[str]]:
    """Compare a fresh report against the committed baseline.

    Returns ``(ok, report_lines)``.  Fails when any shared cell's
    determinism counters drift, or when the geometric-mean wall-clock
    ratio exceeds ``1 + tolerance``.  Cells present in only one report
    are noted but do not fail the check (the grid may legitimately grow).
    """
    lines: List[str] = []
    ok = True
    cur, base = _keyed(current), _keyed(baseline)
    shared = [k for k in base if k in cur]
    for key in base:
        if key not in cur:
            lines.append(f"note: baseline cell {key} not in current run")
    for key in cur:
        if key not in base:
            lines.append(f"note: new cell {key} has no baseline")

    ratios = []
    for key in shared:
        c, b = cur[key], base[key]
        for counter in ("ops", "alloc_search_steps"):
            if c[counter] != b[counter]:
                ok = False
                lines.append(
                    f"FAIL {key}: {counter} drifted "
                    f"{b[counter]} -> {c[counter]} (determinism break)"
                )
        if b["wall_seconds"] > 0 and c["wall_seconds"] > 0:
            ratio = c["wall_seconds"] / b["wall_seconds"]
            ratios.append(ratio)
            lines.append(
                f"{key[0]}/{key[2]}: {b['wall_seconds']:.4f}s -> "
                f"{c['wall_seconds']:.4f}s ({ratio:.2f}x)"
            )
    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        limit = 1.0 + tolerance
        verdict = "ok" if geomean <= limit else "REGRESSION"
        lines.append(
            f"wall-clock geomean ratio: {geomean:.3f} "
            f"(limit {limit:.2f}) - {verdict}"
        )
        if geomean > limit:
            ok = False
    elif shared:
        lines.append("no timed cells to compare")
    return ok, lines


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Wall-clock benchmark over the (workload, system) grid.",
    )
    parser.add_argument(
        "--small", action="store_true",
        help=f"quick grid ({', '.join(SMALL_WORKLOADS)}) for smoke runs",
    )
    parser.add_argument(
        "--workloads", nargs="+", metavar="NAME",
        help="override the workload list",
    )
    parser.add_argument(
        "--systems", nargs="+", metavar="SYS",
        help=f"override the system list (default: {' '.join(DEFAULT_SYSTEMS)})",
    )
    parser.add_argument("--size", type=int, default=1)
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="runs per cell; wall time reported is the minimum (default 3)",
    )
    parser.add_argument(
        "--out", metavar="PATH", help="write the JSON report to PATH"
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a baseline report; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed geomean wall-clock slowdown for --check (default 0.25)",
    )
    args = parser.parse_args(argv)

    workloads = tuple(
        args.workloads if args.workloads
        else SMALL_WORKLOADS if args.small
        else DEFAULT_WORKLOADS
    )
    systems = tuple(args.systems) if args.systems else DEFAULT_SYSTEMS

    report = run_bench(workloads, systems, size=args.size,
                       repeats=args.repeats)
    for entry in report["entries"]:
        print(
            f"{entry['workload']:>10s} {entry['system']:<10s} "
            f"{entry['wall_seconds']:.4f}s  "
            f"{entry['ops_per_sec']:>12.0f} ops/s  "
            f"{entry['alloc_search_steps']:>10d} alloc steps"
        )
    if args.out:
        write_bench(args.out, report)
        print(f"[bench] report -> {args.out}", file=sys.stderr)

    if args.check:
        try:
            baseline = load_bench(args.check)
        except (OSError, ValueError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
        ok, lines = compare(report, baseline, tolerance=args.tolerance)
        for line in lines:
            print(line)
        if not ok:
            print("[bench] regression check FAILED", file=sys.stderr)
            return 1
        print("[bench] regression check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
