"""One generator per table/figure in the paper's evaluation (chapter 4 + appendix A).

Every function returns a :class:`~repro.harness.tables.Table` whose rows
mirror the paper's layout.  Results are cached per (workload, size, system)
so figures that share runs (most of them) don't recompute.

Naming: ``fig4_1`` reproduces Figure 4.1, ``figA_2`` Table A.2, etc.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from ..api import RunResult, config_for, result_from_dict, result_to_dict
from ..api import run as api_run
from ..faults import (
    FaultPlan,
    FaultReport,
    QuarantinedCellError,
)
from ..workloads.base import SIZE_NAMES
from .tables import Table, pct

#: Benchmarks in the paper's table order (Fig. 4.1).
BENCH_ORDER = [
    "compress", "jess", "raytrace", "db", "javac", "mpegaudio", "mtrt", "jack",
]
#: The timing figures (4.7/4.8/4.10) omit mtrt, as the paper does.
TIMING_BENCHES = [b for b in BENCH_ORDER if b != "mtrt"]

_CACHE: Dict[Tuple, RunResult] = {}

#: Cells that exhausted their retries under the parallel harness; reading
#: one raises QuarantinedCellError instead of hanging or recomputing.
_QUARANTINE: Dict[Tuple, FaultReport] = {}

#: Bump when run semantics change in a way that invalidates stored results.
#: v2: keys grew the RuntimeConfig fingerprint (allocator/dispatch/faults).
#: v3: keys grew the workload-params axis.  v4: the tiered-dispatch
#: default flip (fingerprints grew the promotion knobs) — kept in
#: lockstep with :data:`repro.harness.pool.CACHE_VERSION`, which shares
#: these on-disk files.
_CACHE_VERSION = 4

#: Disk cache directory (None disables).  Seeded from the environment so
#: subprocesses and CI jobs can opt in without CLI plumbing.
_RESULT_CACHE_DIR: Optional[Path] = (
    Path(os.environ["REPRO_RESULT_CACHE"])
    if os.environ.get("REPRO_RESULT_CACHE") else None
)

#: Ambient fault plan applied to every cell run through this module (set
#: by the CLI's --faults); workers receive a serialized copy.
_FAULT_PLAN: Optional[FaultPlan] = None


def set_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Arm ``plan`` for all subsequent cached/prefetched runs (None disarms)."""
    global _FAULT_PLAN
    _FAULT_PLAN = plan


#: Ambient per-opcode counting flag (set by the CLI's ``--metrics``): cells
#: run with ``count_opcodes=True`` so the export carries ``vm.op.*``.
#: Observational only, but cached results would silently lack the histogram
#: — so the flag is part of the cell key without entering the fingerprint.
_COUNT_OPCODES = False


def set_opcode_counting(flag: bool) -> None:
    """Run subsequent cells with the per-opcode ``vm.op.*`` histogram."""
    global _COUNT_OPCODES
    _COUNT_OPCODES = bool(flag)


#: Ambient heartbeat settings (set by the CLI's --heartbeat-every/--spool):
#: every cell run through this module — sequentially or in a prefetch
#: worker — spools live snapshots for ``python -m repro inspect --fleet``.
#: Observational only and NOT part of the cell key: a cached cell never
#: re-runs just to heartbeat.
_HEARTBEAT_EVERY: Optional[int] = None
_HEARTBEAT_SPOOL: Optional[str] = None


def set_heartbeat(every: Optional[int], spool: Optional[str] = None) -> None:
    """Spool per-run heartbeats every ``every`` ops (None disarms)."""
    global _HEARTBEAT_EVERY, _HEARTBEAT_SPOOL
    _HEARTBEAT_EVERY = int(every) if every else None
    _HEARTBEAT_SPOOL = spool


def set_result_cache(path: Optional[str]) -> None:
    """Point the persistent result cache at ``path`` (None disables it)."""
    global _RESULT_CACHE_DIR
    _RESULT_CACHE_DIR = Path(path) if path else None


def cell_key(workload: str, size: int, system: str,
             gc_period_ops: Optional[int] = None,
             heap_words: Optional[int] = None,
             plan: Optional[FaultPlan] = None,
             count_opcodes: Optional[bool] = None,
             params: Optional[Dict] = None) -> Tuple:
    """The cache key for one grid cell.

    Includes the full :meth:`RuntimeConfig.fingerprint` of the config the
    cell will run under (allocator, dispatch, CG policy, fault plan, ...),
    so a config change can never serve a stale cached result.  The heap
    size passed to ``config_for`` here is a placeholder: the fingerprint
    deliberately excludes ``heap_words``, which is its own key axis.
    ``count_opcodes`` defaults to the module's ambient flag; the serve
    path passes it explicitly (per-request, no ambient state).
    ``params`` is the workload parameter dict (WorkloadSpec axis): it is
    keyed as canonical sorted JSON so ``{}``/``None`` and key order
    cannot split cache entries.
    """
    config = config_for(system, heap_words or (1 << 20), gc_period_ops)
    config.faults = plan
    flag = _COUNT_OPCODES if count_opcodes is None else bool(count_opcodes)
    return (workload, size, system, gc_period_ops, heap_words,
            config.fingerprint(), flag,
            json.dumps(params or {}, sort_keys=True))


def _cache_file(key: Tuple) -> Optional[Path]:
    if _RESULT_CACHE_DIR is None:
        return None
    digest = hashlib.sha1(
        json.dumps([_CACHE_VERSION, *key]).encode()
    ).hexdigest()
    return _RESULT_CACHE_DIR / f"{digest}.json"


def _disk_load(key: Tuple) -> Optional[RunResult]:
    path = _cache_file(key)
    if path is None or not path.is_file():
        return None
    try:
        with path.open() as fh:
            return result_from_dict(json.load(fh))
    except (ValueError, KeyError, TypeError):
        # Corrupt or stale entry: recompute rather than fail.
        return None


def _disk_store(key: Tuple, result: RunResult) -> None:
    path = _cache_file(key)
    if path is None:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    with tmp.open("w") as fh:
        json.dump(result_to_dict(result), fh)
    tmp.replace(path)


def cached_run(workload: str, size: int, system: str,
               gc_period_ops: Optional[int] = None,
               heap_words: Optional[int] = None) -> RunResult:
    plan = _FAULT_PLAN
    key = cell_key(workload, size, system, gc_period_ops, heap_words, plan)
    if key in _QUARANTINE:
        raise QuarantinedCellError(key, _QUARANTINE[key])
    result = _CACHE.get(key)
    if result is None:
        result = _disk_load(key)
        if result is None:
            result = api_run(
                workload, size, system, gc_period_ops=gc_period_ops,
                heap_words=heap_words, faults=plan,
                count_opcodes=_COUNT_OPCODES,
                heartbeat_every=_HEARTBEAT_EVERY,
                heartbeat_spool=_HEARTBEAT_SPOOL,
            )
            _disk_store(key, result)
        _CACHE[key] = result
    return result


def pressured_heap(workload: str, size: int) -> int:
    """A heap just above the workload's peak live footprint.

    The recycling experiment (section 3.7) only exercises its code path
    once "the first attempt at allocation fails", so Figs. 4.12/4.13 run
    with the heap squeezed to ~112% of the measured live peak.
    """
    peak = cached_run(workload, size, "cg-nogc").peak_live_words
    return max(1024, int(peak * 1.02) + 64)


def clear_cache() -> None:
    _CACHE.clear()
    _QUARANTINE.clear()


def quarantined() -> Dict[Tuple, FaultReport]:
    """Cells quarantined by the parallel harness, with their reports."""
    return dict(_QUARANTINE)


def cached_results() -> List[RunResult]:
    """Every run executed (and cached) so far, in execution order.

    The CLI's ``--metrics`` export reads from here: one record per
    (workload, size, system) cell that generating the requested figures
    actually ran.
    """
    return list(_CACHE.values())


# ---------------------------------------------------------------------------
# Figure 4.1 — collectable objects, without and with the optimization
# ---------------------------------------------------------------------------

def fig4_1(size: int = 1) -> Table:
    """Percentage of objects collectable by CG, no-opt vs with-opt."""
    from ..workloads.base import get_workload

    table = Table(
        f"Fig 4.1 - Collectable objects (size {size})",
        ["benchmark", "description", "lines", "objects", "no opt", "with opt"],
    )
    for name in BENCH_ORDER:
        wl = get_workload(name)
        no_opt = cached_run(name, size, "cg-noopt-nogc")
        with_opt = cached_run(name, size, "cg-nogc")
        table.add_row(
            name,
            wl.description,
            wl.source_lines,
            with_opt.objects_created,
            pct(no_opt.collectable_pct),
            pct(with_opt.collectable_pct),
        )
    return table


# ---------------------------------------------------------------------------
# Figures 4.2/4.3/4.4 — static & thread-shared composition per size
# ---------------------------------------------------------------------------

def fig4_2_3_4(size: int) -> Table:
    """Percentage static / thread-shared / collectable (one figure per size)."""
    number = {1: "4.2", 10: "4.3", 100: "4.4"}[size]
    table = Table(
        f"Fig {number} - Object population (size {size}, {SIZE_NAMES[size]})",
        ["benchmark", "collectable", "static", "thread-shared"],
    )
    for name in BENCH_ORDER:
        r = cached_run(name, size, "cg-nogc")
        table.add_row(
            name, pct(r.collectable_pct), pct(r.static_pct), pct(r.thread_pct)
        )
    return table


# ---------------------------------------------------------------------------
# Figure 4.5 — distribution of equilive block sizes
# ---------------------------------------------------------------------------

def fig4_5(size: int = 1) -> Table:
    table = Table(
        f"Fig 4.5 - Distribution of block sizes (size {size})",
        ["benchmark", "total collectable", "1", "2", "3", "4", "5",
         "6-10", ">10", "percent exact"],
    )
    for name in BENCH_ORDER:
        r = cached_run(name, size, "cg-nogc")
        buckets = r.cg_stats.block_size_buckets()
        table.add_row(
            name,
            r.census["popped"],
            buckets["1"], buckets["2"], buckets["3"], buckets["4"],
            buckets["5"], buckets["6-10"], buckets[">10"],
            pct(r.exact_pct),
        )
    return table


# ---------------------------------------------------------------------------
# Figure 4.6 — age at death (frame distance)
# ---------------------------------------------------------------------------

def fig4_6(size: int = 1) -> Table:
    table = Table(
        f"Fig 4.6 - Age at death of objects we collect (size {size})",
        ["benchmark", "0", "1", "2", "3", "4", "5", ">5"],
    )
    for name in BENCH_ORDER:
        r = cached_run(name, size, "cg-nogc")
        buckets = r.cg_stats.age_buckets()
        table.add_row(
            name,
            buckets["0"], buckets["1"], buckets["2"], buckets["3"],
            buckets["4"], buckets["5"], buckets[">5"],
        )
    return table


# ---------------------------------------------------------------------------
# Figures 4.7/4.8 — timing, CG vs JDK (sizes 1 and 10)
# ---------------------------------------------------------------------------

def fig4_7(size: int = 1) -> Table:
    number = {1: "4.7", 10: "4.8"}[size]
    table = Table(
        f"Fig {number} - Timing results (size {size}, simulated ms)",
        ["benchmark", "CG", "JDK", "speedup", "overhead-only speedup"],
    )
    for name in TIMING_BENCHES:
        cg = cached_run(name, size, "cg")
        jdk = cached_run(name, size, "jdk")
        cg_nogc = cached_run(name, size, "cg-nogc")
        jdk_nogc = cached_run(name, size, "jdk-nogc")
        speedup = jdk.sim_ms / cg.sim_ms if cg.sim_ms else 0.0
        overhead = (
            jdk_nogc.sim_ms / cg_nogc.sim_ms if cg_nogc.sim_ms else 0.0
        )
        table.add_row(
            name, round(cg.sim_ms, 2), round(jdk.sim_ms, 2),
            round(speedup, 2), round(overhead, 2),
        )
    return table


def fig4_8() -> Table:
    return fig4_7(size=10)


# ---------------------------------------------------------------------------
# Figure 4.9 — large runs
# ---------------------------------------------------------------------------

def fig4_9() -> Table:
    table = Table(
        "Fig 4.9 - SPEC benchmarks, large runs (size 100)",
        ["name", "objects created", "collectable with opt", "exactly collectable"],
    )
    for name in BENCH_ORDER:
        r = cached_run(name, 100, "cg-nogc")
        table.add_row(
            name, r.objects_created, pct(r.collectable_pct), pct(r.exact_pct)
        )
    return table


# ---------------------------------------------------------------------------
# Figure 4.10 — speedups across sizes
# ---------------------------------------------------------------------------

def fig4_10(sizes: Tuple[int, ...] = (1, 10, 100)) -> Table:
    table = Table(
        "Fig 4.10 - Speedup of CG over JDK per size",
        ["benchmark"] + [f"size {s}" for s in sizes],
    )
    for name in TIMING_BENCHES:
        cells: List[object] = [name]
        for size in sizes:
            cg = cached_run(name, size, "cg")
            jdk = cached_run(name, size, "jdk")
            cells.append(round(jdk.sim_ms / cg.sim_ms, 2) if cg.sim_ms else 0.0)
        table.add_row(*cells)
    return table


# ---------------------------------------------------------------------------
# Figure 4.11 — resetting results
# ---------------------------------------------------------------------------

def fig4_11(size: int = 1, gc_period_ops: Optional[int] = None) -> Table:
    table = Table(
        f"Fig 4.11 - Resetting results (size {size}, periodic MSA)",
        ["name", "collected by MSA", "less live", "GC cycles"],
    )
    for name in BENCH_ORDER:
        r = cached_run(name, size, "cg-reset", gc_period_ops=gc_period_ops)
        table.add_row(
            name,
            r.cg_stats.collected_by_msa,
            r.cg_stats.less_live,
            r.gc_work.cycles,
        )
    return table


# ---------------------------------------------------------------------------
# Figures 4.12/4.13 — recycling
# ---------------------------------------------------------------------------

def fig4_12(size: int = 1) -> Table:
    table = Table(
        f"Fig 4.12 - Recycle timing (size {size}, simulated ms)",
        ["name", "CG time", "CG with recycling", "speedup using recycling"],
    )
    for name in BENCH_ORDER:
        heap = pressured_heap(name, size)
        cg = cached_run(name, size, "cg", heap_words=heap)
        rec = cached_run(name, size, "cg-recycle", heap_words=heap)
        speedup = cg.sim_ms / rec.sim_ms if rec.sim_ms else 0.0
        table.add_row(
            name, round(cg.sim_ms, 2), round(rec.sim_ms, 2), round(speedup, 2)
        )
    return table


def fig4_13(size: int = 1) -> Table:
    table = Table(
        f"Fig 4.13 - Number of objects recycled (size {size})",
        ["name", "objects recycled", "percent of total"],
    )
    for name in BENCH_ORDER:
        r = cached_run(
            name, size, "cg-recycle", heap_words=pressured_heap(name, size)
        )
        recycled = r.cg_stats.objects_recycled
        share = 100.0 * recycled / r.objects_created if r.objects_created else 0
        table.add_row(name, recycled, f"{share:.2f}")
    return table


# ---------------------------------------------------------------------------
# Appendix A tables
# ---------------------------------------------------------------------------

def figA_1(size: int = 1) -> Table:
    table = Table(
        f"Tab A.1 - Static objects due to thread sharing (size {size})",
        ["benchmark", "total static objects", "percent due to threads"],
    )
    for name in BENCH_ORDER:
        r = cached_run(name, size, "cg-nogc")
        static_total = r.census["static"] + r.census["thread"]
        share = (
            100.0 * r.census["thread"] / static_total if static_total else 0.0
        )
        table.add_row(name, static_total, pct(share))
    return table


def figA_2_3_4(size: int) -> Table:
    number = {1: "A.2", 10: "A.3", 100: "A.4"}[size]
    table = Table(
        f"Tab {number} - Object breakdown ({SIZE_NAMES[size]} runs)",
        ["benchmark", "popped", "static", "thread"],
    )
    for name in BENCH_ORDER:
        r = cached_run(name, size, "cg-nogc")
        table.add_row(
            name, r.census["popped"], r.census["static"], r.census["thread"]
        )
    return table


def figA_5_6_7(size: int, repetitions: int = 5) -> Table:
    """Raw per-run timings (the appendix lists 5 repetitions per benchmark).

    The simulated cost is deterministic, so the five rows per benchmark
    report wall-clock seconds of repeated real runs plus the (constant)
    simulated ms — mirroring the appendix's layout of repeated raw rows.
    """
    number = {1: "A.5", 10: "A.6", 100: "A.7"}[size]
    table = Table(
        f"Tab {number} - SPEC benchmarks, {SIZE_NAMES[size]} runs (raw)",
        ["benchmark", "CG (sim ms)", "JDK (sim ms)", "CG wall s", "JDK wall s"],
    )
    for name in BENCH_ORDER:
        for _ in range(repetitions):
            cg = api_run(name, size, "cg")
            jdk = api_run(name, size, "jdk")
            table.add_row(
                name, round(cg.sim_ms, 3), round(jdk.sim_ms, 3),
                round(cg.wall_seconds, 4), round(jdk.wall_seconds, 4),
            )
    return table


#: Registry used by the CLI and EXPERIMENTS generator.
ALL_FIGURES = {
    "4.1": lambda: fig4_1(1),
    "4.2": lambda: fig4_2_3_4(1),
    "4.3": lambda: fig4_2_3_4(10),
    "4.4": lambda: fig4_2_3_4(100),
    "4.5": lambda: fig4_5(1),
    "4.6": lambda: fig4_6(1),
    "4.7": lambda: fig4_7(1),
    "4.8": lambda: fig4_8(),
    "4.9": lambda: fig4_9(),
    "4.10": lambda: fig4_10(),
    "4.11": lambda: fig4_11(1),
    "4.12": lambda: fig4_12(1),
    "4.13": lambda: fig4_13(1),
    "A.1": lambda: figA_1(1),
    "A.2": lambda: figA_2_3_4(1),
    "A.3": lambda: figA_2_3_4(10),
    "A.4": lambda: figA_2_3_4(100),
    "A.5": lambda: figA_5_6_7(1, repetitions=3),
    "A.6": lambda: figA_5_6_7(10, repetitions=3),
    "A.7": lambda: figA_5_6_7(100, repetitions=2),
}


# ---------------------------------------------------------------------------
# Parallel prefetch
#
# The figure generators above are sequential by construction (each row pulls
# from the shared cache).  ``prefetch`` warms that cache by submitting the
# (workload, size, system) grid to the persistent worker pool
# (:mod:`repro.harness.pool`) first, so a subsequent generator pass is pure
# cache hits.  Figures 4.12/4.13 depend on ``pressured_heap`` — a derived
# heap size read off the ``cg-nogc`` result — so prefetch runs in two waves:
# everything with a statically known config, then the pressured-heap cells.
# The quarantine/timeout/retry machinery that used to live here moved into
# the pool; this module is now a thin client that translates cell keys to
# run requests and pool failures to :data:`_QUARANTINE` entries.
# ---------------------------------------------------------------------------

#: Cells each figure reads, as (system, sizes, benches) patterns.  Figures
#: absent here either need no prefetch (A.5-A.7 time uncached repeated
#: runs) or are handled by the pressured-heap second wave.
_FIGURE_CELLS: Dict[str, List[Tuple[str, Tuple[int, ...], List[str]]]] = {
    "4.1": [("cg-noopt-nogc", (1,), BENCH_ORDER), ("cg-nogc", (1,), BENCH_ORDER)],
    "4.2": [("cg-nogc", (1,), BENCH_ORDER)],
    "4.3": [("cg-nogc", (10,), BENCH_ORDER)],
    "4.4": [("cg-nogc", (100,), BENCH_ORDER)],
    "4.5": [("cg-nogc", (1,), BENCH_ORDER)],
    "4.6": [("cg-nogc", (1,), BENCH_ORDER)],
    "4.7": [(s, (1,), TIMING_BENCHES)
            for s in ("cg", "jdk", "cg-nogc", "jdk-nogc")],
    "4.8": [(s, (10,), TIMING_BENCHES)
            for s in ("cg", "jdk", "cg-nogc", "jdk-nogc")],
    "4.9": [("cg-nogc", (100,), BENCH_ORDER)],
    "4.10": [(s, (1, 10, 100), TIMING_BENCHES) for s in ("cg", "jdk")],
    "4.11": [("cg-reset", (1,), BENCH_ORDER)],
    "A.1": [("cg-nogc", (1,), BENCH_ORDER)],
    "A.2": [("cg-nogc", (1,), BENCH_ORDER)],
    "A.3": [("cg-nogc", (10,), BENCH_ORDER)],
    "A.4": [("cg-nogc", (100,), BENCH_ORDER)],
}

#: Figures whose runs need ``pressured_heap`` (second prefetch wave).
_PRESSURED_FIGURES: Dict[str, List[str]] = {
    "4.12": ["cg", "cg-recycle"],
    "4.13": ["cg-recycle"],
}


def _cell_id(key: Tuple) -> str:
    """Human-readable cell id (``workload:size:system``) for fault specs."""
    return f"{key[0]}:{key[1]}:{key[2]}"


def _request_for(key: Tuple) -> Dict:
    """The serialized run request for one cell key (the pool's wire form).

    key[6] is the parent's _COUNT_OPCODES flag (see cell_key): honouring
    it here keeps pool-computed cells interchangeable with sequential
    ones — a counting key always maps to a result carrying ``vm.op.*``.
    The ambient fault plan and heartbeat settings ride along the same
    way the old worker entry point received them.
    """
    workload, size, system, gc_period_ops, heap_words = key[:5]
    plan = _FAULT_PLAN
    return {
        "workload": workload,
        "size": size,
        "system": system,
        "gc_period_ops": gc_period_ops,
        "heap_words": heap_words,
        "count_opcodes": bool(key[6]) if len(key) > 6 else False,
        "params": json.loads(key[7]) if len(key) > 7 else None,
        "heartbeat_every": _HEARTBEAT_EVERY,
        "heartbeat_spool": _HEARTBEAT_SPOOL,
        "faults": plan.to_dict() if plan is not None else None,
    }


def _spool_quarantine(key: Tuple, report: FaultReport) -> None:
    """Record a quarantined cell in the heartbeat spool (best effort).

    ``repro inspect --fleet`` picks these up so a grid watched from
    another process shows quarantine state, not just silent gaps.
    """
    if _HEARTBEAT_EVERY is None:
        return
    from ..obs.heartbeat import default_spool_dir
    spool = Path(_HEARTBEAT_SPOOL) if _HEARTBEAT_SPOOL else default_spool_dir()
    try:
        spool.mkdir(parents=True, exist_ok=True)
        cell = _cell_id(key).replace("/", "_").replace(":", "-")
        path = spool / f"quarantine-{cell}.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps({
            "cell": _cell_id(key),
            "site": report.site,
            "kind": report.kind,
            "message": report.message,
            "context": report.context,
        }, indent=2))
        os.replace(tmp, path)
    except OSError:
        pass


def _run_wave(keys: List[Tuple], jobs: int,
              cell_timeout: Optional[float] = None, retries: int = 2) -> None:
    """Fill the cache for ``keys``, submitting misses to the worker pool.

    Fault tolerance belongs to the pool now: each cell gets ``1 +
    retries`` attempts (with exponential backoff between rounds) and at
    most ``cell_timeout`` seconds per attempt; a crashed worker is
    replaced and its cell retried.  A cell that exhausts its attempts
    comes back ``failed`` with a :class:`FaultReport` and is quarantined
    here, so the rest of the grid completes and readers get a structured
    error.  No pool is created (or warmed) when every key is already in
    memory or on disk.
    """
    from .pool import get_shared_pool

    misses = []
    for key in keys:
        if key in _CACHE or key in _QUARANTINE:
            continue
        result = _disk_load(key)
        if result is not None:
            _CACHE[key] = result
        else:
            misses.append(key)
    if not misses:
        return
    pool = get_shared_pool(
        jobs,
        cache_dir=str(_RESULT_CACHE_DIR) if _RESULT_CACHE_DIR else None,
        spool=_HEARTBEAT_SPOOL if _HEARTBEAT_EVERY else None,
    )
    pool_jobs = pool.submit_batch(
        [_request_for(key) for key in misses],
        keys=misses, plan=_FAULT_PLAN,
        timeout=cell_timeout, retries=retries,
    )
    pool.wait(pool_jobs)
    for key, job in zip(misses, pool_jobs):
        if job.status == "done":
            _CACHE[key] = result_from_dict(job.result_dict)
        else:
            report = job.report or FaultReport(
                site="harness.worker", kind="crash",
                message=f"cell {_cell_id(key)} lost by the pool",
                context={"cell": _cell_id(key), "attempts": job.attempts},
            )
            _QUARANTINE[key] = report
            _spool_quarantine(key, report)


def prefetch(figure_ids: Iterable[str], jobs: int,
             cell_timeout: Optional[float] = None, retries: int = 2) -> int:
    """Warm the run cache for ``figure_ids`` using ``jobs`` processes.

    Returns the number of cells ensured (cached, computed, or — when a
    fault plan sabotages workers — quarantined).  Unknown figure ids are
    ignored; generators themselves stay sequential.
    """
    plan = _FAULT_PLAN
    wanted = [f for f in figure_ids if f in ALL_FIGURES]
    wave1: List[Tuple] = []
    for fig in wanted:
        for system, sizes, benches in _FIGURE_CELLS.get(fig, []):
            for size in sizes:
                for name in benches:
                    wave1.append(cell_key(name, size, system, plan=plan))
        if fig in _PRESSURED_FIGURES:
            # The pressured-heap figures read the cg-nogc peak first.
            for name in BENCH_ORDER:
                wave1.append(cell_key(name, 1, "cg-nogc", plan=plan))
    wave1 = list(dict.fromkeys(wave1))
    _run_wave(wave1, jobs, cell_timeout=cell_timeout, retries=retries)

    wave2: List[Tuple] = []
    for fig in wanted:
        for system in _PRESSURED_FIGURES.get(fig, []):
            for name in BENCH_ORDER:
                try:
                    heap = pressured_heap(name, 1)
                except QuarantinedCellError:
                    continue  # its cg-nogc seed cell was quarantined
                wave2.append(
                    cell_key(name, 1, system, heap_words=heap, plan=plan)
                )
    wave2 = list(dict.fromkeys(wave2))
    _run_wave(wave2, jobs, cell_timeout=cell_timeout, retries=retries)
    return len(wave1) + len(wave2)
