"""Evaluation harness: run configurations and regenerate the paper's figures."""

from ..api import SYSTEMS, RunResult, config_for
from .costmodel import CostBreakdown, cost_of
from .figures import ALL_FIGURES, cached_run, clear_cache
from .tables import Table, render_all

__all__ = [
    "ALL_FIGURES",
    "CostBreakdown",
    "RunResult",
    "SYSTEMS",
    "Table",
    "cached_run",
    "clear_cache",
    "config_for",
    "cost_of",
    "render_all",
]
