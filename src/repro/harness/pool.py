"""Persistent worker pool: warm VM workers behind a work-stealing scheduler.

Until this module existed the harness was a batch script: ``prefetch``
fanned each figure grid out over a throwaway two-wave
``ProcessPoolExecutor``, respawning cold workers per wave and per
invocation.  The :class:`WorkerPool` replaces that with the shape the
north star needs — a *service*: a fixed set of long-lived worker
processes that absorb a stream of :class:`~repro.api.RunRequest`-shaped
jobs, submitted by the figure prefetcher, the bench harness, ad-hoc
:func:`repro.api.run_many` callers, and the socket ``serve`` mode (see
:mod:`repro.harness.serve`) alike.

Scheduler
    A single shared pending deque plus one local deque per worker.
    Batch submissions (:meth:`WorkerPool.submit_batch`) shard round-robin
    across the local deques for locality; ad-hoc submissions land on the
    shared deque.  An idle worker takes from its own local deque first,
    then the shared deque, and finally *steals from the back* of the
    most-loaded peer's local deque — so a skewed grid (one worker stuck
    with the slow cells) rebalances instead of straggling.

Single-flight, twice
    In-process, jobs are deduplicated by cache key: a second
    ``submit(key=K)`` while ``K`` is pending/running returns the same
    :class:`PoolJob`.  Across processes, the on-disk result cache
    (:class:`ResultCache`, the same files ``figures`` always wrote) is
    guarded by a per-entry ``flock``: a worker that misses takes the
    entry lock, re-checks, computes, stores, releases — two pools on one
    cache directory never run the same cell twice.

Crash tolerance
    The quarantine/timeout/retry machinery that PR 4 built into
    ``figures._run_wave`` lives here now, so it applies to *every*
    submission path.  A worker that dies (including a deliberate
    ``harness.worker:crash`` injection, which ``os._exit``\\ s the worker)
    is detected via its process sentinel, its in-flight job is charged a
    failed attempt, and a replacement worker is spawned; a job that
    exhausts ``1 + retries`` attempts fails with a structured
    :class:`~repro.faults.FaultReport` (and a ``quarantine-<cell>.json``
    spool record when a spool is armed).  Hangs are bounded by a
    per-job timeout: the worker is killed and replaced the same way.

Warm starts
    Workers pre-import ``repro.workloads``, ``repro.jvm``, and
    ``repro.api`` at spawn, so the first job pays no import tax;
    :meth:`WorkerPool.warmup` primes every worker and returns their pids
    (the live-worker invariant tests assert a second submission reuses a
    pid from that set).

Observability
    When a spool directory is armed the pool publishes a
    ``pool-<pid>.json`` status file (workers, pids, jobs done, steals,
    replacements) next to the workers' heartbeat run files, so
    ``python -m repro inspect --fleet`` renders the pool as a live
    service, not a pile of anonymous processes.
"""

from __future__ import annotations

import atexit
import hashlib
import json
import os
import threading
import time
import warnings
from collections import deque
from contextlib import contextmanager
from multiprocessing import connection as mp_connection
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

try:  # POSIX only; the cache degrades to lock-free writes elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from ..faults import FaultPlan, FaultReport

#: Bump when run semantics change in a way that invalidates stored
#: results.  v2: keys grew the RuntimeConfig fingerprint (this is the
#: same versioning — and the same on-disk files — as the figure cache
#: this class was promoted from).  v3: keys grew the workload-params
#: axis (WorkloadSpec) and results the ``params``/``latency`` sections.
#: v4: the tiered-dispatch default flip (RuntimeConfig fingerprints grew
#: ``promote_after``/``promote_backedge_weight``) plus the request-level
#: ``cold_start`` wire field and the ``compile_ms`` latency percentiles.
CACHE_VERSION = 4

#: Retry backoff base (seconds); attempt N becomes eligible again after
#: ``base * 2**(N-1)``, capped at 2s.
BACKOFF_BASE = 0.1
BACKOFF_CAP = 2.0

#: Dispatcher tick when nothing else bounds the wait (seconds).
_TICK = 0.05


# ---------------------------------------------------------------------------
# The shared result cache (cross-process, file-locked, single-flight)
# ---------------------------------------------------------------------------

class ResultCache:
    """The on-disk result cache, promoted to a cross-process shared cache.

    Entries are the exact files :mod:`repro.harness.figures` always wrote
    (``sha1([CACHE_VERSION, *key]).json`` holding a
    :func:`~repro.api.result_to_dict` payload), so existing caches stay
    valid.  What is new is the concurrency contract: writes go through a
    temp file + ``os.replace`` (atomic), and :meth:`lock` takes a
    per-entry ``flock`` so concurrent pools single-flight each cell —
    the lock holder computes, everyone else re-checks the entry after
    the lock drops.  A crashed holder releases the flock with its
    process, so the cache can never deadlock.
    """

    def __init__(self, root: "os.PathLike[str]") -> None:
        self.root = Path(root)

    def path_for(self, key: Tuple) -> Path:
        digest = hashlib.sha1(
            json.dumps([CACHE_VERSION, *key]).encode()
        ).hexdigest()
        return self.root / f"{digest}.json"

    def load(self, key: Tuple) -> Optional[Dict]:
        path = self.path_for(key)
        try:
            with path.open() as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def store(self, key: Tuple, result_dict: Dict) -> None:
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            with tmp.open("w") as fh:
                json.dump(result_dict, fh)
            tmp.replace(path)
        except OSError:
            # A full disk or vanished directory costs a recompute later,
            # never the run that just finished.
            pass

    @contextmanager
    def lock(self, key: Tuple):
        """Hold the per-entry flock (single-flight across processes)."""
        if fcntl is None:
            yield
            return
        lock_path = self.path_for(key).with_suffix(".lock")
        try:
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            fh = open(lock_path, "a+")
        except OSError:
            yield
            return
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
            fh.close()


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------

def request_cell_id(request: Dict) -> str:
    """Human-readable cell id (``workload:size:system``) for a request."""
    return (f"{request.get('workload', '?')}:{request.get('size', '?')}"
            f":{request.get('system', '?')}")


class PoolJob:
    """One submission: a serialized run request plus its lifecycle state.

    Terminal states are ``done`` (``result_dict`` holds the
    :func:`~repro.api.result_to_dict` payload) and ``failed``
    (``report`` holds the :class:`~repro.faults.FaultReport` that
    quarantined it).  ``wait`` blocks until terminal; callbacks fire
    exactly once, from the dispatcher thread.
    """

    __slots__ = (
        "job_id", "key", "request", "plan", "timeout", "retries",
        "cache_dir", "status", "attempts", "result_dict", "report",
        "cached", "pid", "wall_seconds", "eligible_at",
        "_event", "_callbacks",
    )

    def __init__(self, job_id: int, request: Dict, *,
                 key: Optional[Tuple] = None,
                 plan: Optional[FaultPlan] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 cache_dir: Optional[str] = None) -> None:
        self.job_id = job_id
        self.key = key
        self.request = dict(request)
        self.plan = plan
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.cache_dir = cache_dir
        self.status = "pending"
        self.attempts = 0
        self.result_dict: Optional[Dict] = None
        self.report: Optional[FaultReport] = None
        self.cached = False
        self.pid: Optional[int] = None
        self.wall_seconds: Optional[float] = None
        self.eligible_at = 0.0
        self._event = threading.Event()
        self._callbacks: List = []

    @property
    def cell_id(self) -> str:
        return request_cell_id(self.request)

    @property
    def done(self) -> bool:
        return self.status in ("done", "failed")

    def wait(self, timeout: Optional[float] = None) -> "PoolJob":
        self._event.wait(timeout)
        return self

    def add_done_callback(self, fn) -> None:
        """Run ``fn(job)`` once the job is terminal (immediately if it is)."""
        fire = False
        if self.done:
            fire = True
        else:
            self._callbacks.append(fn)
            if self.done and fn in self._callbacks:  # lost the race
                self._callbacks.remove(fn)
                fire = True
        if fire:
            fn(self)

    def _finish(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        self._event.set()
        for fn in callbacks:
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - observers never kill the pool
                pass

    def __repr__(self) -> str:
        return (f"<PoolJob #{self.job_id} {self.cell_id} {self.status}"
                f" attempts={self.attempts}>")


# ---------------------------------------------------------------------------
# The worker side (runs in the child process)
# ---------------------------------------------------------------------------

#: Modules a worker imports once at spawn so the first job pays no
#: import/compile tax (the "warm VM" half of the warm-worker story).
WARM_IMPORTS = ("repro.workloads", "repro.jvm", "repro.api")


def _warm_imports() -> None:
    import importlib

    for name in WARM_IMPORTS:
        importlib.import_module(name)


def execute_request(request: Dict, *, key: Optional[Tuple] = None,
                    cache_dir: Optional[str] = None) -> Tuple[Dict, bool, float]:
    """The worker's leaf: run one request, through the shared cache.

    Returns ``(result_dict, cached, wall_seconds)``.  With a cache armed
    the sequence is load → lock → re-check → compute → store, which is
    the cross-process single-flight: whoever holds the entry lock
    computes, everyone else finds the entry on re-check.
    """
    from ..api import execute, request_from_dict, result_to_dict

    cache = ResultCache(cache_dir) if cache_dir and key is not None else None
    if cache is not None:
        hit = cache.load(key)
        if hit is not None:
            return hit, True, 0.0

    def compute() -> Tuple[Dict, float]:
        started = time.perf_counter()
        result = execute(request_from_dict(request))
        wall = time.perf_counter() - started
        return result_to_dict(result), wall

    if cache is None:
        data, wall = compute()
        return data, False, wall
    with cache.lock(key):
        hit = cache.load(key)
        if hit is not None:
            return hit, True, 0.0
        data, wall = compute()
        cache.store(key, data)
    return data, False, wall


def _apply_injection(inject: Optional[Dict]) -> None:
    """Honor a ``harness.worker`` sabotage inside the worker process.

    ``crash`` is a *real* crash — ``os._exit`` — because the pool's
    whole point is that a dead worker is detected and replaced; ``hang``
    sleeps (so per-job timeouts and patient waits both get exercised)
    and then proceeds.
    """
    if not inject:
        return
    if inject["kind"] == "hang":
        time.sleep(float(inject.get("seconds", 2.0)))
        return
    os._exit(3)


def _worker_main(worker_id: int, conn,
                 codegen_dir: Optional[str] = None) -> None:
    """Worker loop: recv a message, act, reply.  Lives until ``stop``."""
    from ..faults import FaultError

    if codegen_dir:
        # Arm the persistent codegen cache: warm workers (and their
        # replacements) skip per-method source generation for any method
        # a sibling already compiled.  Same flock discipline as the
        # ResultCache, so concurrent pools single-flight each entry.
        from ..jvm.compiledcode import set_codegen_cache_dir

        set_codegen_cache_dir(codegen_dir)
    _warm_imports()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        kind = msg[0]
        if kind == "stop":
            try:
                conn.send(("bye", worker_id))
            except (BrokenPipeError, OSError):
                pass
            return
        if kind == "warmup":
            conn.send(("warm", worker_id, os.getpid()))
            continue
        # ("job", job_id, request, key, cache_dir, inject)
        _, job_id, request, key, cache_dir, inject = msg
        try:
            _apply_injection(inject)
            data, cached, wall = execute_request(
                request, key=key, cache_dir=cache_dir
            )
            conn.send(("done", worker_id, job_id, data, cached,
                       os.getpid(), wall))
        except FaultError as exc:
            conn.send(("error", worker_id, job_id,
                       exc.report.to_dict(), os.getpid()))
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            report = FaultReport(
                site="harness.worker", kind="crash",
                message=f"{type(exc).__name__}: {exc}",
                context={"cell": request_cell_id(request)},
            )
            try:
                conn.send(("error", worker_id, job_id,
                           report.to_dict(), os.getpid()))
            except (BrokenPipeError, OSError):
                return


# ---------------------------------------------------------------------------
# The pool
# ---------------------------------------------------------------------------

def _mp_context():
    import multiprocessing as mp

    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


class _Worker:
    """Parent-side handle: process + duplex pipe + scheduling state."""

    __slots__ = ("worker_id", "proc", "conn", "job", "deadline", "jobs_done")

    def __init__(self, worker_id: int, ctx,
                 codegen_dir: Optional[str] = None) -> None:
        self.worker_id = worker_id
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main, args=(worker_id, child_conn, codegen_dir),
            name=f"repro-pool-{worker_id}", daemon=True,
        )
        with warnings.catch_warnings():
            # Forking from the dispatcher thread trips 3.12's
            # fork-with-threads DeprecationWarning; the child only ever
            # touches its own fresh pipe, so the hazard does not apply.
            warnings.simplefilter("ignore", DeprecationWarning)
            proc.start()
        child_conn.close()
        self.proc = proc
        self.conn = parent_conn
        self.job: Optional[PoolJob] = None
        self.deadline: Optional[float] = None
        self.jobs_done = 0

    @property
    def idle(self) -> bool:
        return self.job is None

    @property
    def pid(self) -> Optional[int]:
        return self.proc.pid

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, AttributeError):
            pass
        try:
            self.proc.join(timeout=1.0)
        except (OSError, AssertionError):
            pass
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerPool:
    """A persistent pool of warm VM workers with work-stealing scheduling.

    Thread-safe: ``submit``/``submit_batch``/``warmup`` may be called
    from any thread (the socket server calls them from per-connection
    threads); one background dispatcher thread owns all scheduling.
    """

    def __init__(self, jobs: int = 2, *,
                 cache_dir: Optional[str] = None,
                 spool: Optional[str] = None,
                 retries: int = 2,
                 cell_timeout: Optional[float] = None) -> None:
        if jobs < 1:
            raise ValueError("a pool needs at least one worker")
        self.jobs = int(jobs)
        self.cache_dir = str(cache_dir) if cache_dir else None
        # A result cache implies a sibling codegen cache: workers compile
        # the same hot methods, so they share generated sources on disk.
        self.codegen_dir = (str(Path(self.cache_dir) / "codegen")
                            if self.cache_dir else None)
        self.spool = Path(spool) if spool else None
        self.default_retries = retries
        self.default_timeout = cell_timeout

        self._ctx = _mp_context()
        self._lock = threading.RLock()
        self._shared: deque = deque()
        self._local: List[deque] = [deque() for _ in range(self.jobs)]
        self._inflight: Dict[Tuple, PoolJob] = {}
        self._next_job_id = 0
        self._next_shard = 0
        self._warm_pending: Dict[int, threading.Event] = {}
        self._warm_sent: set = set()
        self._warm_pids: Dict[int, int] = {}

        self.steals = 0
        self.completed = 0
        self.failed = 0
        self.replaced = 0

        self._wake_r, self._wake_w = os.pipe()
        self._stop = threading.Event()
        self._workers: List[_Worker] = [
            _Worker(i, self._ctx, self.codegen_dir)
            for i in range(self.jobs)
        ]
        self._dispatcher = threading.Thread(
            target=self._loop, name="repro-pool-dispatcher", daemon=True,
        )
        self._dispatcher.start()
        self._publish_status()
        atexit.register(self.shutdown)

    # -- submission ------------------------------------------------------

    def submit(self, request: Dict, *,
               key: Optional[Tuple] = None,
               plan: Optional[FaultPlan] = None,
               timeout: Optional[float] = None,
               retries: Optional[int] = None,
               shard: Optional[int] = None) -> PoolJob:
        """Queue one request; returns its :class:`PoolJob`.

        ``key`` (a hashable cache key) turns on single-flight: a second
        submit of the same key while the first is in flight returns the
        *same* job.  ``shard`` pins the job onto worker ``shard``'s local
        deque (stealing may still move it); None uses the shared deque.
        """
        with self._lock:
            if key is not None:
                existing = self._inflight.get(key)
                if existing is not None:
                    return existing
            self._next_job_id += 1
            job = PoolJob(
                self._next_job_id, request, key=key, plan=plan,
                timeout=self.default_timeout if timeout is None else timeout,
                retries=(self.default_retries if retries is None
                         else retries),
                cache_dir=self.cache_dir,
            )
            if key is not None:
                self._inflight[key] = job
            if shard is None:
                self._shared.append(job)
            else:
                self._local[shard % self.jobs].append(job)
        self._wake()
        return job

    def submit_batch(self, requests: Sequence[Dict], *,
                     keys: Optional[Sequence[Optional[Tuple]]] = None,
                     plan: Optional[FaultPlan] = None,
                     timeout: Optional[float] = None,
                     retries: Optional[int] = None) -> List[PoolJob]:
        """Queue a grid, sharded round-robin across worker-local deques."""
        out: List[PoolJob] = []
        for i, request in enumerate(requests):
            key = keys[i] if keys is not None else None
            with self._lock:
                shard = self._next_shard
                self._next_shard = (self._next_shard + 1) % self.jobs
            out.append(self.submit(
                request, key=key, plan=plan, timeout=timeout,
                retries=retries, shard=shard,
            ))
        return out

    def wait(self, jobs: Sequence[PoolJob],
             timeout: Optional[float] = None) -> bool:
        """Block until every job is terminal; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for job in jobs:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            job.wait(remaining)
            if not job.done:
                return False
        return True

    def run(self, requests: Sequence[Dict], **kwargs) -> List[PoolJob]:
        """``submit_batch`` + ``wait``: the grid-at-once convenience."""
        jobs = self.submit_batch(requests, **kwargs)
        self.wait(jobs)
        return jobs

    # -- warmup ----------------------------------------------------------

    def warmup(self, timeout: float = 30.0) -> Dict[int, int]:
        """Prime every worker; returns ``{worker_id: pid}`` of live workers."""
        events: Dict[int, threading.Event] = {}
        with self._lock:
            self._warm_pids.clear()
            for worker in self._workers:
                event = threading.Event()
                events[worker.worker_id] = event
                self._warm_pending[worker.worker_id] = event
        self._wake()
        deadline = time.monotonic() + timeout
        for event in events.values():
            event.wait(max(0.0, deadline - time.monotonic()))
        with self._lock:
            return dict(self._warm_pids)

    # -- introspection ---------------------------------------------------

    def worker_pids(self) -> List[int]:
        with self._lock:
            return [w.pid for w in self._workers if w.pid is not None]

    def stats(self) -> Dict:
        with self._lock:
            return {
                "pid": os.getpid(),
                "jobs": self.jobs,
                "workers": [
                    {
                        "id": w.worker_id,
                        "pid": w.pid,
                        "state": "idle" if w.idle else "busy",
                        "cell": w.job.cell_id if w.job else None,
                        "jobs_done": w.jobs_done,
                    }
                    for w in self._workers
                ],
                "queued": (len(self._shared)
                           + sum(len(d) for d in self._local)),
                "completed": self.completed,
                "failed": self.failed,
                "steals": self.steals,
                "replaced": self.replaced,
            }

    # -- shutdown --------------------------------------------------------

    def shutdown(self, timeout: float = 2.0) -> None:
        """Stop the dispatcher and reap every worker.  Idempotent."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._wake()
        self._dispatcher.join(timeout=timeout)
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.proc.join(timeout=timeout)
            if worker.proc.is_alive():
                worker.kill()
            else:
                try:
                    worker.conn.close()
                except OSError:
                    pass
        # Fail anything still queued or running so waiters never hang.
        with self._lock:
            leftovers = [j for j in self._drain_queues() if not j.done]
            for worker in self._workers:
                if worker.job is not None and not worker.job.done:
                    leftovers.append(worker.job)
                    worker.job = None
        for job in leftovers:
            job.status = "failed"
            job.report = FaultReport(
                site="harness.worker", kind="crash",
                message="pool shut down before the job ran",
                context={"cell": job.cell_id, "attempts": job.attempts},
            )
            job._finish()
        self._publish_status(final=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- dispatcher internals (single thread) ----------------------------

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _drain_queues(self) -> List[PoolJob]:
        jobs = list(self._shared)
        self._shared.clear()
        for local in self._local:
            jobs.extend(local)
            local.clear()
        return jobs

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._reap_messages()
            self._reap_deaths_and_timeouts()
            self._assign()
            self._wait_for_events()
        # Drain the wake pipe on the way out.
        try:
            os.close(self._wake_r)
            os.close(self._wake_w)
        except OSError:
            pass

    def _wait_for_events(self) -> None:
        with self._lock:
            waitables: List = [self._wake_r]
            timeout = _TICK
            now = time.monotonic()
            for worker in self._workers:
                waitables.append(worker.conn)
                waitables.append(worker.proc.sentinel)
                if worker.deadline is not None:
                    timeout = min(timeout, max(0.0, worker.deadline - now))
            for q in (self._shared, *self._local):
                for job in q:
                    if job.eligible_at > now:
                        timeout = min(timeout,
                                      max(0.0, job.eligible_at - now))
        try:
            ready = mp_connection.wait(waitables, timeout=timeout)
        except OSError:
            ready = []
        if self._wake_r in ready:
            try:
                os.read(self._wake_r, 4096)
            except OSError:
                pass

    def _reap_messages(self) -> None:
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            while True:
                try:
                    if not worker.conn.poll():
                        break
                    msg = worker.conn.recv()
                except (EOFError, OSError):
                    break  # death handled by the sentinel pass
                self._handle_message(worker, msg)

    def _handle_message(self, worker: _Worker, msg: Tuple) -> None:
        kind = msg[0]
        if kind == "warm":
            _, worker_id, pid = msg
            with self._lock:
                self._warm_pids[worker_id] = pid
                self._warm_sent.discard(worker_id)
                event = self._warm_pending.pop(worker_id, None)
            if event is not None:
                event.set()
            return
        if kind == "bye":
            return
        if kind == "done":
            _, _, job_id, data, cached, pid, wall = msg
            job = worker.job
            if job is None or job.job_id != job_id:
                return
            with self._lock:
                worker.job = None
                worker.deadline = None
                worker.jobs_done += 1
                self.completed += 1
                if job.key is not None:
                    self._inflight.pop(job.key, None)
            job.result_dict = data
            job.cached = bool(cached)
            job.pid = pid
            job.wall_seconds = wall
            job.status = "done"
            job._finish()
            self._publish_status()
            return
        if kind == "error":
            _, _, job_id, report_dict, pid = msg
            job = worker.job
            if job is None or job.job_id != job_id:
                return
            with self._lock:
                worker.job = None
                worker.deadline = None
            report = FaultReport(**report_dict)
            job.pid = pid
            self._job_attempt_failed(job, report)

    def _reap_deaths_and_timeouts(self) -> None:
        now = time.monotonic()
        with self._lock:
            workers = list(self._workers)
        for worker in workers:
            if not worker.proc.is_alive():
                self._replace_worker(worker, reason="crash")
            elif (worker.deadline is not None and now > worker.deadline):
                worker.kill()
                self._replace_worker(worker, reason="hang")

    def _replace_worker(self, worker: _Worker, reason: str) -> None:
        job = worker.job
        with self._lock:
            try:
                index = self._workers.index(worker)
            except ValueError:
                return  # already replaced
            exitcode = worker.proc.exitcode
            worker.kill()
            self._workers[index] = _Worker(worker.worker_id, self._ctx,
                                           self.codegen_dir)
            self.replaced += 1
            self._warm_sent.discard(worker.worker_id)
            event = self._warm_pending.pop(worker.worker_id, None)
        if event is not None:
            event.set()  # warmup never hangs on a dead worker
        if job is not None:
            if reason == "hang":
                message = (f"worker pid={worker.pid} timed out after "
                           f"{job.timeout:g}s on cell {job.cell_id}")
            else:
                message = (f"worker pid={worker.pid} died "
                           f"(exit {exitcode}) running cell {job.cell_id}")
            report = FaultReport(
                site="harness.worker", kind=reason, message=message,
                context={"cell": job.cell_id},
            )
            self._job_attempt_failed(job, report)
        else:
            self._publish_status()

    def _job_attempt_failed(self, job: PoolJob, report: FaultReport) -> None:
        job.attempts += 1
        report.context = dict(report.context, cell=job.cell_id,
                              attempts=job.attempts)
        if job.attempts > job.retries:
            with self._lock:
                if job.key is not None:
                    self._inflight.pop(job.key, None)
                self.failed += 1
            job.report = report
            job.status = "failed"
            self._record_quarantine(job, report)
            job._finish()
        else:
            backoff = min(BACKOFF_CAP,
                          BACKOFF_BASE * (2 ** (job.attempts - 1)))
            job.eligible_at = time.monotonic() + backoff
            job.status = "pending"
            with self._lock:
                self._shared.append(job)
        self._publish_status()

    def _assign(self) -> None:
        now = time.monotonic()
        with self._lock:
            # Outstanding warm probes first (the dispatcher owns all pipe
            # writes, so warmup() only registers intent).
            for worker in self._workers:
                if (worker.worker_id in self._warm_pending
                        and worker.worker_id not in self._warm_sent):
                    try:
                        worker.conn.send(("warmup",))
                        self._warm_sent.add(worker.worker_id)
                    except (BrokenPipeError, OSError):
                        pass  # the sentinel pass will replace it
            for worker in self._workers:
                if not worker.idle or not worker.proc.is_alive():
                    continue
                job = self._take_job_for(worker, now)
                if job is None:
                    continue
                inject = None
                if job.plan is not None:
                    spec = job.plan.worker_injection(job.cell_id,
                                                     job.attempts)
                    if spec is not None:
                        inject = {"kind": spec.kind,
                                  "seconds": spec.seconds,
                                  "cell": job.cell_id,
                                  "attempt": job.attempts}
                try:
                    worker.conn.send((
                        "job", job.job_id, job.request, job.key,
                        job.cache_dir, inject,
                    ))
                except (BrokenPipeError, OSError):
                    # The worker died between polls; the sentinel pass
                    # will replace it.  Requeue rather than charging an
                    # attempt the job never got.
                    self._shared.appendleft(job)
                    continue
                job.status = "running"
                worker.job = job
                worker.deadline = (None if job.timeout is None
                                   else now + job.timeout)

    def _take_job_for(self, worker: _Worker,
                      now: float) -> Optional[PoolJob]:
        """Local deque first, then shared, then steal from the busiest peer."""
        def pop_eligible(dq: deque, from_back: bool) -> Optional[PoolJob]:
            for _ in range(len(dq)):
                job = dq.pop() if from_back else dq.popleft()
                if job.eligible_at <= now:
                    return job
                if from_back:
                    dq.appendleft(job)
                else:
                    dq.append(job)
            return None

        job = pop_eligible(self._local[worker.worker_id], from_back=False)
        if job is not None:
            return job
        job = pop_eligible(self._shared, from_back=False)
        if job is not None:
            return job
        victim = max(
            (d for d in self._local if d is not self._local[worker.worker_id]),
            key=len, default=None,
        )
        if victim:
            job = pop_eligible(victim, from_back=True)
            if job is not None:
                self.steals += 1
                return job
        return None

    # -- spool publication ----------------------------------------------

    def _record_quarantine(self, job: PoolJob, report: FaultReport) -> None:
        """Spool a quarantine record for ``repro inspect --fleet``."""
        if self.spool is None:
            return
        try:
            self.spool.mkdir(parents=True, exist_ok=True)
            cell = job.cell_id.replace("/", "_").replace(":", "-")
            path = self.spool / f"quarantine-{cell}.json"
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps({
                "cell": job.cell_id,
                "site": report.site,
                "kind": report.kind,
                "message": report.message,
                "context": report.context,
            }, indent=2))
            os.replace(tmp, path)
        except OSError:
            pass

    def _publish_status(self, final: bool = False) -> None:
        """Atomically rewrite ``pool-<pid>.json`` in the spool (best effort)."""
        if self.spool is None:
            return
        status = self.stats()
        status["kind"] = "pool"
        status["phase"] = "final" if final else "serving"
        status["time"] = time.time()
        try:
            self.spool.mkdir(parents=True, exist_ok=True)
            path = self.spool / f"pool-{os.getpid()}.json"
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(json.dumps(status, indent=2, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            pass


# ---------------------------------------------------------------------------
# The shared pool (one per process, reused across prefetch/bench/api calls)
# ---------------------------------------------------------------------------

_SHARED: Optional[WorkerPool] = None


def get_shared_pool(jobs: int, *,
                    cache_dir: Optional[str] = None,
                    spool: Optional[str] = None) -> WorkerPool:
    """The process-wide pool, created on first use and kept warm.

    Reused while the requested worker count matches; asking for a
    different ``jobs`` tears the old pool down and builds a fresh one
    (the harness CLI only ever runs one ``--jobs`` setting per process).
    ``cache_dir``/``spool`` updates are applied to the live pool — they
    only affect jobs submitted afterwards.
    """
    global _SHARED
    if _SHARED is not None and (_SHARED.jobs != jobs
                                or _SHARED._stop.is_set()):
        _SHARED.shutdown()
        _SHARED = None
    if _SHARED is None:
        _SHARED = WorkerPool(jobs, cache_dir=cache_dir, spool=spool)
    else:
        _SHARED.cache_dir = str(cache_dir) if cache_dir else None
        # The live workers keep whatever codegen dir they were born with
        # (re-arming would need a respawn); only new replacements see it.
        _SHARED.codegen_dir = (str(Path(_SHARED.cache_dir) / "codegen")
                               if _SHARED.cache_dir else None)
        _SHARED.spool = Path(spool) if spool else None
    return _SHARED


def shutdown_shared_pool() -> None:
    """Tear down the process-wide pool (tests and clean exits)."""
    global _SHARED
    if _SHARED is not None:
        _SHARED.shutdown()
        _SHARED = None
