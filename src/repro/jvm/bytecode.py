"""The VM's instruction set.

A compact stack-machine subset of JVM semantics, sufficient for the paper:
the CG-relevant instructions (``new``, ``putfield``, ``putstatic``,
``areturn``, ``aastore``) have faithful semantics; the rest exist so real
programs (the worked example of Fig. 2.2, the Fig. 3.1 thread example, the
bytecode workloads and tests) can be written.

Opcodes are plain module-level integers — the interpreter dispatches through
a list indexed by opcode, and tuples ``(op, a, b)`` are the instruction
representation (see :mod:`repro.jvm.model`).  The closure tier
(:mod:`repro.jvm.closurecode`) compiles these tuples once per method into
pre-bound Python closures, so an opcode added here needs a handler in all
five dispatch tiers — the parity corpus in ``tests/jvm/test_dispatch.py``
fails if any tier is forgotten.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

_NAMES: List[str] = []


def _op(name: str) -> int:
    _NAMES.append(name)
    return len(_NAMES) - 1


# --- constants and locals -------------------------------------------------
CONST = _op("const")            # push literal (int/float); a = value
ACONST_NULL = _op("aconst_null")
LDC_STR = _op("ldc_str")        # allocate a String object; a = contents
LOAD = _op("load")              # push locals[a]
STORE = _op("store")            # locals[a] = pop
IINC = _op("iinc")              # locals[a] += b

# --- operand stack ----------------------------------------------------------
DUP = _op("dup")
POP = _op("pop")
SWAP = _op("swap")

# --- objects and arrays ------------------------------------------------------
NEW = _op("new")                # a = class name; push new instance
NEWARRAY = _op("newarray")      # pop length; push new array
GETFIELD = _op("getfield")      # pop obj; push obj.a
PUTFIELD = _op("putfield")      # pop value, obj; obj.a = value   [CG event]
GETSTATIC = _op("getstatic")    # a = "Class.field"; push static
PUTSTATIC = _op("putstatic")    # a = "Class.field"; pop value    [CG event]
AALOAD = _op("aaload")          # pop index, array; push array[index]
AASTORE = _op("aastore")        # pop value, index, array         [CG event]
ARRAYLENGTH = _op("arraylength")
INSTANCEOF = _op("instanceof")  # pop obj; push 1 if instance of class a
INTERN = _op("intern")          # pop String; push canonical      [CG event]

# --- invocation ---------------------------------------------------------------
INVOKESTATIC = _op("invokestatic")    # a = "Class.method" (exact)
INVOKEVIRTUAL = _op("invokevirtual")  # a = method name; receiver dispatch
RETURN = _op("return")                # return void
RETVAL = _op("retval")                # return TOS                [CG event if ref]
SPAWN = _op("spawn")                  # a = method name; pop receiver; start thread

# --- arithmetic (untyped: Python numerics) --------------------------------------
ADD = _op("add")
SUB = _op("sub")
MUL = _op("mul")
DIV = _op("div")      # integer division when both ints
MOD = _op("mod")
NEG = _op("neg")

# --- control flow ------------------------------------------------------------
GOTO = _op("goto")              # a = target pc
IFZERO = _op("ifzero")          # pop; jump if == 0
IFNZERO = _op("ifnzero")
IFNULL = _op("ifnull")          # pop; jump if null
IFNONNULL = _op("ifnonnull")
IF_ICMPEQ = _op("if_icmpeq")    # pop b, a; jump if a == b
IF_ICMPNE = _op("if_icmpne")
IF_ICMPLT = _op("if_icmplt")
IF_ICMPLE = _op("if_icmple")
IF_ICMPGT = _op("if_icmpgt")
IF_ICMPGE = _op("if_icmpge")
IF_ACMPEQ = _op("if_acmpeq")    # reference identity
IF_ACMPNE = _op("if_acmpne")

OP_COUNT = len(_NAMES)

#: opcode -> mnemonic.
OPCODE_NAMES: Tuple[str, ...] = tuple(_NAMES)

#: mnemonic -> opcode (used by the assembler).
OPCODES_BY_NAME: Dict[str, int] = {name: op for op, name in enumerate(_NAMES)}

#: Mnemonics whose single operand is a branch target label.
BRANCH_OPS = frozenset(
    op
    for op, name in enumerate(_NAMES)
    if name.startswith(("if", "goto"))
)


def disassemble(code: List[Tuple[int, object, object]]) -> str:
    """Human-readable listing (for error messages and docs)."""
    lines = []
    for pc, (op, a, b) in enumerate(code):
        operands = " ".join(
            ".".join(x) if type(x) is tuple else repr(x)
            for x in (a, b) if x is not None
        )
        lines.append(f"{pc:4d}  {OPCODE_NAMES[op]} {operands}".rstrip())
    return "\n".join(lines)
