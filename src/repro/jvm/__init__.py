"""The VM substrate: heap, frames, threads, interpreter, assembler."""

from .assembler import assemble
from .errors import (
    ArrayIndexError,
    AssemblerError,
    IllegalStateError,
    LinkageError,
    NullPointerError,
    OutOfMemoryError,
    UseAfterCollect,
    VerifyError,
    VMError,
)
from .frames import CallStack, Frame, FrameIdSource, StaticFrame
from .heap import (
    HANDLE_WORDS_CG_SQUEEZED,
    HANDLE_WORDS_CG_WIDE,
    HANDLE_WORDS_JDK,
    FreeList,
    Handle,
    Heap,
)
from .model import JClass, JMethod, Program
from .mutator import Mutator
from .natives import NativeEnv, NativeRegistry
from .runtime import Runtime, RuntimeConfig
from .strings import InternTable
from .threads import JThread, Scheduler

__all__ = [
    "ArrayIndexError",
    "AssemblerError",
    "CallStack",
    "Frame",
    "FrameIdSource",
    "FreeList",
    "HANDLE_WORDS_CG_SQUEEZED",
    "HANDLE_WORDS_CG_WIDE",
    "HANDLE_WORDS_JDK",
    "Handle",
    "Heap",
    "IllegalStateError",
    "InternTable",
    "JClass",
    "JMethod",
    "JThread",
    "LinkageError",
    "Mutator",
    "NativeEnv",
    "NativeRegistry",
    "NullPointerError",
    "OutOfMemoryError",
    "Program",
    "Runtime",
    "RuntimeConfig",
    "Scheduler",
    "StaticFrame",
    "UseAfterCollect",
    "VMError",
    "VerifyError",
    "assemble",
]
