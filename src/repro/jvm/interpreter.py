"""The bytecode interpreter.

A straightforward threaded-dispatch loop in the spirit of Sun's C reference
interpreter (the system the thesis modified).  The CG-relevant instructions
delegate to the runtime services, which raise the collector events; the
interpreter itself only moves values between locals, operand stacks, and the
heap.

Threading: :meth:`Interpreter.run_program` drives the deterministic
round-robin scheduler — each runnable thread executes up to a quantum of
instructions before rotating, so cross-thread sharing (section 3.3) is both
exercised and reproducible.  Native methods run inline in the invoking
thread; when native code calls back into Java (``NativeEnv.call``), the
callee runs synchronously on the same thread via :meth:`call_sync`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, TYPE_CHECKING

from ..obs.profile import PHASE_INTERPRET
from . import bytecode as bc
from .errors import NullPointerError, VerifyError, VMError
from .heap import Handle
from .model import JMethod, Program
from .natives import NativeEnv
from .threads import JThread

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime

#: Sentinel for "this method returned no value".
VOID = object()


class Interpreter:
    """Executes bytecode methods on a runtime's threads."""

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        self.instructions_executed = 0
        #: Per-thread stack of frame depths acting as sync-call boundaries:
        #: a return at a marked depth delivers its value to ``_sync_results``
        #: instead of the caller's operand stack (native callbacks).
        self._sync_marks: Dict[int, List[int]] = {}
        self._sync_results: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run_program(self, qualified: str, args: List[object]) -> object:
        """Run ``qualified`` on the main thread; interleave spawned threads."""
        runtime = self.runtime
        self._push_call(runtime.main_thread, qualified, args)
        scheduler = runtime.scheduler
        quantum = runtime.config.quantum
        while True:
            thread = scheduler.next_thread()
            if thread is None:
                break
            self.step_n(thread, quantum)
        return runtime.main_thread.result

    def call_sync(self, thread: JThread, qualified: str,
                  args: List[object]) -> object:
        """Run one call to completion on ``thread`` (no interleaving)."""
        frame = self._push_call(thread, qualified, args)
        if frame is None:
            # Native fast path: _push_call already ran it.
            return self._sync_results.pop(thread.thread_id, None)
        marks = self._sync_marks.setdefault(thread.thread_id, [])
        marks.append(frame.depth)
        base = frame.depth
        while thread.stack.depth > base:
            self.step_n(thread, 4096, stop_depth=base)
        return self._sync_results.pop(thread.thread_id, None)

    # ------------------------------------------------------------------
    # Invocation plumbing
    # ------------------------------------------------------------------

    def _push_call(self, thread: JThread, qualified: str,
                   args: List[object]):
        method = self.runtime.program.resolve(qualified)
        if len(args) != method.nargs:
            raise VerifyError(
                f"{qualified} expects {method.nargs} args, got {len(args)}"
            )
        if method.native is not None:
            result = self._run_native(thread, method, list(args))
            self._sync_results[thread.thread_id] = (
                None if result is VOID else result
            )
            return None
        return self._push_frame(thread, method, list(args))

    def _push_frame(self, thread: JThread, method: JMethod, args: List[object]):
        frame = self.runtime.push_frame(thread, method, nlocals=method.nlocals)
        for i, value in enumerate(args):
            frame.locals[i] = value
        return frame

    def _run_native(self, thread: JThread, method: JMethod,
                    args: List[object]) -> object:
        env = NativeEnv(self.runtime, thread)
        result = method.native(env, args)
        if isinstance(result, Handle):
            # A reference crossing the native boundary cannot be tied to a
            # frame the collector can see (section 3.3).
            if self.runtime.collector is not None:
                self.runtime.collector.on_native_escape(result)
        return result

    def _return(self, thread: JThread, value: object) -> None:
        frame = self.runtime.pop_frame(thread)
        marks = self._sync_marks.get(thread.thread_id)
        if marks and marks[-1] == frame.depth:
            marks.pop()
            self._sync_results[thread.thread_id] = (
                None if value is VOID else value
            )
            return
        if thread.stack.frames:
            if value is not VOID:
                thread.stack.frames[-1].stack.append(value)
        else:
            thread.result = None if value is VOID else value

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------

    def step_n(self, thread: JThread, budget: int, stop_depth: int = 0) -> int:
        """Execute up to ``budget`` instructions on ``thread``.

        Returns the number of instructions actually executed (less than the
        budget when the thread's stack drains down to ``stop_depth`` — used
        by :meth:`call_sync` so a native callback doesn't run past its own
        caller's frame).
        """
        runtime = self.runtime
        executed = 0
        frames = thread.stack.frames
        profiler = runtime.profiler
        if profiler.enabled:
            # One clock pair per quantum, attributed to the entry depth —
            # the per-depth profile is a poor man's flamegraph over the
            # shadow stack at quantum resolution, not per instruction.
            profile_started = perf_counter()
            profile_depth = len(frames)
        while executed < budget and len(frames) > stop_depth:
            frame = frames[-1]
            method = frame.method
            code = method.code
            if frame.pc >= len(code):
                # Fell off the end: implicit return void.
                self._return(thread, VOID)
                executed += 1
                continue
            op, a, b = code[frame.pc]
            frame.pc += 1
            executed += 1
            runtime.tick()
            stack = frame.stack
            tid = thread.thread_id

            if op == bc.CONST:
                stack.append(a)
            elif op == bc.LOAD:
                stack.append(frame.locals[a])
            elif op == bc.STORE:
                frame.locals[a] = stack.pop()
            elif op == bc.ACONST_NULL:
                stack.append(None)
            elif op == bc.GETFIELD:
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(f"getfield {a} on null")
                stack.append(runtime.load_field(obj, a, thread))
            elif op == bc.PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(f"putfield {a} on null")
                runtime.store_field(obj, a, value, thread)
            elif op == bc.NEW:
                stack.append(runtime.allocate(a, thread))
            elif op == bc.NEWARRAY:
                length = stack.pop()
                stack.append(
                    runtime.allocate(Program.ARRAY, thread, length=length)
                )
            elif op == bc.AALOAD:
                index = stack.pop()
                array = stack.pop()
                if array is None:
                    raise NullPointerError("aaload on null array")
                stack.append(runtime.load_element(array, index, thread))
            elif op == bc.AASTORE:
                value = stack.pop()
                index = stack.pop()
                array = stack.pop()
                if array is None:
                    raise NullPointerError("aastore on null array")
                runtime.store_element(array, index, value, thread)
            elif op == bc.ARRAYLENGTH:
                array = stack.pop()
                if array is None:
                    raise NullPointerError("arraylength on null")
                runtime.access(array, thread)
                stack.append(array.length)
            elif op == bc.GETSTATIC:
                cls_name, field = a.rsplit(".", 1)
                cls = runtime.program.lookup(cls_name)
                stack.append(runtime.load_static(field, cls))
            elif op == bc.PUTSTATIC:
                cls_name, field = a.rsplit(".", 1)
                cls = runtime.program.lookup(cls_name)
                runtime.store_static(field, stack.pop(), cls)
            elif op == bc.INVOKESTATIC:
                method_callee = runtime.program.resolve(a)
                self._invoke(thread, frame, method_callee)
            elif op == bc.INVOKEVIRTUAL:
                nargs = b
                if nargs < 1:
                    raise VerifyError("invokevirtual needs a receiver")
                receiver = frame.stack[-nargs]
                if receiver is None:
                    raise NullPointerError(f"invokevirtual {a} on null")
                runtime.access(receiver, thread)
                method_callee = receiver.cls.resolve_method(a)
                if method_callee.nargs != nargs:
                    raise VerifyError(
                        f"{method_callee.qualified_name} takes "
                        f"{method_callee.nargs} args, call site passes {nargs}"
                    )
                self._invoke(thread, frame, method_callee)
            elif op == bc.RETVAL:
                value = stack.pop()
                if isinstance(value, Handle):
                    runtime.return_reference(value, thread)
                self._return(thread, value)
            elif op == bc.RETURN:
                self._return(thread, VOID)
            elif op == bc.SPAWN:
                nargs = b if b is not None else 1
                args = [stack.pop() for _ in range(nargs)][::-1]
                receiver = args[0]
                if receiver is None:
                    raise NullPointerError(f"spawn {a} on null receiver")
                method_callee = receiver.cls.resolve_method(a)
                if method_callee.nargs != nargs:
                    raise VerifyError(
                        f"spawn: {method_callee.qualified_name} takes "
                        f"{method_callee.nargs} args, got {nargs}"
                    )
                # Thread.start() crosses the native boundary in the JDK, and
                # the spawning frame may pop before the new thread ever
                # touches its arguments — so every reference handed to the
                # new thread is pinned as thread-shared immediately
                # (section 3.3's conservative treatment).
                if runtime.collector is not None:
                    from ..core.stats import CAUSE_SHARED

                    for arg in args:
                        if isinstance(arg, Handle):
                            runtime.collector.pin_static(arg, CAUSE_SHARED)
                new_thread = runtime.new_thread()
                self._push_frame(new_thread, method_callee, args)
            elif op == bc.LDC_STR:
                stack.append(runtime.new_string(a, thread))
            elif op == bc.INTERN:
                string = stack.pop()
                if string is None:
                    raise NullPointerError("intern on null")
                runtime.access(string, thread)
                stack.append(runtime.intern(string))
            elif op == bc.INSTANCEOF:
                obj = stack.pop()
                stack.append(self._instanceof(obj, a))
            elif op == bc.DUP:
                stack.append(stack[-1])
            elif op == bc.POP:
                stack.pop()
            elif op == bc.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op == bc.ADD:
                y = stack.pop()
                stack[-1] = stack[-1] + y
            elif op == bc.SUB:
                y = stack.pop()
                stack[-1] = stack[-1] - y
            elif op == bc.MUL:
                y = stack.pop()
                stack[-1] = stack[-1] * y
            elif op == bc.DIV:
                y = stack.pop()
                x = stack.pop()
                if isinstance(x, int) and isinstance(y, int):
                    stack.append(int(x / y) if y != 0 else self._div_zero())
                else:
                    stack.append(x / y)
            elif op == bc.MOD:
                y = stack.pop()
                x = stack.pop()
                stack.append(x - int(x / y) * y if y != 0 else self._div_zero())
            elif op == bc.NEG:
                stack[-1] = -stack[-1]
            elif op == bc.IINC:
                frame.locals[a] += b
            elif op == bc.GOTO:
                frame.pc = a
            elif op == bc.IFZERO:
                if stack.pop() == 0:
                    frame.pc = a
            elif op == bc.IFNZERO:
                if stack.pop() != 0:
                    frame.pc = a
            elif op == bc.IFNULL:
                if stack.pop() is None:
                    frame.pc = a
            elif op == bc.IFNONNULL:
                if stack.pop() is not None:
                    frame.pc = a
            elif op == bc.IF_ICMPEQ:
                y = stack.pop()
                if stack.pop() == y:
                    frame.pc = a
            elif op == bc.IF_ICMPNE:
                y = stack.pop()
                if stack.pop() != y:
                    frame.pc = a
            elif op == bc.IF_ICMPLT:
                y = stack.pop()
                if stack.pop() < y:
                    frame.pc = a
            elif op == bc.IF_ICMPLE:
                y = stack.pop()
                if stack.pop() <= y:
                    frame.pc = a
            elif op == bc.IF_ICMPGT:
                y = stack.pop()
                if stack.pop() > y:
                    frame.pc = a
            elif op == bc.IF_ICMPGE:
                y = stack.pop()
                if stack.pop() >= y:
                    frame.pc = a
            elif op == bc.IF_ACMPEQ:
                y = stack.pop()
                if stack.pop() is y:
                    frame.pc = a
            elif op == bc.IF_ACMPNE:
                y = stack.pop()
                if stack.pop() is not y:
                    frame.pc = a
            else:  # pragma: no cover - assembler can't emit unknown ops
                raise VerifyError(f"unknown opcode {op}")
        self.instructions_executed += executed
        if profiler.enabled:
            elapsed = perf_counter() - profile_started
            profiler.add(PHASE_INTERPRET, elapsed)
            profiler.charge_depth(profile_depth, elapsed)
        return executed

    # ------------------------------------------------------------------

    def _invoke(self, thread: JThread, frame, method: JMethod) -> None:
        nargs = method.nargs
        args = frame.stack[len(frame.stack) - nargs:] if nargs else []
        del frame.stack[len(frame.stack) - nargs:]
        if method.native is not None:
            # Convention: natives return VOID for "no value"; anything else
            # (including None, a legitimate null) is pushed for the caller.
            result = self._run_native(thread, method, args)
            if result is not VOID:
                frame.stack.append(result)
            return
        self._push_frame(thread, method, args)

    @staticmethod
    def _div_zero():
        raise VMError("integer division by zero")

    def _instanceof(self, obj, cls_name: str) -> int:
        if obj is None:
            return 0
        if not isinstance(obj, Handle):
            return 0
        cls = obj.cls
        while cls is not None:
            if cls.name == cls_name:
                return 1
            cls = cls.superclass
        return 0
