"""The bytecode interpreter.

A table-driven dispatch loop in the spirit of Sun's C reference interpreter
(the system the thesis modified): each opcode indexes a tuple of handler
functions, replacing the original if/elif chain whose average cost grew with
the opcode's position.  The CG-relevant instructions delegate to the runtime
services, which raise the collector events; the interpreter itself only
moves values between locals, operand stacks, and the heap.

Five dispatch tiers share this file's runtime services and must produce
identical stats on every program (the opcode-parity differential suite is
the oracle): ``tiered`` (the default — profile-guided: methods start in
the closure tier under a per-method invocation + loop-backedge hotness
counter and are promoted to the compiled tier at a call boundary once
hot, see :meth:`Interpreter._step_n_tiered`), ``compiled`` (every method
compiled up front to generated Python source with guard-protected
speculation and deopt to the closure tier,
:mod:`repro.jvm.compiledcode`), ``closure`` (per-method closure
compilation with quickening and superinstruction fusion,
:mod:`repro.jvm.closurecode`), ``table`` (the loop below), and ``chain``
(the original if/elif reference, retained via
``RuntimeConfig(dispatch="chain")``).

Threading: :meth:`Interpreter.run_program` drives the deterministic
round-robin scheduler — each runnable thread executes up to a quantum of
instructions before rotating, so cross-thread sharing (section 3.3) is both
exercised and reproducible.  Native methods run inline in the invoking
thread; when native code calls back into Java (``NativeEnv.call``), the
callee runs synchronously on the same thread via :meth:`call_sync`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from ..faults import NativeCallFault, TrapFault, did_you_mean, inject
from ..obs.profile import PHASE_CODEGEN, PHASE_COMPILE, PHASE_INTERPRET
from . import bytecode as bc
from .errors import NullPointerError, VerifyError, VMError
from .heap import Handle
from .model import JClass, JMethod, Program
from .natives import NativeEnv
from .runtime import DISPATCH_CHOICES
from .threads import JThread

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime

#: Sentinel for "this method returned no value".
VOID = object()


# ---------------------------------------------------------------------------
# Opcode handlers (table dispatch)
#
# One module-level function per opcode, uniform signature
# ``(interp, runtime, thread, frame, a, b)``.  The driving loop has already
# advanced ``frame.pc`` past the instruction, so branch handlers simply
# overwrite it.  Handlers are plain functions (not methods) so the dispatch
# table costs one tuple index plus one call — no bound-method creation.
# ---------------------------------------------------------------------------


def _h_const(interp, runtime, thread, frame, a, b):
    frame.stack.append(a)


def _h_aconst_null(interp, runtime, thread, frame, a, b):
    frame.stack.append(None)


def _h_ldc_str(interp, runtime, thread, frame, a, b):
    frame.stack.append(runtime.new_string(a, thread))


def _h_load(interp, runtime, thread, frame, a, b):
    frame.stack.append(frame.locals[a])


def _h_store(interp, runtime, thread, frame, a, b):
    frame.locals[a] = frame.stack.pop()


def _h_iinc(interp, runtime, thread, frame, a, b):
    frame.locals[a] += b


def _h_dup(interp, runtime, thread, frame, a, b):
    frame.stack.append(frame.stack[-1])


def _h_pop(interp, runtime, thread, frame, a, b):
    frame.stack.pop()


def _h_swap(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    stack[-1], stack[-2] = stack[-2], stack[-1]


def _h_new(interp, runtime, thread, frame, a, b):
    frame.stack.append(runtime.allocate(a, thread))


def _h_newarray(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    length = stack.pop()
    stack.append(runtime.allocate(Program.ARRAY, thread, length=length))


def _h_getfield(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    obj = stack.pop()
    if obj is None:
        raise NullPointerError(f"getfield {a} on null")
    stack.append(runtime.load_field(obj, a, thread))


def _h_putfield(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    value = stack.pop()
    obj = stack.pop()
    if obj is None:
        raise NullPointerError(f"putfield {a} on null")
    runtime.store_field(obj, a, value, thread)


def _h_getstatic(interp, runtime, thread, frame, a, b):
    try:
        cls, field = interp._static_refs[a]
    except KeyError:
        cls, field = interp._resolve_static(a)
    frame.stack.append(runtime.load_static(field, cls))


def _h_putstatic(interp, runtime, thread, frame, a, b):
    try:
        cls, field = interp._static_refs[a]
    except KeyError:
        cls, field = interp._resolve_static(a)
    runtime.store_static(field, frame.stack.pop(), cls)


def _h_aaload(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    index = stack.pop()
    array = stack.pop()
    if array is None:
        raise NullPointerError("aaload on null array")
    stack.append(runtime.load_element(array, index, thread))


def _h_aastore(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    value = stack.pop()
    index = stack.pop()
    array = stack.pop()
    if array is None:
        raise NullPointerError("aastore on null array")
    runtime.store_element(array, index, value, thread)


def _h_arraylength(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    array = stack.pop()
    if array is None:
        raise NullPointerError("arraylength on null")
    runtime.access(array, thread)
    stack.append(array.length)


def _h_instanceof(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    obj = stack.pop()
    stack.append(interp._instanceof(obj, a))


def _h_intern(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    string = stack.pop()
    if string is None:
        raise NullPointerError("intern on null")
    runtime.access(string, thread)
    stack.append(runtime.intern(string))


def _h_invokestatic(interp, runtime, thread, frame, a, b):
    interp._invoke(thread, frame, runtime.program.resolve(a))


def _h_invokevirtual(interp, runtime, thread, frame, a, b):
    nargs = b
    if nargs < 1:
        raise VerifyError("invokevirtual needs a receiver")
    receiver = frame.stack[-nargs]
    if receiver is None:
        raise NullPointerError(f"invokevirtual {a} on null")
    runtime.access(receiver, thread)
    method = receiver.cls.resolve_method(a)
    if method.nargs != nargs:
        raise VerifyError(
            f"{method.qualified_name} takes "
            f"{method.nargs} args, call site passes {nargs}"
        )
    interp._invoke(thread, frame, method)


def _h_return(interp, runtime, thread, frame, a, b):
    interp._return(thread, VOID)


def _h_retval(interp, runtime, thread, frame, a, b):
    value = frame.stack.pop()
    if isinstance(value, Handle):
        runtime.return_reference(value, thread)
    interp._return(thread, value)


def _h_spawn(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    nargs = b if b is not None else 1
    args = [stack.pop() for _ in range(nargs)][::-1]
    receiver = args[0]
    if receiver is None:
        raise NullPointerError(f"spawn {a} on null receiver")
    method = receiver.cls.resolve_method(a)
    if method.nargs != nargs:
        raise VerifyError(
            f"spawn: {method.qualified_name} takes "
            f"{method.nargs} args, got {nargs}"
        )
    # Thread.start() crosses the native boundary in the JDK, and the
    # spawning frame may pop before the new thread ever touches its
    # arguments — so every reference handed to the new thread is pinned
    # as thread-shared immediately (section 3.3's conservative treatment).
    if runtime.collector is not None:
        from ..core.stats import CAUSE_SHARED

        for arg in args:
            if isinstance(arg, Handle):
                runtime.collector.pin_static(arg, CAUSE_SHARED)
    new_thread = runtime.new_thread()
    interp._push_frame(new_thread, method, args)


def _h_add(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    stack[-1] = stack[-1] + y


def _h_sub(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    stack[-1] = stack[-1] - y


def _h_mul(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    stack[-1] = stack[-1] * y


def _h_div(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    x = stack.pop()
    if isinstance(x, int) and isinstance(y, int):
        stack.append(int(x / y) if y != 0 else _div_zero())
    else:
        stack.append(x / y)


def _h_mod(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    x = stack.pop()
    stack.append(x - int(x / y) * y if y != 0 else _div_zero())


def _h_neg(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    stack[-1] = -stack[-1]


def _h_goto(interp, runtime, thread, frame, a, b):
    frame.pc = a


def _h_ifzero(interp, runtime, thread, frame, a, b):
    if frame.stack.pop() == 0:
        frame.pc = a


def _h_ifnzero(interp, runtime, thread, frame, a, b):
    if frame.stack.pop() != 0:
        frame.pc = a


def _h_ifnull(interp, runtime, thread, frame, a, b):
    if frame.stack.pop() is None:
        frame.pc = a


def _h_ifnonnull(interp, runtime, thread, frame, a, b):
    if frame.stack.pop() is not None:
        frame.pc = a


def _h_if_icmpeq(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    if stack.pop() == y:
        frame.pc = a


def _h_if_icmpne(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    if stack.pop() != y:
        frame.pc = a


def _h_if_icmplt(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    if stack.pop() < y:
        frame.pc = a


def _h_if_icmple(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    if stack.pop() <= y:
        frame.pc = a


def _h_if_icmpgt(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    if stack.pop() > y:
        frame.pc = a


def _h_if_icmpge(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    if stack.pop() >= y:
        frame.pc = a


def _h_if_acmpeq(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    if stack.pop() is y:
        frame.pc = a


def _h_if_acmpne(interp, runtime, thread, frame, a, b):
    stack = frame.stack
    y = stack.pop()
    if stack.pop() is not y:
        frame.pc = a


def _div_zero():
    raise VMError("integer division by zero")


_HANDLER_BY_NAME = {
    "const": _h_const,
    "aconst_null": _h_aconst_null,
    "ldc_str": _h_ldc_str,
    "load": _h_load,
    "store": _h_store,
    "iinc": _h_iinc,
    "dup": _h_dup,
    "pop": _h_pop,
    "swap": _h_swap,
    "new": _h_new,
    "newarray": _h_newarray,
    "getfield": _h_getfield,
    "putfield": _h_putfield,
    "getstatic": _h_getstatic,
    "putstatic": _h_putstatic,
    "aaload": _h_aaload,
    "aastore": _h_aastore,
    "arraylength": _h_arraylength,
    "instanceof": _h_instanceof,
    "intern": _h_intern,
    "invokestatic": _h_invokestatic,
    "invokevirtual": _h_invokevirtual,
    "return": _h_return,
    "retval": _h_retval,
    "spawn": _h_spawn,
    "add": _h_add,
    "sub": _h_sub,
    "mul": _h_mul,
    "div": _h_div,
    "mod": _h_mod,
    "neg": _h_neg,
    "goto": _h_goto,
    "ifzero": _h_ifzero,
    "ifnzero": _h_ifnzero,
    "ifnull": _h_ifnull,
    "ifnonnull": _h_ifnonnull,
    "if_icmpeq": _h_if_icmpeq,
    "if_icmpne": _h_if_icmpne,
    "if_icmplt": _h_if_icmplt,
    "if_icmple": _h_if_icmple,
    "if_icmpgt": _h_if_icmpgt,
    "if_icmpge": _h_if_icmpge,
    "if_acmpeq": _h_if_acmpeq,
    "if_acmpne": _h_if_acmpne,
}

#: Opcode-indexed handler table.  Built from the mnemonic map so a missing
#: or misspelt entry fails at import time, not mid-run.
_HANDLERS: Tuple = tuple(_HANDLER_BY_NAME[name] for name in bc.OPCODE_NAMES)
assert len(_HANDLERS) == bc.OP_COUNT


class Interpreter:
    """Executes bytecode methods on a runtime's threads."""

    def __init__(self, runtime: "Runtime") -> None:
        self.runtime = runtime
        self.instructions_executed = 0
        #: static-ref operand -> (JClass, field name).  Operands are the
        #: assembler's pre-split ``(class, field)`` tuples (or legacy
        #: ``"Class.field"`` strings from hand-built code); both are
        #: hashable, so one dict serves as the resolution cache.
        self._static_refs: Dict[object, Tuple[JClass, str]] = {}
        #: Per-thread stack of frame depths acting as sync-call boundaries:
        #: a return at a marked depth delivers its value to ``_sync_results``
        #: instead of the caller's operand stack (native callbacks).
        self._sync_marks: Dict[int, List[int]] = {}
        self._sync_results: Dict[int, object] = {}
        config = runtime.config
        #: Per-opcode execution histogram (``count_opcodes`` mode only).
        self.count_ops: bool = config.count_opcodes
        self.op_counts: Optional[List[int]] = (
            [0] * bc.OP_COUNT if self.count_ops else None
        )
        #: JMethod -> CompiledMethod for the closure tier.  Per-interpreter:
        #: compiled closures bind this runtime's services.
        self._ccache: Dict[JMethod, object] = {}
        #: JMethod -> PyCompiledMethod for the compiled tier (the generated
        #: Python form; its closure-tier form lives in ``_ccache``).
        self._pycache: Dict[JMethod, object] = {}
        #: Out-parameter cells for the compiled tier's generated functions.
        #: ``[0]``: on an exception, the instructions retired before the
        #: raise (re-entrant: every raise path *adds* its count just-in-time
        #: and each driving-loop level consumes its value before
        #: re-raising).  ``[1]``: implicit end-of-code returns retired
        #: inside a threaded call (:meth:`_call_threaded`) — counted but
        #: never ticked; each driver reads and re-zeroes it after every
        #: generated-``run`` call.
        self._nout: List[int] = [0, 0]
        #: Tiered dispatch (profile-guided promotion) state.  ``_hotness``
        #: maps cold methods to their hotness score (driver visits plus
        #: weighted loop backedges); crossing ``promote_after`` promotes
        #: the method to the compiled tier at its next call boundary.
        #: ``_deopts`` counts guard deopts per promoted method;
        #: ``_promoted_visits``/``_recompiled`` drive the one-shot
        #: adaptive-cap recompile (see :meth:`_step_n_tiered`).  All of it
        #: is wall-time-only bookkeeping: promotion swaps *which*
        #: parity-equal loop runs a method, never what it counts.
        self._hotness: Dict[JMethod, int] = {}
        self._promoted_visits: Dict[JMethod, int] = {}
        self._deopts: Dict[JMethod, int] = {}
        self._recompiled: set = set()
        #: Methods whose first tiered visit already probed the codegen
        #: caches (memory + disk) for a ready-made compiled form.  One
        #: probe per method, ever: a hit promotes immediately (codegen is
        #: free, so the hotness threshold has nothing left to decide), a
        #: miss falls back to the profile-and-promote path.
        self._cache_probed: set = set()
        self._promote_after: int = config.promote_after
        self._backedge_weight: int = config.promote_backedge_weight
        #: Always-on compile accounting, independent of the profiler: wall
        #: seconds and method counts for the one-time closure-compile and
        #: codegen paths.  Feeds ``vm.compile.*`` metrics, the snapshot
        #: ``compile`` section, and the bench compile_ms split — cheap
        #: (two perf_counter calls per *method*, not per instruction), so
        #: unprofiled runs keep their counters bit-identical.
        self.compile_seconds: float = 0.0
        self.codegen_seconds: float = 0.0
        self.methods_compiled: int = 0
        self.methods_codegenned: int = 0
        self.methods_promoted: int = 0
        self.methods_recompiled: int = 0
        #: Persistent codegen-cache traffic (incremented by
        #: :mod:`repro.jvm.compiledcode` when a disk cache is armed).
        self.codegen_cache_hits: int = 0
        self.codegen_cache_misses: int = 0
        dispatch = config.dispatch
        if dispatch not in DISPATCH_CHOICES:
            # RuntimeConfig validates at construction; this catches
            # post-construction mutation (config.dispatch = "typo") and
            # hand-built configs, which previously fell through silently
            # to table dispatch.
            raise ValueError(
                f"dispatch must be one of {DISPATCH_CHOICES}, got {dispatch!r}"
                f"{did_you_mean(dispatch, DISPATCH_CHOICES)}"
            )
        #: Superinstruction fusion is enabled only where the batched closure
        #: loop runs: with a periodic-GC trigger or a heartbeat armed every
        #: instruction must tick individually (both fire at exact op
        #: counts), and in counting mode every instruction must be
        #: observed individually.  (Fault budget slicing is fine — the
        #: weights mechanism keeps fused pairs inside every budget slice.)
        #: The compiled tier never fuses: its deopt path single-steps
        #: closure slots one instruction at a time, and a fused slot would
        #: retire two instructions charged as one there.  The tiered mode
        #: inherits that rule — its cold closure segments become the
        #: compiled tier's deopt targets after promotion, so they must be
        #: unfused from the start.
        self._fuse = (
            dispatch == "closure"
            and not runtime._tick_per_op
            and not self.count_ops
        )
        if self.count_ops:
            # Counting loops tick per instruction; with no periodic-GC
            # trigger tick() is a pure counter bump, so the observable
            # results stay bit-identical to the batched loops.  Chain
            # dispatch counts via the table loop (they are parity-equal);
            # the compiled and tiered tiers count via the closure loop
            # (per-opcode observation needs per-instruction dispatch
            # anyway, and promotion would only change wall time).
            self.step_n = (
                self._step_n_closure_counting
                if dispatch in ("closure", "compiled", "tiered")
                else self._step_n_table_counting
            )
        elif dispatch == "chain":
            self.step_n = self._step_n_chain
        elif dispatch == "closure":
            self.step_n = (
                self._step_n_closure if not runtime._tick_per_op
                else self._step_n_closure_tick
            )
        elif dispatch == "compiled":
            # Per-instruction-tick modes (gc_period_ops / heartbeat) need
            # control at every instruction boundary — generated blocks
            # would deopt at every pc, so run the closure tick loop
            # wholesale instead (bit-identical by the parity suite).
            self.step_n = (
                self._step_n_compiled if not runtime._tick_per_op
                else self._step_n_closure_tick
            )
        elif dispatch == "tiered":
            # Same per-instruction-tick escape hatch as the compiled
            # tier: with gc_period_ops or a heartbeat armed, promotion
            # could only ever reach code that deopts at every pc, so the
            # closure tick loop runs wholesale instead.
            self.step_n = (
                self._step_n_tiered if not runtime._tick_per_op
                else self._step_n_closure_tick
            )
        plan = runtime.config.faults
        if plan is not None and plan.arms("interp.step"):
            # Wrap whichever dispatch loop was just selected.  The wrapper
            # slices budgets at firing points, so the inner loops stay
            # untouched and the no-fault path pays nothing.
            self._inner_step_n = self.step_n
            self.step_n = self._step_n_faulted

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run_program(self, qualified: str, args: List[object]) -> object:
        """Run ``qualified`` on the main thread; interleave spawned threads."""
        runtime = self.runtime
        self._push_call(runtime.main_thread, qualified, args)
        scheduler = runtime.scheduler
        quantum = runtime.config.quantum
        step_n = self.step_n
        next_thread = scheduler.next_thread
        threads = scheduler._threads
        while True:
            # Sole-thread fast path: with one registered thread the
            # round-robin probe always lands on it with the cursor pinned
            # at 0, so skipping next_thread() is observationally
            # identical (a spawn grows the list and drops us back onto
            # the general path with the cursor state unchanged).
            if len(threads) == 1:
                thread = threads[0]
                if not (thread.alive and thread.stack.frames):
                    break
            else:
                thread = next_thread()
                if thread is None:
                    break
            step_n(thread, quantum)
        return runtime.main_thread.result

    def call_sync(self, thread: JThread, qualified: str,
                  args: List[object]) -> object:
        """Run one call to completion on ``thread`` (no interleaving)."""
        frame = self._push_call(thread, qualified, args)
        if frame is None:
            # Native fast path: _push_call already ran it.
            return self._sync_results.pop(thread.thread_id, None)
        marks = self._sync_marks.setdefault(thread.thread_id, [])
        marks.append(frame.depth)
        base = frame.depth
        while thread.stack.depth > base:
            self.step_n(thread, 4096, stop_depth=base)
        return self._sync_results.pop(thread.thread_id, None)

    # ------------------------------------------------------------------
    # Invocation plumbing
    # ------------------------------------------------------------------

    def _push_call(self, thread: JThread, qualified: str,
                   args: List[object]):
        method = self.runtime.program.resolve(qualified)
        if len(args) != method.nargs:
            raise VerifyError(
                f"{qualified} expects {method.nargs} args, got {len(args)}"
            )
        if method.native is not None:
            result = self._run_native(thread, method, list(args))
            self._sync_results[thread.thread_id] = (
                None if result is VOID else result
            )
            return None
        return self._push_frame(thread, method, list(args))

    def _push_frame(self, thread: JThread, method: JMethod, args: List[object]):
        frame = self.runtime.push_frame(thread, method, nlocals=method.nlocals)
        for i, value in enumerate(args):
            frame.locals[i] = value
        return frame

    def _run_native(self, thread: JThread, method: JMethod,
                    args: List[object]) -> object:
        runtime = self.runtime
        plan = runtime.config.faults
        if plan is not None and plan.should_fire("native.call"):
            report = inject(
                runtime, "native.call", "escape",
                f"injected native-call failure in {method.qualified_name}",
                method=method.qualified_name, thread=thread.name,
            )
            raise NativeCallFault(report)
        env = NativeEnv(self.runtime, thread)
        result = method.native(env, args)
        if isinstance(result, Handle):
            # A reference crossing the native boundary cannot be tied to a
            # frame the collector can see (section 3.3).
            if self.runtime.collector is not None:
                self.runtime.collector.on_native_escape(result)
        return result

    def _return(self, thread: JThread, value: object) -> None:
        frame = self.runtime.pop_frame(thread)
        marks = self._sync_marks.get(thread.thread_id)
        if marks and marks[-1] == frame.depth:
            marks.pop()
            self._sync_results[thread.thread_id] = (
                None if value is VOID else value
            )
            return
        if thread.stack.frames:
            if value is not VOID:
                thread.stack.frames[-1].stack.append(value)
        else:
            thread.result = None if value is VOID else value

    def _resolve_static(self, operand) -> Tuple[JClass, str]:
        """Resolve (and cache) a getstatic/putstatic operand."""
        if type(operand) is tuple:
            cls_name, field = operand
        else:
            cls_name, field = operand.rsplit(".", 1)
        ref = (self.runtime.program.lookup(cls_name), field)
        self._static_refs[operand] = ref
        return ref

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------

    def _step_n_faulted(self, thread: JThread, budget: int,
                        stop_depth: int = 0) -> int:
        """``step_n`` wrapper installed when ``interp.step`` is armed.

        Runs the real loop in chunks sized to the next firing point; at the
        firing point it raises a :class:`TrapFault` carrying a crash dump —
        the deterministic analogue of hitting a corrupt opcode.
        """
        runtime = self.runtime
        plan = runtime.config.faults
        inner = self._inner_step_n
        total = 0
        while total < budget:
            gap = plan.hits_until_fire("interp.step")
            if gap is None:
                return total + inner(thread, budget - total, stop_depth)
            if gap == 0:
                firing = plan.consume_fire("interp.step")
                report = inject(
                    runtime, "interp.step", "trap",
                    f"injected trap at instruction "
                    f"{self.instructions_executed} (firing {firing})",
                    thread=thread.name, depth=thread.stack.depth,
                )
                raise TrapFault(report)
            chunk = min(budget - total, gap)
            executed = inner(thread, chunk, stop_depth)
            plan.charge("interp.step", executed)
            total += executed
            if executed < chunk:
                # The thread drained to stop_depth; no more instructions.
                return total
        return total

    def step_n(self, thread: JThread, budget: int, stop_depth: int = 0) -> int:
        """Execute up to ``budget`` instructions on ``thread``.

        Returns the number of instructions actually executed (less than the
        budget when the thread's stack drains down to ``stop_depth`` — used
        by :meth:`call_sync` so a native callback doesn't run past its own
        caller's frame).
        """
        runtime = self.runtime
        executed = 0
        frames = thread.stack.frames
        profiler = runtime.profiler
        if profiler.enabled:
            # One clock pair per quantum, attributed to the entry depth —
            # the per-depth profile is a poor man's flamegraph over the
            # shadow stack at quantum resolution, not per instruction.
            profile_started = perf_counter()
            profile_depth = len(frames)
        handlers = _HANDLERS
        op_count = bc.OP_COUNT
        if not runtime._tick_per_op:
            # No periodic-GC trigger or heartbeat: ``tick`` is pure
            # accounting, so charge the whole quantum in one call instead
            # of once per instruction.
            # Implicit end-of-code returns are not ticked (matching the
            # per-instruction loop below, which ticks only decoded
            # instructions); the flush happens even if a handler raises, so
            # the op count includes the faulting instruction exactly as the
            # per-instruction loop would.
            ticked = 0
            try:
                while executed < budget and len(frames) > stop_depth:
                    frame = frames[-1]
                    code = frame.method.code
                    pc = frame.pc
                    if pc >= len(code):
                        # Fell off the end: implicit return void.
                        self._return(thread, VOID)
                        executed += 1
                        continue
                    op, a, b = code[pc]
                    frame.pc = pc + 1
                    executed += 1
                    ticked += 1
                    if op >= op_count or op < 0:
                        raise VerifyError(f"unknown opcode {op}")
                    handlers[op](self, runtime, thread, frame, a, b)
            finally:
                if ticked:
                    runtime.tick(ticked)
        else:
            while executed < budget and len(frames) > stop_depth:
                frame = frames[-1]
                code = frame.method.code
                pc = frame.pc
                if pc >= len(code):
                    self._return(thread, VOID)
                    executed += 1
                    continue
                op, a, b = code[pc]
                frame.pc = pc + 1
                executed += 1
                runtime.tick()
                if op >= op_count or op < 0:
                    raise VerifyError(f"unknown opcode {op}")
                handlers[op](self, runtime, thread, frame, a, b)
        self.instructions_executed += executed
        if profiler.enabled:
            elapsed = perf_counter() - profile_started
            profiler.add(PHASE_INTERPRET, elapsed)
            profiler.charge_depth(profile_depth, elapsed)
        return executed

    def _step_n_chain(self, thread: JThread, budget: int,
                      stop_depth: int = 0) -> int:
        """The original if/elif dispatch loop, kept as the reference
        implementation for the opcode-parity suite (``dispatch="chain"``)."""
        runtime = self.runtime
        executed = 0
        frames = thread.stack.frames
        profiler = runtime.profiler
        if profiler.enabled:
            profile_started = perf_counter()
            profile_depth = len(frames)
        while executed < budget and len(frames) > stop_depth:
            frame = frames[-1]
            method = frame.method
            code = method.code
            if frame.pc >= len(code):
                # Fell off the end: implicit return void.
                self._return(thread, VOID)
                executed += 1
                continue
            op, a, b = code[frame.pc]
            frame.pc += 1
            executed += 1
            runtime.tick()
            stack = frame.stack

            if op == bc.CONST:
                stack.append(a)
            elif op == bc.LOAD:
                stack.append(frame.locals[a])
            elif op == bc.STORE:
                frame.locals[a] = stack.pop()
            elif op == bc.ACONST_NULL:
                stack.append(None)
            elif op == bc.GETFIELD:
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(f"getfield {a} on null")
                stack.append(runtime.load_field(obj, a, thread))
            elif op == bc.PUTFIELD:
                value = stack.pop()
                obj = stack.pop()
                if obj is None:
                    raise NullPointerError(f"putfield {a} on null")
                runtime.store_field(obj, a, value, thread)
            elif op == bc.NEW:
                stack.append(runtime.allocate(a, thread))
            elif op == bc.NEWARRAY:
                length = stack.pop()
                stack.append(
                    runtime.allocate(Program.ARRAY, thread, length=length)
                )
            elif op == bc.AALOAD:
                index = stack.pop()
                array = stack.pop()
                if array is None:
                    raise NullPointerError("aaload on null array")
                stack.append(runtime.load_element(array, index, thread))
            elif op == bc.AASTORE:
                value = stack.pop()
                index = stack.pop()
                array = stack.pop()
                if array is None:
                    raise NullPointerError("aastore on null array")
                runtime.store_element(array, index, value, thread)
            elif op == bc.ARRAYLENGTH:
                array = stack.pop()
                if array is None:
                    raise NullPointerError("arraylength on null")
                runtime.access(array, thread)
                stack.append(array.length)
            elif op == bc.GETSTATIC:
                if type(a) is tuple:
                    cls_name, field = a
                else:
                    cls_name, field = a.rsplit(".", 1)
                cls = runtime.program.lookup(cls_name)
                stack.append(runtime.load_static(field, cls))
            elif op == bc.PUTSTATIC:
                if type(a) is tuple:
                    cls_name, field = a
                else:
                    cls_name, field = a.rsplit(".", 1)
                cls = runtime.program.lookup(cls_name)
                runtime.store_static(field, stack.pop(), cls)
            elif op == bc.INVOKESTATIC:
                method_callee = runtime.program.resolve(a)
                self._invoke(thread, frame, method_callee)
            elif op == bc.INVOKEVIRTUAL:
                nargs = b
                if nargs < 1:
                    raise VerifyError("invokevirtual needs a receiver")
                receiver = frame.stack[-nargs]
                if receiver is None:
                    raise NullPointerError(f"invokevirtual {a} on null")
                runtime.access(receiver, thread)
                method_callee = receiver.cls.resolve_method(a)
                if method_callee.nargs != nargs:
                    raise VerifyError(
                        f"{method_callee.qualified_name} takes "
                        f"{method_callee.nargs} args, call site passes {nargs}"
                    )
                self._invoke(thread, frame, method_callee)
            elif op == bc.RETVAL:
                value = stack.pop()
                if isinstance(value, Handle):
                    runtime.return_reference(value, thread)
                self._return(thread, value)
            elif op == bc.RETURN:
                self._return(thread, VOID)
            elif op == bc.SPAWN:
                _h_spawn(self, runtime, thread, frame, a, b)
            elif op == bc.LDC_STR:
                stack.append(runtime.new_string(a, thread))
            elif op == bc.INTERN:
                string = stack.pop()
                if string is None:
                    raise NullPointerError("intern on null")
                runtime.access(string, thread)
                stack.append(runtime.intern(string))
            elif op == bc.INSTANCEOF:
                obj = stack.pop()
                stack.append(self._instanceof(obj, a))
            elif op == bc.DUP:
                stack.append(stack[-1])
            elif op == bc.POP:
                stack.pop()
            elif op == bc.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op == bc.ADD:
                y = stack.pop()
                stack[-1] = stack[-1] + y
            elif op == bc.SUB:
                y = stack.pop()
                stack[-1] = stack[-1] - y
            elif op == bc.MUL:
                y = stack.pop()
                stack[-1] = stack[-1] * y
            elif op == bc.DIV:
                y = stack.pop()
                x = stack.pop()
                if isinstance(x, int) and isinstance(y, int):
                    stack.append(int(x / y) if y != 0 else _div_zero())
                else:
                    stack.append(x / y)
            elif op == bc.MOD:
                y = stack.pop()
                x = stack.pop()
                stack.append(x - int(x / y) * y if y != 0 else _div_zero())
            elif op == bc.NEG:
                stack[-1] = -stack[-1]
            elif op == bc.IINC:
                frame.locals[a] += b
            elif op == bc.GOTO:
                frame.pc = a
            elif op == bc.IFZERO:
                if stack.pop() == 0:
                    frame.pc = a
            elif op == bc.IFNZERO:
                if stack.pop() != 0:
                    frame.pc = a
            elif op == bc.IFNULL:
                if stack.pop() is None:
                    frame.pc = a
            elif op == bc.IFNONNULL:
                if stack.pop() is not None:
                    frame.pc = a
            elif op == bc.IF_ICMPEQ:
                y = stack.pop()
                if stack.pop() == y:
                    frame.pc = a
            elif op == bc.IF_ICMPNE:
                y = stack.pop()
                if stack.pop() != y:
                    frame.pc = a
            elif op == bc.IF_ICMPLT:
                y = stack.pop()
                if stack.pop() < y:
                    frame.pc = a
            elif op == bc.IF_ICMPLE:
                y = stack.pop()
                if stack.pop() <= y:
                    frame.pc = a
            elif op == bc.IF_ICMPGT:
                y = stack.pop()
                if stack.pop() > y:
                    frame.pc = a
            elif op == bc.IF_ICMPGE:
                y = stack.pop()
                if stack.pop() >= y:
                    frame.pc = a
            elif op == bc.IF_ACMPEQ:
                y = stack.pop()
                if stack.pop() is y:
                    frame.pc = a
            elif op == bc.IF_ACMPNE:
                y = stack.pop()
                if stack.pop() is not y:
                    frame.pc = a
            else:
                raise VerifyError(f"unknown opcode {op}")
        self.instructions_executed += executed
        if profiler.enabled:
            elapsed = perf_counter() - profile_started
            profiler.add(PHASE_INTERPRET, elapsed)
            profiler.charge_depth(profile_depth, elapsed)
        return executed

    # ------------------------------------------------------------------
    # Closure dispatch (the default tier; see repro.jvm.closurecode)
    # ------------------------------------------------------------------

    def _compiled_for(self, method: JMethod):
        """Closure-compiled form of ``method`` (compiled once, then cached).

        Compilation is charged to the profiler's ``compile`` phase so the
        one-time cost is visible separately from interpretation.
        """
        try:
            return self._ccache[method]
        except KeyError:
            pass
        from .closurecode import compile_method

        started = perf_counter()
        compiled = compile_method(self, method, fuse=self._fuse)
        elapsed = perf_counter() - started
        self.compile_seconds += elapsed
        self.methods_compiled += 1
        profiler = self.runtime.profiler
        if profiler.enabled:
            profiler.add(PHASE_COMPILE, elapsed)
        self._ccache[method] = compiled
        return compiled

    def _py_compiled_for(self, method: JMethod):
        """Generated-Python form of ``method`` (compiled once, then cached).

        The closure form is built first — it is the deopt target and owns
        the quickening cells the codegen reads — and keeps its
        ``PHASE_COMPILE`` charge; source generation + ``exec`` is charged
        to ``PHASE_CODEGEN`` so warmup cost decomposes per tier.
        """
        try:
            return self._pycache[method]
        except KeyError:
            pass
        closure = self._compiled_for(method)
        from .compiledcode import compile_method_py

        started = perf_counter()
        compiled = compile_method_py(self, method, closure)
        elapsed = perf_counter() - started
        self.codegen_seconds += elapsed
        profiler = self.runtime.profiler
        if profiler.enabled:
            profiler.add(PHASE_CODEGEN, elapsed)
        self._pycache[method] = compiled
        return compiled

    def _py_cached_for(self, method: JMethod):
        """Cache-only twin of :meth:`_py_compiled_for`: adopt a
        previously generated form (in-memory or on-disk) without ever
        running the codegen, or return ``None``.  The binding rebuild a
        hit still pays is charged to ``PHASE_CODEGEN`` like any other
        warmup cost."""
        closure = self._compiled_for(method)
        from .compiledcode import cached_method_py

        started = perf_counter()
        compiled = cached_method_py(self, method, closure)
        elapsed = perf_counter() - started
        if compiled is None:
            return None
        self.codegen_seconds += elapsed
        profiler = self.runtime.profiler
        if profiler.enabled:
            profiler.add(PHASE_CODEGEN, elapsed)
        self._pycache[method] = compiled
        return compiled

    #: VM call depth beyond which :meth:`_call_threaded` refuses and the
    #: invoke falls back to the driver bounce.  Threaded calls nest two
    #: Python frames per VM frame, so this keeps deep recursion (raytrace)
    #: far from Python's own recursion limit; past the guard the *oldest*
    #: refusing driver level drives deeper frames iteratively.
    CALL_THREAD_MAX_DEPTH = 64

    def _call_threaded(self, frame, thread: JThread, budget: int,
                       nout) -> Tuple[int, bool]:
        """Drive the frame an invoke site just pushed, without leaving
        generated code: bound as ``_call`` into the compiled tier, so a VM
        call costs one Python call instead of two driver round-trips.

        ``frame`` is the *caller*; if it is still on top the invoke was a
        native that completed inline and there is nothing to drive.
        Returns ``(executed, done)``.  ``done=False`` hands control back
        to :meth:`_step_n_compiled` with identical semantics — budget
        exhausted, a deopt pc needing the closure tail, or the recursion
        guard.  Ticking stays the outer driver's job; implicit end-of-code
        returns accumulate in ``nout[1]`` (consumed there).
        """
        frames = thread.stack.frames
        if frames[-1] is frame:
            return 0, True
        stop_depth = len(frames) - 1
        if stop_depth >= self.CALL_THREAD_MAX_DEPTH:
            return 0, False
        executed = 0
        pycache = self._pycache
        py_for = self._py_compiled_for
        while len(frames) > stop_depth:
            if executed >= budget:
                return executed, False
            callee = frames[-1]
            method = callee.method
            comp = pycache.get(method) or py_for(method)
            pc = callee.pc
            if pc not in comp.leaders:
                return executed, False
            nout[0] = 0
            try:
                k, npc = comp.run(callee, thread, budget - executed, nout)
            except BaseException:
                nout[0] += executed
                raise
            executed += k
            if npc == -2:
                nout[1] += 1
                continue
            if npc < 0:
                continue
            callee.pc = npc
            return executed, False
        return executed, True

    def _step_n_compiled(self, thread: JThread, budget: int,
                         stop_depth: int = 0) -> int:
        """The compiled-dispatch loop: run generated straight-line Python
        per method (:mod:`repro.jvm.compiledcode`), falling back to
        single-stepped closure slots at non-leader pcs — the deopt path
        for guard failures, spawns, quantum tails, and sliced budgets.

        The generated ``run`` returns ``(k, next_pc)`` with ``k``
        instructions retired; ``-1``/``-2`` sentinels and tick accounting
        follow the closure loop's protocol exactly (``-2`` — the implicit
        end-of-code return — is counted but never ticked).  On an
        exception, ``run`` stores its retired count in the shared
        ``_nout`` cell so a faulting instruction is charged exactly as in
        the other tiers.
        """
        runtime = self.runtime
        executed = 0
        frames = thread.stack.frames
        profiler = runtime.profiler
        if profiler.enabled:
            profile_started = perf_counter()
            profile_depth = len(frames)
        pycache = self._pycache
        py_for = self._py_compiled_for
        nout = self._nout
        unticked = 0
        try:
            while executed < budget and len(frames) > stop_depth:
                frame = frames[-1]
                method = frame.method
                comp = pycache.get(method) or py_for(method)
                leaders = comp.leaders
                pc = frame.pc
                if pc in leaders:
                    nout[0] = 0
                    try:
                        k, npc = comp.run(frame, thread, budget - executed,
                                          nout)
                    except BaseException:
                        executed += nout[0]
                        u = nout[1]
                        if u:
                            unticked += u
                            nout[1] = 0
                        raise
                    executed += k
                    u = nout[1]
                    if u:
                        # Implicit returns retired inside threaded calls:
                        # counted in k, excluded from the tick (read and
                        # re-zeroed here so a sync-nested driver never
                        # consumes another level's increments).
                        unticked += u
                        nout[1] = 0
                    if npc == -2:
                        unticked += 1
                        continue
                    if npc < 0:
                        continue
                    frame.pc = npc
                    if executed >= budget:
                        continue
                    # npc is either a refused leader (its block no longer
                    # fits the remaining budget) or a deopt pc mid-block —
                    # either way the closure segment below fills the tail.
                # Closure-dispatched segment: the deopt path and the
                # quantum tail.  Same inner loop as _step_n_closure plus
                # a block-fit check to hop back into generated code: only
                # break at a leader whose whole block is affordable, so
                # ``run`` is never re-entered just to refuse again.
                cm = comp.closure
                ccode = cm.ccode
                blen = comp.blen
                pc = frame.pc
                if pc > cm.ilen:
                    # Wild branch past the end: any pc >= len(code) is the
                    # implicit return, as in the other tiers.
                    pc = cm.ilen
                limit = budget - executed
                n = 0
                try:
                    while n < limit:
                        n += 1
                        pc = ccode[pc](frame, thread)
                        if pc < 0:
                            if pc == -2:
                                unticked += 1
                            break
                        if pc in leaders and limit - n >= blen[pc]:
                            break
                finally:
                    executed += n
                if pc >= 0:
                    frame.pc = pc
        finally:
            ticked = executed - unticked
            if ticked:
                runtime.tick(ticked)
        self.instructions_executed += executed
        if profiler.enabled:
            elapsed = perf_counter() - profile_started
            profiler.add(PHASE_INTERPRET, elapsed)
            profiler.charge_depth(profile_depth, elapsed)
        return executed

    def _call_tiered(self, frame, thread: JThread, budget: int,
                     nout) -> Tuple[int, bool]:
        """Tiered-mode ``_call`` binding: :meth:`_call_threaded` minus the
        force-compile.  A promoted caller may invoke a still-cold callee;
        threading through it would codegen the callee eagerly — exactly
        the warmup cost tiering exists to avoid — so this variant refuses
        (``done=False``) whenever the callee has no generated form yet,
        handing the frame back to :meth:`_step_n_tiered`, whose cold path
        runs it in the closure tier and counts its hotness.
        """
        frames = thread.stack.frames
        if frames[-1] is frame:
            return 0, True
        stop_depth = len(frames) - 1
        if stop_depth >= self.CALL_THREAD_MAX_DEPTH:
            return 0, False
        executed = 0
        pycache = self._pycache
        while len(frames) > stop_depth:
            if executed >= budget:
                return executed, False
            callee = frames[-1]
            comp = pycache.get(callee.method)
            if comp is None:
                return executed, False
            pc = callee.pc
            if pc not in comp.leaders:
                return executed, False
            nout[0] = 0
            try:
                k, npc = comp.run(callee, thread, budget - executed, nout)
            except BaseException:
                nout[0] += executed
                raise
            executed += k
            if npc == -2:
                nout[1] += 1
                continue
            if npc < 0:
                continue
            callee.pc = npc
            return executed, False
        return executed, True

    #: Promoted-method driver visits after which the one-shot adaptive-cap
    #: recompile decision is taken (deopt-free by then -> lifted caps).
    RECOMPILE_AFTER_VISITS = 32

    def _recompile_lifted(self, method: JMethod):
        """Recompile a promoted, deopt-free method with a lifted trace cap.

        The hotness profile showing zero guard deopts over
        :data:`RECOMPILE_AFTER_VISITS` driver visits means the method is
        straight-line/counted-loop shaped: no polymorphic call sites, no
        failing speculation.  Such methods are recompiled once with
        ``MAX_TRACE`` lifted so goto-threading fuses longer traces (one
        upfront budget guard per trace instead of per block).  The trace
        cap stays bounded by the scheduler quantum — a trace longer than
        the driving budget could never pass the generated all-or-nothing
        budget guard and would deopt to closure slots forever.  The
        *block* cap deliberately stays at ``MAX_BLOCK``: it is the
        refusal granularity, and every quantum boundary runs up to a
        block's worth of instructions through closure slots twice (the
        refused tail, then the mid-block catch-up at the next visit), so
        doubling it measurably pushes ~10% of a tight kernel's
        instructions onto the slow path.  Counter parity is unaffected:
        caps only move where generated code *refuses*, and every refusal
        path charges identically to the closure tier.
        """
        from .compiledcode import compile_method_py

        closure = self._compiled_for(method)
        quantum = self.runtime.config.quantum
        max_trace = min(max(96, quantum), 256)
        started = perf_counter()
        compiled = compile_method_py(
            self, method, closure, max_trace=max_trace,
        )
        elapsed = perf_counter() - started
        self.codegen_seconds += elapsed
        self.methods_recompiled += 1
        profiler = self.runtime.profiler
        if profiler.enabled:
            profiler.add(PHASE_CODEGEN, elapsed)
        self._pycache[method] = compiled
        return compiled

    def _step_n_tiered(self, thread: JThread, budget: int,
                       stop_depth: int = 0) -> int:
        """The tiered-dispatch loop: profile-guided closure-to-compiled
        promotion.

        Cold methods run the closure inner loop (as
        :meth:`_step_n_closure`, unfused) while a hotness score
        accumulates: +1 per driver visit, +``promote_backedge_weight``
        per backward branch observed in the segment.  When the score
        reaches ``promote_after``, the method is promoted at its next
        call boundary — codegenned and driven through the verbatim
        :meth:`_step_n_compiled` protocol from then on, including its
        deopt path.  A promoted method that stays deopt-free for
        :data:`RECOMPILE_AFTER_VISITS` visits is recompiled once with
        lifted trace caps (:meth:`_recompile_lifted`).

        Soundness: the closure and compiled tiers are counter-identical
        on every program (the parity suite's oracle), so *any* per-method
        interleaving of the two is counter-identical too — hotness only
        decides which tier spends the wall time.  The score itself is
        derived from driver visits, never from ``runtime.ops``, and is
        read by nothing but this loop.
        """
        runtime = self.runtime
        executed = 0
        frames = thread.stack.frames
        profiler = runtime.profiler
        if profiler.enabled:
            profile_started = perf_counter()
            profile_depth = len(frames)
        ccache = self._ccache
        compiled_for = self._compiled_for
        pycache = self._pycache
        py_for = self._py_compiled_for
        py_cached_for = self._py_cached_for
        probed = self._cache_probed
        hot = self._hotness
        threshold = self._promote_after
        bweight = self._backedge_weight
        pvisits = self._promoted_visits
        deopts = self._deopts
        recompiled = self._recompiled
        nout = self._nout
        unticked = 0
        try:
            while executed < budget and len(frames) > stop_depth:
                frame = frames[-1]
                method = frame.method
                comp = pycache.get(method)
                if comp is None:
                    score = hot.get(method, 0) + 1
                    if score == 1 and method not in probed:
                        # First visit ever: probe the codegen caches once.
                        # The threshold exists to decide whether codegen
                        # pays for itself; a warm cache (bench repeats,
                        # warm pool workers, repeated serve requests)
                        # makes it free, so a hit promotes immediately
                        # instead of re-earning the profile.  Pure
                        # wall-time policy — parity is tier-invariant.
                        probed.add(method)
                        comp = py_cached_for(method)
                        if comp is not None:
                            self.methods_promoted += 1
                    if comp is None and score >= threshold:
                        # Promotion at a call boundary: codegen now and
                        # fall through to the compiled protocol for this
                        # very visit.  The mid-method case (a quantum
                        # tail left pc at a non-leader) is covered by the
                        # closure segment below, exactly like a deopt.
                        comp = py_for(method)
                        hot.pop(method, None)
                        self.methods_promoted += 1
                    elif comp is None:
                        # Cold: closure inner loop + backedge profiling.
                        cm = ccache.get(method) or compiled_for(method)
                        ccode = cm.ccode
                        pc = frame.pc
                        if pc > cm.ilen:
                            # Wild branch past the end: implicit return,
                            # as in every other tier.
                            pc = cm.ilen
                        limit = budget - executed
                        n = 0
                        back = 0
                        try:
                            while n < limit:
                                n += 1
                                prev = pc
                                pc = ccode[pc](frame, thread)
                                if pc < 0:
                                    if pc == -2:
                                        unticked += 1
                                    break
                                if pc <= prev:
                                    back += 1
                        finally:
                            executed += n
                        if pc >= 0:
                            frame.pc = pc
                        if back:
                            score += back * bweight
                        hot[method] = score
                        continue
                # Promoted: the _step_n_compiled protocol, verbatim, plus
                # deopt bookkeeping for the adaptive-cap recompile.  Once
                # the one-shot decision is taken the method is *settled*
                # and every remaining visit skips the bookkeeping — the
                # deopt record has nothing left to gate.
                settled = method in recompiled
                if not settled:
                    v = pvisits.get(method, 0) + 1
                    if v >= self.RECOMPILE_AFTER_VISITS:
                        recompiled.add(method)
                        settled = True
                        pvisits.pop(method, None)
                        if not deopts.get(method):
                            comp = self._recompile_lifted(method)
                    else:
                        pvisits[method] = v
                leaders = comp.leaders
                pc = frame.pc
                if pc in leaders:
                    nout[0] = 0
                    try:
                        k, npc = comp.run(frame, thread, budget - executed,
                                          nout)
                    except BaseException:
                        executed += nout[0]
                        u = nout[1]
                        if u:
                            unticked += u
                            nout[1] = 0
                        raise
                    executed += k
                    u = nout[1]
                    if u:
                        unticked += u
                        nout[1] = 0
                    if npc == -2:
                        unticked += 1
                        continue
                    if npc < 0:
                        continue
                    frame.pc = npc
                    if not settled and npc not in leaders:
                        # Refusals hand back leader pcs; a non-leader can
                        # only be a guard deopt mid-block.  Recorded for
                        # the recompile decision, never for counters.
                        deopts[method] = deopts.get(method, 0) + 1
                    if executed >= budget:
                        continue
                # Closure-dispatched segment: the deopt path and the
                # quantum tail, identical to _step_n_compiled.
                cm = comp.closure
                ccode = cm.ccode
                blen = comp.blen
                pc = frame.pc
                if pc > cm.ilen:
                    pc = cm.ilen
                limit = budget - executed
                n = 0
                try:
                    while n < limit:
                        n += 1
                        pc = ccode[pc](frame, thread)
                        if pc < 0:
                            if pc == -2:
                                unticked += 1
                            break
                        if pc in leaders and limit - n >= blen[pc]:
                            break
                finally:
                    executed += n
                if pc >= 0:
                    frame.pc = pc
        finally:
            ticked = executed - unticked
            if ticked:
                runtime.tick(ticked)
        self.instructions_executed += executed
        if profiler.enabled:
            elapsed = perf_counter() - profile_started
            profiler.add(PHASE_INTERPRET, elapsed)
            profiler.charge_depth(profile_depth, elapsed)
        return executed

    def _step_n_closure(self, thread: JThread, budget: int,
                        stop_depth: int = 0) -> int:
        """The closure-dispatch loop (no periodic-GC trigger): the hot path
        is ``pc = ccode[pc](frame, thread)`` — zero decode, zero per-step
        attribute traffic.

        Tick accounting matches the batched table loop: decoded
        instructions (including a faulting one) tick in one flush per
        quantum; implicit end-of-code returns (the ``-2`` sentinel) are
        executed but never ticked.  When superinstructions are fused,
        ``weights`` charges two instructions per fused slot and the loop
        falls back to the pair's unfused first closure (``plain``) whenever
        only one instruction of budget remains — so a fused pair never
        straddles a quantum or a fault-plan budget slice.
        """
        runtime = self.runtime
        executed = 0
        frames = thread.stack.frames
        profiler = runtime.profiler
        if profiler.enabled:
            profile_started = perf_counter()
            profile_depth = len(frames)
        cache = self._ccache
        compiled_for = self._compiled_for
        unticked = 0
        try:
            while executed < budget and len(frames) > stop_depth:
                frame = frames[-1]
                method = frame.method
                compiled = cache.get(method) or compiled_for(method)
                ccode = compiled.ccode
                weights = compiled.weights
                pc = frame.pc
                if pc > compiled.ilen:
                    # Wild branch past the end (hand-built code): the other
                    # tiers treat any pc >= len(code) as the implicit return.
                    pc = compiled.ilen
                limit = budget - executed
                n = 0
                if weights is None:
                    try:
                        while n < limit:
                            n += 1
                            pc = ccode[pc](frame, thread)
                            if pc < 0:
                                if pc == -2:
                                    unticked += 1
                                break
                    finally:
                        executed += n
                else:
                    plain = compiled.plain
                    try:
                        while n < limit:
                            if weights[pc] == 1:
                                n += 1
                                pc = ccode[pc](frame, thread)
                            elif limit - n >= 2:
                                n += 2
                                pc = ccode[pc](frame, thread)
                            else:
                                # One instruction of budget left but the
                                # slot is a fused pair: run its unfused
                                # first half so the slice boundary lands
                                # between the two original instructions.
                                n += 1
                                pc = plain[pc](frame, thread)
                            if pc < 0:
                                if pc == -2:
                                    unticked += 1
                                break
                    finally:
                        executed += n
                if pc >= 0:
                    frame.pc = pc
        finally:
            ticked = executed - unticked
            if ticked:
                runtime.tick(ticked)
        self.instructions_executed += executed
        if profiler.enabled:
            elapsed = perf_counter() - profile_started
            profiler.add(PHASE_INTERPRET, elapsed)
            profiler.charge_depth(profile_depth, elapsed)
        return executed

    def _step_n_closure_tick(self, thread: JThread, budget: int,
                             stop_depth: int = 0) -> int:
        """Closure dispatch with a periodic-GC trigger or heartbeat armed.

        Mirrors the table loop's per-instruction ordering exactly — pc
        advanced, ``executed`` charged, ``tick()``, then the instruction —
        so collections trigger at identical instruction boundaries.
        Superinstruction fusion is disabled in this mode (every
        instruction must tick individually).
        """
        runtime = self.runtime
        executed = 0
        frames = thread.stack.frames
        profiler = runtime.profiler
        if profiler.enabled:
            profile_started = perf_counter()
            profile_depth = len(frames)
        cache = self._ccache
        compiled_for = self._compiled_for
        while executed < budget and len(frames) > stop_depth:
            frame = frames[-1]
            method = frame.method
            compiled = cache.get(method) or compiled_for(method)
            pc = frame.pc
            if pc >= compiled.ilen:
                # Fell off the end: implicit return void (not ticked).
                self._return(thread, VOID)
                executed += 1
                continue
            frame.pc = pc + 1
            executed += 1
            runtime.tick()
            npc = compiled.ccode[pc](frame, thread)
            if npc >= 0:
                frame.pc = npc
        self.instructions_executed += executed
        if profiler.enabled:
            elapsed = perf_counter() - profile_started
            profiler.add(PHASE_INTERPRET, elapsed)
            profiler.charge_depth(profile_depth, elapsed)
        return executed

    # ------------------------------------------------------------------
    # Counting loops (count_opcodes mode: per-opcode histogram)
    # ------------------------------------------------------------------

    def _step_n_closure_counting(self, thread: JThread, budget: int,
                                 stop_depth: int = 0) -> int:
        """Closure dispatch with the per-opcode histogram enabled.

        Per-instruction (fusion disabled) so every executed opcode is
        observed; with no periodic trigger ``tick()`` degenerates to a
        counter bump, so results stay bit-identical to the batched loop.
        """
        runtime = self.runtime
        executed = 0
        frames = thread.stack.frames
        profiler = runtime.profiler
        if profiler.enabled:
            profile_started = perf_counter()
            profile_depth = len(frames)
        cache = self._ccache
        compiled_for = self._compiled_for
        counts = self.op_counts
        op_count = bc.OP_COUNT
        while executed < budget and len(frames) > stop_depth:
            frame = frames[-1]
            method = frame.method
            compiled = cache.get(method) or compiled_for(method)
            pc = frame.pc
            if pc >= compiled.ilen:
                self._return(thread, VOID)
                executed += 1
                continue
            frame.pc = pc + 1
            executed += 1
            runtime.tick()
            op = compiled.opmap[pc]
            if 0 <= op < op_count:
                # Unknown opcodes are not counted (the compiled slot raises
                # VerifyError below, matching the table loop's check order).
                counts[op] += 1
            npc = compiled.ccode[pc](frame, thread)
            if npc >= 0:
                frame.pc = npc
        self.instructions_executed += executed
        if profiler.enabled:
            elapsed = perf_counter() - profile_started
            profiler.add(PHASE_INTERPRET, elapsed)
            profiler.charge_depth(profile_depth, elapsed)
        return executed

    def _step_n_table_counting(self, thread: JThread, budget: int,
                               stop_depth: int = 0) -> int:
        """Table dispatch with the per-opcode histogram enabled.

        Serves both ``table`` and ``chain`` dispatch in counting mode (the
        two are parity-identical); ticks per instruction, observationally
        identical to the batched flush when no periodic trigger is armed.
        """
        runtime = self.runtime
        executed = 0
        frames = thread.stack.frames
        profiler = runtime.profiler
        if profiler.enabled:
            profile_started = perf_counter()
            profile_depth = len(frames)
        handlers = _HANDLERS
        op_count = bc.OP_COUNT
        counts = self.op_counts
        while executed < budget and len(frames) > stop_depth:
            frame = frames[-1]
            code = frame.method.code
            pc = frame.pc
            if pc >= len(code):
                self._return(thread, VOID)
                executed += 1
                continue
            op, a, b = code[pc]
            frame.pc = pc + 1
            executed += 1
            runtime.tick()
            if op >= op_count or op < 0:
                raise VerifyError(f"unknown opcode {op}")
            counts[op] += 1
            handlers[op](self, runtime, thread, frame, a, b)
        self.instructions_executed += executed
        if profiler.enabled:
            elapsed = perf_counter() - profile_started
            profiler.add(PHASE_INTERPRET, elapsed)
            profiler.charge_depth(profile_depth, elapsed)
        return executed

    def opcode_histogram(self) -> Dict[str, int]:
        """Mnemonic -> execution count (``count_opcodes`` runs only)."""
        counts = self.op_counts
        if not counts:
            return {}
        names = bc.OPCODE_NAMES
        return {names[op]: n for op, n in enumerate(counts) if n}

    # ------------------------------------------------------------------

    def _invoke(self, thread: JThread, frame, method: JMethod) -> None:
        nargs = method.nargs
        args = frame.stack[len(frame.stack) - nargs:] if nargs else []
        del frame.stack[len(frame.stack) - nargs:]
        if method.native is not None:
            # Convention: natives return VOID for "no value"; anything else
            # (including None, a legitimate null) is pushed for the caller.
            result = self._run_native(thread, method, args)
            if result is not VOID:
                frame.stack.append(result)
            return
        self._push_frame(thread, method, args)

    def _instanceof(self, obj, cls_name: str) -> int:
        if obj is None:
            return 0
        if not isinstance(obj, Handle):
            return 0
        cls = obj.cls
        while cls is not None:
            if cls.name == cls_name:
                return 1
            cls = cls.superclass
        return 0
