"""Native-method support (thesis section 3.3).

Sun's JVM lets native (C) code call Java and vice versa; objects created by
Java calls made from native code can outlive any frame the collector can
see, so the thesis "catch[es] such allocations and treat[s] the equilive
blocks as if they were static".  Here native methods are Python callables
receiving a :class:`NativeEnv`:

* any :class:`Handle` a native method *returns* to its Java caller is pinned
  (the interpreter does this);
* any Handle result a native obtains by calling *back into Java* through
  ``env.call`` is pinned at the boundary;
* ``env.pin`` models explicit object pinning (JNI global references).

Pinned handles are tracing-collector roots until released.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, TYPE_CHECKING

from .errors import LinkageError
from .heap import Handle

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime
    from .threads import JThread

NativeFn = Callable[["NativeEnv", List[object]], object]


class NativeEnv:
    """The environment handed to a native method body."""

    def __init__(self, runtime: "Runtime", thread: "JThread") -> None:
        self.runtime = runtime
        self.thread = thread

    def call(self, qualified: str, args: List[object]) -> object:
        """Call back into Java; reference results are pinned at the boundary."""
        plan = self.runtime.config.faults
        if plan is not None and plan.should_fire("native.call"):
            from ..faults import NativeCallFault, inject

            report = inject(
                self.runtime, "native.call", "escape",
                f"injected escape failure calling back into {qualified}",
                method=qualified, thread=self.thread.name,
            )
            raise NativeCallFault(report)
        result = self.runtime.invoke(qualified, args, thread=self.thread)
        if isinstance(result, Handle) and self.runtime.collector is not None:
            self.runtime.collector.on_native_escape(result)
            self.runtime.natives.pin(result)
        return result

    def pin(self, handle: Handle) -> None:
        """Take a global reference (JNI-style); also pins the CG block."""
        if self.runtime.collector is not None:
            self.runtime.collector.on_native_escape(handle)
        self.runtime.natives.pin(handle)

    def unpin(self, handle: Handle) -> None:
        self.runtime.natives.unpin(handle)

    def new_string(self, contents: str) -> Handle:
        return self.runtime.new_string(contents, thread=self.thread)


class NativeRegistry:
    """Registered native method bodies plus the set of pinned handles."""

    def __init__(self) -> None:
        self._methods: Dict[str, NativeFn] = {}
        self._pinned: Dict[int, Handle] = {}

    def register(self, qualified: str, fn: NativeFn) -> None:
        self._methods[qualified] = fn

    def lookup(self, qualified: str) -> NativeFn:
        try:
            return self._methods[qualified]
        except KeyError:
            raise LinkageError(f"no native implementation for {qualified!r}") from None

    def has(self, qualified: str) -> bool:
        return qualified in self._methods

    def pin(self, handle: Handle) -> None:
        self._pinned[handle.id] = handle

    def unpin(self, handle: Handle) -> None:
        self._pinned.pop(handle.id, None)

    def roots(self) -> Iterator[Handle]:
        for handle in self._pinned.values():
            if not handle.freed:
                yield handle
