"""Compiled dispatch: the fourth interpreter tier.

``RuntimeConfig(dispatch="compiled")`` compiles each method's bytecode once
per runtime into generated Python *source* — straight-line code with the
operand stack lowered to Python local variables, branches as jumps within a
``while`` state machine over basic blocks — ``exec``'d once and cached by
the interpreter like ``_ccache``.  The generated function has the shape::

    def run(frame, thread, limit, nout):
        loc = frame.locals
        stack = frame.stack
        tid = thread.thread_id
        n = 0
        try:
            pc = frame.pc
            while True:
                if pc == 0:          # one arm per basic-block leader
                    ...block body...
                    pc = 7
                    continue
                ...
        except BaseException:
            nout[0] += n
            raise

and returns ``(n, next_pc)`` where ``n`` is the number of instructions
retired and ``next_pc`` is a resumption pc, ``-1`` (frame changed), or
``-2`` (implicit end-of-code return, counted but never ticked — the same
sentinel protocol as the closure tier).

**Stack lowering.**  Within one basic block the codegen tracks a symbolic
*window* of top-of-stack entries — constants, local slots, and temporaries
— so ``const 2 / load 1 / add / store 1`` becomes ``loc[1] = loc[1] + 2``
with no list traffic at all.  Pops beyond the window fall back to real
``stack.pop()`` calls; the window is flushed back onto ``frame.stack``
before every point where the lowered values become observable: allocation
sites (GC roots), invokes, returns, raises, deopts, and block exits.

**Counting.**  ``n`` must equal the instructions actually retired at every
observable point, so CG counters, ``runtime.ops``, injected-trap indices,
and quantum boundaries stay bit-identical with the other three tiers.
Pure, non-raising instructions batch their increments into a compile-time
``pending`` count; ``pending`` is flushed into ``n`` (plus one for the
current instruction) immediately *before* every instruction that can raise
or call a runtime service — the same "count then execute" order as the
closure loop's ``n += 1; pc = ccode[pc](...)``.  A block is entered only
if the whole block fits the remaining budget (``limit - n < blen`` refuses
at the block's entry pc); the driving loop fills the tail of a quantum by
single-stepping closure slots, so per-quantum totals and thread
interleavings never change.  (One accepted divergence: a *type*-confused
pure instruction — e.g. ``add`` on a Handle — raises with up to a trace's
``pending`` uncounted; no assembled program does this, and every checked
error path — div-zero, null checks, verify errors, service faults — flushes
first.)

**Quickening and deopt.**  The codegen reads the closure tier's shared
:class:`~repro.jvm.closurecode.QuickeningState` cells as speculative
constants: resolved statics/classes/methods and the monomorphic
invokevirtual cache.  Every speculation is protected by a guard that
*deopts* — returns ``(n, pc)`` with the current pc — whenever the cell is
still empty or the receiver class misses the cache.  The driving loop then
executes that one instruction through the method's closure slot (filling
the cell, raising the error, or running the megamorphic path with exactly
the closure tier's timing) and re-enters compiled code at the next leader
pc.  ``spawn``, unknown opcodes, and malformed operands deopt statically
the same way, so first-execution semantics are literally the closure
tier's own.

**Threaded calls.**  An invoke site keeps the usual service sequence
(``_invoke`` pushes the callee frame) but then drives the callee through
``Interpreter._call_threaded`` instead of returning ``-1`` — one Python
call per VM call rather than two driver round-trips — and continues
inline at the post-call leader when the callee ran to completion.  The
helper applies the exact driver discipline (budget refusal, deopt to the
closure tail, ``-2`` accounting via ``nout[1]``) and refuses past a VM
depth guard, so the retired-instruction stream is bit-identical; the
additive ``nout[0] += n`` raise protocol above is what lets a fault
propagate through nested generated frames with the exact retired count.

**Inlined heap services.**  ``getfield``/``putfield``/``aaload``/
``aastore`` replicate the collector's ``on_access`` *no-action* fast path
(live handle, already pinned or same-thread — no counters, no calls) as an
inline guard plus a direct ``fields``/``elements`` access, falling back to
the bound runtime service for every slow condition: freed handles,
cross-thread pins, missing fields, bad indices.  The fast path touches no
counter the service would not touch (``on_access`` counts nothing;
``store_events`` is bumped inline exactly where ``store_field`` would), so
CG statistics stay bit-identical while the hot field walk costs dict ops
instead of two Python frames.
"""

from __future__ import annotations

import base64
import hashlib
import importlib.util
import json
import marshal
import os
from contextlib import contextmanager
from pathlib import Path
from typing import (Callable, Dict, FrozenSet, List, NamedTuple, Optional,
                    Tuple)

try:  # pragma: no cover - platform dependent
    import fcntl
except ImportError:  # Windows: single-flight degrades to atomic replaces
    fcntl = None

from . import bytecode as bc
from .closurecode import CompiledMethod, _split_static_ref
from .errors import NullPointerError, VerifyError
from .heap import Handle
from .model import JMethod, Program

# Imported lazily (interpreter.py imports this module from inside its
# compile hook, so a module-level import would be a cycle).
VOID = None
_div_zero = None


def _bind_interpreter_symbols() -> None:
    global VOID, _div_zero
    if VOID is None:
        from . import interpreter as _interp_mod

        VOID = _interp_mod.VOID
        _div_zero = _interp_mod._div_zero


#: Maximum instructions per generated block.  Long straight-line runs are
#: split at synthetic leaders so the all-or-nothing block budget check
#: refuses at most MAX_BLOCK-1 instructions before a quantum boundary —
#: bounding the closure-dispatched tail of every quantum.
MAX_BLOCK = 8

#: ``op -> (pops, pushes)`` for the straight-line opcodes, used to place
#: synthetic splits where the symbolic stack window is empty so a block
#: boundary costs no ``stack.append``/``stack.pop`` round-trip (and keeps
#: constants visible to the div/mod fold).  Terminators and unknown ops
#: are absent on purpose — a split is never forced across them.
_STACK_EFFECT = {
    bc.CONST: (0, 1), bc.ACONST_NULL: (0, 1), bc.LDC_STR: (0, 1),
    bc.LOAD: (0, 1), bc.STORE: (1, 0), bc.IINC: (0, 0),
    bc.DUP: (1, 2), bc.POP: (1, 0), bc.SWAP: (2, 2),
    bc.NEW: (0, 1), bc.NEWARRAY: (1, 1),
    bc.GETFIELD: (1, 1), bc.PUTFIELD: (2, 0),
    bc.GETSTATIC: (0, 1), bc.PUTSTATIC: (1, 0),
    bc.AALOAD: (2, 1), bc.AASTORE: (3, 0), bc.ARRAYLENGTH: (1, 1),
    bc.INSTANCEOF: (1, 1), bc.INTERN: (1, 1),
    bc.ADD: (2, 1), bc.SUB: (2, 1), bc.MUL: (2, 1),
    bc.DIV: (2, 1), bc.MOD: (2, 1), bc.NEG: (1, 1),
}


def _synthetic_splits(code, lo: int, hi: int,
                      max_block: int = MAX_BLOCK) -> List[int]:
    """Split points for the over-long base block ``[lo, hi)``.

    Greedy: track the window size a codegen pass would see and remember
    the latest pc where it is empty; when the current block reaches
    ``max_block`` instructions, cut at that clean pc (falling back to a
    mid-expression cut only when a single expression spans more than
    ``max_block`` instructions).
    """
    splits: List[int] = []
    start = lo
    size = 0
    last_clean = None
    pc = lo
    while pc < hi:
        effect = _STACK_EFFECT.get(code[pc][0])
        if effect is None:
            # Terminator/unknown: the codegen ends or deopts the block
            # here anyway, so the boundary is clean.
            size = 0
            last_clean = pc + 1
        else:
            size = max(0, size - effect[0]) + effect[1]
            if size == 0:
                last_clean = pc + 1
        pc += 1
        if pc - start >= max_block and pc < hi:
            if last_clean is not None and last_clean > start:
                cut = last_clean
            else:
                cut = pc
                size = 0  # forced cut: the window spills and resets
            splits.append(cut)
            start = cut
            last_clean = None
    return splits


class PyCompiledMethod(NamedTuple):
    """One method's generated-Python form (per-runtime, interpreter-cached)."""

    #: ``run(frame, thread, limit, nout) -> (n, next_pc)``.
    run: Callable
    #: Valid entry pcs (basic-block leaders incl. synthetic splits and the
    #: ``len(code)`` sentinel).  The driving loop single-steps closure
    #: slots until the pc is a member.
    leaders: FrozenSet[int]
    #: The generated source, kept for inspection and tests.
    source: str
    #: The closure-tier form: deopt target and quickening-cell owner.
    closure: CompiledMethod
    #: leader pc -> its block's instruction count (the exact quantity the
    #: generated budget checks compare against).  A pure driving-loop
    #: heuristic: the quantum tail re-enters generated code only at a
    #: leader whose whole block still fits the remaining budget, so a
    #: refusal round-trip through ``run`` never happens.
    blen: Dict[int, int]


def _call_disabled(frame, thread, budget, nout):
    """``_call`` binding for profiled runs: always hand back to the driver
    (same signature as ``Interpreter._call_threaded``)."""
    return 0, False


#: Absent-field sentinel for the inlined ``getfield`` fast path.  Never a
#: VM value (VM values are ints, strings, Handles, and None), so
#: ``fields.get(name, _MISS) is _MISS`` is an exact missing-field test.
_MISS = object()


class _NullStats:
    """Stand-in stats sink for collector-less runtimes so the inlined
    store counting (``_stats.store_events += 1``) stays branch-free.  The
    instance is private to one binding environment and never read."""

    __slots__ = ("store_events", "putstatic_events")

    def __init__(self) -> None:
        self.store_events = 0
        self.putstatic_events = 0


def _store_ref_tail(runtime) -> Callable:
    """The Handle-value tail of ``Runtime.store_field``/``store_element``
    — contamination merge and/or tracing write barrier — specialised at
    bind time so the overwhelmingly common shape (collector present, no
    tracing barrier) is a direct ``collector.on_store`` call.  The
    value-side ``on_access`` half is inlined at the emission site."""
    collector = runtime.collector
    barrier = runtime._write_barrier_fn
    if collector is not None and barrier is None:
        return collector.on_store
    if collector is not None:
        on_store = collector.on_store

        def tail(container, value):
            on_store(container, value)
            barrier(container, value)

        return tail
    if barrier is not None:
        return barrier

    def no_tail(container, value):
        return None

    return no_tail


def _base_bindings(interp) -> dict:
    """The method-independent names closed over by every generated
    ``_make`` factory — runtime/interpreter services plus a handful of
    builtins.  Per-pc quickening cells and non-literal constants are
    added on top during emission (or rebuilt from the cached binding
    names on a codegen-cache hit)."""
    runtime = interp.runtime
    return {
        "_VOID": VOID,
        "_Handle": Handle,
        "_NPE": NullPointerError,
        "_VerifyError": VerifyError,
        "_div_zero": _div_zero,
        "_isinstance": isinstance,
        "_int": int,
        "_allocate": runtime.allocate,
        "_new_string": runtime.new_string,
        "_load_field": runtime.load_field,
        "_store_field": runtime.store_field,
        "_load_element": runtime.load_element,
        "_store_element": runtime.store_element,
        "_access": runtime.access,
        "_intern_s": runtime.intern,
        "_store_static": runtime.store_static,
        "_return_ref": runtime.return_reference,
        "_invoke": interp._invoke,
        # Threaded calls re-route the depth-profile attribution (callee
        # time lands on the caller's driver entry), so profiled runs keep
        # the driver-bounce protocol.  Tiered mode binds the refusing
        # variant so a promoted caller never force-compiles a cold callee.
        "_call": (_call_disabled if runtime.profiler.enabled
                  else interp._call_tiered
                  if runtime.config.dispatch == "tiered"
                  else interp._call_threaded),
        "_ret": interp._return,
        "_instanceof": interp._instanceof,
        "_arraycls": runtime.program.classes[Program.ARRAY],
        # Inlined heap-service fast paths (see module docstring).
        "_MISS": _MISS,
        "_stats": (runtime.collector.stats
                   if runtime.collector is not None else _NullStats()),
        "_on_store": _store_ref_tail(runtime),
    }


#: Cross-runtime cache of generated code, keyed by (qualified name,
#: bytecode, caps): ``(source, codeobj, leaders, blen, extra binding
#: names)``.  The generated source depends only on the bytecode and the
#: trace caps — quickening cells are *read through* per-runtime bindings
#: at run time, never inspected at codegen time — so a fresh runtime
#: executing the same program (bench repeats, parity differentials, the
#: test suite) skips source generation and ``compile`` and only rebuilds
#: the binding environment.
_CODEGEN_CACHE: dict = {}
_CODEGEN_CACHE_MAX = 512


# ---------------------------------------------------------------------------
# Persistent codegen cache
#
# An optional on-disk second level below ``_CODEGEN_CACHE``: warm
# WorkerPool workers and repeated ``serve`` requests run in *fresh
# processes*, so the in-memory cache starts empty every time and each
# process pays full source generation + ``compile`` for every method.
# When armed (``REPRO_CODEGEN_CACHE=<dir>`` — the WorkerPool exports it
# next to its ResultCache — or :func:`set_codegen_cache_dir`), a miss
# stores ``(source, marshal(codeobj), leaders, blen, extra names)`` as
# one JSON file keyed by a digest of ``(cache version, interpreter magic,
# qualified name, sha1(bytecode), caps)``, and a later process's miss
# rebuilds the binding environment from disk without ever invoking the
# codegen.  Invalidation is entirely key-side: new bytecode, different
# caps, a codegen change (bump :data:`CODEGEN_CACHE_VERSION`) or a
# different CPython (``importlib.util.MAGIC_NUMBER`` — marshal is not
# stable across versions) each digest to a different file.  Writes are
# single-flighted with the ResultCache's flock idiom and published by
# atomic tmp + ``os.replace``; any IO or unmarshal trouble degrades to a
# plain miss — the cache must never change results, only wall time.
# ---------------------------------------------------------------------------

#: Bump when the generated source's *shape* changes (new emission rules,
#: protocol changes) so stale entries self-invalidate.
CODEGEN_CACHE_VERSION = 1

_DISK_UNSET = object()
_disk_cache_override: object = _DISK_UNSET


def set_codegen_cache_dir(path) -> None:
    """Arm (a path) or disarm (``None``) the persistent codegen cache,
    overriding ``$REPRO_CODEGEN_CACHE``."""
    global _disk_cache_override
    _disk_cache_override = path


def codegen_cache_dir() -> Optional[Path]:
    """The armed persistent-cache directory, or ``None`` (the default:
    plain runs touch no disk)."""
    if _disk_cache_override is not _DISK_UNSET:
        return Path(_disk_cache_override) if _disk_cache_override else None
    env = os.environ.get("REPRO_CODEGEN_CACHE")
    return Path(env) if env else None


def clear_codegen_caches() -> None:
    """Drop the in-memory codegen cache (the bench harness's cold-start
    measurements call this between iterations; the disk level is
    key-invalidated, never swept)."""
    _CODEGEN_CACHE.clear()


def _disk_key(qualified_name: str, code, caps: Tuple[int, int]) -> str:
    payload = "\x00".join((
        str(CODEGEN_CACHE_VERSION),
        importlib.util.MAGIC_NUMBER.hex(),
        qualified_name,
        hashlib.sha1(repr(tuple(code)).encode()).hexdigest(),
        repr(caps),
    ))
    return hashlib.sha1(payload.encode()).hexdigest()


@contextmanager
def _disk_lock(directory: Path):
    """``flock`` on ``<dir>/.lock`` (the ResultCache idiom), degrading to
    no locking where ``fcntl`` is unavailable."""
    if fcntl is None:
        yield
        return
    lock_path = directory / ".lock"
    try:
        fd = os.open(lock_path, os.O_RDWR | os.O_CREAT, 0o644)
    except OSError:
        yield
        return
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        os.close(fd)


def _disk_fetch(directory: Path, digest: str):
    """Load one cache entry, or ``None``.  Corrupt or cross-version files
    (torn writes survive ``os.replace`` only via external meddling, but
    defend anyway) are dropped and treated as misses."""
    path = directory / f"cg-{digest}.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        source = data["source"]
        codeobj = marshal.loads(base64.b64decode(data["code"]))
        ordered = list(data["leaders"])
        blen = {int(k): v for k, v in data["blen"].items()}
        extra = tuple(data["extra"])
    except FileNotFoundError:
        return None
    except Exception:
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return source, codeobj, ordered, blen, extra


def _disk_store(directory: Path, digest: str, source: str, codeobj,
                ordered, blen, extra) -> None:
    """Publish one entry (single-flight + atomic replace); IO errors are
    swallowed — a full disk must not kill the run."""
    try:
        directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps({
            "version": CODEGEN_CACHE_VERSION,
            "source": source,
            "code": base64.b64encode(marshal.dumps(codeobj)).decode("ascii"),
            "leaders": list(ordered),
            "blen": {str(k): v for k, v in blen.items()},
            "extra": list(extra),
        })
        path = directory / f"cg-{digest}.json"
        with _disk_lock(directory):
            if path.exists():
                return
            tmp = directory / f".cg-{digest}.{os.getpid()}.tmp"
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, path)
    except OSError:
        pass


def _cache_lookup(interp, method: JMethod, caps: Tuple[int, int],
                  count_miss: bool = True):
    """Memory-then-disk lookup of a cached codegen entry.

    Returns ``(key, cached)``; ``key`` is ``None`` for unhashable
    bytecode (which skips the cross-run caches entirely), ``cached`` is
    ``None`` on a miss.  A disk hit is promoted into the in-memory level
    and counted on ``interp``; misses are counted only when
    ``count_miss`` is set (the tiered first-visit *probe* is not a
    compile attempt, so its misses stay out of the cache-traffic
    counters).
    """
    code = method.code
    try:
        key = (method.qualified_name, tuple(code), caps)
    except TypeError:  # unhashable operand: skip the cross-run caches
        return None, None
    cached = _CODEGEN_CACHE.get(key)
    if cached is None:
        disk_dir = codegen_cache_dir()
        if disk_dir is not None:
            cached = _disk_fetch(
                disk_dir, _disk_key(method.qualified_name, code, caps)
            )
            if cached is not None:
                interp.codegen_cache_hits += 1
                if len(_CODEGEN_CACHE) >= _CODEGEN_CACHE_MAX:
                    _CODEGEN_CACHE.clear()
                _CODEGEN_CACHE[key] = cached
            elif count_miss:
                interp.codegen_cache_misses += 1
    return key, cached


def _rebuild_bindings(interp, closure: CompiledMethod, code,
                      extra) -> dict:
    """Reconstruct a cached entry's binding environment: the base
    services plus the per-pc quickening cells and non-literal constants
    recorded in ``extra`` (names only — the cells themselves are always
    the *current* closure's, so quickening state stays per-runtime)."""
    bindings = _base_bindings(interp)
    quick = closure.quick
    for name in extra:
        if name.startswith("_q"):
            bindings[name] = quick.cell(int(name[2:]))
        elif name.startswith("_vc"):
            bindings[name] = quick.vcall(int(name[3:]))[0]
        elif name.startswith("_vm"):
            bindings[name] = quick.vcall(int(name[3:]))[1]
        else:  # _k{pc}: a non-literal constant operand
            bindings[name] = code[int(name[2:])][1]
    return bindings


def cached_method_py(interp, method: JMethod, closure: CompiledMethod,
                     max_block: int = MAX_BLOCK,
                     max_trace: Optional[int] = None
                     ) -> Optional[PyCompiledMethod]:
    """Build ``method``'s generated form from the caches alone, or
    return ``None`` — never invokes the codegen.

    The tiered driver probes this on a cold method's first visit: the
    hotness profile exists to decide whether paying for codegen is
    worth it, and a warm cache (bench repeats, warm pool workers,
    repeated ``serve`` requests) makes codegen free, so a hit promotes
    immediately instead of re-earning the threshold.  Promotion timing
    is pure wall-time policy — counters are tier-invariant — so the
    short-circuit can never change results.
    """
    _bind_interpreter_symbols()
    if max_trace is None:
        max_trace = _Codegen.MAX_TRACE
    key, cached = _cache_lookup(interp, method, (max_block, max_trace),
                                count_miss=False)
    if cached is None:
        return None
    source, codeobj, ordered, blen, extra = cached
    bindings = _rebuild_bindings(interp, closure, method.code, extra)
    namespace: dict = {}
    exec(codeobj, namespace)
    run = namespace["_make"](**bindings)
    return PyCompiledMethod(run, frozenset(ordered), source, closure, blen)


def compile_method_py(interp, method: JMethod, closure: CompiledMethod,
                      max_block: int = MAX_BLOCK,
                      max_trace: Optional[int] = None) -> PyCompiledMethod:
    """Generate, ``compile`` and ``exec`` the Python form of ``method``.

    ``max_block``/``max_trace`` are the trace caps — the defaults every
    tier uses, lifted only by the tiered mode's adaptive recompile of
    deopt-free hot methods.  Both feed the cache keys (in-memory and
    disk): the same method compiled under different caps is different
    generated code.
    """
    _bind_interpreter_symbols()
    code = method.code
    if max_trace is None:
        max_trace = _Codegen.MAX_TRACE
    caps = (max_block, max_trace)
    key, cached = _cache_lookup(interp, method, caps)
    if cached is not None:
        source, codeobj, ordered, blen, extra = cached
        bindings = _rebuild_bindings(interp, closure, code, extra)
    else:
        base = method.block_starts
        if base is None:
            from .assembler import block_leaders

            base = method.block_starts = block_leaders(code)
        leaders = set(base)
        ordered = sorted(leaders)
        for lo, hi in zip(ordered, ordered[1:]):
            if hi - lo > max_block:
                leaders.update(_synthetic_splits(code, lo, hi, max_block))
        ordered = sorted(leaders)
        gen = _Codegen(interp, method, closure, ordered, max_trace)
        source = gen.generate()
        # Counted here, not in the interpreter wrapper: only a true
        # generation (both cache levels missed) is a "codegenned" method.
        interp.methods_codegenned += 1
        codeobj = compile(source, f"<compiled {method.qualified_name}>", "exec")
        bindings = gen.bindings
        blen = {lo: hi - lo for lo, hi in zip(ordered, ordered[1:])}
        blen[ordered[-1]] = 1  # the len(code) sentinel block
        if key is not None:
            if len(_CODEGEN_CACHE) >= _CODEGEN_CACHE_MAX:
                _CODEGEN_CACHE.clear()
            extra = tuple(
                name for name in bindings if name.startswith(("_q", "_vc", "_vm", "_k"))
            )
            _CODEGEN_CACHE[key] = (source, codeobj, ordered, blen, extra)
            disk_dir = codegen_cache_dir()
            if disk_dir is not None:
                _disk_store(
                    disk_dir, _disk_key(method.qualified_name, code, caps),
                    source, codeobj, ordered, blen, extra,
                )
    namespace: dict = {}
    exec(codeobj, namespace)
    run = namespace["_make"](**bindings)
    return PyCompiledMethod(run, frozenset(ordered), source, closure, blen)


#: Comparison branches -> Python operator (int compares and identity).
_CMP_OPS = {
    bc.IF_ICMPEQ: "==", bc.IF_ICMPNE: "!=",
    bc.IF_ICMPLT: "<", bc.IF_ICMPLE: "<=",
    bc.IF_ICMPGT: ">", bc.IF_ICMPGE: ">=",
    bc.IF_ACMPEQ: "is", bc.IF_ACMPNE: "is not",
}

#: Single-operand conditional branches -> condition template.
_IF1_OPS = {
    bc.IFZERO: "{} == 0", bc.IFNZERO: "{} != 0",
    bc.IFNULL: "{} is None", bc.IFNONNULL: "{} is not None",
}

#: Opcodes that end a dispatch arm (control leaves the block other than
#: by falling through): a block whose final instruction is one of these
#: never chains into a trace.  ``GOTO`` is the one exception, handled
#: separately — an unconditional jump to a known leader *threads*: the
#: trace continues at the target block with the jump itself retired into
#: the trace, so a loop body merges with its header and costs one
#: dispatch per iteration instead of one per block.
_ARM_ENDERS = frozenset(bc.BRANCH_OPS) | {
    bc.RETURN, bc.RETVAL, bc.INVOKESTATIC, bc.INVOKEVIRTUAL, bc.SPAWN,
}


class _Codegen:
    """One-pass bytecode-to-Python-source generator for a single method.

    Emission state per basic block: ``window`` is the symbolic top of the
    operand stack (entries ``("const", expr)``, ``("local", i)``,
    ``("temp", name)``; bottom first), ``pending`` the count of retired
    instructions not yet added to ``n``.  Both reset at block entry and
    drain at every observable point (see module docstring).
    """

    def __init__(self, interp, method: JMethod, closure: CompiledMethod,
                 leaders: List[int], max_trace: Optional[int] = None) -> None:
        self.code = method.code
        self.ilen = len(method.code)
        self.quick = closure.quick
        self.leaders = leaders
        self.max_trace = max_trace if max_trace is not None else self.MAX_TRACE
        self.lindex = {pc: i for i, pc in enumerate(leaders)}
        self.lines: List[str] = []
        self.window: List[Tuple[str, object]] = []
        self.pending = 0
        self.ntemp = 0
        #: Name -> object closed over by the generated ``_make`` factory.
        #: Per-pc quickening cells and non-literal constants are added
        #: during emission.
        self.bindings = _base_bindings(interp)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def generate(self) -> str:
        self._emit_dispatch(0, len(self.leaders), 4)
        body = self.lines
        head = [
            # Bindings become closure cells of ``run`` (LOAD_DEREF), the
            # cheapest non-local access the interpreter loop can get.
            f"def _make({', '.join(sorted(self.bindings))}):",
            "    def run(frame, thread, limit, nout):",
            "        loc = frame.locals",
            "        stack = frame.stack",
            "        tid = thread.thread_id",
            "        n = 0",
            "        try:",
            "            pc = frame.pc",
            "            while True:",
        ]
        tail = [
            "        except BaseException:",
            "            nout[0] += n",
            "            raise",
            "    return run",
        ]
        return "\n".join(head + body + tail) + "\n"

    def emit(self, level: int, text: str) -> None:
        self.lines.append("    " * level + text)

    def _emit_dispatch(self, lo: int, hi: int, indent: int) -> None:
        """Binary dispatch tree over leader pcs; leaves are linear chains.

        Every chain ends in ``else: return n, pc`` so a non-leader entry
        pc (mid-block resume after a deopt) hands control straight back to
        the driving loop's closure single-step.
        """
        if hi - lo <= 4:
            keyword = "if"
            for idx in range(lo, hi):
                self.emit(indent, f"{keyword} pc == {self.leaders[idx]}:")
                self._emit_block(idx, indent + 1)
                keyword = "elif"
            self.emit(indent, "else:")
            self.emit(indent + 1, "return n, pc")
        else:
            mid = (lo + hi) // 2
            self.emit(indent, f"if pc < {self.leaders[mid]}:")
            self._emit_dispatch(lo, mid, indent + 1)
            self.emit(indent, "else:")
            self._emit_dispatch(mid, hi, indent + 1)

    #: Instruction budget for one dispatch arm's fast path: fall-through
    #: and goto-threaded successor blocks are merged into a single trace
    #: (a visited set stops the walk at a cycle) — one upfront
    #: budget check, ``pending`` batched and the stack window kept across
    #: block boundaries — until the trace reaches this many instructions.
    #: Every block still has its own arm for mid-trace entry, and a slow
    #: copy of the arm's first block keeps refusal at MAX_BLOCK
    #: granularity near quantum boundaries, so the closure-dispatched
    #: tail stays short.  The cap bounds code growth; this is the
    #: default — the tiered mode's adaptive recompile lifts it (bounded
    #: by the scheduler quantum) for promoted, deopt-free methods.
    MAX_TRACE = 48

    def _emit_block(self, idx: int, indent: int) -> None:
        leaders = self.leaders
        start = leaders[idx]
        emit = self.emit
        if start == self.ilen:
            # The implicit-return sentinel: counted, reported -2 so the
            # driving loop excludes it from runtime.tick.
            emit(indent, "if limit - n < 1:")
            emit(indent + 1, f"return n, {start}")
            emit(indent, "n += 1")
            emit(indent, "_ret(thread, _VOID)")
            emit(indent, "return n, -2")
            return
        end = leaders[idx + 1]
        # A trace is worth building only when this block continues into
        # another real block — by falling through, or by an unconditional
        # goto to a different leader (goto threading).
        last = self.code[end - 1]
        if last[0] == bc.GOTO:
            dual = (isinstance(last[1], int) and last[1] in self.lindex
                    and last[1] != self.ilen and last[1] != start)
        elif last[0] in _ARM_ENDERS:
            dual = False
        else:
            dual = end < self.ilen
        if not dual:
            self._emit_single(idx, indent)
            return
        # Dual form.  Slow path (budget below the whole trace): execute
        # just the first block — with its all-or-nothing check — then
        # re-dispatch, so refusal granularity near a quantum boundary
        # stays at MAX_BLOCK.  Fast path: the merged trace below.
        guard_pos = len(self.lines)
        emit(indent, "")  # patched to "if limit - n < <total>:" below
        self._emit_single(idx, indent + 1)
        # Fast path: merged trace.  No intermediate budget checks (the
        # guard covered every block's full length), ``pending`` spans
        # block boundaries, and the window stays symbolic across them —
        # every exit point (deopt, raise, invoke, trace end) still drains
        # both exactly.
        total = 0
        j = idx
        visited = set()
        lindex = self.lindex
        code = self.code
        del self.window[:]
        self.pending = 0
        while True:
            s = leaders[j]
            if s == self.ilen:
                self._count(indent)
                self._flush(indent)
                emit(indent, f"pc = {s}")
                emit(indent, "continue")
                break
            visited.add(s)
            e = leaders[j + 1]
            total += e - s
            # Goto threading: an unconditional jump to a known leader is
            # retired into the trace (no emitted transfer) and emission
            # continues at the target block.
            target = None
            stop = e
            last = code[e - 1]
            if (last[0] == bc.GOTO and isinstance(last[1], int)
                    and last[1] in lindex and last[1] != self.ilen):
                target = last[1]
                stop = e - 1
            terminated = False
            for pc in range(s, stop):
                if self._emit_instruction(pc, indent):
                    terminated = True
                    break
            if terminated:
                break
            if target is None:
                nxt = e
            else:
                self.pending += 1
                nxt = target
            if total >= self.max_trace or nxt in visited:
                self._count(indent)
                self._flush(indent)
                emit(indent, f"pc = {nxt}")
                emit(indent, "continue")
                break
            j = lindex[nxt]
        self.lines[guard_pos] = (
            "    " * indent + f"if limit - n < {total}:"
        )

    def _emit_single(self, idx: int, indent: int) -> None:
        """One block on its own: all-or-nothing budget check, body, and
        an explicit transfer when it falls through."""
        start = self.leaders[idx]
        end = self.leaders[idx + 1]
        emit = self.emit
        # Refuse at the block's entry pc if the whole block does not
        # fit, and let the driving loop fill the quantum tail via
        # closure single-steps.  n only ever charges instructions
        # actually retired, so refusal is invisible.
        emit(indent, f"if limit - n < {end - start}:")
        emit(indent + 1, f"return n, {start}")
        del self.window[:]
        self.pending = 0
        for pc in range(start, end):
            if self._emit_instruction(pc, indent):
                return
        self._count(indent)
        self._flush(indent)
        emit(indent, f"pc = {end}")
        emit(indent, "continue")

    # ------------------------------------------------------------------
    # Emission state helpers
    # ------------------------------------------------------------------

    def tmp(self) -> str:
        self.ntemp += 1
        return f"t{self.ntemp}"

    def _expr(self, entry) -> str:
        kind, value = entry
        return f"loc[{value}]" if kind == "local" else value

    def _pop(self, indent: int):
        """Pop the symbolic top of stack (real ``stack.pop()`` past the
        window — window entries always sit above real-stack entries, so
        mixed pops keep the original order)."""
        if self.window:
            return self.window.pop()
        t = self.tmp()
        self.emit(indent, f"{t} = stack.pop()")
        return ("temp", t)

    def _multi(self, entry, indent: int):
        """An entry safe (and cheap) to reference more than once: local
        slots are copied into a Python temp first."""
        if entry[0] == "local":
            t = self.tmp()
            self.emit(indent, f"{t} = {self._expr(entry)}")
            return ("temp", t)
        return entry

    def _materialize_local(self, index: int, indent: int) -> None:
        """Snapshot window entries reading local ``index`` before a write
        to it (store/iinc) changes what ``loc[index]`` would yield."""
        for i, entry in enumerate(self.window):
            if entry[0] == "local" and entry[1] == index:
                t = self.tmp()
                self.emit(indent, f"{t} = loc[{index}]")
                self.window[i] = ("temp", t)

    def _spill(self, indent: int) -> None:
        """Emit appends pushing the window onto the real stack (state kept:
        used inside guard branches whose fast path continues lowered)."""
        for entry in self.window:
            self.emit(indent, f"stack.append({self._expr(entry)})")

    def _flush(self, indent: int) -> None:
        self._spill(indent)
        # In place: _emit_instruction holds an alias to the window list.
        del self.window[:]

    def _count(self, indent: int, extra: int = 0) -> None:
        """Flush ``pending`` (+ ``extra`` for the current instruction)
        into ``n`` — emitted before every can-raise point so ``n`` counts
        a faulting instruction exactly as the closure loop does."""
        total = self.pending + extra
        if total:
            self.emit(indent, f"n += {total}")
        self.pending = 0

    def _deopt_if(self, indent: int, cond: str, pc: int) -> None:
        """Guard: bail to the closure slot at ``pc`` when ``cond`` holds.
        The current instruction has *not* executed, so only ``pending``
        flushes; window state is spilled but kept for the fast path."""
        self.emit(indent, f"if {cond}:")
        if self.pending:
            self.emit(indent + 1, f"n += {self.pending}")
        self._spill(indent + 1)
        self.emit(indent + 1, f"return n, {pc}")

    def _deopt(self, indent: int, pc: int) -> bool:
        """Unconditional deopt (spawn, unknown/malformed instructions)."""
        self._count(indent)
        self._flush(indent)
        self.emit(indent, f"return n, {pc}")
        return True

    def _raise_guard(self, indent: int, cond: str, exc: str) -> None:
        """Null-check-style raise: call after ``_count`` so the faulting
        instruction is already charged; spill so the frame's real stack
        matches the closure tier's at the raise."""
        self.emit(indent, f"if {cond}:")
        self._spill(indent + 1)
        self.emit(indent + 1, f"raise {exc}")

    def _access_guard(self, indent: int, e: str) -> None:
        """Inline ``collector.on_access``'s no-action fast path — live
        handle, already pinned or allocated by this thread: no counters,
        no calls — and fall through to the bound service for the rest
        (freed handles raise, cross-thread access pins).  Collector-less
        runtimes over-approximate harmlessly: ``_access`` is then just
        ``check_live``, a no-op on a live handle.  ``e`` must be a temp
        or constant expression (safe to evaluate repeatedly)."""
        self.emit(indent, f"if ({e}).freed or (({e}).pinned_cause is None "
                          f"and ({e}).alloc_thread != tid):")
        self.emit(indent + 1, f"_access({e}, thread)")

    def _const_expr(self, pc: int, value) -> str:
        if value is None or isinstance(value, (bool, int, str)):
            return repr(value)
        name = f"_k{pc}"
        self.bindings[name] = value
        return name

    def _cell(self, pc: int) -> str:
        name = f"_q{pc}"
        self.bindings[name] = self.quick.cell(pc)
        return name

    def _vcell(self, pc: int) -> Tuple[str, str]:
        cls_cell, method_cell = self.quick.vcall(pc)
        cn, mn = f"_vc{pc}", f"_vm{pc}"
        self.bindings[cn] = cls_cell
        self.bindings[mn] = method_cell
        return cn, mn

    def _emit_threaded_call(self, indent: int, nxt: int) -> None:
        """Post-``_invoke`` tail: drive the callee without leaving ``run``.

        ``_call`` executes the just-pushed frame to completion when it can
        (same budget/count discipline as the driving loop, see
        ``Interpreter._call_threaded``); on success the caller continues
        inline at the post-call leader, otherwise it returns ``-1`` and
        the driver takes over exactly as before.
        """
        emit = self.emit
        tk = self.tmp()
        td = self.tmp()
        emit(indent, f"{tk}, {td} = _call(frame, thread, limit - n, nout)")
        emit(indent, f"n += {tk}")
        emit(indent, f"if not {td}:")
        emit(indent + 1, "return n, -1")
        emit(indent, f"pc = {nxt}")
        emit(indent, "continue")

    def _branch_target_ok(self, a) -> bool:
        return isinstance(a, int) and 0 <= a <= self.ilen

    @staticmethod
    def _const_int_nonzero(entry) -> bool:
        """True when a window entry is a nonzero int constant literal.

        ``const`` pushes ``("const", repr(value))``; for div/mod folding we
        only trust plain int reprs (not bools — ``repr(True)`` is not a
        digit string).
        """
        if entry[0] != "const":
            return False
        text = entry[1]
        if text.startswith("-"):
            text = text[1:]
        return text.isdigit() and int(text) != 0

    # ------------------------------------------------------------------
    # Per-instruction emission (returns True when the block is terminated)
    # ------------------------------------------------------------------

    def _emit_instruction(self, pc: int, indent: int) -> bool:
        op, a, b = self.code[pc]
        nxt = pc + 1
        emit = self.emit
        window = self.window

        if op == bc.CONST:
            window.append(("const", self._const_expr(pc, a)))
            self.pending += 1
            return False

        if op == bc.ACONST_NULL:
            window.append(("const", "None"))
            self.pending += 1
            return False

        if op == bc.LOAD:
            if not isinstance(a, int):
                return self._deopt(indent, pc)
            window.append(("local", a))
            self.pending += 1
            return False

        if op == bc.STORE:
            if not isinstance(a, int):
                return self._deopt(indent, pc)
            value = self._pop(indent)
            self._materialize_local(a, indent)
            emit(indent, f"loc[{a}] = {self._expr(value)}")
            self.pending += 1
            return False

        if op == bc.IINC:
            if not isinstance(a, int) or not isinstance(b, int):
                return self._deopt(indent, pc)
            self._materialize_local(a, indent)
            emit(indent, f"loc[{a}] += {b}")
            self.pending += 1
            return False

        if op == bc.DUP:
            if window:
                window.append(window[-1])
            else:
                t = self.tmp()
                emit(indent, f"{t} = stack[-1]")
                window.append(("temp", t))
            self.pending += 1
            return False

        if op == bc.POP:
            if window:
                window.pop()
            else:
                emit(indent, "stack.pop()")
            self.pending += 1
            return False

        if op == bc.SWAP:
            if len(window) >= 2:
                window[-1], window[-2] = window[-2], window[-1]
            elif len(window) == 1:
                # Real top moves above the lone window entry.
                t = self.tmp()
                emit(indent, f"{t} = stack.pop()")
                window.append(("temp", t))
            else:
                emit(indent, "stack[-1], stack[-2] = stack[-2], stack[-1]")
            self.pending += 1
            return False

        if op in (bc.ADD, bc.SUB, bc.MUL):
            sym = {bc.ADD: "+", bc.SUB: "-", bc.MUL: "*"}[op]
            y = self._pop(indent)
            x = self._pop(indent)
            t = self.tmp()
            emit(indent, f"{t} = {self._expr(x)} {sym} {self._expr(y)}")
            window.append(("temp", t))
            self.pending += 1
            return False

        if op == bc.NEG:
            value = self._pop(indent)
            t = self.tmp()
            emit(indent, f"{t} = -({self._expr(value)})")
            window.append(("temp", t))
            self.pending += 1
            return False

        if op == bc.DIV:
            y = self._multi(self._pop(indent), indent)
            x = self._multi(self._pop(indent), indent)
            ex, ey = self._expr(x), self._expr(y)
            t = self.tmp()
            if self._const_int_nonzero(y):
                # Folded: the divisor is a compile-time nonzero int, so
                # the zero check is dead and the instruction is as pure
                # as add/mul — no count flush, one statement.
                emit(indent,
                     f"{t} = _int({ex} / {ey}) "
                     f"if _isinstance({ex}, _int) else {ex} / {ey}")
                window.append(("temp", t))
                self.pending += 1
                return False
            self._count(indent, 1)
            emit(indent, f"if _isinstance({ex}, _int) and _isinstance({ey}, _int):")
            emit(indent + 1, f"if {ey} == 0:")
            self._spill(indent + 2)
            emit(indent + 2, "_div_zero()")
            emit(indent + 1, f"{t} = _int({ex} / {ey})")
            emit(indent, "else:")
            emit(indent + 1, f"{t} = {ex} / {ey}")
            window.append(("temp", t))
            return False

        if op == bc.MOD:
            y = self._multi(self._pop(indent), indent)
            x = self._multi(self._pop(indent), indent)
            ex, ey = self._expr(x), self._expr(y)
            t = self.tmp()
            if self._const_int_nonzero(y):
                emit(indent, f"{t} = {ex} - _int({ex} / {ey}) * {ey}")
                window.append(("temp", t))
                self.pending += 1
                return False
            self._count(indent, 1)
            emit(indent, f"if {ey} == 0:")
            self._spill(indent + 1)
            emit(indent + 1, "_div_zero()")
            emit(indent, f"{t} = {ex} - _int({ex} / {ey}) * {ey}")
            window.append(("temp", t))
            return False

        if op == bc.GETFIELD:
            obj = self._multi(self._pop(indent), indent)
            self._count(indent, 1)
            eo = self._expr(obj)
            self._raise_guard(indent, f"{eo} is None",
                              f"_NPE({f'getfield {a} on null'!r})")
            # Inlined ``Runtime.load_field``: access guard + direct dict
            # read; ``_load_field`` is the fallback for missing fields
            # (exact VMError text) and for any slow access condition the
            # guard already routed through ``_access``.
            self._access_guard(indent, eo)
            t = self.tmp()
            emit(indent, f"{t} = ({eo}).fields")
            emit(indent, f"{t} = _MISS if {t} is None "
                         f"else {t}.get({a!r}, _MISS)")
            emit(indent, f"if {t} is _MISS:")
            emit(indent + 1, f"{t} = _load_field({eo}, {a!r}, thread)")
            window.append(("temp", t))
            return False

        if op == bc.PUTFIELD:
            value = self._multi(self._pop(indent), indent)
            obj = self._multi(self._pop(indent), indent)
            self._count(indent, 1)
            eo = self._expr(obj)
            ev = self._expr(value)
            self._raise_guard(indent, f"{eo} is None",
                              f"_NPE({f'putfield {a} on null'!r})")
            # Inlined ``Runtime.store_field``: access guard, membership
            # check (missing fields fall back for the exact VMError —
            # before any mutation, and the service's re-access is
            # idempotent), direct assignment, then the reference tail
            # (value access guard + contamination merge) or the inline
            # ``store_events`` bump for non-Handle values.
            self._access_guard(indent, eo)
            t = self.tmp()
            emit(indent, f"{t} = ({eo}).fields")
            emit(indent, f"if {t} is None or {a!r} not in {t}:")
            emit(indent + 1, f"_store_field({eo}, {a!r}, {ev}, thread)")
            emit(indent, "else:")
            emit(indent + 1, f"{t}[{a!r}] = {ev}")
            emit(indent + 1, f"if _isinstance({ev}, _Handle):")
            self._access_guard(indent + 2, ev)
            emit(indent + 2, f"_on_store({eo}, {ev})")
            emit(indent + 1, "else:")
            emit(indent + 2, "_stats.store_events += 1")
            return False

        if op == bc.GETSTATIC:
            _cls_name, field = _split_static_ref(a)
            cell = self._cell(pc)
            t = self.tmp()
            emit(indent, f"{t} = {cell}[0]")
            self._deopt_if(indent, f"{t} is None", pc)
            result = self.tmp()
            # The cell holds the resolved class's statics.get — pure.
            emit(indent, f"{result} = {t}({field!r})")
            window.append(("temp", result))
            self.pending += 1
            return False

        if op == bc.PUTSTATIC:
            _cls_name, field = _split_static_ref(a)
            cell = self._cell(pc)
            t = self.tmp()
            emit(indent, f"{t} = {cell}[0]")
            self._deopt_if(indent, f"{t} is None", pc)
            value = self._multi(self._pop(indent), indent)
            self._count(indent, 1)
            ev = self._expr(value)
            # Inlined non-Handle half of ``Runtime.store_static``: direct
            # table write plus the counter the service would bump.  Handle
            # values (pinning, liveness check) go through the service.
            emit(indent, f"if _isinstance({ev}, _Handle):")
            emit(indent + 1, f"_store_static({field!r}, {ev}, {t})")
            emit(indent, "else:")
            emit(indent + 1, f"{t}.statics[{field!r}] = {ev}")
            emit(indent + 1, "_stats.putstatic_events += 1")
            return False

        if op == bc.NEW:
            cell = self._cell(pc)
            t = self.tmp()
            emit(indent, f"{t} = {cell}[0]")
            self._deopt_if(indent, f"{t} is None", pc)
            self._count(indent, 1)
            self._flush(indent)  # allocation: lowered values must be roots
            result = self.tmp()
            emit(indent, f"{result} = _allocate({t}, thread)")
            window.append(("temp", result))
            return False

        if op == bc.NEWARRAY:
            length = self._pop(indent)
            self._count(indent, 1)
            self._flush(indent)
            result = self.tmp()
            emit(indent,
                 f"{result} = _allocate(_arraycls, thread, "
                 f"length={self._expr(length)})")
            window.append(("temp", result))
            return False

        if op == bc.LDC_STR:
            self._count(indent, 1)
            self._flush(indent)
            result = self.tmp()
            emit(indent,
                 f"{result} = _new_string({self._const_expr(pc, a)}, thread)")
            window.append(("temp", result))
            return False

        if op == bc.AALOAD:
            index = self._multi(self._pop(indent), indent)
            array = self._multi(self._pop(indent), indent)
            self._count(indent, 1)
            ea = self._expr(array)
            ei = self._expr(index)
            self._raise_guard(indent, f"{ea} is None",
                              "_NPE('aaload on null array')")
            # Inlined ``Runtime.load_element``: access guard + direct
            # list read; non-arrays and bad indices fall back for the
            # exact VMError/ArrayIndexError.  A non-int index raises the
            # same TypeError from the inline bounds comparison as the
            # service's own.
            self._access_guard(indent, ea)
            t = self.tmp()
            emit(indent, f"{t} = ({ea}).elements")
            emit(indent, f"if {t} is not None and 0 <= {ei} < len({t}):")
            emit(indent + 1, f"{t} = {t}[{ei}]")
            emit(indent, "else:")
            emit(indent + 1, f"{t} = _load_element({ea}, {ei}, thread)")
            window.append(("temp", t))
            return False

        if op == bc.AASTORE:
            value = self._multi(self._pop(indent), indent)
            index = self._multi(self._pop(indent), indent)
            array = self._multi(self._pop(indent), indent)
            self._count(indent, 1)
            ea = self._expr(array)
            ei = self._expr(index)
            ev = self._expr(value)
            self._raise_guard(indent, f"{ea} is None",
                              "_NPE('aastore on null array')")
            # Inlined ``Runtime.store_element``; mirrors the PUTFIELD
            # shape with the array bounds check in place of the field
            # membership check.
            self._access_guard(indent, ea)
            t = self.tmp()
            emit(indent, f"{t} = ({ea}).elements")
            emit(indent, f"if {t} is None or not 0 <= {ei} < len({t}):")
            emit(indent + 1, f"_store_element({ea}, {ei}, {ev}, thread)")
            emit(indent, "else:")
            emit(indent + 1, f"{t}[{ei}] = {ev}")
            emit(indent + 1, f"if _isinstance({ev}, _Handle):")
            self._access_guard(indent + 2, ev)
            emit(indent + 2, f"_on_store({ea}, {ev})")
            emit(indent + 1, "else:")
            emit(indent + 2, "_stats.store_events += 1")
            return False

        if op == bc.ARRAYLENGTH:
            array = self._multi(self._pop(indent), indent)
            self._count(indent, 1)
            ea = self._expr(array)
            self._raise_guard(indent, f"{ea} is None",
                              "_NPE('arraylength on null')")
            self._access_guard(indent, ea)
            t = self.tmp()
            emit(indent, f"{t} = {ea}.length")
            window.append(("temp", t))
            return False

        if op == bc.INSTANCEOF:
            obj = self._pop(indent)
            t = self.tmp()
            emit(indent, f"{t} = _instanceof({self._expr(obj)}, "
                         f"{self._const_expr(pc, a)})")
            window.append(("temp", t))
            self.pending += 1
            return False

        if op == bc.INTERN:
            string = self._multi(self._pop(indent), indent)
            self._count(indent, 1)
            es = self._expr(string)
            self._raise_guard(indent, f"{es} is None", "_NPE('intern on null')")
            self._access_guard(indent, es)
            self._flush(indent)
            t = self.tmp()
            emit(indent, f"{t} = _intern_s({es})")
            window.append(("temp", t))
            return False

        if op == bc.INVOKESTATIC:
            cell = self._cell(pc)
            t = self.tmp()
            emit(indent, f"{t} = {cell}[0]")
            self._deopt_if(indent, f"{t} is None", pc)
            self._count(indent, 1)
            self._flush(indent)  # args must be on the real stack
            emit(indent, f"frame.pc = {nxt}")
            emit(indent, f"_invoke(thread, frame, {t})")
            self._emit_threaded_call(indent, nxt)
            return True

        if op == bc.INVOKEVIRTUAL:
            if not isinstance(b, int):
                return self._deopt(indent, pc)
            if b < 1:
                self._count(indent, 1)
                self._flush(indent)
                emit(indent, "raise _VerifyError('invokevirtual needs a receiver')")
                return True
            cls_cell, method_cell = self._vcell(pc)
            self._flush(indent)  # receiver + args may be in the window
            t = self.tmp()
            emit(indent, f"{t} = stack[-{b}]")
            # Non-Handle receivers (incl. None) and cache misses deopt; the
            # closure slot then raises / fills the cache with its timing.
            self._deopt_if(
                indent,
                f"not _isinstance({t}, _Handle) or {t}.cls is not {cls_cell}[0]",
                pc,
            )
            self._count(indent, 1)
            self._access_guard(indent, t)
            emit(indent, f"frame.pc = {nxt}")
            emit(indent, f"_invoke(thread, frame, {method_cell}[0])")
            self._emit_threaded_call(indent, nxt)
            return True

        if op == bc.RETURN:
            self._count(indent, 1)
            self._flush(indent)  # dying frame's stack must match closure tier
            emit(indent, "_ret(thread, _VOID)")
            emit(indent, "return n, -1")
            return True

        if op == bc.RETVAL:
            value = self._multi(self._pop(indent), indent)
            self._count(indent, 1)
            self._flush(indent)
            ev = self._expr(value)
            emit(indent, f"if _isinstance({ev}, _Handle):")
            emit(indent + 1, f"_return_ref({ev}, thread)")
            emit(indent, f"_ret(thread, {ev})")
            emit(indent, "return n, -1")
            return True

        if op == bc.SPAWN:
            # Always via the closure slot: thread creation is rare and its
            # scheduler/fault interactions stay in exactly one place.
            return self._deopt(indent, pc)

        if op == bc.GOTO:
            if not self._branch_target_ok(a):
                return self._deopt(indent, pc)
            self._count(indent, 1)
            self._flush(indent)
            emit(indent, f"pc = {a}")
            emit(indent, "continue")
            return True

        template = _IF1_OPS.get(op)
        if template is not None:
            if not self._branch_target_ok(a):
                return self._deopt(indent, pc)
            value = self._pop(indent)
            self._count(indent, 1)
            self._flush(indent)
            cond = template.format(self._expr(value))
            emit(indent, f"pc = {a} if {cond} else {nxt}")
            emit(indent, "continue")
            return True

        sym = _CMP_OPS.get(op)
        if sym is not None:
            if not self._branch_target_ok(a):
                return self._deopt(indent, pc)
            y = self._pop(indent)
            x = self._pop(indent)
            self._count(indent, 1)
            self._flush(indent)
            emit(indent,
                 f"pc = {a} if {self._expr(x)} {sym} {self._expr(y)} else {nxt}")
            emit(indent, "continue")
            return True

        # Unknown opcode: the closure slot raises VerifyError with
        # first-execution timing.
        return self._deopt(indent, pc)
