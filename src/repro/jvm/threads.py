"""Threads and the deterministic cooperative scheduler.

The paper's thread treatment needs only one observable: *which thread
performs each heap access* (section 3.3 pins objects touched by a second
thread).  A deterministic round-robin quantum scheduler provides exactly
that while keeping every run reproducible — the interpreter executes up to
``quantum`` instructions of one thread, then rotates.

Direct-drive workloads interleave explicitly (they call mutator APIs on
whichever :class:`JThread`'s mutator they like), so they bypass the
scheduler but exercise the identical sharing detection.
"""

from __future__ import annotations

from typing import List, Optional

from .errors import IllegalStateError
from .frames import CallStack, FrameIdSource


class JThread:
    """One VM thread: an id, a call stack, and scheduler state."""

    __slots__ = ("thread_id", "name", "stack", "alive", "started", "result")

    def __init__(self, thread_id: int, name: str, id_source: FrameIdSource) -> None:
        self.thread_id = thread_id
        self.name = name
        self.stack = CallStack(thread_id, id_source)
        self.alive = True
        self.started = False
        self.result: object = None

    @property
    def finished(self) -> bool:
        return self.started and not self.stack.frames

    def __repr__(self) -> str:
        state = "dead" if not self.alive else ("running" if self.started else "new")
        return f"<JThread {self.thread_id} {self.name!r} {state} depth={self.stack.depth}>"


class Scheduler:
    """Round-robin over runnable threads with a fixed instruction quantum."""

    def __init__(self, quantum: int = 100) -> None:
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._threads: List[JThread] = []
        self._cursor = 0

    def register(self, thread: JThread) -> None:
        self._threads.append(thread)

    @property
    def threads(self) -> List[JThread]:
        return list(self._threads)

    def runnable(self) -> List[JThread]:
        return [t for t in self._threads if t.alive and t.stack.frames]

    def next_thread(self) -> Optional[JThread]:
        """Pick the next runnable thread after the cursor (round-robin)."""
        n = len(self._threads)
        if n == 0:
            return None
        for probe in range(n):
            i = (self._cursor + probe) % n
            thread = self._threads[i]
            if thread.alive and thread.stack.frames:
                self._cursor = (i + 1) % n
                return thread
        return None

    def retire(self, thread: JThread) -> None:
        if thread not in self._threads:
            raise IllegalStateError("retiring unknown thread")
        thread.alive = False
