"""Class and method model for the VM substrate.

The substrate is a deliberately small Java-like VM: enough of the JVM's
object and invocation model that the four instructions the CG collector
instruments (``new``/``putfield``/``putstatic``/``areturn``, thesis section
3.1.3) occur with faithful semantics, plus arrays, virtual dispatch, statics,
string interning, native methods, and threads.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .errors import LinkageError

# Bytecode instructions are plain tuples: (opcode, arg1, arg2).  Unused
# argument slots hold None.  Keeping them as tuples (rather than objects)
# makes the pure-Python dispatch loop measurably faster.
Instruction = Tuple[int, object, object]


class JClass:
    """A loaded class: field layout, methods, statics, and a super chain.

    Field order matters only for documentation; fields are stored by name in
    each object.  ``statics`` is the class's static-variable table — the CG
    collector treats every reference stored there as pinned to the synthetic
    frame 0 (live for the program's duration).
    """

    __slots__ = (
        "name", "fields", "methods", "statics", "superclass", "is_array",
        "_field_template",
    )

    def __init__(
        self,
        name: str,
        fields: Optional[List[str]] = None,
        superclass: Optional["JClass"] = None,
        is_array: bool = False,
    ) -> None:
        self.name = name
        self.fields: List[str] = list(fields or [])
        if superclass is not None:
            # Inherited fields precede declared ones, mirroring JVM layout.
            self.fields = list(superclass.fields) + [
                f for f in self.fields if f not in superclass.fields
            ]
        self.methods: Dict[str, JMethod] = {}
        self.statics: Dict[str, object] = {}
        self.superclass = superclass
        self.is_array = is_array
        self._field_template: Optional[Dict[str, object]] = None

    def __repr__(self) -> str:
        return f"<JClass {self.name}>"

    def has_field(self, name: str) -> bool:
        return name in self.fields

    def add_method(self, method: "JMethod") -> None:
        self.methods[method.name] = method
        method.owner = self

    def resolve_method(self, name: str) -> "JMethod":
        """Look ``name`` up along the super chain (virtual dispatch)."""
        cls: Optional[JClass] = self
        while cls is not None:
            method = cls.methods.get(name)
            if method is not None:
                return method
            cls = cls.superclass
        raise LinkageError(f"no method {name!r} on class {self.name} or its supers")

    def instance_size_words(self) -> int:
        """Payload size of an instance, in words (one word per field)."""
        return max(1, len(self.fields))

    def field_template(self) -> Dict[str, object]:
        """All-None field dict to copy per allocation.

        The length guard rebuilds the template when fields are appended
        after class creation (the assembler's ``field`` directive does
        this), so the cache is safe for append-only mutation.
        """
        template = self._field_template
        if template is None or len(template) != len(self.fields):
            template = self._field_template = dict.fromkeys(self.fields)
        return template


class JMethod:
    """A method body: bytecode, frame shape, and (optionally) a native impl.

    ``nargs`` arguments are popped from the caller's operand stack into
    locals ``0..nargs-1`` at invocation.  Native methods carry a Python
    callable instead of bytecode; the interpreter routes them through the
    native registry so returned references can be pinned (thesis section 3.3).
    """

    __slots__ = (
        "name", "nargs", "nlocals", "code", "native", "owner", "labels",
        "fusible", "block_starts",
    )

    def __init__(
        self,
        name: str,
        nargs: int,
        nlocals: Optional[int] = None,
        code: Optional[List[Instruction]] = None,
        native: Optional[Callable] = None,
    ) -> None:
        self.name = name
        self.nargs = nargs
        self.nlocals = nlocals if nlocals is not None else nargs
        if self.nlocals < nargs:
            raise LinkageError(
                f"method {name}: nlocals ({self.nlocals}) < nargs ({nargs})"
            )
        self.code: List[Instruction] = code or []
        self.native = native
        self.owner: Optional[JClass] = None
        self.labels: Dict[str, int] = {}
        #: Superinstruction pair starts from the assembler's peephole pass
        #: (None = not yet scanned; the closure compiler scans lazily for
        #: hand-built methods that never went through the assembler).
        self.fusible: Optional[Tuple[int, ...]] = None
        #: Basic-block leader pcs from the assembler's control-flow scan
        #: (None = not yet scanned; the compiled tier's codegen scans lazily
        #: for hand-built methods, mirroring ``fusible``).
        self.block_starts: Optional[Tuple[int, ...]] = None

    @property
    def qualified_name(self) -> str:
        owner = self.owner.name if self.owner else "?"
        return f"{owner}.{self.name}"

    def __repr__(self) -> str:
        kind = "native " if self.native else ""
        return f"<JMethod {kind}{self.qualified_name}/{self.nargs}>"


class Program:
    """A set of loaded classes — the unit the interpreter executes.

    The well-known classes ``java/lang/Object``, ``java/lang/String`` and the
    array pseudo-class are created automatically so that every program can
    allocate strings and arrays without declaring them.
    """

    OBJECT = "java/lang/Object"
    STRING = "java/lang/String"
    ARRAY = "[Ljava/lang/Object;"

    def __init__(self) -> None:
        self.classes: Dict[str, JClass] = {}
        object_cls = JClass(self.OBJECT)
        string_cls = JClass(self.STRING, fields=["value"], superclass=object_cls)
        array_cls = JClass(self.ARRAY, superclass=object_cls, is_array=True)
        for cls in (object_cls, string_cls, array_cls):
            self.classes[cls.name] = cls

    def define_class(
        self,
        name: str,
        fields: Optional[List[str]] = None,
        superclass: Optional[str] = None,
    ) -> JClass:
        if name in self.classes:
            raise LinkageError(f"duplicate class {name!r}")
        sup = self.lookup(superclass) if superclass else self.classes[self.OBJECT]
        cls = JClass(name, fields=fields, superclass=sup)
        self.classes[name] = cls
        return cls

    def lookup(self, name: str) -> JClass:
        try:
            return self.classes[name]
        except KeyError:
            raise LinkageError(f"unknown class {name!r}") from None

    def resolve(self, qualified: str) -> JMethod:
        """Resolve ``Class.method`` to a method (statically)."""
        if "." not in qualified:
            raise LinkageError(f"malformed method reference {qualified!r}")
        cls_name, method_name = qualified.rsplit(".", 1)
        return self.lookup(cls_name).resolve_method(method_name)
