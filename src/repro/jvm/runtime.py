"""The runtime: heap + CG collector + tracing collector + threads.

:class:`Runtime` is the single integration point.  Both mutator front ends —
the bytecode :mod:`~repro.jvm.interpreter` and the direct-drive
:class:`~repro.jvm.mutator.Mutator` — funnel every heap effect through the
services here, so the CG collector, the tracing collector's write barriers,
the thread-sharing detector, and the periodic-GC trigger observe an
identical event stream regardless of how the program is expressed.

Allocation follows the thesis's order (section 3.7): try the free list;
on failure consult the CG recycle list (first-fit over dead objects);
then flush parked recycle storage and retry; then run the traditional
collector and retry; only then raise OutOfMemoryError.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from time import perf_counter

from ..core.policy import CGPolicy
from ..faults import CrashDump, FaultPlan, did_you_mean
from ..obs.events import NULL_TRACER
from ..obs.profile import NULL_PROFILER, PHASE_MSA, PhaseProfiler
from .errors import IllegalStateError, OutOfMemoryError, VMError
from .frames import Frame, FrameIdSource, StaticFrame
from .heap import ALLOCATOR_CHOICES, Handle, Heap
from .model import JClass, JMethod, Program
from .natives import NativeRegistry
from .strings import InternTable
from .threads import JThread, Scheduler

if False:  # pragma: no cover - typing-only (imported lazily to break a cycle)
    from ..core.collector import ContaminatedCollector

TRACING_CHOICES = ("marksweep", "none", "generational", "train")
DISPATCH_CHOICES = ("tiered", "compiled", "closure", "table", "chain")


def default_dispatch() -> str:
    """The default interpreter dispatch tier.

    ``tiered`` (profile-guided: closure tier until hot, then promotion to
    the compiled tier) unless the ``REPRO_DISPATCH`` environment knob
    overrides it — the CI dispatch-matrix job uses the knob to run the
    whole tier-1 suite under each tier.  The value is validated against
    :data:`DISPATCH_CHOICES` by ``RuntimeConfig.__post_init__`` exactly
    like the kwarg path, so a typo'd env value fails at config load with
    a did-you-mean suggestion instead of silently misdispatching.
    """
    return os.environ.get("REPRO_DISPATCH", "tiered")


@dataclass
class RuntimeConfig:
    """Everything configurable about a run (one figure = one config sweep)."""

    heap_words: int = 1 << 20
    cg: CGPolicy = field(default_factory=CGPolicy)
    tracing: str = "marksweep"
    compaction: bool = False
    #: Run the tracing collector every N mutator operations (Fig. 4.11 uses
    #: the thesis's "every 100,000 JVM instructions" protocol).  None = only
    #: on allocation failure.
    gc_period_ops: Optional[int] = None
    #: Scheduler quantum, in instructions.
    quantum: int = 100
    #: Event sink for the observability layer (:mod:`repro.obs`).  None
    #: installs the zero-overhead NullTracer.
    tracer: Optional[object] = None
    #: Collect perf_counter phase timings (interpret / cg-events / msa /
    #: recycle-search) and the per-frame-depth time profile.
    profile: bool = False
    #: Object-space allocator: "next-fit" is the faithful JDK 1.1.8 linear
    #: search every figure measures; "segregated" is the production-mode
    #: size-class allocator (opt-in, never used by the paper's tables).
    allocator: str = "next-fit"
    #: Interpreter dispatch strategy: "tiered" (the default —
    #: profile-guided: methods start in the closure tier with an
    #: invocation + loop-backedge hotness counter and are promoted to the
    #: compiled tier at a call boundary once hot), "compiled" (every
    #: method compiled to generated Python source up front, with guarded
    #: speculation and deopt to the closure tier; see
    #: :mod:`repro.jvm.compiledcode`), "closure" (pre-bound zero-decode
    #: closures with quickening and superinstruction fusion;
    #: :mod:`repro.jvm.closurecode`), "table" (opcode-indexed handler
    #: tuple) or "chain" (the original if/elif reference, kept for the
    #: opcode-parity differential suite).  The ``REPRO_DISPATCH`` env var
    #: overrides the default.
    dispatch: str = field(default_factory=default_dispatch)
    #: Tiered-dispatch promotion threshold: a method is promoted to the
    #: compiled tier at its next call boundary once its hotness counter
    #: (driver visits + backedges * promote_backedge_weight) reaches this
    #: value.  Only consulted when ``dispatch == "tiered"``; both knobs
    #: still enter :meth:`fingerprint` unconditionally because they are
    #: part of the run's identity (promotion timing never changes
    #: counters, but the knobs are config, not observation).
    promote_after: int = 128
    #: Weight of one loop backedge in the hotness counter (a tight loop
    #: should get hot in a few iterations, not a few thousand visits).
    promote_backedge_weight: int = 8
    #: Maintain a per-opcode execution histogram (``vm.op.*`` metrics).
    #: Purely observational — selects a counting dispatch loop but never
    #: changes a run's counters — so, like ``tracer``/``profile``, it is
    #: excluded from :meth:`fingerprint`.  Off by default: the zero-cost
    #: path stays zero-cost.
    count_opcodes: bool = False
    #: Deterministic fault-injection plan (:mod:`repro.faults`).  None —
    #: the default for every figure and bench run — keeps each hook at a
    #: single is-not-None test, so results stay bit-identical.
    faults: Optional[FaultPlan] = None
    #: Emit a :class:`~repro.obs.heartbeat.LiveSnapshot` to the spool
    #: every N mutator operations (``python -m repro inspect`` reads it).
    #: Pure op-counter cadence — snapshots fire at the same op counts
    #: under every dispatch tier — and purely observational, so, like
    #: ``tracer``/``profile``/``count_opcodes``, it is excluded from
    #: :meth:`fingerprint`.  Off (None) by default: the zero-cost tick
    #: paths stay bound exactly as before.
    heartbeat_every: Optional[int] = None
    #: Spool directory override for heartbeats (default: ``$REPRO_SPOOL``
    #: or ``<tempdir>/repro-spool``).
    heartbeat_spool: Optional[str] = None
    #: Optional Unix datagram socket path each beat is also pushed to.
    heartbeat_socket: Optional[str] = None
    #: Identity labels stamped on every snapshot (the harness stamps
    #: ``workload``/``size``/``system`` so the fleet view can name cells).
    heartbeat_labels: Optional[Dict] = None

    def __post_init__(self) -> None:
        if self.tracing not in TRACING_CHOICES:
            raise ValueError(
                f"tracing must be one of {TRACING_CHOICES}, got {self.tracing!r}"
                f"{did_you_mean(self.tracing, TRACING_CHOICES)}"
            )
        if self.heap_words <= 0:
            raise ValueError("heap_words must be positive")
        if self.allocator not in ALLOCATOR_CHOICES:
            raise ValueError(
                f"allocator must be one of {ALLOCATOR_CHOICES}, "
                f"got {self.allocator!r}"
                f"{did_you_mean(self.allocator, ALLOCATOR_CHOICES)}"
            )
        if self.dispatch not in DISPATCH_CHOICES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_CHOICES}, got {self.dispatch!r}"
                f"{did_you_mean(self.dispatch, DISPATCH_CHOICES)}"
            )
        if self.heartbeat_every is not None and self.heartbeat_every < 1:
            raise ValueError("heartbeat_every must be >= 1 (or None for off)")
        if self.promote_after < 1:
            raise ValueError(
                f"promote_after must be >= 1, got {self.promote_after}"
            )
        if self.promote_backedge_weight < 0:
            raise ValueError(
                "promote_backedge_weight must be >= 0, "
                f"got {self.promote_backedge_weight}"
            )

    def fingerprint(self) -> str:
        """Digest of every field that changes a run's *results*.

        ``heap_words`` is excluded because the result cache keys it
        explicitly; ``tracer`` and ``profile`` are excluded because they
        observe a run without altering its counters.
        """
        payload = {
            "cg": asdict(self.cg),
            "tracing": self.tracing,
            "compaction": self.compaction,
            "gc_period_ops": self.gc_period_ops,
            "quantum": self.quantum,
            "allocator": self.allocator,
            "dispatch": self.dispatch,
            "promote_after": self.promote_after,
            "promote_backedge_weight": self.promote_backedge_weight,
            "faults": self.faults.fingerprint() if self.faults is not None
                      else None,
        }
        digest = hashlib.sha1(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
        return digest[:12]


class Runtime:
    """A VM instance: owns the heap, threads, collectors, and statics."""

    def __init__(self, config: Optional[RuntimeConfig] = None,
                 program: Optional[Program] = None) -> None:
        self.config = config or RuntimeConfig()
        self.program = program or Program()
        handle_words = (
            self.config.cg.handle_words if self.config.cg.enabled else 2
        )
        self.heap = Heap(
            self.config.heap_words, handle_words=handle_words,
            allocator=self.config.allocator,
        )
        self.tracer = (
            self.config.tracer if self.config.tracer is not None else NULL_TRACER
        )
        self.profiler = PhaseProfiler() if self.config.profile else NULL_PROFILER
        self.static_frame = StaticFrame()
        self.frame_ids = FrameIdSource()
        self.scheduler = Scheduler(self.config.quantum)
        self.intern_table = InternTable()
        self.natives = NativeRegistry()
        #: Direct-mode statics (the bytecode mode uses class statics).
        self.globals: Dict[str, object] = {}

        # Imported here, not at module scope: collector -> jvm -> runtime
        # would otherwise be a circular import.
        from ..core.collector import ContaminatedCollector

        self.collector: Optional["ContaminatedCollector"] = None
        if self.config.cg.enabled:
            self.collector = ContaminatedCollector(
                self.heap, self.static_frame, self.config.cg,
                tracer=self.tracer, profiler=self.profiler,
            )
            if self.config.cg.paranoid:
                self.collector.reachability_probe = self._assert_unreachable

        self.tracing = self._make_tracing(self.config.tracing)

        #: Fault-injection and recovery accounting: ``injected.<site>``,
        #: ``recovered.<tier>``, ``oom.dumps``.  Always present (cheap),
        #: folded into the ``fault.`` metrics namespace only when nonzero.
        self.fault_stats: Counter = Counter()
        plan = self.config.faults
        if plan is not None:
            # Arming is per-runtime: every run replays the same schedule.
            plan.rearm()
            if plan.arms("heap.alloc"):
                self.heap.set_alloc_fault(self._alloc_fault_probe)

        # Hot-path caches: these getattr/config reads used to happen once
        # per allocation/store/tick; resolve them once here instead.
        self._note_allocation = getattr(self.tracing, "note_allocation", None)
        self._write_barrier_fn = getattr(self.tracing, "write_barrier", None)
        self._gc_period = self.config.gc_period_ops
        self._heap_allocate = self.heap.allocate

        #: Live-inspection heartbeat (:mod:`repro.obs.heartbeat`).  Armed
        #: via ``heartbeat_every``; cadence is pure op-counter arithmetic
        #: evaluated in the tick path, so *when* a snapshot fires is
        #: deterministic even though its wall-clock fields are advisory.
        self.heartbeat = None
        self._hb_every = self.config.heartbeat_every
        self._hb_next = 0
        if self._hb_every is not None:
            from ..obs.heartbeat import Heartbeat

            self.heartbeat = Heartbeat(
                self._hb_every, spool=self.config.heartbeat_spool,
                socket_path=self.config.heartbeat_socket,
                labels=self.config.heartbeat_labels,
            )
            self._hb_next = self._hb_every

        #: True when front ends must tick per instruction (periodic GC or
        #: heartbeat armed) instead of batching ticks per quantum — both
        #: triggers fire at exact op counts only under per-op ticking.
        self._tick_per_op = (
            self._gc_period is not None or self.heartbeat is not None
        )
        if self.heartbeat is not None:
            self.tick = (
                self._tick_heartbeat if self._gc_period is None
                else self._tick_gc_heartbeat
            )
        elif self._gc_period is None:
            # No periodic trigger configured: tick degenerates to a counter
            # bump.  Bind the specialised form as an instance attribute so
            # front ends that cache ``runtime.tick`` pick it up too.
            self.tick = self._tick_count_only

        self.ops = 0
        self._last_periodic_gc = 0
        self._next_thread_id = 0
        self.main_thread = self.new_thread("main")
        self._interpreter = None  # created lazily to avoid an import cycle

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _make_tracing(self, kind: str):
        if kind == "none":
            from ..gc.nullgc import NullCollector

            return NullCollector(self)
        if kind == "marksweep":
            from ..gc.marksweep import MarkSweepCollector

            return MarkSweepCollector(self, compaction=self.config.compaction)
        if kind == "generational":
            from ..gc.generational import GenerationalCollector

            return GenerationalCollector(self)
        if kind == "train":
            from ..gc.train import TrainCollector

            return TrainCollector(self)
        raise ValueError(f"unknown tracing collector {kind!r}")

    @property
    def interpreter(self):
        if self._interpreter is None:
            from .interpreter import Interpreter

            self._interpreter = Interpreter(self)
        return self._interpreter

    def new_thread(self, name: Optional[str] = None) -> JThread:
        thread = JThread(
            self._next_thread_id, name or f"thread-{self._next_thread_id}",
            self.frame_ids,
        )
        self._next_thread_id += 1
        self.scheduler.register(thread)
        return thread

    def threads(self) -> List[JThread]:
        return self.scheduler.threads

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------

    def push_frame(self, thread: JThread, method: Optional[JMethod] = None,
                   nlocals: int = 0) -> Frame:
        thread.started = True
        return thread.stack.push(method, nlocals)

    def pop_frame(self, thread: JThread) -> Frame:
        """Pop the active frame; the CG collector reclaims its blocks."""
        frame = thread.stack.pop()
        if self.collector is not None:
            self.collector.on_frame_pop(frame)
        return frame

    def current_frame(self, thread: JThread) -> Frame:
        return thread.stack.current

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, cls: Union[str, JClass], thread: JThread,
                 length: Optional[int] = None) -> Handle:
        """Allocate an instance; runs recycling/GC per the thesis's order."""
        if type(cls) is str:
            cls = self.program.lookup(cls)
        if cls.is_array and length is None:
            raise VMError("array allocation requires a length")
        frames = thread.stack.frames
        frame = frames[-1] if frames else self.static_frame
        birth_frame_id = frame.frame_id
        birth_depth = frame.depth
        handle = self._heap_allocate(
            cls, thread.thread_id, birth_frame_id, birth_depth, length
        )
        if handle is None:
            handle = self._allocate_slow(
                cls, thread, birth_frame_id, birth_depth, length
            )
        collector = self.collector
        if collector is not None:
            collector.on_alloc(handle, frame)
        note = self._note_allocation
        if note is not None:
            note(handle)
        return handle

    def _alloc_fault_probe(self, size: int) -> bool:
        """Heap-installed hook: synthesize exhaustion per the fault plan."""
        plan = self.config.faults
        if plan is None or not plan.should_fire("heap.alloc"):
            return False
        self.fault_stats["injected.heap.alloc"] += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("fault_inject", site="heap.alloc", fault="oom",
                        firing=plan.fired("heap.alloc"), ops=self.ops,
                        size=size)
        return True

    def _allocate_slow(self, cls: JClass, thread: JThread, birth_frame_id: int,
                       birth_depth: int, length: Optional[int]) -> Handle:
        """Allocation-failure recovery cascade: recycle search, CG emergency
        pass, mark-sweep backstop, then a structured OutOfMemoryError.

        The tier order (and every call made along it) matches the thesis's
        section 3.7 protocol exactly, so an un-faulted run's counters are
        bit-identical to the pre-cascade implementation; the additions are
        accounting (``fault_stats``), ``degrade``/``oom_recover`` trace
        events, and the crash dump attached to the terminal OOM.
        """
        tracer = self.tracer
        trace = tracer.enabled
        size = self.heap.size_of(cls, length)
        handle = None
        tier = None
        if self.collector is not None:
            # Tier 1 (section 3.7): adopt a recyclable dead object's storage.
            if trace:
                tracer.emit("degrade", tier="recycle", size=size, ops=self.ops)
            donor = self.collector.take_recycled(size, cls=cls)
            if donor is not None:
                handle = self.heap.adopt_storage(
                    donor, cls, thread.thread_id, birth_frame_id, birth_depth,
                    length=length,
                )
                tier = "recycle"
            elif self.collector.policy.recycling and len(self.collector.recycle):
                # Tier 2: CG emergency pass — prune fully-dead equilive
                # blocks and return all parked recycle storage to the free
                # list, then retry without tracing a single pointer.
                if trace:
                    tracer.emit("degrade", tier="emergency", size=size,
                                ops=self.ops)
                self.collector.emergency_pass()
                handle = self.heap.allocate(
                    cls, thread.thread_id, birth_frame_id, birth_depth,
                    length=length,
                )
                tier = "emergency"
        if handle is None:
            # Tier 3: the traditional tracing collector (the backstop CG is
            # designed to "operate in concert with", thesis chapter 1).
            if trace:
                tracer.emit("degrade", tier="backstop", size=size, ops=self.ops)
            self.run_gc()
            handle = self.heap.allocate(
                cls, thread.thread_id, birth_frame_id, birth_depth, length=length
            )
            tier = "backstop"
        if handle is None:
            self.fault_stats["oom.dumps"] += 1
            message = (
                f"cannot allocate {size} words of "
                f"{cls.name} (heap {self.heap.capacity} words, "
                f"{self.heap.free_list.free_words} free but fragmented)"
            )
            dump = CrashDump.capture(
                self, reason=message, site="heap.alloc",
                request={"cls": cls.name, "words": size,
                         "thread": thread.name},
            )
            raise OutOfMemoryError(message, dump=dump.to_dict())
        self.fault_stats[f"recovered.{tier}"] += 1
        if trace:
            tracer.emit("oom_recover", tier=tier, size=size, ops=self.ops)
        return handle

    def new_string(self, contents: str, thread: Optional[JThread] = None) -> Handle:
        handle = self.allocate(
            self.program.lookup(Program.STRING), thread or self.main_thread
        )
        handle.pyvalue = contents
        handle.fields["value"] = None  # contents live in pyvalue
        return handle

    def intern(self, handle: Handle) -> Handle:
        return self.intern_table.intern(handle, self)

    # ------------------------------------------------------------------
    # Heap mutation services (shared by interpreter and direct mutators)
    # ------------------------------------------------------------------

    def access(self, handle: Handle, thread: JThread) -> None:
        """Pre-access check: liveness oracle + thread-sharing detection."""
        if self.collector is not None:
            self.collector.on_access(handle, thread.thread_id)
        else:
            handle.check_live()

    def store_field(self, container: Handle, name: str, value: object,
                    thread: JThread) -> None:
        collector = self.collector
        if collector is not None:
            collector.on_access(container, thread.thread_id)
        else:
            container.check_live()
        fields = container.fields
        if fields is None or name not in fields:
            raise VMError(f"no field {name!r} on {container.cls.name}")
        fields[name] = value
        if isinstance(value, Handle):
            if collector is not None:
                collector.on_access(value, thread.thread_id)
                collector.on_store(container, value)
            else:
                value.check_live()
            barrier = self._write_barrier_fn
            if barrier is not None:
                barrier(container, value)
        elif collector is not None:
            collector.stats.store_events += 1

    def load_field(self, container: Handle, name: str, thread: JThread) -> object:
        self.access(container, thread)
        if container.fields is None or name not in container.fields:
            raise VMError(f"no field {name!r} on {container.cls.name}")
        return container.fields[name]

    def store_element(self, array: Handle, index: int, value: object,
                      thread: JThread) -> None:
        """``aastore``: arrays contaminate like any other object (section 3.1.1)."""
        self.access(array, thread)
        elements = array.elements
        if elements is None:
            raise VMError(f"aastore into non-array {array.cls.name}")
        if not 0 <= index < len(elements):
            from .errors import ArrayIndexError

            raise ArrayIndexError(f"index {index} out of [0, {len(elements)})")
        elements[index] = value
        collector = self.collector
        if isinstance(value, Handle):
            if collector is not None:
                collector.on_access(value, thread.thread_id)
                collector.on_store(array, value)
            else:
                value.check_live()
            barrier = self._write_barrier_fn
            if barrier is not None:
                barrier(array, value)
        elif collector is not None:
            collector.stats.store_events += 1

    def load_element(self, array: Handle, index: int, thread: JThread) -> object:
        self.access(array, thread)
        elements = array.elements
        if elements is None:
            raise VMError(f"aaload from non-array {array.cls.name}")
        if not 0 <= index < len(elements):
            from .errors import ArrayIndexError

            raise ArrayIndexError(f"index {index} out of [0, {len(elements)})")
        return elements[index]

    def store_static(self, key: str, value: object,
                     cls: Optional[JClass] = None) -> None:
        """``putstatic``: pin referenced objects to frame 0."""
        table = cls.statics if cls is not None else self.globals
        table[key] = value
        if self.collector is not None:
            if isinstance(value, Handle):
                self.collector.on_putstatic(value)
            else:
                self.collector.stats.putstatic_events += 1

    def load_static(self, key: str, cls: Optional[JClass] = None) -> object:
        table = cls.statics if cls is not None else self.globals
        return table.get(key)

    def return_reference(self, value: Handle, thread: JThread) -> None:
        """``areturn``: promote the block to the caller's frame."""
        if self.collector is not None:
            caller = thread.stack.caller
            self.collector.on_areturn(value, caller)

    def _write_barrier(self, container: Handle, value: Handle) -> None:
        barrier = self._write_barrier_fn
        if barrier is not None:
            barrier(container, value)

    # ------------------------------------------------------------------
    # Periodic GC trigger (Fig. 4.11 protocol)
    # ------------------------------------------------------------------

    def tick(self, n: int = 1) -> None:
        """Charge ``n`` mutator operations; runs the periodic collector.

        Front ends call this at instruction/operation boundaries only —
        i.e. while every live reference is still rooted (operand stacks,
        locals, temp roots) — so a collection triggered here is safe.
        """
        self.ops += n
        period = self._gc_period
        if period is not None and self.ops - self._last_periodic_gc >= period:
            self._last_periodic_gc = self.ops
            self.run_gc()

    def _tick_count_only(self, n: int = 1) -> None:
        """Specialised :meth:`tick` for runs with no periodic-GC trigger."""
        self.ops += n

    def _hb_fire(self) -> None:
        """Advance the heartbeat schedule and emit one snapshot.

        The next firing point is computed *before* the beat so a snapshot
        can never reenter the schedule arithmetic; multiple thresholds
        crossed by one bulk tick coalesce into a single beat (matching
        the periodic-GC trigger's catch-up behavior).
        """
        every = self._hb_every
        self._hb_next += every * ((self.ops - self._hb_next) // every + 1)
        self.heartbeat.beat(self)

    def _tick_heartbeat(self, n: int = 1) -> None:
        """:meth:`tick` with a heartbeat armed but no periodic GC."""
        self.ops += n
        if self.ops >= self._hb_next:
            self._hb_fire()

    def _tick_gc_heartbeat(self, n: int = 1) -> None:
        """:meth:`tick` with both the periodic GC and a heartbeat armed.

        The GC trigger runs first (same order as the unadorned tick), so a
        snapshot taken at a shared boundary observes the post-collection
        heap.
        """
        self.ops += n
        period = self._gc_period
        if self.ops - self._last_periodic_gc >= period:
            self._last_periodic_gc = self.ops
            self.run_gc()
        if self.ops >= self._hb_next:
            self._hb_fire()

    def run_gc(self) -> int:
        """Run the tracing collector with observability around it.

        All collection entry points (allocation failure and the periodic
        trigger) funnel through here so ``gc_start``/``gc_end`` events and
        the ``msa`` phase timer see every cycle.
        """
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                "gc_start",
                collector=getattr(self.tracing, "name", self.config.tracing),
                cycle=self.tracing.work.cycles + 1,
                ops=self.ops, live=self.heap.live_count(),
            )
        if self.profiler.enabled:
            started = perf_counter()
            reclaimed = self.tracing.collect()
            self.profiler.add(PHASE_MSA, perf_counter() - started)
        else:
            reclaimed = self.tracing.collect()
        if tracer.enabled:
            tracer.emit(
                "gc_end", reclaimed=reclaimed, live=self.heap.live_count(),
            )
        return reclaimed

    # ------------------------------------------------------------------
    # Roots
    # ------------------------------------------------------------------

    def iter_static_roots(self) -> Iterator[Handle]:
        for value in self.globals.values():
            if isinstance(value, Handle) and not value.freed:
                yield value
        for cls in self.program.classes.values():
            for value in cls.statics.values():
                if isinstance(value, Handle) and not value.freed:
                    yield value
        yield from self.intern_table.roots()
        yield from self.natives.roots()

    def iter_roots(self) -> Iterator[Handle]:
        yield from self.iter_static_roots()
        for thread in self.scheduler.threads:
            for frame in thread.stack:
                yield from frame.root_references()

    def all_frames(self) -> List[Frame]:
        frames: List[Frame] = [self.static_frame]
        for thread in self.scheduler.threads:
            frames.extend(thread.stack.frames)
        return frames

    # ------------------------------------------------------------------
    # Execution entry points (bytecode mode)
    # ------------------------------------------------------------------

    def run(self, qualified: str, args: Optional[List[object]] = None) -> object:
        """Run ``Class.method`` on the main thread to completion.

        Spawned threads are interleaved round-robin; the call returns the
        main method's result once every thread has finished.
        """
        return self.interpreter.run_program(qualified, args or [])

    def invoke(self, qualified: str, args: List[object],
               thread: Optional[JThread] = None) -> object:
        """Synchronously invoke a method on ``thread`` (native callbacks)."""
        return self.interpreter.call_sync(
            thread or self.main_thread, qualified, args
        )

    # ------------------------------------------------------------------
    # Verification helpers
    # ------------------------------------------------------------------

    def _assert_unreachable(self, doomed: List[Handle]) -> None:
        """Paranoid-mode oracle: objects CG frees must be unreachable."""
        doomed_ids = {h.id for h in doomed}
        seen = set()
        stack = [h for h in self.iter_roots()]
        while stack:
            handle = stack.pop()
            if handle.id in seen or handle.freed:
                continue
            seen.add(handle.id)
            if handle.id in doomed_ids:
                raise IllegalStateError(
                    f"CG is about to free reachable object {handle!r}"
                )
            stack.extend(handle.references())

    def check_heap_accounting(self) -> None:
        recycled = 0
        if self.collector is not None:
            recycled = self.collector.recycle.parked_words
        self.heap.check_accounting(recycled)

    def check_cg_invariants(self) -> None:
        if self.collector is not None:
            self.collector.equilive.check_invariants(self.all_frames())
