"""Error taxonomy for the VM substrate and the CG collector.

``UseAfterCollect`` is the reproduction's *soundness oracle*: the CG collector
marks every object it reclaims as tainted (thesis section 3.1.4, "Tainted
Objects"), and any subsequent mutator access to a tainted handle raises this
error.  A sound collector never triggers it; the test suite leans on this
heavily, including under hypothesis-generated mutator programs.
"""

from __future__ import annotations


class VMError(Exception):
    """Base class for all errors raised by the VM substrate."""


class OutOfMemoryError(VMError):
    """The heap could not satisfy an allocation even after garbage collection.

    ``dump`` (when present) is a JSON-serializable crash dump captured by
    :class:`repro.faults.CrashDump` after the whole recovery cascade —
    recycle search, CG emergency pass, mark-sweep backstop — came up empty.
    """

    def __init__(self, message: str = "", dump=None):
        super().__init__(message)
        self.dump = dump


class UseAfterCollect(VMError):
    """A mutator touched an object that the CG collector already reclaimed.

    This should never happen for a correct collector: it indicates the
    collector freed a reachable object.  It exists as an executable assertion
    of the paper's central safety claim ("It correctly identifies dead
    objects").
    """


class LinkageError(VMError):
    """A class, method, or field was referenced but never defined."""


class VerifyError(VMError):
    """Malformed bytecode: bad operands, stack underflow, type confusion."""


class AssemblerError(VMError):
    """The textual assembler rejected its input."""


class NullPointerError(VMError):
    """A field, array, or method access went through a null reference."""


class ArrayIndexError(VMError):
    """An array access was out of bounds."""


class IllegalStateError(VMError):
    """An API was used out of protocol (e.g. areturn with no caller frame)."""
