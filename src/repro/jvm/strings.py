"""String objects and the intern table (thesis section 3.2).

JDK 1.1.8 implements ``String.intern()`` with an interpreter-internal hash
table whose references "are essentially static, since a String must map to
the same reference via intern() for the duration of a program".  Because
those references are invisible to the bytecode stream, the thesis had to
insert explicit collector calls — we reproduce that: interning a string pins
its equilive block to frame 0 via ``on_intern``, and the intern table is a
root for the tracing collectors.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, TYPE_CHECKING

from .errors import VMError
from .heap import Handle

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import Runtime


class InternTable:
    """Maps string contents to their unique canonical String object."""

    def __init__(self) -> None:
        self._table: Dict[str, Handle] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    def lookup(self, contents: str) -> Optional[Handle]:
        return self._table.get(contents)

    def intern(self, handle: Handle, runtime: "Runtime") -> Handle:
        """Return the canonical String with ``handle``'s contents.

        On first sight the argument itself becomes canonical and its block is
        pinned static; later calls with equal contents return the canonical
        object (so ``==``-style identity comparison works, as in the JDK).
        """
        handle.check_live()
        contents = handle.pyvalue
        if not isinstance(contents, str):
            raise VMError(f"intern() of non-string object {handle!r}")
        canonical = self._table.get(contents)
        if canonical is not None and not canonical.freed:
            self.hits += 1
            return canonical
        self._table[contents] = handle
        self.misses += 1
        if runtime.collector is not None:
            runtime.collector.on_intern(handle)
        return handle

    def roots(self) -> Iterator[Handle]:
        for handle in self._table.values():
            if not handle.freed:
                yield handle

    def live_entries(self) -> List[Handle]:
        return [h for h in self._table.values() if not h.freed]
