"""Handle-indirected heap with a JDK-1.1.8-style free-list allocator.

Sun's JDK 1.1.8 interpreter manages objects through *handles*: a small
fixed-size record holding the pointer to the object's current storage plus a
method-table reference, so relocation only updates the handle (thesis section
3.1).  We mirror that split:

* :class:`Handle` — the per-object record.  Its Python attributes stand in
  for the extra words the CG implementation added to the 2-word JDK handle
  (union-find parent/rank, equilive list links, frame back-pointer, owning
  thread, unique id, birth depth — thesis section 3.1.1).  The configured
  *accounted* handle width (2, 8, or 16 words, section 3.5) is charged
  against a separate handle region sized as a multiple of the base split.

* :class:`FreeList` — the object-space allocator.  JDK 1.1.8 "does a linear
  search through the object pool to find the first object that is at least as
  big as requested", remembering where it last allocated (section 3.7) — a
  classic next-fit.  We reproduce that, including address-ordered coalescing,
  because the recycling experiment (Fig. 4.12/4.13) measures precisely the
  cost of that search once the heap fills.

Field *values* live in Python dictionaries on the handle; the simulated
word-addressed space governs only placement, exhaustion, and search cost,
which is all the paper's timing results depend on.  (Documented in DESIGN.md
section 7.)
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import OutOfMemoryError, UseAfterCollect, VMError
from .model import JClass

#: Payload words charged per array element.
WORDS_PER_ELEMENT = 1
#: Words of object header charged per allocation (class pointer + lock word).
OBJECT_HEADER_WORDS = 2

#: Handle widths, in words (thesis sections 3.1.1 and 3.5).
HANDLE_WORDS_JDK = 2
HANDLE_WORDS_CG_SQUEEZED = 8
HANDLE_WORDS_CG_WIDE = 16


class Handle:
    """Per-object record: storage location, class, fields, and CG bookkeeping.

    ``fields`` maps field name to value for ordinary objects; ``elements`` is
    the backing list for arrays.  References are stored as :class:`Handle`
    instances and null as ``None``, so collectors can discover the reference
    graph with a single isinstance check.
    """

    __slots__ = (
        "id",
        "cls",
        "addr",
        "size",
        "fields",
        "elements",
        "freed",
        "freed_by",
        "alloc_thread",
        "birth_frame_id",
        "birth_depth",
        "shared",
        "pinned_cause",
        "mark",
        "pyvalue",
    )

    def __init__(
        self,
        handle_id: int,
        cls: JClass,
        addr: int,
        size: int,
        alloc_thread: int,
        birth_frame_id: int,
        birth_depth: int,
        length: Optional[int] = None,
    ) -> None:
        self.id = handle_id
        self.cls = cls
        self.addr = addr
        self.size = size
        self.fields: Optional[Dict[str, object]] = None
        self.elements: Optional[List[object]] = None
        if cls.is_array:
            self.elements = [None] * (length or 0)
        else:
            self.fields = cls.field_template().copy()
        self.freed = False
        self.freed_by: Optional[str] = None
        self.alloc_thread = alloc_thread
        self.birth_frame_id = birth_frame_id
        self.birth_depth = birth_depth
        self.shared = False
        self.pinned_cause = None  # static-pin cause stamp (see core.stats)
        self.mark = False
        # Interpreter-internal payload (used by java/lang/String).
        self.pyvalue: object = None

    @property
    def is_array(self) -> bool:
        return self.elements is not None

    @property
    def length(self) -> int:
        if self.elements is None:
            raise VMError(f"arraylength on non-array {self!r}")
        return len(self.elements)

    def references(self) -> Iterator["Handle"]:
        """Iterate over the non-null references this object holds."""
        if self.elements is not None:
            for value in self.elements:
                if isinstance(value, Handle):
                    yield value
        elif self.fields:
            for value in self.fields.values():
                if isinstance(value, Handle):
                    yield value

    def check_live(self) -> None:
        """Soundness oracle: fail loudly on access to a collected object."""
        if self.freed:
            raise UseAfterCollect(
                f"object #{self.id} ({self.cls.name}) was collected by "
                f"{self.freed_by or 'the collector'} but is being accessed"
            )

    def __repr__(self) -> str:
        dead = " DEAD" if self.freed else ""
        return f"<Handle #{self.id} {self.cls.name} @{self.addr}+{self.size}{dead}>"


class FreeList:
    """Address-ordered free list with next-fit search and coalescing.

    ``search_steps`` counts every block examined during allocation — the
    quantity the JDK allocator pays once the heap has filled, and the one the
    recycling optimization (section 3.7) avoids.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("heap capacity must be positive")
        self.capacity = capacity
        # Parallel sorted lists: block start addresses and sizes.
        self._addrs: List[int] = [0]
        self._sizes: List[int] = [capacity]
        self._next_fit = 0  # index hint into the free list
        self.search_steps = 0
        self.allocs = 0
        self.frees = 0

    @property
    def free_words(self) -> int:
        return sum(self._sizes)

    @property
    def largest_block(self) -> int:
        return max(self._sizes) if self._sizes else 0

    def blocks(self) -> List[Tuple[int, int]]:
        """Snapshot of (addr, size) free blocks, address-ordered."""
        return list(zip(self._addrs, self._sizes))

    def allocate(self, size: int) -> Optional[int]:
        """Next-fit: scan from the last allocation point, wrapping once.

        The probe order (and therefore ``search_steps``) is identical to the
        classic ``(start + probe) % n`` walk; the two explicit ranges just
        avoid a modulo per probe on the hot path.
        """
        if size <= 0:
            raise ValueError("allocation size must be positive")
        addrs = self._addrs
        sizes = self._sizes
        n = len(addrs)
        if n == 0:
            return None
        start = self._next_fit
        if start > n - 1:
            start = n - 1
        steps = 0
        ranges = (range(start, n), range(0, start)) if start else (range(n),)
        for indices in ranges:
            for i in indices:
                steps += 1
                if sizes[i] >= size:
                    self.search_steps += steps
                    addr = addrs[i]
                    if sizes[i] == size:
                        del addrs[i]
                        del sizes[i]
                    else:
                        addrs[i] = addr + size
                        sizes[i] -= size
                    self._next_fit = i
                    self.allocs += 1
                    return addr
        self.search_steps += steps
        return None

    def free(self, addr: int, size: int) -> None:
        """Return a block, coalescing with address-adjacent neighbours."""
        if size <= 0:
            raise ValueError("freed size must be positive")
        addrs = self._addrs
        sizes = self._sizes
        n = len(addrs)
        i = bisect_right(addrs, addr)
        # Guard against double-free / overlap, which would silently corrupt
        # the accounting invariants the property tests check.
        prev_end = addrs[i - 1] + sizes[i - 1] if i > 0 else -1
        if prev_end > addr:
            raise VMError(f"free overlaps preceding block at {addr}")
        if i < n and addr + size > addrs[i]:
            raise VMError(f"free overlaps following block at {addr}")
        self.frees += 1
        merged_prev = prev_end == addr
        merged_next = i < n and addr + size == addrs[i]
        if merged_prev and merged_next:
            sizes[i - 1] += size + sizes[i]
            del addrs[i]
            del sizes[i]
        elif merged_prev:
            sizes[i - 1] += size
        elif merged_next:
            addrs[i] = addr
            sizes[i] += size
        else:
            addrs.insert(i, addr)
            sizes.insert(i, size)
        if self._next_fit >= len(addrs):
            self._next_fit = 0

    def reset_scan(self) -> None:
        """Restart the next-fit scan from the heap base (post-GC behaviour)."""
        self._next_fit = 0

    def replace_free_space(self, blocks: List[Tuple[int, int]]) -> None:
        """Install a new free-space map (post-compaction)."""
        blocks = sorted(blocks)
        self._addrs = [a for a, _ in blocks]
        self._sizes = [s for _, s in blocks]
        self._next_fit = 0


#: Largest size with its own exact-fit bin; bigger blocks go to ranged bins.
_EXACT_CLASSES = 32


def _size_class(size: int) -> int:
    """Map a block size to its segregated-fit bin index.

    Sizes 1..32 get exact bins (every block in the bin has exactly that
    size); larger sizes share a power-of-two range bin, so bin
    ``_EXACT_CLASSES + k`` holds sizes in ``(2**(k+4), 2**(k+5)]``.
    """
    if size <= _EXACT_CLASSES:
        return size
    return _EXACT_CLASSES + (size - 1).bit_length() - 5


class SegregatedFreeList:
    """Segregated-fit allocator: size-class bins plus a wilderness block.

    The production-mode alternative to :class:`FreeList` (selected with
    ``RuntimeConfig(allocator="segregated")``).  Small allocations hit an
    exact-size bin in O(1); larger ones first-fit within a power-of-two
    range bin; the *wilderness* — the high-address tail the heap has never
    fragmented — serves as the carve-from block of last resort.  Freed
    blocks are binned without eager coalescing; when an allocation cannot
    be satisfied, one consolidation pass coalesces the whole free map and
    retries, so exhaustion behaviour (OOM) matches the next-fit allocator
    on any request the heap could possibly satisfy.

    ``search_steps`` counts every candidate examined (bin probes, in-bin
    block probes, and wilderness carves), so the cost model and the
    ``alloc.search_steps`` metric work identically for both allocators.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("heap capacity must be positive")
        self.capacity = capacity
        #: bin index -> LIFO list of (addr, size) free blocks.
        self._bins: Dict[int, List[Tuple[int, int]]] = {}
        self._wilderness_addr = 0
        self._wilderness_size = capacity
        self._free_words = capacity
        self.search_steps = 0
        self.allocs = 0
        self.frees = 0
        self.consolidations = 0

    @property
    def free_words(self) -> int:
        return self._free_words

    @property
    def largest_block(self) -> int:
        largest = self._wilderness_size
        for blocks in self._bins.values():
            for _, size in blocks:
                if size > largest:
                    largest = size
        return largest

    def blocks(self) -> List[Tuple[int, int]]:
        """Snapshot of (addr, size) free blocks, address-ordered."""
        out = [b for blocks in self._bins.values() for b in blocks]
        if self._wilderness_size:
            out.append((self._wilderness_addr, self._wilderness_size))
        return sorted(out)

    def allocate(self, size: int) -> Optional[int]:
        if size <= 0:
            raise ValueError("allocation size must be positive")
        addr = self._try_allocate(size)
        if addr is None and self._free_words >= size:
            # Fragmented across bins: coalesce everything once and retry.
            self._consolidate()
            addr = self._try_allocate(size)
        if addr is not None:
            self.allocs += 1
            self._free_words -= size
        return addr

    def _try_allocate(self, size: int) -> Optional[int]:
        bins = self._bins
        cls = _size_class(size)
        if cls <= _EXACT_CLASSES:
            # Exact bin: every block fits exactly; O(1) pop.
            blocks = bins.get(cls)
            if blocks:
                self.search_steps += 1
                addr, _ = blocks.pop()
                return addr
        else:
            # The request's own range bin may hold smaller same-class
            # blocks: first-fit within it.
            blocks = bins.get(cls)
            if blocks:
                for i in range(len(blocks) - 1, -1, -1):
                    self.search_steps += 1
                    addr, bsize = blocks[i]
                    if bsize >= size:
                        del blocks[i]
                        self._release_split(addr + size, bsize - size)
                        return addr
        # Any strictly larger class is guaranteed to fit: take the first
        # nonempty one (one probe per bin inspected).
        for upper in sorted(b for b in bins if b > cls):
            blocks = bins[upper]
            if blocks:
                self.search_steps += 1
                addr, bsize = blocks.pop()
                self._release_split(addr + size, bsize - size)
                return addr
        # Wilderness carve.
        self.search_steps += 1
        if self._wilderness_size >= size:
            addr = self._wilderness_addr
            self._wilderness_addr += size
            self._wilderness_size -= size
            return addr
        return None

    def _release_split(self, addr: int, size: int) -> None:
        """Return a split remainder to its bin (no counters: not a free)."""
        if size > 0:
            self._bins.setdefault(_size_class(size), []).append((addr, size))

    def free(self, addr: int, size: int) -> None:
        if size <= 0:
            raise ValueError("freed size must be positive")
        self.frees += 1
        self._free_words += size
        if addr + size == self._wilderness_addr:
            # Adjacent to the wilderness: grow it instead of binning.
            self._wilderness_addr = addr
            self._wilderness_size += size
        else:
            self._bins.setdefault(_size_class(size), []).append((addr, size))

    def _consolidate(self) -> None:
        """Coalesce the entire free map; the top block becomes wilderness."""
        self.consolidations += 1
        merged: List[Tuple[int, int]] = []
        for addr, size in self.blocks():
            if merged and merged[-1][0] + merged[-1][1] == addr:
                merged[-1] = (merged[-1][0], merged[-1][1] + size)
            else:
                merged.append((addr, size))
        self._bins = {}
        if merged:
            self._wilderness_addr, self._wilderness_size = merged.pop()
        else:
            self._wilderness_addr, self._wilderness_size = self.capacity, 0
        for addr, size in merged:
            self._bins.setdefault(_size_class(size), []).append((addr, size))

    def reset_scan(self) -> None:
        """Post-GC hook: next-fit restarts its scan; segregated fit instead
        consolidates, since a sweep just returned many uncoalesced blocks."""
        self._consolidate()

    def replace_free_space(self, blocks: List[Tuple[int, int]]) -> None:
        """Install a new free-space map (post-compaction)."""
        blocks = sorted(blocks)
        self._bins = {}
        self._free_words = sum(size for _, size in blocks)
        if blocks:
            self._wilderness_addr, self._wilderness_size = blocks.pop()
        else:
            self._wilderness_addr, self._wilderness_size = self.capacity, 0
        for addr, size in blocks:
            self._bins.setdefault(_size_class(size), []).append((addr, size))


ALLOCATOR_CHOICES = ("next-fit", "segregated")


def make_free_list(allocator: str, capacity: int):
    """Allocator factory used by :class:`Heap`."""
    if allocator == "next-fit":
        return FreeList(capacity)
    if allocator == "segregated":
        return SegregatedFreeList(capacity)
    raise ValueError(
        f"allocator must be one of {ALLOCATOR_CHOICES}, got {allocator!r}"
    )


class Heap:
    """The object heap: handle table + object space + accounting.

    ``handle_words`` selects the accounted handle width; the handle region is
    sized so the *object* space keeps the capacity given here, mirroring the
    thesis's rescaling of the JDK's original 20/80 split (section 3.1.1).
    """

    def __init__(self, capacity_words: int, handle_words: int = HANDLE_WORDS_JDK,
                 allocator: str = "next-fit") -> None:
        self.free_list = make_free_list(allocator, capacity_words)
        # Bound-method cache; safe because the free-list object is never
        # replaced (compaction installs new maps via replace_free_space).
        self._fl_allocate = self.free_list.allocate
        self.allocator = allocator
        #: Fault-injection probe (repro.faults): when set, consulted once
        #: per allocation and a True return synthesizes exhaustion.  None
        #: keeps the hot path at a single is-not-None test.
        self._alloc_fault = None
        self.capacity = capacity_words
        self.handle_words = handle_words
        self._handles: Dict[int, Handle] = {}
        self._next_id = 0
        self.objects_created = 0
        self.words_allocated = 0
        self.bytes_freed = 0
        self.live_words = 0
        self.peak_live_words = 0

    # ------------------------------------------------------------------
    # Allocation and reclamation
    # ------------------------------------------------------------------

    def size_of(self, cls: JClass, length: Optional[int] = None) -> int:
        if cls.is_array:
            return OBJECT_HEADER_WORDS + WORDS_PER_ELEMENT * max(0, length or 0)
        return OBJECT_HEADER_WORDS + cls.instance_size_words()

    def allocate(
        self,
        cls: JClass,
        alloc_thread: int,
        birth_frame_id: int,
        birth_depth: int,
        length: Optional[int] = None,
    ) -> Optional[Handle]:
        """Allocate an instance of ``cls``; return None on exhaustion.

        The caller (the runtime) decides what exhaustion means: consult the
        recycle list, run the tracing collector, or raise OutOfMemoryError.
        """
        # Inline of size_of(): this is the hottest call in the VM.
        if cls.is_array:
            size = OBJECT_HEADER_WORDS + WORDS_PER_ELEMENT * max(0, length or 0)
        else:
            nfields = len(cls.fields)
            size = OBJECT_HEADER_WORDS + (nfields if nfields else 1)
        fault = self._alloc_fault
        if fault is not None and fault(size):
            return None
        addr = self._fl_allocate(size)
        if addr is None:
            return None
        hid = self._next_id
        handle = Handle(
            hid, cls, addr, size, alloc_thread, birth_frame_id,
            birth_depth, length,
        )
        self._next_id = hid + 1
        self._handles[hid] = handle
        self.objects_created += 1
        self.words_allocated += size
        live = self.live_words + size
        self.live_words = live
        if live > self.peak_live_words:
            self.peak_live_words = live
        return handle

    def free(self, handle: Handle, freed_by: str) -> None:
        """Release ``handle``'s storage and taint it (section 3.1.4)."""
        self.retire(handle, freed_by)
        self.free_list.free(handle.addr, handle.size)

    def retire(self, handle: Handle, freed_by: str) -> None:
        """Taint ``handle`` as dead but keep its storage parked.

        Used by the recycling optimization (section 3.7): the dead object's
        storage stays out of the free list until either an allocation adopts
        it or the recycle list is flushed via :meth:`release_recycled`.
        """
        if handle.freed:
            raise VMError(f"double free of {handle!r} by {freed_by}")
        handle.freed = True
        handle.freed_by = freed_by
        self.live_words -= handle.size
        self.bytes_freed += handle.size
        del self._handles[handle.id]
        # Drop outgoing references so freed objects don't keep graphs alive
        # on the Python side (and so accidental traversal fails fast).
        handle.fields = None
        handle.elements = None

    def adopt_storage(self, old: Handle, cls: JClass, alloc_thread: int,
                      birth_frame_id: int, birth_depth: int,
                      length: Optional[int] = None) -> Handle:
        """Reuse a recycled object's storage for a new allocation (section 3.7).

        The old object must be dead but *not* yet returned to the free list:
        recycling defers the free and hands the storage straight to the new
        object.  Only the leading ``size`` words are reused; any surplus from
        a larger donor is returned to the free list.
        """
        if not old.freed:
            raise VMError("recycled donor must already be dead")
        size = self.size_of(cls, length)
        if old.size < size:
            raise VMError("recycled donor too small")
        if old.size > size:
            self.free_list.free(old.addr + size, old.size - size)
        handle = Handle(
            self._next_id, cls, old.addr, size, alloc_thread, birth_frame_id,
            birth_depth, length=length,
        )
        self._next_id += 1
        self._handles[handle.id] = handle
        self.objects_created += 1
        self.words_allocated += size
        self.live_words += size
        if self.live_words > self.peak_live_words:
            self.peak_live_words = self.live_words
        return handle

    def release_recycled(self, handle: Handle) -> None:
        """Return a deferred-free (recycled) object's storage to the free list."""
        self.free_list.free(handle.addr, handle.size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def live_handles(self) -> List[Handle]:
        return list(self._handles.values())

    def live_count(self) -> int:
        return len(self._handles)

    def get(self, handle_id: int) -> Handle:
        try:
            return self._handles[handle_id]
        except KeyError:
            raise UseAfterCollect(f"handle #{handle_id} is not live") from None

    def handle_region_words(self) -> int:
        """Accounted size of the handle region for the live object count."""
        return self.live_count() * self.handle_words

    def set_alloc_fault(self, probe) -> None:
        """Install (or clear) the allocation fault probe (repro.faults)."""
        self._alloc_fault = probe

    def occupancy(self) -> Dict[str, float]:
        """Instantaneous heap gauges for the metrics registry.

        ``occupancy`` is the live fraction of object space; ``fragmentation``
        is 1 - (largest free block / free words) — 0 when the free space is
        one contiguous block, approaching 1 as it shatters.
        """
        free_words = self.free_list.free_words
        largest = self.free_list.largest_block
        return {
            "capacity_words": float(self.capacity),
            "live_words": float(self.live_words),
            "peak_live_words": float(self.peak_live_words),
            "free_words": float(free_words),
            "largest_free_block": float(largest),
            "live_objects": float(self.live_count()),
            "handle_region_words": float(self.handle_region_words()),
            "occupancy": self.live_words / self.capacity if self.capacity else 0.0,
            "fragmentation": 1.0 - largest / free_words if free_words else 0.0,
        }

    def compact(self) -> int:
        """Slide all live objects to the heap base; returns objects moved.

        Because every reference indirects through a handle, compaction only
        rewrites ``addr`` fields — the paper's motivation for keeping the
        handle indirection.  The free list collapses to one block.
        """
        live = sorted(self._handles.values(), key=lambda h: h.addr)
        cursor = 0
        moved = 0
        for handle in live:
            if handle.addr != cursor:
                handle.addr = cursor
                moved += 1
            cursor += handle.size
        self.free_list.replace_free_space(
            [(cursor, self.capacity - cursor)] if cursor < self.capacity else []
        )
        return moved

    def check_accounting(self, recycled_words: int = 0) -> None:
        """Invariant 5 of DESIGN.md: live + free + recycled words == capacity."""
        total = self.live_words + self.free_list.free_words + recycled_words
        if total != self.capacity:
            raise VMError(
                f"heap accounting broken: live {self.live_words} + free "
                f"{self.free_list.free_words} + recycled {recycled_words} "
                f"!= capacity {self.capacity}"
            )
