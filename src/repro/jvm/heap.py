"""Handle-indirected heap with a JDK-1.1.8-style free-list allocator.

Sun's JDK 1.1.8 interpreter manages objects through *handles*: a small
fixed-size record holding the pointer to the object's current storage plus a
method-table reference, so relocation only updates the handle (thesis section
3.1).  We mirror that split:

* :class:`Handle` — the per-object record.  Its Python attributes stand in
  for the extra words the CG implementation added to the 2-word JDK handle
  (union-find parent/rank, equilive list links, frame back-pointer, owning
  thread, unique id, birth depth — thesis section 3.1.1).  The configured
  *accounted* handle width (2, 8, or 16 words, section 3.5) is charged
  against a separate handle region sized as a multiple of the base split.

* :class:`FreeList` — the object-space allocator.  JDK 1.1.8 "does a linear
  search through the object pool to find the first object that is at least as
  big as requested", remembering where it last allocated (section 3.7) — a
  classic next-fit.  We reproduce that, including address-ordered coalescing,
  because the recycling experiment (Fig. 4.12/4.13) measures precisely the
  cost of that search once the heap fills.

Field *values* live in Python dictionaries on the handle; the simulated
word-addressed space governs only placement, exhaustion, and search cost,
which is all the paper's timing results depend on.  (Documented in DESIGN.md
section 7.)
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import OutOfMemoryError, UseAfterCollect, VMError
from .model import JClass

#: Payload words charged per array element.
WORDS_PER_ELEMENT = 1
#: Words of object header charged per allocation (class pointer + lock word).
OBJECT_HEADER_WORDS = 2

#: Handle widths, in words (thesis sections 3.1.1 and 3.5).
HANDLE_WORDS_JDK = 2
HANDLE_WORDS_CG_SQUEEZED = 8
HANDLE_WORDS_CG_WIDE = 16


class Handle:
    """Per-object record: storage location, class, fields, and CG bookkeeping.

    ``fields`` maps field name to value for ordinary objects; ``elements`` is
    the backing list for arrays.  References are stored as :class:`Handle`
    instances and null as ``None``, so collectors can discover the reference
    graph with a single isinstance check.
    """

    __slots__ = (
        "id",
        "cls",
        "addr",
        "size",
        "fields",
        "elements",
        "freed",
        "freed_by",
        "alloc_thread",
        "birth_frame_id",
        "birth_depth",
        "shared",
        "pinned_cause",
        "mark",
        "pyvalue",
    )

    def __init__(
        self,
        handle_id: int,
        cls: JClass,
        addr: int,
        size: int,
        alloc_thread: int,
        birth_frame_id: int,
        birth_depth: int,
        length: Optional[int] = None,
    ) -> None:
        self.id = handle_id
        self.cls = cls
        self.addr = addr
        self.size = size
        self.fields: Optional[Dict[str, object]] = None
        self.elements: Optional[List[object]] = None
        if cls.is_array:
            self.elements = [None] * (length or 0)
        else:
            self.fields = {name: None for name in cls.fields}
        self.freed = False
        self.freed_by: Optional[str] = None
        self.alloc_thread = alloc_thread
        self.birth_frame_id = birth_frame_id
        self.birth_depth = birth_depth
        self.shared = False
        self.pinned_cause = None  # static-pin cause stamp (see core.stats)
        self.mark = False
        # Interpreter-internal payload (used by java/lang/String).
        self.pyvalue: object = None

    @property
    def is_array(self) -> bool:
        return self.elements is not None

    @property
    def length(self) -> int:
        if self.elements is None:
            raise VMError(f"arraylength on non-array {self!r}")
        return len(self.elements)

    def references(self) -> Iterator["Handle"]:
        """Iterate over the non-null references this object holds."""
        if self.elements is not None:
            for value in self.elements:
                if isinstance(value, Handle):
                    yield value
        elif self.fields:
            for value in self.fields.values():
                if isinstance(value, Handle):
                    yield value

    def check_live(self) -> None:
        """Soundness oracle: fail loudly on access to a collected object."""
        if self.freed:
            raise UseAfterCollect(
                f"object #{self.id} ({self.cls.name}) was collected by "
                f"{self.freed_by or 'the collector'} but is being accessed"
            )

    def __repr__(self) -> str:
        dead = " DEAD" if self.freed else ""
        return f"<Handle #{self.id} {self.cls.name} @{self.addr}+{self.size}{dead}>"


class FreeList:
    """Address-ordered free list with next-fit search and coalescing.

    ``search_steps`` counts every block examined during allocation — the
    quantity the JDK allocator pays once the heap has filled, and the one the
    recycling optimization (section 3.7) avoids.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("heap capacity must be positive")
        self.capacity = capacity
        # Parallel sorted lists: block start addresses and sizes.
        self._addrs: List[int] = [0]
        self._sizes: List[int] = [capacity]
        self._next_fit = 0  # index hint into the free list
        self.search_steps = 0
        self.allocs = 0
        self.frees = 0

    @property
    def free_words(self) -> int:
        return sum(self._sizes)

    @property
    def largest_block(self) -> int:
        return max(self._sizes) if self._sizes else 0

    def blocks(self) -> List[Tuple[int, int]]:
        """Snapshot of (addr, size) free blocks, address-ordered."""
        return list(zip(self._addrs, self._sizes))

    def allocate(self, size: int) -> Optional[int]:
        """Next-fit: scan from the last allocation point, wrapping once."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        n = len(self._addrs)
        if n == 0:
            return None
        start = min(self._next_fit, n - 1)
        for probe in range(n):
            i = (start + probe) % n
            self.search_steps += 1
            if self._sizes[i] >= size:
                addr = self._addrs[i]
                if self._sizes[i] == size:
                    del self._addrs[i]
                    del self._sizes[i]
                    self._next_fit = i
                else:
                    self._addrs[i] += size
                    self._sizes[i] -= size
                    self._next_fit = i
                self.allocs += 1
                return addr
        return None

    def free(self, addr: int, size: int) -> None:
        """Return a block, coalescing with address-adjacent neighbours."""
        if size <= 0:
            raise ValueError("freed size must be positive")
        i = bisect_right(self._addrs, addr)
        # Guard against double-free / overlap, which would silently corrupt
        # the accounting invariants the property tests check.
        if i > 0 and self._addrs[i - 1] + self._sizes[i - 1] > addr:
            raise VMError(f"free overlaps preceding block at {addr}")
        if i < len(self._addrs) and addr + size > self._addrs[i]:
            raise VMError(f"free overlaps following block at {addr}")
        self.frees += 1
        merged_prev = i > 0 and self._addrs[i - 1] + self._sizes[i - 1] == addr
        merged_next = i < len(self._addrs) and addr + size == self._addrs[i]
        if merged_prev and merged_next:
            self._sizes[i - 1] += size + self._sizes[i]
            del self._addrs[i]
            del self._sizes[i]
        elif merged_prev:
            self._sizes[i - 1] += size
        elif merged_next:
            self._addrs[i] = addr
            self._sizes[i] += size
        else:
            self._addrs.insert(i, addr)
            self._sizes.insert(i, size)
        if self._next_fit >= len(self._addrs):
            self._next_fit = 0

    def reset_scan(self) -> None:
        """Restart the next-fit scan from the heap base (post-GC behaviour)."""
        self._next_fit = 0


class Heap:
    """The object heap: handle table + object space + accounting.

    ``handle_words`` selects the accounted handle width; the handle region is
    sized so the *object* space keeps the capacity given here, mirroring the
    thesis's rescaling of the JDK's original 20/80 split (section 3.1.1).
    """

    def __init__(self, capacity_words: int, handle_words: int = HANDLE_WORDS_JDK) -> None:
        self.free_list = FreeList(capacity_words)
        self.capacity = capacity_words
        self.handle_words = handle_words
        self._handles: Dict[int, Handle] = {}
        self._next_id = 0
        self.objects_created = 0
        self.words_allocated = 0
        self.bytes_freed = 0
        self.live_words = 0
        self.peak_live_words = 0

    # ------------------------------------------------------------------
    # Allocation and reclamation
    # ------------------------------------------------------------------

    def size_of(self, cls: JClass, length: Optional[int] = None) -> int:
        if cls.is_array:
            return OBJECT_HEADER_WORDS + WORDS_PER_ELEMENT * max(0, length or 0)
        return OBJECT_HEADER_WORDS + cls.instance_size_words()

    def allocate(
        self,
        cls: JClass,
        alloc_thread: int,
        birth_frame_id: int,
        birth_depth: int,
        length: Optional[int] = None,
    ) -> Optional[Handle]:
        """Allocate an instance of ``cls``; return None on exhaustion.

        The caller (the runtime) decides what exhaustion means: consult the
        recycle list, run the tracing collector, or raise OutOfMemoryError.
        """
        size = self.size_of(cls, length)
        addr = self.free_list.allocate(size)
        if addr is None:
            return None
        handle = Handle(
            self._next_id, cls, addr, size, alloc_thread, birth_frame_id,
            birth_depth, length=length,
        )
        self._next_id += 1
        self._handles[handle.id] = handle
        self.objects_created += 1
        self.words_allocated += size
        self.live_words += size
        if self.live_words > self.peak_live_words:
            self.peak_live_words = self.live_words
        return handle

    def free(self, handle: Handle, freed_by: str) -> None:
        """Release ``handle``'s storage and taint it (section 3.1.4)."""
        self.retire(handle, freed_by)
        self.free_list.free(handle.addr, handle.size)

    def retire(self, handle: Handle, freed_by: str) -> None:
        """Taint ``handle`` as dead but keep its storage parked.

        Used by the recycling optimization (section 3.7): the dead object's
        storage stays out of the free list until either an allocation adopts
        it or the recycle list is flushed via :meth:`release_recycled`.
        """
        if handle.freed:
            raise VMError(f"double free of {handle!r} by {freed_by}")
        handle.freed = True
        handle.freed_by = freed_by
        self.live_words -= handle.size
        self.bytes_freed += handle.size
        del self._handles[handle.id]
        # Drop outgoing references so freed objects don't keep graphs alive
        # on the Python side (and so accidental traversal fails fast).
        handle.fields = None
        handle.elements = None

    def adopt_storage(self, old: Handle, cls: JClass, alloc_thread: int,
                      birth_frame_id: int, birth_depth: int,
                      length: Optional[int] = None) -> Handle:
        """Reuse a recycled object's storage for a new allocation (section 3.7).

        The old object must be dead but *not* yet returned to the free list:
        recycling defers the free and hands the storage straight to the new
        object.  Only the leading ``size`` words are reused; any surplus from
        a larger donor is returned to the free list.
        """
        if not old.freed:
            raise VMError("recycled donor must already be dead")
        size = self.size_of(cls, length)
        if old.size < size:
            raise VMError("recycled donor too small")
        if old.size > size:
            self.free_list.free(old.addr + size, old.size - size)
        handle = Handle(
            self._next_id, cls, old.addr, size, alloc_thread, birth_frame_id,
            birth_depth, length=length,
        )
        self._next_id += 1
        self._handles[handle.id] = handle
        self.objects_created += 1
        self.words_allocated += size
        self.live_words += size
        if self.live_words > self.peak_live_words:
            self.peak_live_words = self.live_words
        return handle

    def release_recycled(self, handle: Handle) -> None:
        """Return a deferred-free (recycled) object's storage to the free list."""
        self.free_list.free(handle.addr, handle.size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def live_handles(self) -> List[Handle]:
        return list(self._handles.values())

    def live_count(self) -> int:
        return len(self._handles)

    def get(self, handle_id: int) -> Handle:
        try:
            return self._handles[handle_id]
        except KeyError:
            raise UseAfterCollect(f"handle #{handle_id} is not live") from None

    def handle_region_words(self) -> int:
        """Accounted size of the handle region for the live object count."""
        return self.live_count() * self.handle_words

    def occupancy(self) -> Dict[str, float]:
        """Instantaneous heap gauges for the metrics registry.

        ``occupancy`` is the live fraction of object space; ``fragmentation``
        is 1 - (largest free block / free words) — 0 when the free space is
        one contiguous block, approaching 1 as it shatters.
        """
        free_words = self.free_list.free_words
        largest = self.free_list.largest_block
        return {
            "capacity_words": float(self.capacity),
            "live_words": float(self.live_words),
            "peak_live_words": float(self.peak_live_words),
            "free_words": float(free_words),
            "largest_free_block": float(largest),
            "live_objects": float(self.live_count()),
            "handle_region_words": float(self.handle_region_words()),
            "occupancy": self.live_words / self.capacity if self.capacity else 0.0,
            "fragmentation": 1.0 - largest / free_words if free_words else 0.0,
        }

    def compact(self) -> int:
        """Slide all live objects to the heap base; returns objects moved.

        Because every reference indirects through a handle, compaction only
        rewrites ``addr`` fields — the paper's motivation for keeping the
        handle indirection.  The free list collapses to one block.
        """
        live = sorted(self._handles.values(), key=lambda h: h.addr)
        cursor = 0
        moved = 0
        for handle in live:
            if handle.addr != cursor:
                handle.addr = cursor
                moved += 1
            cursor += handle.size
        self.free_list._addrs = [cursor] if cursor < self.capacity else []
        self.free_list._sizes = [self.capacity - cursor] if cursor < self.capacity else []
        self.free_list._next_fit = 0
        return moved

    def check_accounting(self, recycled_words: int = 0) -> None:
        """Invariant 5 of DESIGN.md: live + free + recycled words == capacity."""
        total = self.live_words + self.free_list.free_words + recycled_words
        if total != self.capacity:
            raise VMError(
                f"heap accounting broken: live {self.live_words} + free "
                f"{self.free_list.free_words} + recycled {recycled_words} "
                f"!= capacity {self.capacity}"
            )
