"""A small textual assembler for the VM.

The worked examples of the thesis (Fig. 2.1/2.2, Fig. 3.1) and the bytecode
test programs are written in this format rather than hand-built instruction
tuples.  Grammar (one construct per line, ``;`` starts a comment)::

    class Vec [extends Super]
        field x
        field y
        static origin          ; declares a static slot on the class

    method Vec.make(2) [locals=4]
        new Vec
        store 2
    loop:                      ; labels end with ':'
        load 1
        ifzero done
        iinc 1 -1
        goto loop
    done:
        load 2
        retval

Operands are integers, ``"quoted strings"`` (for ``ldc_str``), or bare
words (class names, field names, ``Class.field`` refs, labels).  Branch
instructions take a label; the second pass resolves labels to pcs.
``invokevirtual``/``spawn`` take the method name and the argument count
(receiver included).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from . import bytecode as bc
from .errors import AssemblerError
from .model import Instruction, JClass, JMethod, Program

_METHOD_RE = re.compile(
    r"^method\s+(?P<qual>[\w/$\[\];]+\.\w+)\s*\(\s*(?P<nargs>\d+)\s*\)"
    r"(?:\s+locals\s*=\s*(?P<nlocals>\d+))?\s*$"
)
_CLASS_RE = re.compile(
    r"^class\s+(?P<name>[\w/$]+)(?:\s+extends\s+(?P<super>[\w/$]+))?\s*$"
)
_LABEL_RE = re.compile(r"^(?P<label>[A-Za-z_]\w*):\s*$")

#: Instructions taking (label) -> resolved to a pc.
_BRANCHES = bc.BRANCH_OPS

#: Instructions taking a string literal operand.
_STRING_OPERAND = {bc.LDC_STR}

#: Instructions taking an int operand.
_INT_OPERAND = {bc.CONST, bc.LOAD, bc.STORE}

#: mnemonic -> expected operand count (excluding implicit stack operands).
_ARITY: Dict[int, int] = {}
for _name, _op in bc.OPCODES_BY_NAME.items():
    if _op in _BRANCHES or _op in _STRING_OPERAND or _op in _INT_OPERAND:
        _ARITY[_op] = 1
    elif _op in (bc.NEW, bc.GETFIELD, bc.PUTFIELD, bc.GETSTATIC, bc.PUTSTATIC,
                 bc.INVOKESTATIC, bc.INSTANCEOF):
        _ARITY[_op] = 1
    elif _op in (bc.INVOKEVIRTUAL, bc.SPAWN, bc.IINC):
        _ARITY[_op] = 2
    else:
        _ARITY[_op] = 0


def _tokenize(line: str) -> List[str]:
    """Split a line into tokens, honouring one double-quoted string."""
    tokens: List[str] = []
    rest = line.strip()
    while rest:
        if rest[0] == '"':
            end = rest.find('"', 1)
            if end < 0:
                raise AssemblerError(f"unterminated string in {line!r}")
            tokens.append(rest[: end + 1])
            rest = rest[end + 1:].strip()
        else:
            parts = rest.split(None, 1)
            tokens.append(parts[0])
            rest = parts[1].strip() if len(parts) > 1 else ""
    return tokens


class _PendingMethod:
    def __init__(self, qualified: str, nargs: int, nlocals: Optional[int]) -> None:
        self.qualified = qualified
        self.nargs = nargs
        self.nlocals = nlocals
        self.lines: List[Tuple[int, str]] = []  # (line number, text)


def assemble(source: str, program: Optional[Program] = None) -> Program:
    """Assemble ``source`` into (or onto) a :class:`Program`."""
    program = program or Program()
    current_class: Optional[JClass] = None
    pending: List[_PendingMethod] = []
    current_method: Optional[_PendingMethod] = None

    # Class bodies may forward-reference classes defined later, so we gather
    # method bodies first and assemble instructions in a second phase.
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        class_match = _CLASS_RE.match(stripped)
        if class_match:
            name = class_match.group("name")
            super_name = class_match.group("super")
            current_class = program.define_class(name, superclass=super_name)
            current_method = None
            continue
        method_match = _METHOD_RE.match(stripped)
        if method_match:
            nlocals = method_match.group("nlocals")
            current_method = _PendingMethod(
                method_match.group("qual"),
                int(method_match.group("nargs")),
                int(nlocals) if nlocals is not None else None,
            )
            pending.append(current_method)
            current_class = None
            continue
        first = stripped.split(None, 1)[0]
        if first in ("field", "static"):
            if current_class is None:
                raise AssemblerError(
                    f"line {lineno}: {first!r} outside a class body"
                )
            parts = stripped.split()
            if len(parts) != 2:
                raise AssemblerError(f"line {lineno}: expected '{first} NAME'")
            if first == "field":
                current_class.fields.append(parts[1])
            else:
                current_class.statics.setdefault(parts[1], None)
            continue
        if current_method is None:
            raise AssemblerError(
                f"line {lineno}: instruction outside a method body: {stripped!r}"
            )
        current_method.lines.append((lineno, stripped))

    for pm in pending:
        _assemble_method(program, pm)
    return program


def _assemble_method(program: Program, pm: _PendingMethod) -> None:
    cls_name, method_name = pm.qualified.rsplit(".", 1)
    cls = program.lookup(cls_name)
    code: List[Instruction] = []
    labels: Dict[str, int] = {}
    fixups: List[Tuple[int, str, int]] = []  # (pc, label, lineno)
    max_local = pm.nargs - 1

    for lineno, text in pm.lines:
        label_match = _LABEL_RE.match(text)
        if label_match:
            label = label_match.group("label")
            if label in labels:
                raise AssemblerError(f"line {lineno}: duplicate label {label!r}")
            labels[label] = len(code)
            continue
        tokens = _tokenize(text)
        mnemonic = tokens[0]
        op = bc.OPCODES_BY_NAME.get(mnemonic)
        if op is None:
            raise AssemblerError(f"line {lineno}: unknown mnemonic {mnemonic!r}")
        operands = tokens[1:]
        if len(operands) != _ARITY[op]:
            raise AssemblerError(
                f"line {lineno}: {mnemonic} expects {_ARITY[op]} operand(s), "
                f"got {len(operands)}"
            )
        a: object = None
        b: object = None
        if op in _BRANCHES:
            fixups.append((len(code), operands[0], lineno))
        elif op in _STRING_OPERAND:
            literal = operands[0]
            if not (literal.startswith('"') and literal.endswith('"')):
                raise AssemblerError(
                    f"line {lineno}: {mnemonic} needs a quoted string"
                )
            a = literal[1:-1]
        elif op in _INT_OPERAND:
            a = _parse_int(operands[0], lineno)
            if op in (bc.LOAD, bc.STORE):
                max_local = max(max_local, a)
        elif op == bc.IINC:
            a = _parse_int(operands[0], lineno)
            b = _parse_int(operands[1], lineno)
            max_local = max(max_local, a)
        elif op in (bc.INVOKEVIRTUAL, bc.SPAWN):
            a = operands[0]
            b = _parse_int(operands[1], lineno)
        elif op in (bc.GETSTATIC, bc.PUTSTATIC):
            # Pre-split "Class.field" at assembly time so the interpreter
            # never re-parses the operand on the hot path.
            ref = operands[0]
            if "." not in ref:
                raise AssemblerError(
                    f"line {lineno}: {mnemonic} needs Class.field, got {ref!r}"
                )
            a = tuple(ref.rsplit(".", 1))
        elif _ARITY[op] == 1:
            a = operands[0]
        code.append((op, a, b))

    for pc, label, lineno in fixups:
        if label not in labels:
            raise AssemblerError(f"line {lineno}: undefined label {label!r}")
        op, _, b = code[pc]
        code[pc] = (op, labels[label], b)

    nlocals = pm.nlocals if pm.nlocals is not None else max_local + 1
    method = JMethod(method_name, pm.nargs, nlocals=nlocals, code=code)
    method.labels = labels
    method.fusible = peephole_fusible(code)
    method.block_starts = block_leaders(code)
    cls.add_method(method)


#: Opcodes that fuse as the second half of a ``load``-led superinstruction.
_FUSIBLE_SECOND_AFTER_LOAD = frozenset({
    bc.LOAD, bc.GETFIELD,
    bc.IF_ICMPEQ, bc.IF_ICMPNE, bc.IF_ICMPLT,
    bc.IF_ICMPLE, bc.IF_ICMPGT, bc.IF_ICMPGE,
})

#: Opcodes that fuse as the second half of a ``const``-led superinstruction.
_FUSIBLE_SECOND_AFTER_CONST = frozenset({
    bc.ADD,
    bc.IF_ICMPEQ, bc.IF_ICMPNE, bc.IF_ICMPLT,
    bc.IF_ICMPLE, bc.IF_ICMPGT, bc.IF_ICMPGE,
})


def peephole_fusible(code: List[Instruction]) -> Tuple[int, ...]:
    """Mark superinstruction pair starts for the closure dispatch tier.

    A static peephole pass over the assembled code: returns the pcs where a
    fusible pair begins (``load+load``, ``load+getfield``, ``const+add``,
    and ``load``/``const`` feeding an ``if_icmp*`` compare-and-branch —
    the hot pairs the profiler surfaces).  Pairs never overlap: a matched
    pair consumes both instructions before scanning resumes.

    Branch targets need no special casing — fusion in the closure compiler
    keeps pc numbering intact and leaves the pair's second slot holding its
    plain closure, so a branch into the middle of a pair still lands on
    executable code.
    """
    pairs: List[int] = []
    i = 0
    last = len(code) - 1
    while i < last:
        op1 = code[i][0]
        op2 = code[i + 1][0]
        if ((op1 == bc.LOAD and op2 in _FUSIBLE_SECOND_AFTER_LOAD)
                or (op1 == bc.CONST and op2 in _FUSIBLE_SECOND_AFTER_CONST)):
            pairs.append(i)
            i += 2
        else:
            i += 1
    return tuple(pairs)


#: Opcodes after which control cannot simply fall through to the next pc
#: inside one generated straight-line block: invokes and spawns hand the
#: driving loop a frame change (or a deopt), so the next pc must be an
#: entry point.
_BLOCK_ENDERS_FALLTHROUGH = frozenset({
    bc.INVOKESTATIC, bc.INVOKEVIRTUAL, bc.SPAWN, bc.RETURN, bc.RETVAL,
})


def block_leaders(code: List[Instruction]) -> Tuple[int, ...]:
    """Basic-block leader pcs, for the compiled dispatch tier's codegen.

    Classic leader analysis over the assembled (label-resolved) code: pc 0,
    every branch target, the fallthrough pc after every branch, and the pc
    after every invoke/spawn/return (the compiled tier exits its generated
    function on frame changes and deopts, so the resumption pc must be an
    entry point).  ``len(code)`` — the implicit-return sentinel — is always
    a leader.  Targets outside ``[0, len(code)]`` (possible in hand-built
    code with wild branches) are dropped; the interpreter clamps such pcs
    to the sentinel at run time.
    """
    end = len(code)
    leaders = {0, end}
    for pc, (op, a, _b) in enumerate(code):
        if op in _BRANCHES:
            if isinstance(a, int):
                leaders.add(a)
            leaders.add(pc + 1)
        elif op in _BLOCK_ENDERS_FALLTHROUGH:
            leaders.add(pc + 1)
    return tuple(sorted(pc for pc in leaders if 0 <= pc <= end))


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token)
    except ValueError:
        raise AssemblerError(f"line {lineno}: expected integer, got {token!r}")
