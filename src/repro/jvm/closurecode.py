"""Closure-compiled dispatch: the third interpreter tier.

``RuntimeConfig(dispatch="closure")`` — the default tier — compiles each
method's bytecode once per runtime, at its first invocation, into a flat
list of zero-decode Python closures: one slot per pc plus a sentinel slot
for the implicit end-of-code return.  Every operand, constant, and runtime
service is pre-bound into closure cells, so the driving loop in
:meth:`~repro.jvm.interpreter.Interpreter._step_n_closure` reduces to::

    pc = ccode[pc](frame, thread)

with no opcode indexing, no ``(op, a, b)`` unpacking, and no per-step
attribute traffic.  A closure returns the next pc, or a negative sentinel:

* ``-1`` — the frame changed (invoke/return): the driving loop re-reads the
  top frame and resumes at its saved ``pc``.
* ``-2`` — the sentinel slot's implicit return fired: like ``-1``, but the
  driving loop must not *tick* this instruction — the other two tiers tick
  only decoded instructions, never the implicit end-of-code return.

Two further techniques ride on top, both semantics-preserving (the
five-way opcode-parity suite in ``tests/jvm/test_dispatch.py`` is the
oracle):

**Quickening.**  ``getstatic``/``putstatic``/``invokestatic``/``new``
resolve their symbolic operand on *first execution*, then overwrite their
own slot in the (mutable) compiled list with a specialized closure holding
the resolved class/method — replacing the table tier's per-interpreter
``_static_refs`` resolution cache with a zero-lookup fast path.
``invokevirtual`` quickens to a monomorphic inline cache keyed on the
receiver's class.  First-execution timing is what makes this sound: an
unreachable bad reference never raises, exactly as in the other tiers, and
a rewrite never changes which runtime services run or in what order — it
only skips the redundant name-to-object resolution that precedes them.
(Like real JVM quickening, this assumes method tables are frozen once a
call site has executed; classes here are append-only at load time.)

**Superinstructions.**  The assembler's peephole pass
(:func:`repro.jvm.assembler.peephole_fusible`) marks non-overlapping hot
pairs — ``load+load``, ``load+getfield``, ``const+add``, and a ``load`` or
``const`` feeding an ``if_icmp*`` — and the compiler installs one fused
closure at the pair's first pc.  pc numbering is untouched: the second
slot keeps its plain closure, so branches into the middle of a pair still
land on executable code.  A fused slot carries *weight 2* in the compiled
method's ``weights`` tuple; the driving loop charges both instructions
against its budget and, when only one instruction of budget remains, runs
the pair's unfused first closure from the ``plain`` list instead.  A fused
pair therefore never straddles a scheduler quantum or a fault-plan budget
slice — round-robin interleavings, ``runtime.ops``, and injected-trap
indices stay bit-identical with the table tier.
"""

from __future__ import annotations

import operator
from typing import Callable, List, NamedTuple, Optional, Tuple

from . import bytecode as bc
from .errors import NullPointerError, VerifyError
from .heap import Handle
from .model import JMethod, Program

# Imported lazily by compile_method (interpreter.py imports this module
# from inside its compile hook, so a module-level import would be cycle).
VOID = None
_h_spawn = None
_div_zero = None


def _bind_interpreter_symbols() -> None:
    global VOID, _h_spawn, _div_zero
    if VOID is None:
        from . import interpreter as _interp_mod

        VOID = _interp_mod.VOID
        _h_spawn = _interp_mod._h_spawn
        _div_zero = _interp_mod._div_zero


class QuickeningState:
    """Shared per-(runtime, method) quickening cells.

    Both the closure tier and the compiled tier (:mod:`repro.jvm.
    compiledcode`) speculate on the same resolution results: resolved
    statics/classes/methods for ``getstatic``/``putstatic``/``new``/
    ``invokestatic``, and the monomorphic inline cache for
    ``invokevirtual``.  Keeping the cells *outside* the closures (one
    one-element list per call site) lets either tier's first execution
    feed the other: the closure generic slot resolves and fills the cell,
    the compiled tier's generated code reads the cell behind a guard and
    deopts back to the closure slot while it is still empty.  Resolution
    is not counter-observable (it precedes the same runtime-service calls
    in the same order), so sharing never perturbs parity.
    """

    __slots__ = ("cells", "vcalls")

    def __init__(self) -> None:
        #: pc -> ``[resolved-or-None]``: ``statics.get`` for getstatic,
        #: the JClass for putstatic/new, the JMethod for invokestatic.
        self.cells: dict = {}
        #: pc -> ``([cache_cls], [cache_method])`` for invokevirtual.
        self.vcalls: dict = {}

    def cell(self, pc: int) -> list:
        cell = self.cells.get(pc)
        if cell is None:
            cell = self.cells[pc] = [None]
        return cell

    def vcall(self, pc: int) -> Tuple[list, list]:
        pair = self.vcalls.get(pc)
        if pair is None:
            pair = self.vcalls[pc] = ([None], [None])
        return pair


class CompiledMethod(NamedTuple):
    """One method's compiled form (per-runtime, cached by the interpreter)."""

    #: pc -> closure; ``len(code) + 1`` slots (the last is the implicit
    #: return sentinel).  A mutable list: quickening rewrites slots in place.
    ccode: List[Callable]
    #: pc -> instructions the slot retires (2 for a fused pair, else 1).
    #: None when no slot is fused — the driving loop takes its fast path.
    weights: Optional[Tuple[int, ...]]
    #: The unfused closure list (identical to ``ccode`` pre-fusion); the
    #: driving loop falls back to ``plain[pc]`` when a fused pair would
    #: overrun the remaining budget.  None when ``weights`` is None.
    plain: Optional[List[Callable]]
    #: pc -> opcode, for the per-opcode histogram loops (counting mode).
    opmap: Tuple[int, ...]
    #: ``len(method.code)`` — the sentinel slot's index.
    ilen: int
    #: Shared quickening cells (see :class:`QuickeningState`); the compiled
    #: tier's codegen reads these as speculative constants behind guards.
    quick: QuickeningState


#: if_icmp* opcode -> comparison callable, for the fused compare-and-branch
#: factories.  (The unfused comparisons are open-coded closures instead —
#: they are the hottest single instructions and save the extra call.)
_ICMP_FUNCS = {
    bc.IF_ICMPEQ: operator.eq,
    bc.IF_ICMPNE: operator.ne,
    bc.IF_ICMPLT: operator.lt,
    bc.IF_ICMPLE: operator.le,
    bc.IF_ICMPGT: operator.gt,
    bc.IF_ICMPGE: operator.ge,
}


def compile_method(interp, method: JMethod, fuse: bool = False) -> CompiledMethod:
    """Compile ``method`` into a :class:`CompiledMethod` for ``interp``.

    Closures bind the interpreter's runtime services, so compiled code is
    per-runtime (the interpreter caches it keyed by method identity).  With
    ``fuse`` the assembler-marked superinstruction pairs are installed and
    the weights/plain structures materialize; callers disable fusion in
    per-instruction-tick mode (``gc_period_ops``) and in counting mode,
    where every instruction must be observed individually.
    """
    _bind_interpreter_symbols()
    runtime = interp.runtime
    code = method.code
    ilen = len(code)
    quick = QuickeningState()
    ccode: List[Callable] = [None] * (ilen + 1)
    for pc, (op, a, b) in enumerate(code):
        ccode[pc] = _compile_one(interp, runtime, ccode, quick, pc, op, a, b)
    ccode[ilen] = _make_implicit_return(interp)
    opmap = tuple(op for op, _, _ in code)

    weights = None
    plain = None
    if fuse and ilen > 1:
        fusible = method.fusible
        if fusible is None:
            from .assembler import peephole_fusible

            fusible = method.fusible = peephole_fusible(code)
        fused_slots = []
        for pc in fusible:
            fused = _fuse_pair(runtime, code, pc)
            if fused is not None:
                fused_slots.append((pc, fused))
        if fused_slots:
            plain = list(ccode)
            w = [1] * (ilen + 1)
            for pc, fused in fused_slots:
                ccode[pc] = fused
                w[pc] = 2
            weights = tuple(w)
    return CompiledMethod(ccode, weights, plain, opmap, ilen, quick)


# ---------------------------------------------------------------------------
# Per-opcode closure factories
#
# Each branch returns a closure ``(frame, thread) -> next_pc`` reproducing
# the table handler's semantics exactly: same runtime-service calls in the
# same order, same error types and messages, same stack discipline.  Checks
# the table tier performs per execution either stay per execution or are
# provably invariant for the bound operands (noted inline).
# ---------------------------------------------------------------------------


def _compile_one(interp, runtime, ccode, quick, pc, op, a, b) -> Callable:
    nxt = pc + 1

    if op == bc.CONST:
        def op_const(frame, thread):
            frame.stack.append(a)
            return nxt
        return op_const

    if op == bc.LOAD:
        def op_load(frame, thread):
            frame.stack.append(frame.locals[a])
            return nxt
        return op_load

    if op == bc.STORE:
        def op_store(frame, thread):
            frame.locals[a] = frame.stack.pop()
            return nxt
        return op_store

    if op == bc.ACONST_NULL:
        def op_null(frame, thread):
            frame.stack.append(None)
            return nxt
        return op_null

    if op == bc.LDC_STR:
        new_string = runtime.new_string

        def op_ldc(frame, thread):
            frame.stack.append(new_string(a, thread))
            return nxt
        return op_ldc

    if op == bc.IINC:
        def op_iinc(frame, thread):
            frame.locals[a] += b
            return nxt
        return op_iinc

    if op == bc.DUP:
        def op_dup(frame, thread):
            stack = frame.stack
            stack.append(stack[-1])
            return nxt
        return op_dup

    if op == bc.POP:
        def op_pop(frame, thread):
            frame.stack.pop()
            return nxt
        return op_pop

    if op == bc.SWAP:
        def op_swap(frame, thread):
            stack = frame.stack
            stack[-1], stack[-2] = stack[-2], stack[-1]
            return nxt
        return op_swap

    if op == bc.NEW:
        # Quickened: the class-name lookup happens on first execution (so a
        # never-executed bad operand never raises, as in the other tiers),
        # then the slot is rewritten with the resolved JClass bound in.
        # The shared cell lets the compiled tier pick the class up too.
        allocate = runtime.allocate
        lookup = runtime.program.lookup
        cell = quick.cell(pc)

        def op_new_generic(frame, thread):
            cls = cell[0] = lookup(a)

            def op_new(frame, thread):
                frame.stack.append(allocate(cls, thread))
                return nxt
            ccode[pc] = op_new
            return op_new(frame, thread)
        return op_new_generic

    if op == bc.NEWARRAY:
        # The array pseudo-class is created by Program.__init__ and cannot
        # be redefined, so binding it at compile time is invariant.
        allocate = runtime.allocate
        array_cls = runtime.program.classes[Program.ARRAY]

        def op_newarray(frame, thread):
            stack = frame.stack
            stack[-1] = allocate(array_cls, thread, length=stack[-1])
            return nxt
        return op_newarray

    if op == bc.GETFIELD:
        load_field = runtime.load_field

        def op_getfield(frame, thread):
            stack = frame.stack
            obj = stack.pop()
            if obj is None:
                raise NullPointerError(f"getfield {a} on null")
            stack.append(load_field(obj, a, thread))
            return nxt
        return op_getfield

    if op == bc.PUTFIELD:
        store_field = runtime.store_field

        def op_putfield(frame, thread):
            stack = frame.stack
            value = stack.pop()
            obj = stack.pop()
            if obj is None:
                raise NullPointerError(f"putfield {a} on null")
            store_field(obj, a, value, thread)
            return nxt
        return op_putfield

    if op == bc.GETSTATIC:
        return _q_getstatic(runtime, ccode, quick, pc, a, nxt)

    if op == bc.PUTSTATIC:
        return _q_putstatic(runtime, ccode, quick, pc, a, nxt)

    if op == bc.AALOAD:
        load_element = runtime.load_element

        def op_aaload(frame, thread):
            stack = frame.stack
            index = stack.pop()
            array = stack.pop()
            if array is None:
                raise NullPointerError("aaload on null array")
            stack.append(load_element(array, index, thread))
            return nxt
        return op_aaload

    if op == bc.AASTORE:
        store_element = runtime.store_element

        def op_aastore(frame, thread):
            stack = frame.stack
            value = stack.pop()
            index = stack.pop()
            array = stack.pop()
            if array is None:
                raise NullPointerError("aastore on null array")
            store_element(array, index, value, thread)
            return nxt
        return op_aastore

    if op == bc.ARRAYLENGTH:
        access = runtime.access

        def op_arraylength(frame, thread):
            stack = frame.stack
            array = stack.pop()
            if array is None:
                raise NullPointerError("arraylength on null")
            access(array, thread)
            stack.append(array.length)
            return nxt
        return op_arraylength

    if op == bc.INSTANCEOF:
        instanceof = interp._instanceof

        def op_instanceof(frame, thread):
            stack = frame.stack
            stack[-1] = instanceof(stack[-1], a)
            return nxt
        return op_instanceof

    if op == bc.INTERN:
        access = runtime.access
        intern = runtime.intern

        def op_intern(frame, thread):
            stack = frame.stack
            string = stack.pop()
            if string is None:
                raise NullPointerError("intern on null")
            access(string, thread)
            stack.append(intern(string))
            return nxt
        return op_intern

    if op == bc.INVOKESTATIC:
        return _q_invokestatic(interp, ccode, quick, pc, a, nxt)

    if op == bc.INVOKEVIRTUAL:
        return _q_invokevirtual(interp, runtime, quick, pc, a, b, nxt)

    if op == bc.RETURN:
        _return = interp._return
        void = VOID

        def op_return(frame, thread):
            _return(thread, void)
            return -1
        return op_return

    if op == bc.RETVAL:
        _return = interp._return
        return_reference = runtime.return_reference

        def op_retval(frame, thread):
            value = frame.stack.pop()
            if isinstance(value, Handle):
                return_reference(value, thread)
            _return(thread, value)
            return -1
        return op_retval

    if op == bc.SPAWN:
        spawn = _h_spawn

        def op_spawn(frame, thread):
            spawn(interp, runtime, thread, frame, a, b)
            return nxt
        return op_spawn

    if op == bc.ADD:
        def op_add(frame, thread):
            stack = frame.stack
            y = stack.pop()
            stack[-1] = stack[-1] + y
            return nxt
        return op_add

    if op == bc.SUB:
        def op_sub(frame, thread):
            stack = frame.stack
            y = stack.pop()
            stack[-1] = stack[-1] - y
            return nxt
        return op_sub

    if op == bc.MUL:
        def op_mul(frame, thread):
            stack = frame.stack
            y = stack.pop()
            stack[-1] = stack[-1] * y
            return nxt
        return op_mul

    if op == bc.DIV:
        div_zero = _div_zero

        def op_div(frame, thread):
            stack = frame.stack
            y = stack.pop()
            x = stack.pop()
            if isinstance(x, int) and isinstance(y, int):
                stack.append(int(x / y) if y != 0 else div_zero())
            else:
                stack.append(x / y)
            return nxt
        return op_div

    if op == bc.MOD:
        div_zero = _div_zero

        def op_mod(frame, thread):
            stack = frame.stack
            y = stack.pop()
            x = stack.pop()
            stack.append(x - int(x / y) * y if y != 0 else div_zero())
            return nxt
        return op_mod

    if op == bc.NEG:
        def op_neg(frame, thread):
            stack = frame.stack
            stack[-1] = -stack[-1]
            return nxt
        return op_neg

    if op == bc.GOTO:
        def op_goto(frame, thread):
            return a
        return op_goto

    if op == bc.IFZERO:
        def op_ifzero(frame, thread):
            return a if frame.stack.pop() == 0 else nxt
        return op_ifzero

    if op == bc.IFNZERO:
        def op_ifnzero(frame, thread):
            return a if frame.stack.pop() != 0 else nxt
        return op_ifnzero

    if op == bc.IFNULL:
        def op_ifnull(frame, thread):
            return a if frame.stack.pop() is None else nxt
        return op_ifnull

    if op == bc.IFNONNULL:
        def op_ifnonnull(frame, thread):
            return a if frame.stack.pop() is not None else nxt
        return op_ifnonnull

    if op == bc.IF_ICMPEQ:
        def op_icmpeq(frame, thread):
            stack = frame.stack
            y = stack.pop()
            return a if stack.pop() == y else nxt
        return op_icmpeq

    if op == bc.IF_ICMPNE:
        def op_icmpne(frame, thread):
            stack = frame.stack
            y = stack.pop()
            return a if stack.pop() != y else nxt
        return op_icmpne

    if op == bc.IF_ICMPLT:
        def op_icmplt(frame, thread):
            stack = frame.stack
            y = stack.pop()
            return a if stack.pop() < y else nxt
        return op_icmplt

    if op == bc.IF_ICMPLE:
        def op_icmple(frame, thread):
            stack = frame.stack
            y = stack.pop()
            return a if stack.pop() <= y else nxt
        return op_icmple

    if op == bc.IF_ICMPGT:
        def op_icmpgt(frame, thread):
            stack = frame.stack
            y = stack.pop()
            return a if stack.pop() > y else nxt
        return op_icmpgt

    if op == bc.IF_ICMPGE:
        def op_icmpge(frame, thread):
            stack = frame.stack
            y = stack.pop()
            return a if stack.pop() >= y else nxt
        return op_icmpge

    if op == bc.IF_ACMPEQ:
        def op_acmpeq(frame, thread):
            stack = frame.stack
            y = stack.pop()
            return a if stack.pop() is y else nxt
        return op_acmpeq

    if op == bc.IF_ACMPNE:
        def op_acmpne(frame, thread):
            stack = frame.stack
            y = stack.pop()
            return a if stack.pop() is not y else nxt
        return op_acmpne

    # Unknown opcode: raise with first-execution timing, like both other
    # tiers — a method containing an unreachable bad opcode must still run.
    def op_unknown(frame, thread):
        raise VerifyError(f"unknown opcode {op}")
    return op_unknown


def _make_implicit_return(interp) -> Callable:
    """The sentinel slot at ``pc == len(code)``: implicit return void.

    Counted against the budget (like the other tiers) but reported with
    ``-2`` so the driving loop excludes it from ``runtime.tick`` — only
    decoded instructions tick.
    """
    _return = interp._return
    void = VOID

    def op_implicit_return(frame, thread):
        _return(thread, void)
        return -2
    return op_implicit_return


# ---------------------------------------------------------------------------
# Quickening closures
# ---------------------------------------------------------------------------


def _split_static_ref(operand) -> Tuple[str, str]:
    # The assembler pre-splits to a (class, field) tuple; hand-built code
    # may still carry legacy "Class.field" strings.
    if type(operand) is tuple:
        return operand
    return tuple(operand.rsplit(".", 1))


def _q_getstatic(runtime, ccode, quick, pc, operand, nxt) -> Callable:
    lookup = runtime.program.lookup
    cls_name, field = _split_static_ref(operand)
    cell = quick.cell(pc)

    def op_getstatic_generic(frame, thread):
        cls = lookup(cls_name)
        # runtime.load_static is a plain table.get; binding the class's
        # (identity-stable, mutated-in-place) statics dict keeps the
        # semantics while dropping both the lookup and the call.
        statics_get = cell[0] = cls.statics.get

        def op_getstatic(frame, thread):
            frame.stack.append(statics_get(field))
            return nxt
        ccode[pc] = op_getstatic
        return op_getstatic(frame, thread)
    return op_getstatic_generic


def _q_putstatic(runtime, ccode, quick, pc, operand, nxt) -> Callable:
    lookup = runtime.program.lookup
    store_static = runtime.store_static
    cls_name, field = _split_static_ref(operand)
    cell = quick.cell(pc)

    def op_putstatic_generic(frame, thread):
        cls = cell[0] = lookup(cls_name)

        def op_putstatic(frame, thread):
            # Must stay a runtime.store_static call: putstatic is a CG
            # event (pin to frame 0 / putstatic_events counter).
            store_static(field, frame.stack.pop(), cls)
            return nxt
        ccode[pc] = op_putstatic
        return op_putstatic(frame, thread)
    return op_putstatic_generic


def _q_invokestatic(interp, ccode, quick, pc, qualified, nxt) -> Callable:
    resolve = interp.runtime.program.resolve
    invoke = interp._invoke
    cell = quick.cell(pc)

    def op_invokestatic_generic(frame, thread):
        method = cell[0] = resolve(qualified)

        def op_invokestatic(frame, thread):
            frame.pc = nxt
            invoke(thread, frame, method)
            return -1
        ccode[pc] = op_invokestatic
        return op_invokestatic(frame, thread)
    return op_invokestatic_generic


def _q_invokevirtual(interp, runtime, quick, pc, name, nargs, nxt) -> Callable:
    access = runtime.access
    invoke = interp._invoke
    if nargs < 1:
        def op_invokevirtual_bad(frame, thread):
            raise VerifyError("invokevirtual needs a receiver")
        return op_invokevirtual_bad

    # Monomorphic inline cache: receiver class -> resolved method.  The
    # nargs check runs on every cache fill; a hit reuses a (class, method)
    # pair that already passed it, so the table tier's per-execution check
    # is preserved in effect.  The cells live in the shared QuickeningState
    # so the compiled tier can guard on the same cache.
    cache_cls, cache_method = quick.vcall(pc)

    def op_invokevirtual(frame, thread):
        receiver = frame.stack[-nargs]
        if receiver is None:
            raise NullPointerError(f"invokevirtual {name} on null")
        access(receiver, thread)
        cls = receiver.cls
        if cls is cache_cls[0]:
            method = cache_method[0]
        else:
            method = cls.resolve_method(name)
            if method.nargs != nargs:
                raise VerifyError(
                    f"{method.qualified_name} takes "
                    f"{method.nargs} args, call site passes {nargs}"
                )
            cache_cls[0] = cls
            cache_method[0] = method
        frame.pc = nxt
        invoke(thread, frame, method)
        return -1
    return op_invokevirtual


# ---------------------------------------------------------------------------
# Superinstruction factories
# ---------------------------------------------------------------------------


def _fuse_pair(runtime, code, pc) -> Optional[Callable]:
    """Build the fused closure for the pair starting at ``pc`` (or None).

    Only pairs the peephole pass recognizes reach here; the factories keep
    the exact stack/event order of executing the two instructions back to
    back.  Note the ``if_icmp*`` operand order: the first instruction
    pushes ``y``, so the comparison is ``stack.pop() OP fused_y``.
    """
    op1, a1, _ = code[pc]
    op2, a2, _ = code[pc + 1]
    nxt2 = pc + 2

    if op1 == bc.LOAD:
        if op2 == bc.LOAD:
            i1, i2 = a1, a2

            def fused_load_load(frame, thread):
                stack = frame.stack
                loc = frame.locals
                stack.append(loc[i1])
                stack.append(loc[i2])
                return nxt2
            return fused_load_load

        if op2 == bc.GETFIELD:
            load_field = runtime.load_field
            idx, fld = a1, a2

            def fused_load_getfield(frame, thread):
                obj = frame.locals[idx]
                if obj is None:
                    raise NullPointerError(f"getfield {fld} on null")
                frame.stack.append(load_field(obj, fld, thread))
                return nxt2
            return fused_load_getfield

        cmp_fn = _ICMP_FUNCS.get(op2)
        if cmp_fn is not None:
            idx, target = a1, a2

            def fused_load_icmp(frame, thread):
                return (target
                        if cmp_fn(frame.stack.pop(), frame.locals[idx])
                        else nxt2)
            return fused_load_icmp

    elif op1 == bc.CONST:
        if op2 == bc.ADD:
            k = a1

            def fused_const_add(frame, thread):
                stack = frame.stack
                stack[-1] = stack[-1] + k
                return nxt2
            return fused_const_add

        cmp_fn = _ICMP_FUNCS.get(op2)
        if cmp_fn is not None:
            k, target = a1, a2

            def fused_const_icmp(frame, thread):
                return target if cmp_fn(frame.stack.pop(), k) else nxt2
            return fused_const_icmp

    return None
